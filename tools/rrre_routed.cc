// Sharding proxy for a fleet of rrre_served backends:
//
//   rrre_routed --backends=127.0.0.1:7475,127.0.0.1:7476 --port=7474
//               [--backend_timeout_ms=5000] [--retries=2]
//               [--backoff_us=500] [--health_ms=200] [--vnodes=64]
//               [--max_connections=128] [--read_timeout_ms=0]
//               [--reload_barrier_ms=30000] [--metrics=true]
//
// Clients speak the exact rrre_served line protocol against the router; pair
// requests are consistent-hashed to a home shard (failing over to replicas
// on reset / EOF / deadline), bare-user catalog requests are fanned out
// across every serving shard and reassembled byte-identically, and RELOAD
// rolls the whole fleet behind a params-fingerprint barrier so no connection
// ever observes two parameter versions. STATS reports fleet-level counters
// (loadgen's bounds discovery works unchanged); METRICS merges the router's
// own exposition with every shard's, relabeled shard="k".
//
// At startup every backend must be reachable and agree on corpus bounds and
// params fingerprint — a fleet already serving two parameter versions is
// refused rather than proxied. SIGHUP triggers the same rolling reload as
// the RELOAD verb. SIGINT/SIGTERM drain gracefully.

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "common/signals.h"
#include "common/socket.h"
#include "common/strings.h"
#include "serve/router.h"

namespace {

using namespace rrre;  // NOLINT(build/namespaces)

/// "host:port,host:port,..." -> backend list. Bare "port" means localhost.
bool ParseBackends(const std::string& spec,
                   std::vector<serve::RouterOptions::Backend>* out) {
  for (const std::string& part : common::Split(spec, ',')) {
    if (part.empty()) continue;
    serve::RouterOptions::Backend backend;
    const size_t colon = part.rfind(':');
    const std::string port_str =
        colon == std::string::npos ? part : part.substr(colon + 1);
    if (colon != std::string::npos) backend.host = part.substr(0, colon);
    const long long port = std::atoll(port_str.c_str());
    if (port <= 0 || port > 65535) return false;
    backend.port = static_cast<uint16_t>(port);
    out->push_back(std::move(backend));
  }
  return !out->empty();
}

/// The router's rolling reload is driven through its own protocol: connect
/// to ourselves and issue RELOAD, exactly like an operator would.
void TriggerRollingReload(uint16_t port) {
  auto socket = common::Socket::Connect("127.0.0.1", port);
  if (!socket.ok()) return;
  if (!socket.value().SendAll("RELOAD\n").ok()) return;
  common::LineReader reader(&socket.value());
  auto line = reader.ReadLine();
  if (line.ok() && line.value().has_value()) {
    std::printf("rolling reload: %s\n", line.value()->c_str());
    std::fflush(stdout);
  }
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  flags.AddString("backends", "",
                  "comma-separated host:port shard fleet (required)");
  flags.AddInt("port", 7474, "TCP port to listen on (0 = ephemeral)");
  flags.AddInt("backend_timeout_ms", 5000,
               "per-operation deadline on backend connections");
  flags.AddInt("retries", 2, "failover attempts beyond the first try");
  flags.AddInt("backoff_us", 500, "equal-jitter backoff base between retries");
  flags.AddInt("health_ms", 200, "health-check cadence per backend");
  flags.AddInt("vnodes", 64, "consistent-hash ring points per backend");
  flags.AddInt("max_connections", 128, "concurrent client connection limit");
  flags.AddInt("read_timeout_ms", 0,
               "drop client connections idle past this deadline (0 = none)");
  flags.AddInt("reload_barrier_ms", 30000,
               "deadline for the rolling-reload fingerprint barrier");
  flags.AddBool("metrics", true,
                "maintain the router metrics registry and aggregate shard "
                "expositions under METRICS");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --backends=HOST:PORT,HOST:PORT --port=PORT\n%s",
                argv[0], flags.Usage(argv[0]).c_str());
    return 0;
  }

  serve::RouterOptions options;
  if (!ParseBackends(flags.GetString("backends"), &options.backends)) {
    std::fprintf(stderr, "--backends is required (see --help)\n");
    return 2;
  }
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.backend_timeout_ms =
      static_cast<int>(flags.GetInt("backend_timeout_ms"));
  options.max_retries = flags.GetInt("retries");
  options.backoff_base_us = flags.GetInt("backoff_us");
  options.backoff_cap_us = options.backoff_base_us * 100;
  options.health_period_ms = static_cast<int>(flags.GetInt("health_ms"));
  options.virtual_nodes = static_cast<int>(flags.GetInt("vnodes"));
  options.max_connections = flags.GetInt("max_connections");
  options.read_timeout_ms = static_cast<int>(flags.GetInt("read_timeout_ms"));
  options.reload_barrier_timeout_ms =
      static_cast<int>(flags.GetInt("reload_barrier_ms"));
  options.enable_metrics = flags.GetBool("metrics");

  common::InstallServeSignalHandlers();

  auto router = serve::Router::Start(options);
  if (!router.ok()) {
    std::fprintf(stderr, "rrre_routed failed to start: %s\n",
                 router.status().ToString().c_str());
    return 1;
  }
  std::printf("rrre_routed listening on port %u (%d shards, fingerprint %llu)\n",
              router.value()->port(),
              static_cast<int>(options.backends.size()),
              static_cast<unsigned long long>(
                  router.value()->fleet_fingerprint()));
  std::fflush(stdout);

  uint64_t reloads_seen = common::ReloadRequestCount();
  while (!common::ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t reloads_now = common::ReloadRequestCount();
    if (reloads_now != reloads_seen) {
      reloads_seen = reloads_now;
      std::printf("SIGHUP: rolling the fleet\n");
      std::fflush(stdout);
      TriggerRollingReload(router.value()->port());
    }
  }

  std::printf("shutting down: draining connections...\n");
  std::fflush(stdout);
  router.value()->Shutdown();
  const serve::RouterStats stats = router.value()->stats();
  std::printf(
      "routed %lld requests over %lld connections "
      "(%lld retries, %lld failovers, %lld fanouts, %lld upstream errors, "
      "%lld reload barriers)\n",
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.retries),
      static_cast<long long>(stats.failovers),
      static_cast<long long>(stats.fanouts),
      static_cast<long long>(stats.upstream_errors),
      static_cast<long long>(stats.reload_barriers));
  return 0;
}
