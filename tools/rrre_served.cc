// Online inference server for a trained RRRE checkpoint — the long-lived
// counterpart of the offline rrre_serve batch tool:
//
//   rrre_served --model=/ckpt/m --port=7475
//               [--store=/ckpt/m.tower_store]
//               [--max_batch=64 --max_delay_us=1000 --queue_cap=1024]
//               [--tower_cache_cap=65536] [--read_timeout_ms=0]
//               [--max_connections=256] [--num_threads=8]
//               [--su=5 --si=7 --seed=42]
//
// Clients speak a line protocol (see src/serve/protocol.h): "user<TAB>item"
// scores one pair, a bare "user" scores the whole catalog, and PING / STATS
// / METRICS / RELOAD / QUIT are control commands (METRICS returns a
// Prometheus-style exposition; disable the registry with --metrics=false). Requests from all connections are
// funneled into a dynamic micro-batcher (up to --max_batch pairs or
// --max_delay_us of linger, whichever first) running on the tower-cached
// BatchScorer over the global thread pool. The admission queue is bounded
// (--queue_cap); an overloaded server answers "!ERR overload" immediately
// instead of queueing unboundedly.
//
// --store=PATH serves from a materialized tower store (rrre_store_build):
// profiles are read out of the mmap'd file — zero tower work per request,
// one shared page-cache copy across serving processes, scores bitwise
// identical to live towers. The store must match the checkpoint's parameter
// fingerprint or startup fails.
//
// SIGHUP (or the RELOAD command) hot-reloads the checkpoint: the new
// snapshot is loaded off to the side and swapped in between batches, so
// in-flight batches finish on the old parameters and no batch ever mixes
// versions. With --store the store is re-mapped and fingerprint-verified
// against the new checkpoint in the same step — a stale or torn store fails
// the reload and the old snapshot plus old store keep serving.
// SIGINT/SIGTERM drain gracefully: admitted requests are answered,
// then the process exits.
//
// The architecture flags (--su, --si, --seed) must match the training run.

#include <chrono>
#include <cstdio>
#include <thread>

#include "common/flags.h"
#include "common/logging.h"
#include "common/signals.h"
#include "common/threadpool.h"
#include "serve/server.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)

  common::FlagParser flags;
  flags.AddString("model", "", "checkpoint prefix written by rrre_cli train");
  flags.AddString("store", "",
                  "serve from this materialized tower store (built by "
                  "rrre_store_build; must match the checkpoint)");
  flags.AddInt("port", 7475, "TCP port to listen on (0 = ephemeral)");
  flags.AddInt("max_batch", 64, "max expanded pairs per scoring batch");
  flags.AddInt("max_delay_us", 1000,
               "batching linger after the first queued request");
  flags.AddInt("queue_cap", 1024, "admission queue bound (requests)");
  flags.AddInt("tower_cache_cap", 65536,
               "LRU bound on cached tower profiles per tower (0 = unbounded)");
  flags.AddInt("max_connections", 256, "concurrent connection limit");
  flags.AddInt("read_timeout_ms", 0,
               "drop connections idle past this deadline (0 = no deadline)");
  flags.AddBool("metrics", true,
                "maintain the metrics registry and answer the METRICS verb");
  flags.AddInt("num_threads", 0, "global thread pool size (0 = hardware)");
  flags.AddInt("su", 5, "user history slots (must match training)");
  flags.AddInt("si", 7, "item history slots (must match training)");
  flags.AddInt("seed", 42, "random seed (must match training)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --model=PREFIX --port=PORT\n%s", argv[0],
                flags.Usage(argv[0]).c_str());
    return 0;
  }
  if (flags.GetString("model").empty()) {
    std::fprintf(stderr, "--model is required (see --help)\n");
    return 2;
  }

  common::ThreadPool::SetGlobalSize(
      static_cast<int>(flags.GetInt("num_threads")));
  common::InstallServeSignalHandlers();

  serve::ServerOptions options;
  options.config.s_u = flags.GetInt("su");
  options.config.s_i = flags.GetInt("si");
  options.config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.model_prefix = flags.GetString("model");
  options.store_path = flags.GetString("store");
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.batcher.max_batch = flags.GetInt("max_batch");
  options.batcher.max_delay_us = flags.GetInt("max_delay_us");
  options.batcher.queue_capacity = flags.GetInt("queue_cap");
  options.batcher.tower_cache_cap = flags.GetInt("tower_cache_cap");
  options.max_connections = flags.GetInt("max_connections");
  options.read_timeout_ms = static_cast<int>(flags.GetInt("read_timeout_ms"));
  options.enable_metrics = flags.GetBool("metrics");

  auto server = serve::Server::Start(options);
  if (!server.ok()) {
    std::fprintf(stderr, "rrre_served failed to start: %s\n",
                 server.status().ToString().c_str());
    return 1;
  }
  std::printf("rrre_served listening on port %u (model %s, %d threads%s)\n",
              server.value()->port(), options.model_prefix.c_str(),
              common::ThreadPool::GlobalSize(),
              options.store_path.empty() ? "" : ", store-backed");
  std::fflush(stdout);

  uint64_t reloads_seen = common::ReloadRequestCount();
  while (!common::ShutdownRequested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    const uint64_t reloads_now = common::ReloadRequestCount();
    if (reloads_now != reloads_seen) {
      reloads_seen = reloads_now;
      std::printf("SIGHUP: reloading %s\n", options.model_prefix.c_str());
      std::fflush(stdout);
      server.value()->Reload();
    }
  }

  std::printf("shutting down: draining connections...\n");
  std::fflush(stdout);
  server.value()->Shutdown();
  const serve::ServerStats stats = server.value()->stats();
  std::printf(
      "served %lld requests over %lld connections "
      "(%lld batches, %lld pairs, %lld overloads, %lld reloads)\n",
      static_cast<long long>(stats.requests),
      static_cast<long long>(stats.connections_accepted),
      static_cast<long long>(stats.batcher.batches),
      static_cast<long long>(stats.batcher.pairs_scored),
      static_cast<long long>(stats.overloads),
      static_cast<long long>(stats.batcher.reloads));
  std::printf("batch size (pairs): %s\n",
              stats.batcher.batch_pairs.Summary().c_str());
  std::printf("batch latency (us): %s\n",
              stats.batcher.batch_latency_us.Summary().c_str());
  return 0;
}
