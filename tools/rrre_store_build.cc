// Publishes a materialized tower store for a trained RRRE checkpoint — the
// offline half of store-backed serving:
//
//   rrre_store_build --model=/ckpt/m [--out=/ckpt/m.tower_store]
//                    [--num_threads=8] [--su=5 --si=7 --seed=42]
//
// Loads the checkpoint, batch-runs the user and item towers across every id
// in the training corpus (chunked like BatchScorer priming, parallelized
// with ParallelFor), and writes the profiles as one mmap-able flat file next
// to the checkpoint (see src/core/tower_store.h for the format). The write
// goes through AtomicFileWriter, so a crash mid-publish leaves any previous
// store untouched and readers never see a torn file.
//
// The store carries a fingerprint of the checkpoint's parameter bytes;
// rrre_serve --store and rrre_served --store refuse a store whose
// fingerprint does not match the checkpoint they loaded. Republish after
// every retrain, then RELOAD the server — store and parameters swap
// together.
//
// The architecture flags (--su, --si, --seed) must match the training run:
// the checkpoint stores parameters, not the RrreConfig.

#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "core/tower_store.h"
#include "core/trainer.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)

  common::FlagParser flags;
  flags.AddString("model", "", "checkpoint prefix written by rrre_cli train");
  flags.AddString("out", "",
                  "store path to publish (default: <model>.tower_store)");
  flags.AddInt("num_threads", 0, "global thread pool size (0 = hardware)");
  flags.AddInt("su", 5, "user history slots (must match training)");
  flags.AddInt("si", 7, "item history slots (must match training)");
  flags.AddInt("seed", 42, "random seed (must match training)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --model=PREFIX [--out=PATH]\n%s", argv[0],
                flags.Usage(argv[0]).c_str());
    return 0;
  }
  if (flags.GetString("model").empty()) {
    std::fprintf(stderr, "--model is required (see --help)\n");
    return 2;
  }

  common::ThreadPool::SetGlobalSize(
      static_cast<int>(flags.GetInt("num_threads")));

  core::RrreConfig config;
  config.s_u = flags.GetInt("su");
  config.s_i = flags.GetInt("si");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  const std::string prefix = flags.GetString("model");
  const std::string out = flags.GetString("out").empty()
                              ? prefix + ".tower_store"
                              : flags.GetString("out");

  core::RrreTrainer trainer(config);
  const common::Status loaded = trainer.Load(prefix);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  auto built = core::BuildTowerStore(trainer, prefix, out);
  if (!built.ok()) {
    std::fprintf(stderr, "store build failed: %s\n",
                 built.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "tower store published to %s\n"
      "  %lld user + %lld item profiles x dim %lld = %.1f MiB\n"
      "  params fingerprint %016llx, built in %.3fs (%d threads)\n",
      out.c_str(), static_cast<long long>(built.value().num_users),
      static_cast<long long>(built.value().num_items),
      static_cast<long long>(built.value().dim),
      static_cast<double>(built.value().bytes) / (1024.0 * 1024.0),
      static_cast<unsigned long long>(built.value().params_fingerprint),
      built.value().seconds, common::ThreadPool::GlobalSize());
  return 0;
}
