// Batch scoring server for a trained RRRE checkpoint — the serve half of the
// train-once/serve-many split:
//
//   rrre_serve --model=/ckpt/m --input=requests.tsv --output=scores.tsv
//              [--catalog] [--num_threads=8] [--su=5 --si=7 --seed=42]
//              [--metrics_out=spans.txt] [--store=PATH] [--store_out=PATH]
//
// The input TSV holds one request per line: "user<TAB>item" pairs, or with
// --catalog a bare "user" that is scored against every item in the training
// catalog. A leading header row and '#' comments are skipped. Output is a
// TSV of user, item, predicted rating and reliability (P(benign)), printed
// with full precision so downstream consumers see exactly what the model
// computed.
//
// Scoring runs through the tower-cached BatchScorer: each distinct user and
// item tower is evaluated once over the global thread pool, then only the
// cheap prediction heads run per pair — O(users + items) tower work instead
// of O(pairs), which is what makes full-catalog sweeps tractable.
//
// --store=PATH serves from a materialized tower store (built by
// rrre_store_build or --store_out): profiles come straight out of the mapped
// file, zero tower work, byte-identical output. --store_out=PATH batch-runs
// both towers over the whole corpus after loading and publishes the store
// there (crash-atomically) before any scoring happens.
//
// The architecture flags (--su, --si, --seed) must match the training run:
// the checkpoint stores parameters, not the RrreConfig.

#include <cstdio>

#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "core/serving.h"
#include "core/tower_store.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)

  common::FlagParser flags;
  flags.AddString("model", "", "checkpoint prefix written by rrre_cli train");
  flags.AddString("input", "", "request TSV: user<TAB>item (or user with --catalog)");
  flags.AddString("output", "", "output TSV: user, item, rating, reliability");
  flags.AddBool("catalog", false, "score each requested user against every item");
  flags.AddInt("score_batch", 1024, "pairs per scoring batch (0 = one batch)");
  flags.AddString("store", "",
                  "serve from this materialized tower store (must match the "
                  "checkpoint's parameters)");
  flags.AddString("store_out", "",
                  "precompute all tower profiles and publish a tower store "
                  "here before scoring");
  flags.AddString("metrics_out", "",
                  "write the kernel span exposition here after the run "
                  "(implies profiling, as if RRRE_PROF=1)");
  flags.AddInt("num_threads", 0, "global thread pool size (0 = hardware)");
  flags.AddInt("su", 5, "user history slots (must match training)");
  flags.AddInt("si", 7, "item history slots (must match training)");
  flags.AddInt("seed", 42, "random seed (must match training)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --model=PREFIX --input=IN.tsv --output=OUT.tsv\n%s",
                argv[0], flags.Usage(argv[0]).c_str());
    return 0;
  }
  for (const char* required : {"model", "input", "output"}) {
    if (flags.GetString(required).empty()) {
      std::fprintf(stderr, "--%s is required (see --help)\n", required);
      return 2;
    }
  }

  common::ThreadPool::SetGlobalSize(
      static_cast<int>(flags.GetInt("num_threads")));
  if (!flags.GetString("metrics_out").empty()) {
    obs::SetProfilingEnabled(true);
  }

  core::RrreConfig config;
  config.s_u = flags.GetInt("su");
  config.s_i = flags.GetInt("si");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  core::ServeOptions options;
  options.model_prefix = flags.GetString("model");
  options.input_path = flags.GetString("input");
  options.output_path = flags.GetString("output");
  options.catalog = flags.GetBool("catalog");
  options.score_batch = flags.GetInt("score_batch");
  options.store_path = flags.GetString("store");

  core::RrreTrainer trainer(config);
  const common::Status loaded = trainer.Load(options.model_prefix);
  if (!loaded.ok()) {
    std::fprintf(stderr, "load failed: %s\n", loaded.ToString().c_str());
    return 1;
  }
  if (!flags.GetString("store_out").empty()) {
    auto built = core::BuildTowerStore(trainer, options.model_prefix,
                                       flags.GetString("store_out"));
    if (!built.ok()) {
      std::fprintf(stderr, "store build failed: %s\n",
                   built.status().ToString().c_str());
      return 1;
    }
    std::printf(
        "tower store published to %s: %lld users + %lld items x dim %lld "
        "(%.1f MiB) in %.3fs\n",
        flags.GetString("store_out").c_str(),
        static_cast<long long>(built.value().num_users),
        static_cast<long long>(built.value().num_items),
        static_cast<long long>(built.value().dim),
        static_cast<double>(built.value().bytes) / (1024.0 * 1024.0),
        built.value().seconds);
  }

  auto stats = core::ServeBatch(trainer, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%lld requests -> %lld pairs scored in %.3fs "
      "(%s, %d threads)\n",
      static_cast<long long>(stats.value().num_requests),
      static_cast<long long>(stats.value().num_scored), stats.value().seconds,
      stats.value().store_backed
          ? "store-backed, zero tower work"
          : common::StrFormat(
                "%lld user towers, %lld item towers",
                static_cast<long long>(stats.value().users_primed),
                static_cast<long long>(stats.value().items_primed))
                .c_str(),
      common::ThreadPool::GlobalSize());
  const auto& latency = stats.value().batch_latency_us;
  std::printf(
      "scoring latency over %lld batches of <=%lld pairs: "
      "p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
      static_cast<long long>(stats.value().num_batches),
      static_cast<long long>(options.score_batch > 0
                                 ? options.score_batch
                                 : stats.value().num_scored),
      latency.Percentile(50.0), latency.Percentile(95.0),
      latency.Percentile(99.0), latency.Max());
  std::printf("scores written to %s\n", options.output_path.c_str());
  if (!flags.GetString("metrics_out").empty()) {
    const common::Status written =
        common::WriteFile(flags.GetString("metrics_out"),
                          obs::MetricsRegistry::Global().RenderText());
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write --metrics_out: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("kernel span metrics written to %s\n",
                flags.GetString("metrics_out").c_str());
  }
  return 0;
}
