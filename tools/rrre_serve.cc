// Batch scoring server for a trained RRRE checkpoint — the serve half of the
// train-once/serve-many split:
//
//   rrre_serve --model=/ckpt/m --input=requests.tsv --output=scores.tsv
//              [--catalog] [--num_threads=8] [--su=5 --si=7 --seed=42]
//              [--metrics_out=spans.txt]
//
// The input TSV holds one request per line: "user<TAB>item" pairs, or with
// --catalog a bare "user" that is scored against every item in the training
// catalog. A leading header row and '#' comments are skipped. Output is a
// TSV of user, item, predicted rating and reliability (P(benign)), printed
// with full precision so downstream consumers see exactly what the model
// computed.
//
// Scoring runs through the tower-cached BatchScorer: each distinct user and
// item tower is evaluated once over the global thread pool, then only the
// cheap prediction heads run per pair — O(users + items) tower work instead
// of O(pairs), which is what makes full-catalog sweeps tractable.
//
// The architecture flags (--su, --si, --seed) must match the training run:
// the checkpoint stores parameters, not the RrreConfig.

#include <cstdio>

#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "core/serving.h"
#include "obs/metrics.h"
#include "obs/trace.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)

  common::FlagParser flags;
  flags.AddString("model", "", "checkpoint prefix written by rrre_cli train");
  flags.AddString("input", "", "request TSV: user<TAB>item (or user with --catalog)");
  flags.AddString("output", "", "output TSV: user, item, rating, reliability");
  flags.AddBool("catalog", false, "score each requested user against every item");
  flags.AddInt("score_batch", 1024, "pairs per scoring batch (0 = one batch)");
  flags.AddString("metrics_out", "",
                  "write the kernel span exposition here after the run "
                  "(implies profiling, as if RRRE_PROF=1)");
  flags.AddInt("num_threads", 0, "global thread pool size (0 = hardware)");
  flags.AddInt("su", 5, "user history slots (must match training)");
  flags.AddInt("si", 7, "item history slots (must match training)");
  flags.AddInt("seed", 42, "random seed (must match training)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --model=PREFIX --input=IN.tsv --output=OUT.tsv\n%s",
                argv[0], flags.Usage(argv[0]).c_str());
    return 0;
  }
  for (const char* required : {"model", "input", "output"}) {
    if (flags.GetString(required).empty()) {
      std::fprintf(stderr, "--%s is required (see --help)\n", required);
      return 2;
    }
  }

  common::ThreadPool::SetGlobalSize(
      static_cast<int>(flags.GetInt("num_threads")));
  if (!flags.GetString("metrics_out").empty()) {
    obs::SetProfilingEnabled(true);
  }

  core::RrreConfig config;
  config.s_u = flags.GetInt("su");
  config.s_i = flags.GetInt("si");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));

  core::ServeOptions options;
  options.model_prefix = flags.GetString("model");
  options.input_path = flags.GetString("input");
  options.output_path = flags.GetString("output");
  options.catalog = flags.GetBool("catalog");
  options.score_batch = flags.GetInt("score_batch");

  auto stats = core::LoadAndServe(config, options);
  if (!stats.ok()) {
    std::fprintf(stderr, "serve failed: %s\n",
                 stats.status().ToString().c_str());
    return 1;
  }
  std::printf(
      "%lld requests -> %lld pairs scored in %.3fs "
      "(%lld user towers, %lld item towers, %d threads)\n",
      static_cast<long long>(stats.value().num_requests),
      static_cast<long long>(stats.value().num_scored), stats.value().seconds,
      static_cast<long long>(stats.value().users_primed),
      static_cast<long long>(stats.value().items_primed),
      common::ThreadPool::GlobalSize());
  const auto& latency = stats.value().batch_latency_us;
  std::printf(
      "scoring latency over %lld batches of <=%lld pairs: "
      "p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
      static_cast<long long>(stats.value().num_batches),
      static_cast<long long>(options.score_batch > 0
                                 ? options.score_batch
                                 : stats.value().num_scored),
      latency.Percentile(50.0), latency.Percentile(95.0),
      latency.Percentile(99.0), latency.Max());
  std::printf("scores written to %s\n", options.output_path.c_str());
  if (!flags.GetString("metrics_out").empty()) {
    const common::Status written =
        common::WriteFile(flags.GetString("metrics_out"),
                          obs::MetricsRegistry::Global().RenderText());
    if (!written.ok()) {
      std::fprintf(stderr, "failed to write --metrics_out: %s\n",
                   written.ToString().c_str());
      return 1;
    }
    std::printf("kernel span metrics written to %s\n",
                flags.GetString("metrics_out").c_str());
  }
  return 0;
}
