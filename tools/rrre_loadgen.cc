// Load generator for rrre_served: drives N concurrent connections of
// uniformly random pair requests at a target aggregate QPS (0 = closed-loop
// max) and reports throughput plus p50/p95/p99 round-trip latency:
//
//   rrre_loadgen --port=7475 [--host=127.0.0.1] [--connections=8]
//                [--requests=10000] [--qps=0] [--seed=42]
//                [--users=0 --items=0] [--retries=2 --backoff_us=1000]
//                [--metrics]
//
// Id ranges default to whatever the server reports via STATS, so pointing
// the tool at a running rrre_served is enough. --metrics additionally
// scrapes the server's METRICS exposition after the run and prints it.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/socket.h"
#include "common/strings.h"
#include "serve/loadgen.h"

namespace {

/// Connects, sends METRICS, and prints the "#metrics\tlines=N" payload.
int ScrapeMetrics(const std::string& host, uint16_t port) {
  using namespace rrre;  // NOLINT(build/namespaces)
  auto socket = common::Socket::Connect(host, port);
  if (!socket.ok()) {
    std::fprintf(stderr, "metrics scrape failed: %s\n",
                 socket.status().ToString().c_str());
    return 1;
  }
  const common::Status sent = socket.value().SendAll("METRICS\n");
  if (!sent.ok()) {
    std::fprintf(stderr, "metrics scrape failed: %s\n",
                 sent.ToString().c_str());
    return 1;
  }
  common::LineReader reader(&socket.value());
  auto header = reader.ReadLine();
  if (!header.ok() || !header.value().has_value()) {
    std::fprintf(stderr, "metrics scrape failed: no response header\n");
    return 1;
  }
  if (!common::StartsWith(*header.value(), "#metrics\tlines=")) {
    std::fprintf(stderr, "metrics scrape failed: %s\n",
                 header.value()->c_str());
    return 1;
  }
  const long long lines =
      std::atoll(header.value()->c_str() + sizeof("#metrics\tlines=") - 1);
  std::printf("%s\n", header.value()->c_str());
  for (long long i = 0; i < lines; ++i) {
    auto line = reader.ReadLine();
    if (!line.ok() || !line.value().has_value()) {
      std::fprintf(stderr, "metrics scrape truncated at line %lld\n", i);
      return 1;
    }
    std::printf("%s\n", line.value()->c_str());
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)

  common::FlagParser flags;
  flags.AddString("host", "127.0.0.1", "server address (numeric IPv4)");
  flags.AddInt("port", 7475, "server port");
  flags.AddInt("connections", 8, "concurrent connections");
  flags.AddInt("requests", 10000, "total requests across all connections");
  flags.AddDouble("qps", 0.0, "aggregate target rate (0 = max speed)");
  flags.AddInt("seed", 42, "request-stream seed");
  flags.AddInt("users", 0, "user id range (0 = discover via STATS)");
  flags.AddInt("items", 0, "item id range (0 = discover via STATS)");
  flags.AddInt("retries", 2,
               "retries per request on overload, with jittered backoff");
  flags.AddInt("backoff_us", 1000,
               "backoff base; attempt k waits ~base*2^k us (capped 100x)");
  flags.AddBool("metrics", false,
                "scrape and print the METRICS exposition after the run");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --port=PORT [--connections=N --requests=M]\n%s",
                argv[0], flags.Usage(argv[0]).c_str());
    return 0;
  }

  serve::LoadGenOptions options;
  options.host = flags.GetString("host");
  options.port = static_cast<uint16_t>(flags.GetInt("port"));
  options.connections = flags.GetInt("connections");
  options.total_requests = flags.GetInt("requests");
  options.target_qps = flags.GetDouble("qps");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.num_users = flags.GetInt("users");
  options.num_items = flags.GetInt("items");
  options.max_retries = flags.GetInt("retries");
  options.backoff_base_us = flags.GetInt("backoff_us");
  options.backoff_cap_us = options.backoff_base_us * 100;

  auto report = serve::RunLoadGen(options);
  if (!report.ok()) {
    std::fprintf(stderr, "loadgen failed: %s\n",
                 report.status().ToString().c_str());
    return 1;
  }
  const serve::LoadGenReport& r = report.value();
  // Settled requests (scored + overloaded + errors) and wire attempts are
  // reported separately so retries can't inflate the request count; the two
  // differ by exactly `retried` (see the LoadGenReport counter contract).
  const long long settled =
      static_cast<long long>(r.scored + r.overloaded + r.errors);
  std::printf(
      "%lld requests (%lld wire attempts) over %lld connections in %.3fs "
      "-> %.1f responses/s\n",
      settled, static_cast<long long>(r.sent),
      static_cast<long long>(options.connections), r.seconds, r.qps);
  std::printf("  scored=%lld overloaded=%lld errors=%lld retried=%lld\n",
              static_cast<long long>(r.scored),
              static_cast<long long>(r.overloaded),
              static_cast<long long>(r.errors),
              static_cast<long long>(r.retried));
  std::printf("  latency p50=%.0fus p95=%.0fus p99=%.0fus max=%.0fus\n",
              r.latency_us.Percentile(50.0), r.latency_us.Percentile(95.0),
              r.latency_us.Percentile(99.0), r.latency_us.Max());
  if (flags.GetBool("metrics")) {
    return ScrapeMetrics(options.host, options.port);
  }
  return 0;
}
