// Streaming retrain daemon: drives the adversarial fraud arena through the
// warm-start retrain loop.
//
//   rrre_streamd --publish_root=/data/stream
//                [--dataset=yelpchi --scale=0.05 --seed=42]
//                [--days_per_partition=30 --schedule=0:0,60:1,120:2]
//                [--epochs=4 --epochs_per_partition=2]
//                [--reload=127.0.0.1:7475,127.0.0.1:7476]
//                [--telemetry=stream.jsonl] [--store=true]
//                [--max_steps=0] [--num_threads=1]
//
// Each step trains the next arena partition on the cumulative corpus
// (warm-started from the previous checkpoint via the exact-resume path),
// publishes a versioned generation under --publish_root (checkpoint + tower
// store + MANIFEST written last, `current` symlink swapped after), and
// hot-reloads every --reload endpoint, polling its STATS fingerprint until
// the fleet converged (a router endpoint must also report quarantined=0).
//
// The daemon is kill-safe at any instruction: on restart it recovers from
// the newest valid MANIFEST and re-trains only what was never published.
// Because partitions and retrains are deterministic, the artifacts a
// restarted daemon publishes are bitwise identical to an uninterrupted
// run's. SIGINT/SIGTERM stop after the step in progress.
//
// --schedule is a comma list of day:tier pairs (tiers 0..2, ascending days,
// first day 0) — the adversary's escalation plan.

#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/flags.h"
#include "common/logging.h"
#include "common/signals.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "data/adversary.h"
#include "data/profiles.h"
#include "obs/telemetry.h"
#include "stream/driver.h"

namespace {

using namespace rrre;  // NOLINT(build/namespaces)

bool ParseSchedule(const std::string& spec,
                   std::vector<data::TierPhase>* schedule) {
  schedule->clear();
  for (const std::string& part : common::Split(spec, ',')) {
    const size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    data::TierPhase phase;
    phase.start_day = std::strtoll(part.substr(0, colon).c_str(), nullptr, 10);
    const long tier = std::strtol(part.c_str() + colon + 1, nullptr, 10);
    if (tier < 0 || tier > 2) return false;
    phase.tier = static_cast<data::AdversaryTier>(tier);
    schedule->push_back(phase);
  }
  return !schedule->empty() && schedule->front().start_day == 0;
}

bool ParseEndpoints(const std::string& spec,
                    std::vector<stream::StreamEndpoint>* endpoints) {
  endpoints->clear();
  if (spec.empty()) return true;
  for (const std::string& part : common::Split(spec, ',')) {
    const size_t colon = part.find(':');
    if (colon == std::string::npos) return false;
    stream::StreamEndpoint endpoint;
    endpoint.host = part.substr(0, colon);
    endpoint.port = static_cast<uint16_t>(
        std::strtoul(part.c_str() + colon + 1, nullptr, 10));
    if (endpoint.host.empty() || endpoint.port == 0) return false;
    endpoints->push_back(endpoint);
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  flags.AddString("publish_root", "", "versioned generation layout root");
  flags.AddString("dataset", "yelpchi",
                  "arena profile: yelpchi|yelpnyc|yelpzip|musics|cds");
  flags.AddDouble("scale", 0.05, "profile scale factor");
  flags.AddInt("seed", 42, "arena + trainer seed");
  flags.AddInt("days_per_partition", 30, "days per streamed partition");
  flags.AddString("schedule", "0:0",
                  "day:tier escalation plan, e.g. 0:0,60:1,120:2");
  flags.AddInt("epochs", 4, "cold-start epoch budget (partition 0)");
  flags.AddInt("epochs_per_partition", 2,
               "extra epochs per warm-start retrain (0 = same as --epochs)");
  flags.AddString("reload", "",
                  "comma list of host:port serving processes to hot-reload "
                  "after each publish (rrre_served or rrre_routed)");
  flags.AddInt("reload_timeout_ms", 15000,
               "per-endpoint reload + fingerprint-convergence deadline");
  flags.AddString("telemetry", "", "per-epoch/per-generation JSONL path");
  flags.AddBool("store", true, "build a tower store with each generation");
  flags.AddInt("max_steps", 0, "stop after this many steps (0 = run dry)");
  flags.AddInt("retries", 3, "attempts per step before giving up");
  flags.AddInt("num_threads", 0, "global thread pool size (0 = hardware)");
  flags.AddInt("su", 5, "user history slots");
  flags.AddInt("si", 7, "item history slots");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("usage: %s --publish_root=DIR [--reload=HOST:PORT,...]\n%s",
                argv[0], flags.Usage(argv[0]).c_str());
    return 0;
  }
  if (flags.GetString("publish_root").empty()) {
    std::fprintf(stderr, "--publish_root is required (see --help)\n");
    return 2;
  }

  auto profile = data::ProfileByName(flags.GetString("dataset"),
                                     flags.GetDouble("scale"));
  if (!profile.ok()) {
    std::fprintf(stderr, "bad --dataset: %s\n",
                 profile.status().ToString().c_str());
    return 2;
  }

  data::AdversaryConfig arena_config;
  arena_config.profile = profile.value();
  arena_config.days_per_partition = flags.GetInt("days_per_partition");
  arena_config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  if (!ParseSchedule(flags.GetString("schedule"), &arena_config.schedule)) {
    std::fprintf(stderr, "bad --schedule %s (want 0:0[,day:tier...])\n",
                 flags.GetString("schedule").c_str());
    return 2;
  }

  stream::StreamOptions options;
  options.config.s_u = flags.GetInt("su");
  options.config.s_i = flags.GetInt("si");
  options.config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  options.config.epochs = flags.GetInt("epochs");
  options.epochs_per_partition = flags.GetInt("epochs_per_partition");
  options.publish_root = flags.GetString("publish_root");
  options.build_store = flags.GetBool("store");
  options.reload_timeout_ms =
      static_cast<int>(flags.GetInt("reload_timeout_ms"));
  if (!ParseEndpoints(flags.GetString("reload"), &options.reload_endpoints)) {
    std::fprintf(stderr, "bad --reload %s (want host:port[,host:port...])\n",
                 flags.GetString("reload").c_str());
    return 2;
  }

  std::unique_ptr<obs::TelemetryWriter> telemetry;
  if (!flags.GetString("telemetry").empty()) {
    telemetry = std::make_unique<obs::TelemetryWriter>(
        obs::TelemetryWriter::Options{flags.GetString("telemetry"),
                                      /*include_timings=*/false});
    RRRE_CHECK_OK(telemetry->status());
    options.telemetry = telemetry.get();
  }

  common::ThreadPool::SetGlobalSize(
      static_cast<int>(flags.GetInt("num_threads")));
  common::InstallServeSignalHandlers();

  const data::AdversaryModel arena(arena_config);
  stream::StreamDriver driver(&arena, options);
  auto recovered = driver.Recover();
  if (!recovered.ok()) {
    std::fprintf(stderr, "recovery failed: %s\n",
                 recovered.ToString().c_str());
    return 1;
  }
  std::printf("rrre_streamd: %lld partitions of %s (scale %.3g), "
              "resuming at partition %lld\n",
              static_cast<long long>(arena.num_partitions()),
              arena_config.profile.name.c_str(), flags.GetDouble("scale"),
              static_cast<long long>(driver.next_partition()));
  std::fflush(stdout);

  const int64_t max_steps = flags.GetInt("max_steps");
  const int64_t retries = flags.GetInt("retries");
  int64_t steps = 0;
  while (!driver.Done() && !common::ShutdownRequested()) {
    if (max_steps > 0 && steps >= max_steps) break;
    stream::GenerationResult result;
    common::Status status = common::Status::Ok();
    for (int64_t attempt = 0; attempt <= retries; ++attempt) {
      status = driver.Step(&result);
      if (status.ok()) break;
      std::fprintf(stderr, "step %lld attempt %lld failed: %s\n",
                   static_cast<long long>(driver.next_partition()),
                   static_cast<long long>(attempt),
                   status.ToString().c_str());
      std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    if (!status.ok()) {
      std::fprintf(stderr, "giving up on partition %lld: %s\n",
                   static_cast<long long>(driver.next_partition()),
                   status.ToString().c_str());
      return 1;
    }
    ++steps;
    std::printf("gen %06lld tier=%d epochs=%lld fingerprint=%016llx "
                "brmse=%.4f auc=%.4f reloaded=%s\n",
                static_cast<long long>(result.generation), result.tier,
                static_cast<long long>(result.epochs_trained),
                static_cast<unsigned long long>(result.params_fingerprint),
                result.eval_brmse, result.eval_auc,
                result.reloaded ? "yes" : "no");
    std::fflush(stdout);
  }

  for (const stream::WaveStat& wave : driver.tracker().waves()) {
    std::printf("wave tier=%d start_epoch=%lld lag=%lld worst_auc=%.4f "
                "worst_brmse=%.4f\n",
                wave.tier, static_cast<long long>(wave.start_epoch),
                static_cast<long long>(wave.lag_epochs), wave.worst_auc,
                wave.worst_brmse);
  }
  if (telemetry != nullptr) RRRE_CHECK_OK(telemetry->Close());
  std::printf("rrre_streamd: %s after %lld steps\n",
              driver.Done() ? "stream complete" : "stopped",
              static_cast<long long>(steps));
  return 0;
}
