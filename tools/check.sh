#!/usr/bin/env bash
# CI entry point: tier-1 verification (default build + full test suite),
# then the same suite under ThreadSanitizer to vet the parallel layer.
#
# Usage: tools/check.sh [--skip-tsan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: default build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== TSan pass skipped =="
  exit 0
fi

echo "== TSan: parallel-layer tests under ThreadSanitizer =="
cmake -B build-tsan -S . -DRRRE_SANITIZE=thread >/dev/null
cmake --build build-tsan -j \
  --target test_threadpool test_parallel_determinism test_tensor >/dev/null
(cd build-tsan && ctest --output-on-failure \
  -R "ThreadPool|ParallelDeterminism" )

echo "== all checks passed =="
