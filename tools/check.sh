#!/usr/bin/env bash
# CI entry point: tier-1 verification (default build + full test suite),
# then the full suite under ThreadSanitizer to vet the parallel layer and the
# online-serving/metrics path, then the checkpoint/serve/resume and
# tower-store tests under AddressSanitizer — the corruption corpora feed
# deliberately malformed bytes to the checkpoint loader and the store mapper,
# and ASan proves the rejection paths are free of out-of-bounds reads and
# leaks — then the fault-injection suites (failpoint schedules,
# torn-checkpoint and torn-store crashes, socket faults, the seeded server
# soak) under AddressSanitizer, then the sharded-router failover suite under
# AddressSanitizer (the failpoint layer is runtime-armed in every build, so
# the same binaries exercise the router.backend.* fault seams) plus a
# repeat-until-fail guard that reruns the serving suites five times under -j
# to hold the line on the deflaked socket tests, then the adversarial-arena /
# streaming-retrain suite under AddressSanitizer, and finally the
# observability + serving suites under UndefinedBehaviorSanitizer.
#
# Every ctest invocation runs with --no-tests=error: a filter that matches
# zero tests (e.g. after a suite rename) fails the leg instead of silently
# passing it. The script exits non-zero unless every leg that was not
# explicitly skipped on the command line actually ran, and it prints which
# legs ran so CI logs show the coverage at a glance.
#
# The kernels leg runs the blocked-GEMM/conv parity oracles, the gradcheck
# sweeps, the fused-vs-eager bitwise suites and the batch-tape training tests
# (including the compiled-replay suites: schedule caching, fallback and the
# replay-vs-rebuild bitwise crosses) under both AddressSanitizer and
# UndefinedBehaviorSanitizer (the packed-panel kernels do the most pointer
# arithmetic in the codebase), plus a repeat-until-fail guard over the
# tape/replay suites, and the TSan leg picks the same suites up to vet the
# per-shard tape executors.
#
# Usage: tools/check.sh [--skip-tsan] [--skip-asan] [--skip-failpoint]
#                       [--skip-router] [--skip-stream] [--skip-ubsan]
#                       [--skip-kernels]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
SKIP_FAILPOINT=0
SKIP_ROUTER=0
SKIP_STREAM=0
SKIP_UBSAN=0
SKIP_KERNELS=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    --skip-failpoint) SKIP_FAILPOINT=1 ;;
    --skip-router) SKIP_ROUTER=1 ;;
    --skip-stream) SKIP_STREAM=1 ;;
    --skip-ubsan) SKIP_UBSAN=1 ;;
    --skip-kernels) SKIP_KERNELS=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

LEGS_RUN=()
LEGS_SKIPPED=()

# require_build_dir <dir> — the configure step must have produced a build
# tree; anything else means the leg cannot have run and the script must die.
require_build_dir() {
  if [[ ! -f "$1/CMakeCache.txt" ]]; then
    echo "FATAL: build directory '$1' missing after configure" >&2
    exit 1
  fi
}

echo "== tier-1: default build + tests =="
cmake -B build -S . >/dev/null
require_build_dir build
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure --no-tests=error -j)
LEGS_RUN+=(tier1)

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== TSan pass skipped (--skip-tsan) =="
  LEGS_SKIPPED+=(tsan)
else
  echo "== TSan: parallel-layer + online-serving tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DRRRE_SANITIZE=thread >/dev/null
  require_build_dir build-tsan
  cmake --build build-tsan -j \
    --target test_threadpool test_parallel_determinism test_tensor \
             test_kernels test_batcher test_served >/dev/null
  (cd build-tsan && ctest --output-on-failure --no-tests=error \
    -R "ThreadPool|ParallelDeterminism|MicroBatcher|ServedTest|Kernel|Tape" )
  LEGS_RUN+=(tsan)
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "== ASan pass skipped (--skip-asan) =="
  LEGS_SKIPPED+=(asan)
else
  echo "== ASan: checkpoint/serve/resume + tower-store tests under AddressSanitizer =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  require_build_dir build-asan
  cmake --build build-asan -j \
    --target test_tensor test_serving test_extensions test_tower_store \
    >/dev/null
  (cd build-asan && ctest --output-on-failure --no-tests=error \
    -R "Serialize|Serving|TrainerPersistence" )
  # The store label is the tower-store corruption corpus: truncations,
  # bit flips, forged headers, overflow-sized counts — ASan proves every
  # rejection path reads no byte it shouldn't.
  (cd build-asan && ctest --output-on-failure --no-tests=error -L store)
  LEGS_RUN+=(asan)
fi

if [[ "$SKIP_FAILPOINT" == "1" ]]; then
  echo "== failpoint pass skipped (--skip-failpoint) =="
  LEGS_SKIPPED+=(failpoint)
else
  echo "== failpoint: fault-injection suite + seeded soak under AddressSanitizer =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  require_build_dir build-asan
  cmake --build build-asan -j --target test_failpoints test_tower_store \
    test_stream >/dev/null
  # The failpoint label covers the whole fault-injection suite: framework
  # trigger schedules, AtomicFileWriter crash sequencing, torn-checkpoint
  # rejection, socket short-I/O/EINTR/reset faults, loadgen retry, and the
  # randomized seeded server soak. The store label adds the tower-store
  # fault tests: store.write/store.mmap/serve.reload injections, crash-mid
  # -publish death tests, and the torn-store reload that must keep the old
  # snapshot serving.
  (cd build-asan && ctest --output-on-failure --no-tests=error -L failpoint)
  (cd build-asan && ctest --output-on-failure --no-tests=error -L store)
  # Seeded end-to-end streaming soak: a 2-partition arena streamed through
  # the daemon loop against one live shard while the manifest commit, the
  # tower-store write and the server reload path all fail probabilistically.
  # The old snapshot must answer scoring requests between retries and the
  # fleet must converge on the new params version once the faults clear.
  (cd build-asan && ctest --output-on-failure --no-tests=error \
    -R "StreamFaults")
  LEGS_RUN+=(failpoint)
fi

if [[ "$SKIP_ROUTER" == "1" ]]; then
  echo "== router pass skipped (--skip-router) =="
  LEGS_SKIPPED+=(router)
else
  echo "== router: sharded-router failover suite under AddressSanitizer =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  require_build_dir build-asan
  cmake --build build-asan -j --target test_router >/dev/null
  # The router label covers consistent-hash routing, replica failover on
  # every router.backend.* failpoint seam (never-sent, maybe-delivered,
  # stall, torn response), catalog fan-out through a killed shard, the
  # rolling-reload fingerprint barrier, and side-channel quarantine.
  # Failpoints are armed at runtime, so the ASan binaries exercise the
  # injected faults directly.
  (cd build-asan && ctest --output-on-failure --no-tests=error -L router)
  # Deflake guard: the serving socket tests used to flake under parallel
  # ctest load (shared /tmp fixture paths); rerun them five times under -j
  # so a reintroduced race fails the leg instead of landing.
  (cd build && ctest --output-on-failure --no-tests=error \
    -R "ServedTest|RouterTest" --repeat until-fail:5 -j)
  LEGS_RUN+=(router)
fi

if [[ "$SKIP_STREAM" == "1" ]]; then
  echo "== stream pass skipped (--skip-stream) =="
  LEGS_SKIPPED+=(stream)
else
  echo "== stream: adversarial arena + streaming retrain loop under AddressSanitizer =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  require_build_dir build-asan
  cmake --build build-asan -j --target test_stream >/dev/null
  # The stream label covers arena partition determinism (regeneration order,
  # thread counts), the per-tier evasion properties, the versioned publish
  # layout's crash-safety (manifest written last, torn generations skipped),
  # kill-then-resume bitwise identity of the retrain driver, live hot-reload
  # convergence, and the router quarantine gauge in the METRICS scrape.
  (cd build-asan && ctest --output-on-failure --no-tests=error -L stream)
  LEGS_RUN+=(stream)
fi

if [[ "$SKIP_KERNELS" == "1" ]]; then
  echo "== kernels pass skipped (--skip-kernels) =="
  LEGS_SKIPPED+=(kernels)
else
  echo "== kernels: blocked-kernel parity + batch-tape suites under ASan and UBSan =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  require_build_dir build-asan
  cmake --build build-asan -j --target test_kernels >/dev/null
  # The kernels label is the parity-oracle + gradcheck + tape suite: blocked
  # GEMM vs a naive reference across the blocking-boundary shape grid, conv
  # parity, the frozen-argmax conv gradient, fused-vs-eager bitwise identity
  # for every module with a fused path, bitwise tape-vs-eager training, and
  # the compiled-replay suite (replay-vs-rebuild bitwise crosses, fingerprint
  # accounting, Clear() invalidation, steady-state zero-rebuild counters).
  # ASan vets the packed-panel pointer arithmetic and the arena recycling;
  # UBSan vets the same code for overflow/alignment UB.
  (cd build-asan && ctest --output-on-failure --no-tests=error -L kernels)
  cmake -B build-ubsan -S . -DRRRE_SANITIZE=undefined >/dev/null
  require_build_dir build-ubsan
  cmake --build build-ubsan -j --target test_kernels >/dev/null
  (cd build-ubsan && ctest --output-on-failure --no-tests=error -L kernels)
  # Deflake guard (same pattern as the serving-socket guard): the tape/replay
  # training tests drive the per-shard executors on a parallel pool under -j;
  # rerun them five times so a reintroduced scheduling race or a
  # replay-fallback flake fails the leg instead of landing.
  (cd build && ctest --output-on-failure --no-tests=error \
    -R "TapeTrainingTest" --repeat until-fail:5 -j)
  LEGS_RUN+=(kernels)
fi

if [[ "$SKIP_UBSAN" == "1" ]]; then
  echo "== UBSan pass skipped (--skip-ubsan) =="
  LEGS_SKIPPED+=(ubsan)
else
  echo "== UBSan: observability + serving tests under UndefinedBehaviorSanitizer =="
  cmake -B build-ubsan -S . -DRRRE_SANITIZE=undefined >/dev/null
  require_build_dir build-ubsan
  cmake --build build-ubsan -j \
    --target test_obs test_properties_common test_batcher test_served >/dev/null
  # The obs label covers the metrics/trace/telemetry and histogram-property
  # suites; the explicit regex adds the online-serving path.
  (cd build-ubsan && ctest --output-on-failure --no-tests=error -L obs)
  (cd build-ubsan && ctest --output-on-failure --no-tests=error \
    -R "MicroBatcher|ServedTest" )
  LEGS_RUN+=(ubsan)
fi

SUMMARY="== legs run: ${LEGS_RUN[*]}"
if [[ "${#LEGS_SKIPPED[@]}" -gt 0 ]]; then
  SUMMARY+=" | skipped on request: ${LEGS_SKIPPED[*]}"
fi
echo "$SUMMARY =="
echo "== all checks passed =="
