#!/usr/bin/env bash
# CI entry point: tier-1 verification (default build + full test suite),
# then the full suite under ThreadSanitizer to vet the parallel layer, then
# the checkpoint/serve/resume tests under AddressSanitizer — the corruption
# corpus feeds deliberately malformed bytes to the loader, and ASan proves
# the rejection paths are free of out-of-bounds reads and leaks.
#
# Usage: tools/check.sh [--skip-tsan] [--skip-asan]
set -euo pipefail

cd "$(dirname "$0")/.."

SKIP_TSAN=0
SKIP_ASAN=0
for arg in "$@"; do
  case "$arg" in
    --skip-tsan) SKIP_TSAN=1 ;;
    --skip-asan) SKIP_ASAN=1 ;;
    *) echo "unknown argument: $arg" >&2; exit 2 ;;
  esac
done

echo "== tier-1: default build + tests =="
cmake -B build -S . >/dev/null
cmake --build build -j >/dev/null
(cd build && ctest --output-on-failure -j)

if [[ "$SKIP_TSAN" == "1" ]]; then
  echo "== TSan pass skipped =="
else
  echo "== TSan: parallel-layer + online-serving tests under ThreadSanitizer =="
  cmake -B build-tsan -S . -DRRRE_SANITIZE=thread >/dev/null
  cmake --build build-tsan -j \
    --target test_threadpool test_parallel_determinism test_tensor \
             test_batcher test_served >/dev/null
  (cd build-tsan && ctest --output-on-failure \
    -R "ThreadPool|ParallelDeterminism|MicroBatcher|ServedTest" )
fi

if [[ "$SKIP_ASAN" == "1" ]]; then
  echo "== ASan pass skipped =="
else
  echo "== ASan: checkpoint/serve/resume tests under AddressSanitizer =="
  cmake -B build-asan -S . -DRRRE_SANITIZE=address >/dev/null
  cmake --build build-asan -j \
    --target test_tensor test_serving test_extensions >/dev/null
  (cd build-asan && ctest --output-on-failure \
    -R "Serialize|Serving|TrainerPersistence" )
fi

echo "== all checks passed =="
