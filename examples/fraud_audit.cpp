// Marketplace fraud audit: run the complementary detectors of Sec. II-B on
// the same labeled corpus and compare what each catches. Demonstrates the
// reliability-predictor API on ICWSM13 (behavioral), SpEagle+ (graph),
// REV2 (rating consistency), and RRRE (joint neural).
//
//   ./build/examples/fraud_audit [--scale=0.15] [--dataset=musics]

#include <algorithm>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "baselines/icwsm13.h"
#include "baselines/rev2.h"
#include "baselines/rrre_adapter.h"
#include "baselines/speagle.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/config.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  flags.AddDouble("scale", 0.15, "corpus size multiplier");
  flags.AddString("dataset", "musics", "dataset profile");
  flags.AddInt("epochs", 6, "RRRE training epochs");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  common::Rng rng(23);
  auto profile =
      data::ProfileByName(flags.GetString("dataset"), flags.GetDouble("scale"));
  RRRE_CHECK_OK(profile.status());
  data::ReviewDataset corpus =
      data::GenerateSyntheticDataset(profile.value(), rng);
  auto [train, test] = corpus.Split(0.7, rng);
  std::vector<int> labels;
  for (const data::Review& r : test.reviews()) {
    labels.push_back(r.is_benign() ? 1 : 0);
  }
  std::printf("auditing %ld held-out reviews (%ld labeled fake)\n\n",
              static_cast<long>(test.size()),
              static_cast<long>(std::count(labels.begin(), labels.end(), 0)));

  struct Detector {
    std::string name;
    std::unique_ptr<baselines::ReliabilityPredictor> model;
  };
  std::vector<Detector> detectors;
  detectors.push_back({"icwsm13", std::make_unique<baselines::Icwsm13>()});
  detectors.push_back({"speagle+", std::make_unique<baselines::SpEaglePlus>()});
  detectors.push_back({"rev2", std::make_unique<baselines::Rev2>()});
  core::RrreConfig rrre_config;
  rrre_config.epochs = flags.GetInt("epochs");
  detectors.push_back(
      {"rrre", std::make_unique<baselines::RrreAdapter>(rrre_config)});

  std::printf("%-10s %8s %8s %10s %10s\n", "detector", "AUC", "AP", "NDCG@100",
              "prec@50");
  for (auto& d : detectors) {
    d.model->Fit(train);
    const auto scores = d.model->ScoreReviews(test);
    std::printf("%-10s %8.3f %8.3f %10.3f %10.3f\n", d.name.c_str(),
                eval::Auc(scores, labels),
                eval::AveragePrecision(scores, labels),
                eval::NdcgAtK(scores, labels, 100),
                eval::PrecisionAtK(scores, labels, 50));
  }
  std::printf(
      "\nHigher is better everywhere; scores rank benign reviews above "
      "fakes. NDCG@100 and precision@50 measure the clean head of the "
      "ranking — what a moderation queue would surface first.\n");
  return 0;
}
