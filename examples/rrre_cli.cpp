// Command-line front end for the library: train a model on a TSV corpus,
// save/load checkpoints, score reviews, and serve recommendations.
//
//   rrre_cli train --data=corpus.tsv --model=/tmp/m [--epochs=8]
//   rrre_cli score --model=/tmp/m --data=eval.tsv [--out=scores.tsv]
//   rrre_cli recommend --model=/tmp/m --user=17 [--topk=5]
//
// Corpora use the TSV schema written by examples/dataset_gen (or
// data::ReviewDataset::SaveTsv): a header row, then
// user<TAB>item<TAB>rating<TAB>label<TAB>timestamp<TAB>text.

#include <cstdio>
#include <memory>
#include <string>

#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "data/dataset.h"
#include "eval/metrics.h"
#include "obs/telemetry.h"

namespace {

using namespace rrre;  // NOLINT(build/namespaces)

core::RrreConfig ConfigFromFlags(const common::FlagParser& flags) {
  core::RrreConfig config;
  config.epochs = flags.GetInt("epochs");
  config.s_u = flags.GetInt("su");
  config.s_i = flags.GetInt("si");
  config.seed = static_cast<uint64_t>(flags.GetInt("seed"));
  return config;
}

int Train(const common::FlagParser& flags) {
  auto data = data::ReviewDataset::LoadTsv(flags.GetString("data"));
  if (!data.ok()) {
    std::fprintf(stderr, "cannot load --data: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  core::RrreTrainer trainer(ConfigFromFlags(flags));
  std::unique_ptr<obs::TelemetryWriter> telemetry;
  if (!flags.GetString("telemetry_out").empty()) {
    obs::TelemetryWriter::Options writer_options;
    writer_options.path = flags.GetString("telemetry_out");
    writer_options.include_timings = flags.GetBool("telemetry_timings");
    telemetry = std::make_unique<obs::TelemetryWriter>(writer_options);
    if (!telemetry->status().ok()) {
      std::fprintf(stderr, "cannot open --telemetry_out: %s\n",
                   telemetry->status().ToString().c_str());
      return 1;
    }
    core::RrreTrainer::TelemetryOptions topts;
    topts.writer = telemetry.get();
    topts.eval = &data.value();
    trainer.SetTelemetry(topts);
  }
  std::printf("training on %ld reviews...\n",
              static_cast<long>(data.value().size()));
  trainer.Fit(data.value(), [](const core::RrreTrainer::EpochStats& s) {
    std::printf("epoch %ld  loss %.3f  (%.1fs)\n",
                static_cast<long>(s.epoch), s.loss, s.seconds);
  });
  const std::string model = flags.GetString("model");
  RRRE_CHECK(!model.empty()) << "--model is required";
  const auto st = trainer.Save(model);
  if (!st.ok()) {
    std::fprintf(stderr, "save failed: %s\n", st.ToString().c_str());
    return 1;
  }
  std::printf("checkpoint written to %s.{model,vocab,train.tsv,meta,optimizer}\n",
              model.c_str());
  return 0;
}

int Score(const common::FlagParser& flags) {
  core::RrreTrainer trainer(ConfigFromFlags(flags));
  auto st = trainer.Load(flags.GetString("model"));
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load --model: %s\n", st.ToString().c_str());
    return 1;
  }
  auto data = data::ReviewDataset::LoadTsv(flags.GetString("data"));
  if (!data.ok()) {
    std::fprintf(stderr, "cannot load --data: %s\n",
                 data.status().ToString().c_str());
    return 1;
  }
  auto preds = trainer.PredictDatasetTransductive(data.value());

  std::vector<int> labels;
  std::vector<double> targets;
  for (const data::Review& r : data.value().reviews()) {
    labels.push_back(r.is_benign() ? 1 : 0);
    targets.push_back(r.rating);
  }
  auto inductive = trainer.PredictDataset(data.value());
  std::printf("%ld reviews scored: AUC=%.3f AP=%.3f bRMSE=%.3f\n",
              static_cast<long>(data.value().size()),
              eval::Auc(preds.reliabilities, labels),
              eval::AveragePrecision(preds.reliabilities, labels),
              eval::BiasedRmse(inductive.ratings, targets, labels));

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    std::vector<std::vector<std::string>> rows;
    rows.push_back({"user", "item", "pred_rating", "pred_reliability"});
    for (int64_t i = 0; i < data.value().size(); ++i) {
      const data::Review& r = data.value().review(i);
      rows.push_back({std::to_string(r.user), std::to_string(r.item),
                      std::to_string(inductive.ratings[static_cast<size_t>(i)]),
                      std::to_string(
                          preds.reliabilities[static_cast<size_t>(i)])});
    }
    RRRE_CHECK_OK(common::WriteTsv(out, rows));
    std::printf("per-review scores written to %s\n", out.c_str());
  }
  return 0;
}

int Recommend(const common::FlagParser& flags) {
  core::RrreTrainer trainer(ConfigFromFlags(flags));
  auto st = trainer.Load(flags.GetString("model"));
  if (!st.ok()) {
    std::fprintf(stderr, "cannot load --model: %s\n", st.ToString().c_str());
    return 1;
  }
  const int64_t user = flags.GetInt("user");
  if (user < 0 || user >= trainer.train_data().num_users()) {
    std::fprintf(stderr, "--user out of range [0, %ld)\n",
                 static_cast<long>(trainer.train_data().num_users()));
    return 1;
  }
  core::ReliableRecommender recommender(&trainer);
  const int64_t top_k = flags.GetInt("topk");
  auto recs = recommender.Recommend(user, top_k, 4 * top_k);
  std::printf("top-%ld for user %ld:\n", static_cast<long>(top_k),
              static_cast<long>(user));
  for (const auto& rec : recs) {
    std::printf("  item %-6ld rating %.2f  reliability %.2f\n",
                static_cast<long>(rec.item), rec.rating, rec.reliability);
    for (const auto& e : recommender.Explain(rec.item, 1, 3)) {
      std::printf("    because: \"%.70s\" (reliability %.2f)\n",
                  e.text.c_str(), e.reliability);
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  flags.AddString("data", "", "TSV corpus (train/score)");
  flags.AddString("model", "", "checkpoint prefix");
  flags.AddString("out", "", "score: per-review output TSV");
  flags.AddString("telemetry_out", "",
                  "train: per-epoch telemetry JSONL (loss, grad norm, eval)");
  flags.AddBool("telemetry_timings", true,
                "train: include wall-clock fields in --telemetry_out "
                "(false makes the file thread-count independent)");
  flags.AddInt("epochs", 8, "training epochs");
  flags.AddInt("su", 5, "user history slots");
  flags.AddInt("si", 7, "item history slots");
  flags.AddInt("seed", 42, "random seed");
  flags.AddInt("user", -1, "recommend: target user");
  flags.AddInt("topk", 5, "recommend: list size");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested() || flags.positional().empty()) {
    std::printf("usage: %s <train|score|recommend> [flags]\n%s", argv[0],
                flags.Usage(argv[0]).c_str());
    return flags.help_requested() ? 0 : 1;
  }
  const std::string command = flags.positional()[0];
  if (command == "train") return Train(flags);
  if (command == "score") return Score(flags);
  if (command == "recommend") return Recommend(flags);
  std::fprintf(stderr, "unknown command: %s\n", command.c_str());
  return 1;
}
