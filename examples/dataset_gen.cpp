// Dataset tool: generate a labeled synthetic review corpus (one of the five
// paper-shaped profiles) and write it as TSV for external tooling, plus a
// Table II-style summary.
//
//   ./build/examples/dataset_gen --dataset=yelpchi --scale=0.5 --out=/tmp/chi.tsv

#include <cstdio>

#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "data/profiles.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  flags.AddString("dataset", "yelpchi",
                  "profile: yelpchi|yelpnyc|yelpzip|musics|cds");
  flags.AddDouble("scale", 0.25, "corpus size multiplier");
  flags.AddInt("seed", 42, "generation seed");
  flags.AddString("out", "", "output TSV path (empty: summary only)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  auto profile =
      data::ProfileByName(flags.GetString("dataset"), flags.GetDouble("scale"));
  RRRE_CHECK_OK(profile.status());
  common::Rng rng(static_cast<uint64_t>(flags.GetInt("seed")));
  data::SyntheticWorld world;
  data::ReviewDataset ds =
      data::GenerateSyntheticDataset(profile.value(), rng, &world);

  const data::DatasetStats s = ds.Stats();
  std::printf("%s (scale %.2f, seed %ld)\n", profile.value().name.c_str(),
              flags.GetDouble("scale"), flags.GetInt("seed"));
  std::printf("  reviews            %ld\n", static_cast<long>(s.num_reviews));
  std::printf("  labeled fake       %.2f%%\n", 100.0 * s.fake_fraction);
  std::printf("  users / items      %ld / %ld\n",
              static_cast<long>(s.num_users), static_cast<long>(s.num_items));
  std::printf("  median |W^u|/|W^i| %ld / %ld\n",
              static_cast<long>(s.median_user_degree),
              static_cast<long>(s.median_item_degree));
  std::printf("  campaigns planted  %ld (%ld campaign reviews)\n",
              static_cast<long>(world.num_campaigns),
              static_cast<long>(world.num_fake_reviews));

  const std::string out = flags.GetString("out");
  if (!out.empty()) {
    RRRE_CHECK_OK(ds.SaveTsv(out));
    std::printf("  written to         %s\n", out.c_str());
    std::printf(
        "  format: header row then user<TAB>item<TAB>rating<TAB>label"
        "<TAB>timestamp<TAB>text\n");
  }
  return 0;
}
