// End-to-end reliable recommendation (Sec. III-B of the paper): train RRRE,
// recommend items for a user (top ratings re-ranked by reliability), and
// attach review-level explanations with fake praise filtered out.
//
//   ./build/examples/reliable_recommendation [--scale=0.1] [--user=0]

#include <cstdio>
#include <string>

#include "common/flags.h"
#include "common/logging.h"
#include "common/rng.h"
#include "core/recommender.h"
#include "core/trainer.h"
#include "data/profiles.h"
#include "data/synthetic.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  flags.AddDouble("scale", 0.1, "corpus size multiplier");
  flags.AddInt("user", -1, "user to serve (-1: pick an active one)");
  flags.AddInt("topk", 3, "recommendations to produce");
  flags.AddInt("epochs", 5, "training epochs");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }

  common::Rng rng(11);
  data::ReviewDataset corpus = data::GenerateSyntheticDataset(
      data::YelpChiProfile(flags.GetDouble("scale")), rng);
  auto [train, test] = corpus.Split(0.7, rng);

  core::RrreConfig config;
  config.epochs = flags.GetInt("epochs");
  core::RrreTrainer trainer(config);
  std::printf("training RRRE on %ld reviews...\n",
              static_cast<long>(train.size()));
  trainer.Fit(train);

  // Pick a user with a reasonable history if none was given.
  int64_t user = flags.GetInt("user");
  if (user < 0) {
    for (int64_t u = 0; u < train.num_users(); ++u) {
      if (train.ReviewsByUser(u).size() >= 3) {
        user = u;
        break;
      }
    }
  }
  RRRE_CHECK_GE(user, 0);

  core::ReliableRecommender recommender(&trainer);
  const int64_t top_k = flags.GetInt("topk");
  auto recs = recommender.Recommend(user, top_k, /*candidate_pool=*/4 * top_k);
  std::printf("\ntop-%ld recommendations for user %ld "
              "(rating-ranked candidates, reliability re-ranked):\n",
              static_cast<long>(top_k), static_cast<long>(user));
  for (const auto& rec : recs) {
    std::printf("  item %-5ld predicted rating %.2f, reliability %.2f\n",
                static_cast<long>(rec.item), rec.rating, rec.reliability);
    auto explanations = recommender.Explain(rec.item, /*top_k=*/1,
                                            /*candidate_pool=*/3);
    for (const auto& e : explanations) {
      std::printf("      \"%.70s\"\n"
                  "      — user %ld (predicted rating %.2f, reliability %.2f)\n",
                  e.text.c_str(), static_cast<long>(e.user), e.rating,
                  e.reliability);
    }
  }
  std::printf(
      "\nEach explanation is the item's most reliable well-rated review; "
      "reviews that rank high on rating but low on reliability are "
      "filtered (Table VIII's scenario).\n");
  return 0;
}
