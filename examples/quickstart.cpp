// Quickstart: generate a small labeled review corpus, train RRRE, and
// predict the rating and reliability of a held-out user-item pair.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "common/rng.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/profiles.h"
#include "data/synthetic.h"
#include "eval/metrics.h"

int main() {
  using namespace rrre;  // NOLINT(build/namespaces)

  // 1. A Yelp-shaped synthetic corpus with planted fraud campaigns.
  common::Rng rng(7);
  data::ReviewDataset corpus =
      data::GenerateSyntheticDataset(data::YelpChiProfile(0.1), rng);
  auto [train, test] = corpus.Split(0.7, rng);
  const data::DatasetStats stats = corpus.Stats();
  std::printf("corpus: %ld reviews, %.1f%% labeled fake, %ld users, %ld items\n",
              static_cast<long>(stats.num_reviews),
              100.0 * stats.fake_fraction, static_cast<long>(stats.num_users),
              static_cast<long>(stats.num_items));

  // 2. Train the joint rating + reliability model.
  core::RrreConfig config;  // Library defaults; see core/config.h.
  config.epochs = 5;
  core::RrreTrainer trainer(config);
  trainer.Fit(train, [](const core::RrreTrainer::EpochStats& s) {
    std::printf("epoch %ld  joint loss %.3f (reliability %.3f, rating %.3f)"
                "  [%.1fs]\n",
                static_cast<long>(s.epoch), s.loss, s.loss1, s.loss2,
                s.seconds);
  });

  // 3. Score the held-out reviews.
  auto inductive = trainer.PredictDataset(test);       // Rating prediction.
  auto transductive = trainer.PredictDatasetTransductive(test);  // Reliability.
  std::vector<double> targets;
  std::vector<int> labels;
  for (const data::Review& r : test.reviews()) {
    targets.push_back(r.rating);
    labels.push_back(r.is_benign() ? 1 : 0);
  }
  std::printf("\nheld-out bRMSE = %.3f (rating prediction, benign pairs)\n",
              eval::BiasedRmse(inductive.ratings, targets, labels));
  std::printf("held-out AUC   = %.3f (reliability ranking)\n",
              eval::Auc(transductive.reliabilities, labels));

  // 4. Inspect one pair.
  const data::Review& sample = test.review(0);
  auto one = trainer.PredictPairs({{sample.user, sample.item}});
  std::printf("\nuser %ld x item %ld: predicted rating %.2f (real %.0f), "
              "reliability %.2f (label %s)\n",
              static_cast<long>(sample.user), static_cast<long>(sample.item),
              one.ratings[0], sample.rating, one.reliabilities[0],
              sample.is_benign() ? "benign" : "fake");
  return 0;
}
