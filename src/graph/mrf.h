#ifndef RRRE_GRAPH_MRF_H_
#define RRRE_GRAPH_MRF_H_

#include <array>
#include <cstdint>
#include <vector>

namespace rrre::graph {

/// A pairwise Markov random field over binary-state nodes, solved with
/// sum-product loopy belief propagation. This is the inference substrate of
/// the SpEagle+ baseline, whose user-review-item network is a pairwise MRF
/// with states {benign, fake} (users/reviews) and {good, bad} (items).
class PairwiseMrf {
 public:
  using Belief = std::array<double, 2>;
  /// potential[sa][sb] is the compatibility of node a in state sa with node
  /// b in state sb. Must be non-negative with at least one positive entry.
  using Potential = std::array<std::array<double, 2>, 2>;

  /// Adds a node with the given (unnormalized, positive) prior over its two
  /// states; returns its id.
  int64_t AddNode(const Belief& prior);

  /// Adds an undirected edge with the given potential (oriented a -> b).
  void AddEdge(int64_t a, int64_t b, const Potential& potential);

  int64_t num_nodes() const { return static_cast<int64_t>(priors_.size()); }
  int64_t num_edges() const { return static_cast<int64_t>(edges_.size()); }

  struct BpResult {
    std::vector<Belief> beliefs;  ///< Normalized marginals per node.
    int64_t iterations = 0;       ///< Iterations actually run.
    bool converged = false;       ///< Max message delta fell below tol.
  };

  /// Runs synchronous sum-product loopy BP with damping. Deterministic.
  BpResult RunLoopyBp(int64_t max_iterations = 50, double damping = 0.3,
                      double tol = 1e-4) const;

  /// Exact marginals by brute-force enumeration (exponential in node count;
  /// only for testing small graphs).
  std::vector<Belief> ExactMarginals() const;

 private:
  struct Edge {
    int64_t a;
    int64_t b;
    Potential potential;
  };

  std::vector<Belief> priors_;
  std::vector<Edge> edges_;
  /// adjacency_[n] holds (edge index, true when n is endpoint `a`).
  std::vector<std::vector<std::pair<int64_t, bool>>> adjacency_;
};

}  // namespace rrre::graph

#endif  // RRRE_GRAPH_MRF_H_
