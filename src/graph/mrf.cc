#include "graph/mrf.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rrre::graph {

namespace {

void Normalize(PairwiseMrf::Belief& b) {
  const double s = b[0] + b[1];
  RRRE_CHECK_GT(s, 0.0);
  b[0] /= s;
  b[1] /= s;
}

}  // namespace

int64_t PairwiseMrf::AddNode(const Belief& prior) {
  RRRE_CHECK_GE(prior[0], 0.0);
  RRRE_CHECK_GE(prior[1], 0.0);
  RRRE_CHECK_GT(prior[0] + prior[1], 0.0);
  priors_.push_back(prior);
  Normalize(priors_.back());
  adjacency_.emplace_back();
  return num_nodes() - 1;
}

void PairwiseMrf::AddEdge(int64_t a, int64_t b, const Potential& potential) {
  RRRE_CHECK_GE(a, 0);
  RRRE_CHECK_LT(a, num_nodes());
  RRRE_CHECK_GE(b, 0);
  RRRE_CHECK_LT(b, num_nodes());
  RRRE_CHECK_NE(a, b);
  double total = 0.0;
  for (const auto& row : potential) {
    for (double v : row) {
      RRRE_CHECK_GE(v, 0.0);
      total += v;
    }
  }
  RRRE_CHECK_GT(total, 0.0);
  const int64_t idx = num_edges();
  edges_.push_back({a, b, potential});
  adjacency_[static_cast<size_t>(a)].emplace_back(idx, true);
  adjacency_[static_cast<size_t>(b)].emplace_back(idx, false);
}

PairwiseMrf::BpResult PairwiseMrf::RunLoopyBp(int64_t max_iterations,
                                              double damping,
                                              double tol) const {
  RRRE_CHECK_GE(damping, 0.0);
  RRRE_CHECK_LT(damping, 1.0);
  const int64_t e = num_edges();
  // Two directed messages per edge: msg_ab_[i] flows a->b, msg_ba_[i] b->a.
  std::vector<Belief> msg_ab(static_cast<size_t>(e), {0.5, 0.5});
  std::vector<Belief> msg_ba(static_cast<size_t>(e), {0.5, 0.5});

  // Incoming-product at a node excluding one edge, starting from the prior.
  auto product_excluding = [&](int64_t node, int64_t excluded_edge) {
    Belief p = priors_[static_cast<size_t>(node)];
    for (const auto& [edge_idx, is_a] : adjacency_[static_cast<size_t>(node)]) {
      if (edge_idx == excluded_edge) continue;
      const Belief& incoming = is_a ? msg_ba[static_cast<size_t>(edge_idx)]
                                    : msg_ab[static_cast<size_t>(edge_idx)];
      p[0] *= incoming[0];
      p[1] *= incoming[1];
    }
    Normalize(p);
    return p;
  };

  BpResult result;
  for (int64_t it = 0; it < max_iterations; ++it) {
    double max_delta = 0.0;
    std::vector<Belief> new_ab(msg_ab);
    std::vector<Belief> new_ba(msg_ba);
    for (int64_t i = 0; i < e; ++i) {
      const Edge& edge = edges_[static_cast<size_t>(i)];
      // a -> b: sum over a's states of potential * product of a's other
      // incoming messages.
      const Belief pa = product_excluding(edge.a, i);
      Belief ab = {0.0, 0.0};
      for (int sb = 0; sb < 2; ++sb) {
        for (int sa = 0; sa < 2; ++sa) {
          ab[static_cast<size_t>(sb)] +=
              pa[static_cast<size_t>(sa)] *
              edge.potential[static_cast<size_t>(sa)][static_cast<size_t>(sb)];
        }
      }
      Normalize(ab);
      const Belief pb = product_excluding(edge.b, i);
      Belief ba = {0.0, 0.0};
      for (int sa = 0; sa < 2; ++sa) {
        for (int sb = 0; sb < 2; ++sb) {
          ba[static_cast<size_t>(sa)] +=
              pb[static_cast<size_t>(sb)] *
              edge.potential[static_cast<size_t>(sa)][static_cast<size_t>(sb)];
        }
      }
      Normalize(ba);
      for (int s = 0; s < 2; ++s) {
        const size_t si = static_cast<size_t>(s);
        new_ab[static_cast<size_t>(i)][si] =
            damping * msg_ab[static_cast<size_t>(i)][si] + (1 - damping) * ab[si];
        new_ba[static_cast<size_t>(i)][si] =
            damping * msg_ba[static_cast<size_t>(i)][si] + (1 - damping) * ba[si];
        max_delta = std::max(
            max_delta,
            std::abs(new_ab[static_cast<size_t>(i)][si] -
                     msg_ab[static_cast<size_t>(i)][si]));
        max_delta = std::max(
            max_delta,
            std::abs(new_ba[static_cast<size_t>(i)][si] -
                     msg_ba[static_cast<size_t>(i)][si]));
      }
    }
    msg_ab.swap(new_ab);
    msg_ba.swap(new_ba);
    result.iterations = it + 1;
    if (max_delta < tol) {
      result.converged = true;
      break;
    }
  }

  result.beliefs.resize(static_cast<size_t>(num_nodes()));
  for (int64_t n = 0; n < num_nodes(); ++n) {
    result.beliefs[static_cast<size_t>(n)] = product_excluding(n, -1);
  }
  return result;
}

std::vector<PairwiseMrf::Belief> PairwiseMrf::ExactMarginals() const {
  const int64_t n = num_nodes();
  RRRE_CHECK_LE(n, 20) << "exact marginals are exponential; test-only";
  std::vector<Belief> marginals(static_cast<size_t>(n), {0.0, 0.0});
  const uint64_t configs = uint64_t{1} << n;
  for (uint64_t cfg = 0; cfg < configs; ++cfg) {
    double weight = 1.0;
    for (int64_t v = 0; v < n; ++v) {
      weight *= priors_[static_cast<size_t>(v)][(cfg >> v) & 1u];
    }
    for (const Edge& edge : edges_) {
      weight *= edge.potential[(cfg >> edge.a) & 1u][(cfg >> edge.b) & 1u];
    }
    for (int64_t v = 0; v < n; ++v) {
      marginals[static_cast<size_t>(v)][(cfg >> v) & 1u] += weight;
    }
  }
  for (auto& m : marginals) Normalize(m);
  return marginals;
}

}  // namespace rrre::graph
