#ifndef RRRE_EVAL_METRICS_H_
#define RRRE_EVAL_METRICS_H_

#include <cstdint>
#include <vector>

namespace rrre::eval {

/// Root mean square error over all pairs (Eq. 16).
double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets);

/// Biased RMSE (Eq. 17): the error of each pair is weighted by its
/// ground-truth reliability label and normalized by the number of benign
/// pairs, so fake reviews do not count.
/// labels[i] is 1 for benign, 0 for fake.
double BiasedRmse(const std::vector<double>& predictions,
                  const std::vector<double>& targets,
                  const std::vector<int>& labels);

/// Area under the ROC curve of ranking benign (label 1) above fake
/// (label 0). Ties in score contribute 1/2, the Mann-Whitney convention.
/// Returns 0.5 when one class is empty.
double Auc(const std::vector<double>& scores, const std::vector<int>& labels);

/// Average precision of retrieving benign reviews when sorted by descending
/// score. Deterministic tie-break by original index. Returns 0 when there
/// are no positives.
double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels);

/// NDCG@k per Eqs. (18)-(19): DCG@k = sum_{i=1..k} (2^{l_i}-1)/log2(i+1)
/// over the top-k by descending score; IDCG@k assumes all l_i = 1 (the
/// paper's ideal ranking). k is clamped to the list size.
double NdcgAtK(const std::vector<double>& scores,
               const std::vector<int>& labels, int64_t k);

/// Fraction of benign reviews among the top-k by descending score.
double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, int64_t k);

}  // namespace rrre::eval

#endif  // RRRE_EVAL_METRICS_H_
