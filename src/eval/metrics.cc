#include "eval/metrics.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rrre::eval {

namespace {

/// Indices sorted by descending score; ties broken by ascending index so all
/// metrics are deterministic.
std::vector<size_t> RankDescending(const std::vector<double>& scores) {
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] > scores[b];
  });
  return order;
}

void CheckAligned(size_t a, size_t b) {
  RRRE_CHECK_EQ(a, b) << "metric inputs must be aligned";
}

}  // namespace

double Rmse(const std::vector<double>& predictions,
            const std::vector<double>& targets) {
  CheckAligned(predictions.size(), targets.size());
  RRRE_CHECK(!predictions.empty());
  double acc = 0.0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    const double d = predictions[i] - targets[i];
    acc += d * d;
  }
  return std::sqrt(acc / static_cast<double>(predictions.size()));
}

double BiasedRmse(const std::vector<double>& predictions,
                  const std::vector<double>& targets,
                  const std::vector<int>& labels) {
  CheckAligned(predictions.size(), targets.size());
  CheckAligned(predictions.size(), labels.size());
  double acc = 0.0;
  int64_t benign = 0;
  for (size_t i = 0; i < predictions.size(); ++i) {
    if (labels[i] == 0) continue;
    const double d = predictions[i] - targets[i];
    acc += d * d;
    ++benign;
  }
  RRRE_CHECK_GT(benign, 0) << "bRMSE needs at least one benign pair";
  return std::sqrt(acc / static_cast<double>(benign));
}

double Auc(const std::vector<double>& scores, const std::vector<int>& labels) {
  CheckAligned(scores.size(), labels.size());
  // Rank-sum formulation with midranks for ties.
  std::vector<size_t> order(scores.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return scores[a] < scores[b];
  });
  std::vector<double> ranks(scores.size());
  size_t i = 0;
  while (i < order.size()) {
    size_t j = i;
    while (j + 1 < order.size() && scores[order[j + 1]] == scores[order[i]]) {
      ++j;
    }
    const double midrank = (static_cast<double>(i) + static_cast<double>(j)) / 2.0 + 1.0;
    for (size_t t = i; t <= j; ++t) ranks[order[t]] = midrank;
    i = j + 1;
  }
  double pos_rank_sum = 0.0;
  int64_t pos = 0;
  int64_t neg = 0;
  for (size_t t = 0; t < labels.size(); ++t) {
    if (labels[t] == 1) {
      pos_rank_sum += ranks[t];
      ++pos;
    } else {
      ++neg;
    }
  }
  if (pos == 0 || neg == 0) return 0.5;
  const double u = pos_rank_sum - static_cast<double>(pos) * (pos + 1) / 2.0;
  return u / (static_cast<double>(pos) * static_cast<double>(neg));
}

double AveragePrecision(const std::vector<double>& scores,
                        const std::vector<int>& labels) {
  CheckAligned(scores.size(), labels.size());
  const auto order = RankDescending(scores);
  double ap = 0.0;
  int64_t hits = 0;
  for (size_t rank = 0; rank < order.size(); ++rank) {
    if (labels[order[rank]] == 1) {
      ++hits;
      ap += static_cast<double>(hits) / static_cast<double>(rank + 1);
    }
  }
  if (hits == 0) return 0.0;
  return ap / static_cast<double>(hits);
}

double NdcgAtK(const std::vector<double>& scores,
               const std::vector<int>& labels, int64_t k) {
  CheckAligned(scores.size(), labels.size());
  RRRE_CHECK_GT(k, 0);
  k = std::min<int64_t>(k, static_cast<int64_t>(scores.size()));
  const auto order = RankDescending(scores);
  // The ideal ranking puts every positive first, so IDCG sums discounts over
  // min(k, #positives) positions — summing over all k would understate NDCG
  // whenever the list holds fewer than k positives.
  int64_t positives = 0;
  for (int label : labels) positives += label == 1 ? 1 : 0;
  const int64_t ideal = std::min<int64_t>(k, positives);
  if (ideal == 0) return 0.0;
  double dcg = 0.0;
  double idcg = 0.0;
  for (int64_t rank = 0; rank < k; ++rank) {
    const double discount =
        1.0 / std::log2(static_cast<double>(rank) + 2.0);
    // Binary labels: 2^l - 1 is l itself.
    dcg += static_cast<double>(labels[order[static_cast<size_t>(rank)]]) *
           discount;
    if (rank < ideal) idcg += discount;
  }
  return dcg / idcg;
}

double PrecisionAtK(const std::vector<double>& scores,
                    const std::vector<int>& labels, int64_t k) {
  CheckAligned(scores.size(), labels.size());
  RRRE_CHECK_GT(k, 0);
  k = std::min<int64_t>(k, static_cast<int64_t>(scores.size()));
  const auto order = RankDescending(scores);
  int64_t hits = 0;
  for (int64_t rank = 0; rank < k; ++rank) {
    hits += labels[order[static_cast<size_t>(rank)]] == 1 ? 1 : 0;
  }
  return static_cast<double>(hits) / static_cast<double>(k);
}

}  // namespace rrre::eval
