#ifndef RRRE_BASELINES_REV2_H_
#define RRRE_BASELINES_REV2_H_

#include <memory>
#include <vector>

#include "baselines/predictor.h"

namespace rrre::baselines {

/// REV2 (Kumar et al., WSDM 2018): the mutually recursive fixed point of
/// user Fairness, item Goodness, and rating Reliability,
///
///   F(u) = ( sum_{r in Out(u)} R(r) + gamma1 * mu_F ) / (|Out(u)| + gamma1)
///   G(p) = ( sum_{r in In(p)} R(r) * s(r) + gamma2 * mu_G ) / (|In(p)| + gamma2)
///   R(r) = ( F(u) + (1 - |s(r) - G(p)| / 2) ) / 2
///
/// with ratings normalized to s(r) in [-1, 1] and Laplace-smoothed by the
/// Bayesian priors (the paper's cold-start treatment). Unsupervised; run on
/// the combined train+eval graph, scores are R of the eval reviews.
class Rev2 : public ReliabilityPredictor {
 public:
  struct Config {
    double gamma1 = 1.0;   ///< Fairness smoothing strength.
    double gamma2 = 1.0;   ///< Goodness smoothing strength.
    double mu_fairness = 0.5;
    double mu_goodness = 0.0;
    int64_t max_iterations = 100;
    double tol = 1e-6;
  };

  Rev2();
  explicit Rev2(Config config);

  void Fit(const data::ReviewDataset& train) override;
  std::vector<double> ScoreReviews(const data::ReviewDataset& eval) override;

  /// Fixed-point state over an arbitrary corpus; exposed for tests/benches.
  struct Solution {
    std::vector<double> fairness;     ///< Per user, in [0, 1].
    std::vector<double> goodness;     ///< Per item, in [-1, 1].
    std::vector<double> reliability;  ///< Per review, in [0, 1].
    int64_t iterations = 0;
    bool converged = false;
  };
  Solution Solve(const data::ReviewDataset& corpus) const;

 private:
  Config config_;
  std::unique_ptr<data::ReviewDataset> train_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_REV2_H_
