#include "baselines/logreg.h"

#include <cmath>

#include "common/logging.h"

namespace rrre::baselines {

LogisticRegression::LogisticRegression() : LogisticRegression(Config()) {}

LogisticRegression::LogisticRegression(Config config) : config_(config) {}

namespace {

double Sigmoid(double x) {
  if (x >= 0.0) return 1.0 / (1.0 + std::exp(-x));
  const double z = std::exp(x);
  return z / (1.0 + z);
}

}  // namespace

void LogisticRegression::Fit(const std::vector<std::vector<double>>& features,
                             const std::vector<int>& labels) {
  RRRE_CHECK(!features.empty());
  RRRE_CHECK_EQ(features.size(), labels.size());
  const size_t d = features[0].size();
  const size_t n = features.size();

  // Standardization statistics.
  mean_.assign(d, 0.0);
  stddev_.assign(d, 0.0);
  for (const auto& row : features) {
    RRRE_CHECK_EQ(row.size(), d);
    for (size_t j = 0; j < d; ++j) mean_[j] += row[j];
  }
  for (size_t j = 0; j < d; ++j) mean_[j] /= static_cast<double>(n);
  for (const auto& row : features) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = row[j] - mean_[j];
      stddev_[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    stddev_[j] = std::sqrt(stddev_[j] / static_cast<double>(n));
    if (stddev_[j] < 1e-12) stddev_[j] = 1.0;
  }

  std::vector<std::vector<double>> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = Standardize(features[i]);

  weights_.assign(d, 0.0);
  bias_ = 0.0;
  common::Rng rng(config_.seed);
  std::vector<size_t> order(n);
  for (size_t i = 0; i < n; ++i) order[i] = i;

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    const double lr = config_.lr / (1.0 + 0.02 * static_cast<double>(epoch));
    for (size_t i : order) {
      double z = bias_;
      for (size_t j = 0; j < d; ++j) z += weights_[j] * x[i][j];
      const double err = static_cast<double>(labels[i]) - Sigmoid(z);
      bias_ += lr * err;
      for (size_t j = 0; j < d; ++j) {
        weights_[j] += lr * (err * x[i][j] - config_.reg * weights_[j]);
      }
    }
  }
}

std::vector<double> LogisticRegression::Standardize(
    const std::vector<double>& row) const {
  std::vector<double> out(row.size());
  for (size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

std::vector<double> LogisticRegression::PredictProba(
    const std::vector<std::vector<double>>& features) const {
  RRRE_CHECK(fitted()) << "call Fit() first";
  std::vector<double> out;
  out.reserve(features.size());
  for (const auto& row : features) {
    RRRE_CHECK_EQ(row.size(), weights_.size());
    const auto x = Standardize(row);
    double z = bias_;
    for (size_t j = 0; j < x.size(); ++j) z += weights_[j] * x[j];
    out.push_back(Sigmoid(z));
  }
  return out;
}

}  // namespace rrre::baselines
