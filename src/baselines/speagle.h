#ifndef RRRE_BASELINES_SPEAGLE_H_
#define RRRE_BASELINES_SPEAGLE_H_

#include <memory>
#include <vector>

#include "baselines/logreg.h"
#include "baselines/predictor.h"

namespace rrre::baselines {

/// SpEagle+ (Rayana & Akoglu, KDD 2015): loopy belief propagation over the
/// user-review-item network with metadata-derived node priors; the "+"
/// variant injects supervision from labeled training reviews. Users and
/// reviews carry {benign, fake} states, items {good, bad}; compatibilities
/// follow FraudEagle's sentiment logic (a fake positive review promotes a
/// bad item; a fake negative review demotes a good one).
class SpEaglePlus : public ReliabilityPredictor {
 public:
  struct Config {
    /// Compatibility leak on user-review edges. Kept loose: one user mixes
    /// benign and fake reviews more often than an item mixes sentiments.
    double user_epsilon = 0.35;
    /// Compatibility leak on review-item edges (the FraudEagle sentiment
    /// coupling) — the stronger of the two signals.
    double item_epsilon = 0.25;
    double prior_clamp = 0.99;  ///< Max confidence of any node prior.
    int64_t bp_iterations = 20;
    double bp_damping = 0.3;
    /// true: SpEagle+ — review priors from a classifier trained on the
    /// labeled training reviews. false: plain SpEagle — unsupervised priors
    /// from how anomalous each review's behavioral features are relative to
    /// the corpus (no labels used anywhere).
    bool supervised_priors = true;
    LogisticRegression::Config prior_model;
  };

  SpEaglePlus();
  explicit SpEaglePlus(Config config);

  void Fit(const data::ReviewDataset& train) override;
  std::vector<double> ScoreReviews(const data::ReviewDataset& eval) override;

 private:
  Config config_;
  std::unique_ptr<data::ReviewDataset> train_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_SPEAGLE_H_
