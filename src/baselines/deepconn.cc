#include "baselines/deepconn.h"

#include "common/logging.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace rrre::baselines {

using tensor::Tensor;

struct DeepCoNN::Net : public nn::Module {
  Net(const Config& config, int64_t vocab_size, common::Rng& rng)
      : words(vocab_size, config.common.word_dim, rng, 0.1f),
        user_cnn(&words, config.doc_tokens, config.window, config.filters,
                 rng),
        item_cnn(&words, config.doc_tokens, config.window, config.filters,
                 rng),
        user_proj(config.filters, config.latent_dim, rng),
        item_proj(config.filters, config.latent_dim, rng),
        fm(2 * config.latent_dim, config.fm_factors, rng) {
    RegisterModule("words", &words);
    RegisterModule("user_cnn", &user_cnn);
    RegisterModule("item_cnn", &item_cnn);
    RegisterModule("user_proj", &user_proj);
    RegisterModule("item_proj", &item_proj);
    RegisterModule("fm", &fm);
  }

  nn::Embedding words;
  TextCnnEncoder user_cnn;
  TextCnnEncoder item_cnn;
  nn::Linear user_proj;
  nn::Linear item_proj;
  nn::FactorizationMachine fm;
};

DeepCoNN::DeepCoNN() : DeepCoNN(Config()) {}

DeepCoNN::DeepCoNN(Config config)
    : NeuralRatingBaseline(config.common), config_(config) {}

DeepCoNN::~DeepCoNN() = default;

void DeepCoNN::BuildModel(int64_t /*num_users*/, int64_t /*num_items*/,
                          int64_t vocab_size, common::Rng& rng) {
  net_ = std::make_unique<Net>(config_, vocab_size, rng);
  review_tokens_.clear();
  review_tokens_.reserve(static_cast<size_t>(train_data().size()));
  for (const data::Review& r : train_data().reviews()) {
    auto ids = vocab().Encode(text::Tokenize(r.text));
    // A single review never needs more than the whole document budget.
    if (static_cast<int64_t>(ids.size()) > config_.doc_tokens) {
      ids.resize(static_cast<size_t>(config_.doc_tokens));
    }
    review_tokens_.push_back(std::move(ids));
  }
}

nn::Module* DeepCoNN::module() { return net_.get(); }

nn::Embedding* DeepCoNN::word_embedding() { return &net_->words; }

void DeepCoNN::AppendDoc(const std::vector<int64_t>& history, int64_t exclude,
                         std::vector<int64_t>& out) const {
  const size_t start = out.size();
  // Newest reviews first so truncation keeps the most recent text.
  for (auto it = history.rbegin(); it != history.rend(); ++it) {
    if (*it == exclude) continue;
    const auto& toks = review_tokens_[static_cast<size_t>(*it)];
    for (int64_t id : toks) {
      if (out.size() - start >= static_cast<size_t>(config_.doc_tokens)) break;
      out.push_back(id);
    }
    if (out.size() - start >= static_cast<size_t>(config_.doc_tokens)) break;
  }
  out.resize(start + static_cast<size_t>(config_.doc_tokens),
             text::Vocabulary::kPadId);
}

Tensor DeepCoNN::ForwardRating(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const std::vector<int64_t>& exclude, bool /*training*/,
    common::Rng& /*rng*/) {
  const int64_t b = static_cast<int64_t>(pairs.size());
  std::vector<int64_t> user_docs;
  std::vector<int64_t> item_docs;
  user_docs.reserve(static_cast<size_t>(b * config_.doc_tokens));
  item_docs.reserve(static_cast<size_t>(b * config_.doc_tokens));
  for (int64_t e = 0; e < b; ++e) {
    const auto [user, item] = pairs[static_cast<size_t>(e)];
    AppendDoc(train_data().ReviewsByUser(user), exclude[static_cast<size_t>(e)],
              user_docs);
    AppendDoc(train_data().ReviewsByItem(item), exclude[static_cast<size_t>(e)],
              item_docs);
  }
  Tensor xu = net_->user_proj.Forward(net_->user_cnn.Encode(user_docs, b));
  Tensor yi = net_->item_proj.Forward(net_->item_cnn.Encode(item_docs, b));
  return net_->fm.Forward(tensor::ConcatCols({xu, yi}));
}

}  // namespace rrre::baselines
