#ifndef RRRE_BASELINES_DEEPCONN_H_
#define RRRE_BASELINES_DEEPCONN_H_

#include <memory>
#include <vector>

#include "baselines/neural_base.h"
#include "baselines/textcnn.h"
#include "nn/fm.h"
#include "nn/linear.h"

namespace rrre::baselines {

/// DeepCoNN (Zheng et al., WSDM 2017): the user's reviews are concatenated
/// into one document, the item's likewise; two parallel TextCNN towers embed
/// the documents, and a factorization machine couples the two latent
/// vectors into a rating.
class DeepCoNN : public NeuralRatingBaseline {
 public:
  struct Config {
    CommonConfig common;
    int64_t doc_tokens = 64;   ///< Tokens kept per user/item document.
    int64_t window = 3;        ///< Convolution window.
    int64_t filters = 16;      ///< CNN feature maps.
    int64_t latent_dim = 8;    ///< Tower output dim fed into the FM.
    int64_t fm_factors = 8;
  };

  DeepCoNN();
  explicit DeepCoNN(Config config);
  ~DeepCoNN() override;

 protected:
  void BuildModel(int64_t num_users, int64_t num_items, int64_t vocab_size,
                  common::Rng& rng) override;
  nn::Module* module() override;
  nn::Embedding* word_embedding() override;
  tensor::Tensor ForwardRating(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const std::vector<int64_t>& exclude, bool training,
      common::Rng& rng) override;

 private:
  struct Net;
  /// Concatenates the latest reviews of the history (excluding `exclude`)
  /// into a doc_tokens-length id row, newest first, pad-filled.
  void AppendDoc(const std::vector<int64_t>& history, int64_t exclude,
                 std::vector<int64_t>& out) const;

  Config config_;
  std::unique_ptr<Net> net_;
  /// Unpadded token ids per train review.
  std::vector<std::vector<int64_t>> review_tokens_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_DEEPCONN_H_
