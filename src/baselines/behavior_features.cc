#include "baselines/behavior_features.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>

#include "common/logging.h"
#include "text/tokenizer.h"

namespace rrre::baselines {

std::vector<double> BehaviorFeatures::ToVector() const {
  return {text_length,       rating_deviation,     rating_extremity,
          user_max_per_day,  user_mean_deviation,  user_extreme_fraction,
          user_review_count, user_self_similarity, item_burst,
          user_span};
}

namespace {

double Jaccard(const std::set<std::string>& a, const std::set<std::string>& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& w : a) inter += b.count(w);
  return static_cast<double>(inter) /
         static_cast<double>(a.size() + b.size() - inter);
}

}  // namespace

std::vector<BehaviorFeatures> ComputeBehaviorFeatures(
    const data::ReviewDataset& ds) {
  RRRE_CHECK(ds.indexed());
  const auto item_means = ds.ItemMeanRatings();

  // Tokenized word sets per review (for self-similarity).
  std::vector<std::set<std::string>> word_sets(static_cast<size_t>(ds.size()));
  for (int64_t i = 0; i < ds.size(); ++i) {
    const auto toks = text::Tokenize(ds.review(i).text);
    word_sets[static_cast<size_t>(i)] =
        std::set<std::string>(toks.begin(), toks.end());
  }

  // Per-user aggregates.
  struct UserAgg {
    double max_per_day = 0.0;
    double mean_deviation = 0.0;
    double extreme_fraction = 0.0;
    double count = 0.0;
    double span = 0.0;
  };
  std::vector<UserAgg> user_aggs(static_cast<size_t>(ds.num_users()));
  for (int64_t u = 0; u < ds.num_users(); ++u) {
    const auto& reviews = ds.ReviewsByUser(u);
    if (reviews.empty()) continue;
    UserAgg agg;
    std::map<int64_t, int64_t> per_day;
    double dev_sum = 0.0;
    int64_t extreme = 0;
    int64_t min_ts = ds.review(reviews.front()).timestamp;
    int64_t max_ts = min_ts;
    for (int64_t idx : reviews) {
      const data::Review& r = ds.review(idx);
      ++per_day[r.timestamp];
      dev_sum += std::abs(static_cast<double>(r.rating) -
                          item_means[static_cast<size_t>(r.item)]);
      extreme += (r.rating <= 1.0f || r.rating >= 5.0f) ? 1 : 0;
      min_ts = std::min(min_ts, r.timestamp);
      max_ts = std::max(max_ts, r.timestamp);
    }
    int64_t max_day = 0;
    for (const auto& [day, count] : per_day) {
      max_day = std::max(max_day, count);
    }
    const double n = static_cast<double>(reviews.size());
    agg.max_per_day = std::log1p(static_cast<double>(max_day));
    agg.mean_deviation = dev_sum / n;
    agg.extreme_fraction = static_cast<double>(extreme) / n;
    agg.count = std::log1p(n);
    agg.span = std::log1p(static_cast<double>(max_ts - min_ts));
    user_aggs[static_cast<size_t>(u)] = agg;
  }

  constexpr int64_t kBurstWindowDays = 3;
  constexpr size_t kMaxSimilarityComparisons = 8;

  std::vector<BehaviorFeatures> out(static_cast<size_t>(ds.size()));
  for (int64_t i = 0; i < ds.size(); ++i) {
    const data::Review& r = ds.review(i);
    BehaviorFeatures f;
    f.text_length =
        std::log1p(static_cast<double>(word_sets[static_cast<size_t>(i)].size()));
    f.rating_deviation = std::abs(static_cast<double>(r.rating) -
                                  item_means[static_cast<size_t>(r.item)]);
    f.rating_extremity = (r.rating <= 1.0f || r.rating >= 5.0f) ? 1.0 : 0.0;
    const UserAgg& agg = user_aggs[static_cast<size_t>(r.user)];
    f.user_max_per_day = agg.max_per_day;
    f.user_mean_deviation = agg.mean_deviation;
    f.user_extreme_fraction = agg.extreme_fraction;
    f.user_review_count = agg.count;
    f.user_span = agg.span;

    // Max Jaccard similarity with a bounded sample of the user's other
    // reviews (near-duplicate text is a classic spam tell).
    const auto& mine = ds.ReviewsByUser(r.user);
    double best = 0.0;
    size_t compared = 0;
    for (int64_t other : mine) {
      if (other == i) continue;
      best = std::max(best, Jaccard(word_sets[static_cast<size_t>(i)],
                                    word_sets[static_cast<size_t>(other)]));
      if (++compared >= kMaxSimilarityComparisons) break;
    }
    f.user_self_similarity = best;

    // Same-item reviews inside the burst window around this review.
    int64_t burst = 0;
    for (int64_t other : ds.ReviewsByItem(r.item)) {
      if (other == i) continue;
      if (std::abs(ds.review(other).timestamp - r.timestamp) <=
          kBurstWindowDays) {
        ++burst;
      }
    }
    f.item_burst = std::log1p(static_cast<double>(burst));
    out[static_cast<size_t>(i)] = f;
  }
  return out;
}

}  // namespace rrre::baselines
