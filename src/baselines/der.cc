#include "baselines/der.h"

#include <algorithm>

#include "common/logging.h"
#include "data/sampling.h"
#include "nn/attention.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"

namespace rrre::baselines {

using tensor::Tensor;

struct Der::Net : public nn::Module {
  Net(const Config& config, int64_t num_users, int64_t num_items,
      int64_t vocab_size, common::Rng& rng)
      : words(vocab_size, config.common.word_dim, rng, 0.1f),
        user_ids(num_users, config.id_dim, rng, 0.1f),
        item_ids(num_items, config.id_dim, rng, 0.1f),
        user_cnn(&words, config.max_tokens, config.window, config.filters,
                 rng),
        item_cnn(&words, config.max_tokens, config.window, config.filters,
                 rng),
        gru(config.filters, config.hidden, rng),
        user_map(config.hidden, config.id_dim, rng, /*use_bias=*/false),
        item_map(config.filters, config.id_dim, rng, /*use_bias=*/false),
        fm(2 * config.id_dim, config.fm_factors, rng) {
    RegisterModule("words", &words);
    RegisterModule("user_ids", &user_ids);
    RegisterModule("item_ids", &item_ids);
    RegisterModule("user_cnn", &user_cnn);
    RegisterModule("item_cnn", &item_cnn);
    RegisterModule("gru", &gru);
    RegisterModule("user_map", &user_map);
    RegisterModule("item_map", &item_map);
    RegisterModule("fm", &fm);
  }

  nn::Embedding words;
  nn::Embedding user_ids;
  nn::Embedding item_ids;
  TextCnnEncoder user_cnn;
  TextCnnEncoder item_cnn;
  nn::GruCell gru;
  nn::Linear user_map;
  nn::Linear item_map;
  nn::FactorizationMachine fm;
};

Der::Der() : Der(Config()) {}

Der::Der(Config config)
    : NeuralRatingBaseline(config.common), config_(config) {}

Der::~Der() = default;

void Der::BuildModel(int64_t num_users, int64_t num_items, int64_t vocab_size,
                     common::Rng& rng) {
  net_ = std::make_unique<Net>(config_, num_users, num_items, vocab_size, rng);
  token_cache_.clear();
  token_cache_.reserve(
      static_cast<size_t>(train_data().size() * config_.max_tokens));
  for (const data::Review& r : train_data().reviews()) {
    const auto ids =
        vocab().EncodePadded(text::Tokenize(r.text), config_.max_tokens);
    token_cache_.insert(token_cache_.end(), ids.begin(), ids.end());
  }
}

nn::Module* Der::module() { return net_.get(); }

nn::Embedding* Der::word_embedding() { return &net_->words; }

Tensor Der::ForwardRating(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const std::vector<int64_t>& exclude, bool /*training*/, common::Rng& rng) {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const int64_t b = static_cast<int64_t>(pairs.size());
  const int64_t t = config_.max_tokens;

  auto append_tokens = [&](int64_t review_idx, std::vector<int64_t>& out) {
    if (review_idx < 0) {
      out.insert(out.end(), static_cast<size_t>(t), text::Vocabulary::kPadId);
    } else {
      const auto begin = token_cache_.begin() + review_idx * t;
      out.insert(out.end(), begin, begin + t);
    }
  };

  // User sequences: left-padded so absent slots precede the real reviews and
  // the GRU's final state reflects the most recent one.
  std::vector<int64_t> user_tokens;
  std::vector<int64_t> item_tokens;
  std::vector<float> item_mask;
  user_tokens.reserve(static_cast<size_t>(b * config_.s_u * t));
  item_tokens.reserve(static_cast<size_t>(b * config_.s_i * t));
  item_mask.reserve(static_cast<size_t>(b * config_.s_i));
  for (int64_t e = 0; e < b; ++e) {
    const auto [user, item] = pairs[static_cast<size_t>(e)];
    auto uh = data::SampleHistory(train_data().ReviewsByUser(user),
                                  config_.s_u, data::SamplingStrategy::kLatest,
                                  rng, exclude[static_cast<size_t>(e)]);
    // Move the -1 tail to the front, preserving temporal order of the rest.
    std::stable_partition(uh.begin(), uh.end(),
                          [](int64_t v) { return v < 0; });
    for (int64_t idx : uh) append_tokens(idx, user_tokens);

    auto ih = data::SampleHistory(train_data().ReviewsByItem(item),
                                  config_.s_i, data::SamplingStrategy::kLatest,
                                  rng, exclude[static_cast<size_t>(e)]);
    for (int64_t idx : ih) {
      append_tokens(idx, item_tokens);
      item_mask.push_back(idx < 0 ? nn::FraudAttention::kMaskedScore : 0.0f);
    }
  }

  // User tower: encode the user histories in step-major order (all examples'
  // step-s reviews in one batch), then run the GRU across the s_u steps.
  std::vector<Tensor> steps;
  steps.reserve(static_cast<size_t>(config_.s_u));
  for (int64_t s = 0; s < config_.s_u; ++s) {
    std::vector<int64_t> step_tokens;
    step_tokens.reserve(static_cast<size_t>(b * t));
    for (int64_t e = 0; e < b; ++e) {
      const auto begin =
          user_tokens.begin() + (e * config_.s_u + s) * t;
      step_tokens.insert(step_tokens.end(), begin, begin + t);
    }
    steps.push_back(net_->user_cnn.Encode(step_tokens, b));
  }
  Tensor xu = net_->gru.Encode(steps);  // [b, hidden]

  // Item tower: masked mean pooling over review embeddings.
  Tensor rev_i = net_->item_cnn.Encode(item_tokens, b * config_.s_i);
  Tensor mask_i = Tensor::FromVector({b, config_.s_i}, item_mask);
  Tensor weights = Softmax(mask_i);  // Uniform over live slots.
  Tensor yi = WeightedPool(rev_i, weights);  // [b, filters]

  Tensor pu = Add(net_->user_ids.Forward([&] {
                    std::vector<int64_t> ids;
                    for (const auto& p : pairs) ids.push_back(p.first);
                    return ids;
                  }()),
                  net_->user_map.Forward(xu));
  Tensor qi = Add(net_->item_ids.Forward([&] {
                    std::vector<int64_t> ids;
                    for (const auto& p : pairs) ids.push_back(p.second);
                    return ids;
                  }()),
                  net_->item_map.Forward(yi));
  return net_->fm.Forward(ConcatCols({pu, qi}));
}

}  // namespace rrre::baselines
