#ifndef RRRE_BASELINES_ICWSM13_H_
#define RRRE_BASELINES_ICWSM13_H_

#include <memory>
#include <vector>

#include "baselines/logreg.h"
#include "baselines/predictor.h"

namespace rrre::baselines {

/// ICWSM13 (Mukherjee et al., "What Yelp Fake Review Filter Might Be
/// Doing"): a supervised classifier over behavioral + metadata features of
/// each review and its writer. Scores eval reviews within the combined
/// train+eval corpus so user footprints include all visible metadata;
/// labels come from the training half only.
class Icwsm13 : public ReliabilityPredictor {
 public:
  struct Config {
    LogisticRegression::Config logreg;
  };

  Icwsm13();
  explicit Icwsm13(Config config);

  void Fit(const data::ReviewDataset& train) override;
  std::vector<double> ScoreReviews(const data::ReviewDataset& eval) override;

 private:
  Config config_;
  std::unique_ptr<data::ReviewDataset> train_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_ICWSM13_H_
