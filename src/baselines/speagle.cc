#include "baselines/speagle.h"

#include <algorithm>

#include "baselines/behavior_features.h"
#include "common/logging.h"
#include "graph/mrf.h"

namespace rrre::baselines {

using graph::PairwiseMrf;

namespace {

/// Unsupervised anomaly prior: mean empirical upper-tail probability over
/// the suspicion-oriented features (higher value = more anomalous), mapped
/// to P(benign) = 1 - suspicion. Stands in for SpEagle's KDE priors.
std::vector<double> UnsupervisedBenignPriors(
    const std::vector<BehaviorFeatures>& features) {
  const size_t n = features.size();
  // Features where a high value indicates spam-like behavior.
  const std::vector<std::vector<double>> columns = [&] {
    std::vector<std::vector<double>> cols(5, std::vector<double>(n));
    for (size_t i = 0; i < n; ++i) {
      cols[0][i] = features[i].rating_deviation;
      cols[1][i] = features[i].rating_extremity;
      cols[2][i] = features[i].user_max_per_day;
      cols[3][i] = features[i].user_self_similarity;
      cols[4][i] = features[i].item_burst;
    }
    return cols;
  }();

  std::vector<double> suspicion(n, 0.0);
  for (const auto& col : columns) {
    // Empirical CDF via ranks (midrank for ties).
    std::vector<size_t> order(n);
    for (size_t i = 0; i < n; ++i) order[i] = i;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return col[a] < col[b]; });
    std::vector<double> cdf(n);
    size_t i = 0;
    while (i < n) {
      size_t j = i;
      while (j + 1 < n && col[order[j + 1]] == col[order[i]]) ++j;
      const double midrank = (static_cast<double>(i + j) / 2.0 + 1.0) /
                             static_cast<double>(n);
      for (size_t t = i; t <= j; ++t) cdf[order[t]] = midrank;
      i = j + 1;
    }
    for (size_t r = 0; r < n; ++r) {
      suspicion[r] += cdf[r] / static_cast<double>(columns.size());
    }
  }
  std::vector<double> priors(n);
  for (size_t r = 0; r < n; ++r) priors[r] = 1.0 - suspicion[r];
  return priors;
}

}  // namespace

SpEaglePlus::SpEaglePlus() : SpEaglePlus(Config()) {}

SpEaglePlus::SpEaglePlus(Config config) : config_(config) {
  RRRE_CHECK_GT(config_.user_epsilon, 0.0);
  RRRE_CHECK_LT(config_.user_epsilon, 0.5);
  RRRE_CHECK_GT(config_.item_epsilon, 0.0);
  RRRE_CHECK_LT(config_.item_epsilon, 0.5);
}

void SpEaglePlus::Fit(const data::ReviewDataset& train) {
  RRRE_CHECK(train.indexed());
  train_ = std::make_unique<data::ReviewDataset>(train);
}

std::vector<double> SpEaglePlus::ScoreReviews(
    const data::ReviewDataset& eval) {
  RRRE_CHECK(train_ != nullptr) << "call Fit() first";
  const data::ReviewDataset combined =
      data::ReviewDataset::Merge(*train_, eval);

  const auto features = ComputeBehaviorFeatures(combined);
  std::vector<double> benign_priors;
  if (config_.supervised_priors) {
    // SpEagle+ : P(benign) from a classifier over behavioral features,
    // trained on the labeled training half.
    std::vector<std::vector<double>> train_x;
    std::vector<int> train_y;
    for (int64_t i = 0; i < train_->size(); ++i) {
      train_x.push_back(features[static_cast<size_t>(i)].ToVector());
      train_y.push_back(train_->review(i).is_benign() ? 1 : 0);
    }
    LogisticRegression prior_model(config_.prior_model);
    prior_model.Fit(train_x, train_y);
    std::vector<std::vector<double>> all_x;
    all_x.reserve(static_cast<size_t>(combined.size()));
    for (int64_t i = 0; i < combined.size(); ++i) {
      all_x.push_back(features[static_cast<size_t>(i)].ToVector());
    }
    benign_priors = prior_model.PredictProba(all_x);
  } else {
    // Plain SpEagle: unsupervised anomaly priors. Each feature's empirical
    // tail probability stands in for the original's KDE-based suspicion
    // score: a review whose features sit deep in the upper tails of the
    // rating-deviation / burstiness / extremity distributions gets a low
    // benign prior. No labels are consulted.
    benign_priors = UnsupervisedBenignPriors(features);
  }

  // Build the MRF. State convention: 0 = benign/good, 1 = fake/bad.
  const double clamp = config_.prior_clamp;
  auto clamped = [&](double p_state0) {
    const double p = std::clamp(p_state0, 1.0 - clamp, clamp);
    return PairwiseMrf::Belief{p, 1.0 - p};
  };

  PairwiseMrf mrf;
  std::vector<int64_t> user_nodes(static_cast<size_t>(combined.num_users()));
  for (int64_t u = 0; u < combined.num_users(); ++u) {
    user_nodes[static_cast<size_t>(u)] = mrf.AddNode({0.5, 0.5});
  }
  std::vector<int64_t> item_nodes(static_cast<size_t>(combined.num_items()));
  for (int64_t i = 0; i < combined.num_items(); ++i) {
    item_nodes[static_cast<size_t>(i)] = mrf.AddNode({0.5, 0.5});
  }
  std::vector<int64_t> review_nodes(static_cast<size_t>(combined.size()));
  for (int64_t r = 0; r < combined.size(); ++r) {
    double p_benign;
    if (r < train_->size()) {
      // Supervised prior from the known training label.
      p_benign = combined.review(r).is_benign() ? clamp : 1.0 - clamp;
    } else {
      p_benign = benign_priors[static_cast<size_t>(r)];
    }
    review_nodes[static_cast<size_t>(r)] = mrf.AddNode(clamped(p_benign));
  }

  const double ueps = config_.user_epsilon;
  const double ieps = config_.item_epsilon;
  const PairwiseMrf::Potential user_same = {{{1.0 - ueps, ueps},
                                             {ueps, 1.0 - ueps}}};
  const PairwiseMrf::Potential item_same = {{{1.0 - ieps, ieps},
                                             {ieps, 1.0 - ieps}}};
  const PairwiseMrf::Potential item_opposite = {{{ieps, 1.0 - ieps},
                                                 {1.0 - ieps, ieps}}};
  const PairwiseMrf::Potential uniform = {{{0.5, 0.5}, {0.5, 0.5}}};
  for (int64_t r = 0; r < combined.size(); ++r) {
    const data::Review& review = combined.review(r);
    // Benign users tend to write benign reviews (loose coupling).
    mrf.AddEdge(user_nodes[static_cast<size_t>(review.user)],
                review_nodes[static_cast<size_t>(r)], user_same);
    // Sentiment-dependent review-item compatibility: an honest positive
    // review implies a good item; a fake positive review promotes a bad one
    // (and symmetrically for negative reviews).
    if (review.rating >= 4.0f) {
      mrf.AddEdge(review_nodes[static_cast<size_t>(r)],
                  item_nodes[static_cast<size_t>(review.item)], item_same);
    } else if (review.rating <= 2.0f) {
      mrf.AddEdge(review_nodes[static_cast<size_t>(r)],
                  item_nodes[static_cast<size_t>(review.item)],
                  item_opposite);
    } else {
      mrf.AddEdge(review_nodes[static_cast<size_t>(r)],
                  item_nodes[static_cast<size_t>(review.item)], uniform);
    }
  }

  const auto result =
      mrf.RunLoopyBp(config_.bp_iterations, config_.bp_damping);

  std::vector<double> out;
  out.reserve(static_cast<size_t>(eval.size()));
  for (int64_t i = 0; i < eval.size(); ++i) {
    const int64_t node =
        review_nodes[static_cast<size_t>(train_->size() + i)];
    out.push_back(result.beliefs[static_cast<size_t>(node)][0]);
  }
  return out;
}

}  // namespace rrre::baselines
