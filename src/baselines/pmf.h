#ifndef RRRE_BASELINES_PMF_H_
#define RRRE_BASELINES_PMF_H_

#include <cstdint>
#include <vector>

#include "baselines/predictor.h"
#include "common/rng.h"

namespace rrre::baselines {

/// Probabilistic Matrix Factorization (Mnih & Salakhutdinov 2008) trained
/// with SGD: r_ui ~ mu + b_u + b_i + p_u . q_i with L2 regularization.
class Pmf : public RatingPredictor {
 public:
  struct Config {
    int64_t factors = 8;
    double lr = 0.01;
    double reg = 0.05;
    int64_t epochs = 30;
    uint64_t seed = 42;
  };

  Pmf();
  explicit Pmf(Config config);

  void Fit(const data::ReviewDataset& train) override;
  std::vector<double> PredictRatings(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) override;

 private:
  double Predict(int64_t user, int64_t item) const;

  Config config_;
  double global_mean_ = 3.0;
  std::vector<double> user_bias_;
  std::vector<double> item_bias_;
  std::vector<double> user_factors_;  ///< [num_users * factors]
  std::vector<double> item_factors_;  ///< [num_items * factors]
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_PMF_H_
