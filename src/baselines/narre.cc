#include "baselines/narre.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace rrre::baselines {

using tensor::Tensor;

struct Narre::Net : public nn::Module {
  Net(const Config& config, int64_t num_users, int64_t num_items,
      int64_t vocab_size, common::Rng& rng)
      : words(vocab_size, config.common.word_dim, rng, 0.1f),
        user_ids(num_users, config.id_dim, rng, 0.1f),
        item_ids(num_items, config.id_dim, rng, 0.1f),
        user_cnn(&words, config.max_tokens, config.window, config.filters,
                 rng),
        item_cnn(&words, config.max_tokens, config.window, config.filters,
                 rng),
        user_att(config.filters, config.id_dim, config.id_dim,
                 config.attention_dim, rng),
        item_att(config.filters, config.id_dim, config.id_dim,
                 config.attention_dim, rng),
        user_proj(config.filters, config.latent_dim, rng),
        item_proj(config.filters, config.latent_dim, rng),
        user_map(config.latent_dim, config.id_dim, rng, /*use_bias=*/false),
        item_map(config.latent_dim, config.id_dim, rng, /*use_bias=*/false),
        fm(2 * config.id_dim, config.fm_factors, rng) {
    RegisterModule("words", &words);
    RegisterModule("user_ids", &user_ids);
    RegisterModule("item_ids", &item_ids);
    RegisterModule("user_cnn", &user_cnn);
    RegisterModule("item_cnn", &item_cnn);
    RegisterModule("user_att", &user_att);
    RegisterModule("item_att", &item_att);
    RegisterModule("user_proj", &user_proj);
    RegisterModule("item_proj", &item_proj);
    RegisterModule("user_map", &user_map);
    RegisterModule("item_map", &item_map);
    RegisterModule("fm", &fm);
  }

  nn::Embedding words;
  nn::Embedding user_ids;
  nn::Embedding item_ids;
  TextCnnEncoder user_cnn;
  TextCnnEncoder item_cnn;
  nn::FraudAttention user_att;
  nn::FraudAttention item_att;
  nn::Linear user_proj;
  nn::Linear item_proj;
  nn::Linear user_map;
  nn::Linear item_map;
  nn::FactorizationMachine fm;
};

Narre::Narre() : Narre(Config()) {}

Narre::Narre(Config config)
    : NeuralRatingBaseline(config.common), config_(config) {}

Narre::~Narre() = default;

void Narre::BuildModel(int64_t num_users, int64_t num_items,
                       int64_t vocab_size, common::Rng& rng) {
  net_ = std::make_unique<Net>(config_, num_users, num_items, vocab_size, rng);
  // Reuse the RRRE feature pipeline for history sampling and token caching.
  core::RrreConfig fc;
  fc.max_tokens = config_.max_tokens;
  fc.s_u = config_.s_u;
  fc.s_i = config_.s_i;
  features_ = std::make_unique<core::FeatureBuilder>(fc, &train_data(),
                                                     &vocab());
}

nn::Module* Narre::module() { return net_.get(); }

nn::Embedding* Narre::word_embedding() { return &net_->words; }

Tensor Narre::ForwardRating(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const std::vector<int64_t>& exclude, bool /*training*/,
    common::Rng& rng) {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const auto batch = features_->Build(pairs, exclude, rng);
  const int64_t b = batch.batch_size;

  // UserNet.
  Tensor rev_u = net_->user_cnn.Encode(batch.user_hist_tokens,
                                       b * config_.s_u);
  Tensor mask_u = Tensor::FromVector({b, config_.s_u}, batch.user_hist_mask);
  Tensor alpha_u = net_->user_att.Forward(
      rev_u, net_->user_ids.Forward(batch.user_hist_users),
      net_->item_ids.Forward(batch.user_hist_items), config_.s_u, mask_u);
  Tensor xu = net_->user_proj.Forward(WeightedPool(rev_u, alpha_u));

  // ItemNet.
  Tensor rev_i = net_->item_cnn.Encode(batch.item_hist_tokens,
                                       b * config_.s_i);
  Tensor mask_i = Tensor::FromVector({b, config_.s_i}, batch.item_hist_mask);
  Tensor alpha_i = net_->item_att.Forward(
      rev_i, net_->user_ids.Forward(batch.item_hist_users),
      net_->item_ids.Forward(batch.item_hist_items), config_.s_i, mask_i);
  Tensor yi = net_->item_proj.Forward(WeightedPool(rev_i, alpha_i));

  // Rating head with auxiliary ID embeddings.
  Tensor pu = Add(net_->user_ids.Forward(batch.users),
                  net_->user_map.Forward(xu));
  Tensor qi = Add(net_->item_ids.Forward(batch.items),
                  net_->item_map.Forward(yi));
  return net_->fm.Forward(ConcatCols({pu, qi}));
}

}  // namespace rrre::baselines
