#ifndef RRRE_BASELINES_BEHAVIOR_FEATURES_H_
#define RRRE_BASELINES_BEHAVIOR_FEATURES_H_

#include <vector>

#include "data/dataset.h"

namespace rrre::baselines {

/// Per-review behavioral/metadata features in the spirit of Mukherjee et
/// al. (ICWSM 2013) — the signals a Yelp-filter-like detector reads:
/// review-level text statistics, rating deviation, and the writer's
/// behavioral footprint (burstiness, extremity, activity span). Also used
/// to form SpEagle+'s supervised review priors.
struct BehaviorFeatures {
  static constexpr int kNumFeatures = 10;

  double text_length = 0.0;          ///< log(1 + token count).
  double rating_deviation = 0.0;     ///< |r - item mean rating|.
  double rating_extremity = 0.0;     ///< 1 if rating is 1 or 5.
  double user_max_per_day = 0.0;     ///< log(1 + max reviews in one day).
  double user_mean_deviation = 0.0;  ///< Mean |r - item mean| over the user.
  double user_extreme_fraction = 0.0;///< Fraction of the user's 1/5 ratings.
  double user_review_count = 0.0;    ///< log(1 + #reviews by the user).
  double user_self_similarity = 0.0; ///< Max Jaccard overlap with own reviews.
  double item_burst = 0.0;           ///< log(1 + same-item reviews within a
                                     ///<   +-3-day window of this one).
  double user_span = 0.0;            ///< log(1 + active days of the user).

  std::vector<double> ToVector() const;
};

/// Computes features for every review of `ds`, aligned with ds.reviews().
/// All statistics are computed within `ds` itself (the detector sees the
/// metadata of the corpus it is scoring).
std::vector<BehaviorFeatures> ComputeBehaviorFeatures(
    const data::ReviewDataset& ds);

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_BEHAVIOR_FEATURES_H_
