#ifndef RRRE_BASELINES_NEURAL_BASE_H_
#define RRRE_BASELINES_NEURAL_BASE_H_

#include <memory>
#include <utility>
#include <vector>

#include "baselines/predictor.h"
#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "nn/optimizer.h"
#include "tensor/tape.h"
#include "tensor/tensor.h"
#include "text/vocab.h"

namespace rrre::baselines {

/// Shared trainer skeleton for the neural review-based rating baselines
/// (DeepCoNN, NARRE, DER): vocabulary construction, skip-gram word-vector
/// pretraining, mini-batch MSE training with Adam, and chunked prediction.
/// Subclasses provide the network: BuildModel() and ForwardRating().
///
/// Unlike RRRE, the baselines train on every review with the plain MSE of
/// Eq. (13) — fake reviews pollute their gradients, which is the effect
/// Table III measures.
class NeuralRatingBaseline : public RatingPredictor {
 public:
  struct CommonConfig {
    int64_t word_dim = 16;
    int64_t epochs = 5;
    int64_t batch_size = 32;
    double lr = 3e-3;
    double grad_clip = 5.0;
    uint64_t seed = 42;
    int64_t vocab_min_count = 2;
    bool pretrain_word_vectors = true;
    int64_t pretrain_epochs = 2;
    bool freeze_word_vectors = true;
    /// Drop the target review from its own input during training.
    bool exclude_target = true;
    /// Examples per data-parallel shard; 0 = whole batch on one graph (the
    /// exact serial path). Same contract as RrreConfig::shard_size.
    int64_t shard_size = 0;
    /// Train on a compiled batch tape with fused kernels; bitwise identical
    /// to the eager path. Same contract as RrreConfig::use_tape.
    bool use_tape = true;
    /// Replay the cached backward schedule per step fingerprint. Same
    /// contract as RrreConfig::tape_replay.
    bool tape_replay = true;
  };

  void Fit(const data::ReviewDataset& train) final;
  std::vector<double> PredictRatings(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) final;

  bool fitted() const { return fitted_; }
  const text::Vocabulary& vocab() const { return *vocab_; }
  const data::ReviewDataset& train_data() const { return *train_; }

 protected:
  explicit NeuralRatingBaseline(CommonConfig config);

  /// Constructs the subclass network (vocab and train data are available
  /// through the accessors at this point).
  virtual void BuildModel(int64_t num_users, int64_t num_items,
                          int64_t vocab_size, common::Rng& rng) = 0;
  /// Root module of the network (for parameter collection).
  virtual nn::Module* module() = 0;
  /// The shared word table (skip-gram initialized; possibly frozen).
  virtual nn::Embedding* word_embedding() = 0;
  /// Predicted ratings [B, 1] for the pairs. `exclude[i]` is a train review
  /// index to drop from pair i's inputs (-1 = none).
  virtual tensor::Tensor ForwardRating(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const std::vector<int64_t>& exclude, bool training,
      common::Rng& rng) = 0;

  const CommonConfig& common_config() const { return config_; }

 private:
  CommonConfig config_;
  common::Rng rng_;
  bool fitted_ = false;
  std::unique_ptr<data::ReviewDataset> train_;
  std::unique_ptr<text::Vocabulary> vocab_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// One batch tape per concurrent training shard; see RrreTrainer::tapes_.
  std::vector<std::unique_ptr<tensor::BatchTape>> tapes_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_NEURAL_BASE_H_
