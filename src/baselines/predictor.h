#ifndef RRRE_BASELINES_PREDICTOR_H_
#define RRRE_BASELINES_PREDICTOR_H_

#include <utility>
#include <vector>

#include "data/dataset.h"

namespace rrre::baselines {

/// Common interface of the rating-prediction baselines of Table III.
/// Baselines are trained on all training reviews (fake included) — that is
/// exactly the weakness the paper's biased loss addresses.
class RatingPredictor {
 public:
  virtual ~RatingPredictor() = default;

  virtual void Fit(const data::ReviewDataset& train) = 0;

  /// Predicted ratings for explicit (user, item) pairs.
  virtual std::vector<double> PredictRatings(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) = 0;

  /// Predicted ratings aligned with `reviews.reviews()`.
  std::vector<double> PredictDataset(const data::ReviewDataset& reviews) {
    std::vector<std::pair<int64_t, int64_t>> pairs;
    pairs.reserve(static_cast<size_t>(reviews.size()));
    for (const data::Review& r : reviews.reviews()) {
      pairs.emplace_back(r.user, r.item);
    }
    return PredictRatings(pairs);
  }
};

/// Common interface of the reliability-scoring baselines of Tables IV-VI.
/// These methods score reviews with their content/metadata available (they
/// are detectors, not predictors): Fit sees the labeled training reviews,
/// ScoreReviews scores held-out reviews, typically within the combined
/// train+eval review graph (transductive, labels from train only).
class ReliabilityPredictor {
 public:
  virtual ~ReliabilityPredictor() = default;

  virtual void Fit(const data::ReviewDataset& train) = 0;

  /// Benign-likelihood score per review of `eval`, aligned with
  /// eval.reviews(). Higher = more likely benign.
  virtual std::vector<double> ScoreReviews(
      const data::ReviewDataset& eval) = 0;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_PREDICTOR_H_
