#include "baselines/rrre_adapter.h"

namespace rrre::baselines {

RrreAdapter::RrreAdapter(core::RrreConfig config)
    : trainer_(std::move(config)) {}

void RrreAdapter::Fit(const data::ReviewDataset& train) {
  trainer_.Fit(train);
}

std::vector<double> RrreAdapter::PredictRatings(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  return trainer_.PredictPairs(pairs).ratings;
}

std::vector<double> RrreAdapter::ScoreReviews(
    const data::ReviewDataset& eval) {
  // Transductive, like the detector baselines: W^u/W^i include the scored
  // review itself (Eq. 1), though never its label.
  return trainer_.PredictDatasetTransductive(eval).reliabilities;
}

}  // namespace rrre::baselines
