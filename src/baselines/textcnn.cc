#include "baselines/textcnn.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace rrre::baselines {

using tensor::Tensor;

TextCnnEncoder::TextCnnEncoder(nn::Embedding* word_embedding,
                               int64_t max_tokens, int64_t window,
                               int64_t filters, common::Rng& rng)
    : word_embedding_(word_embedding),
      max_tokens_(max_tokens),
      filters_(filters) {
  RRRE_CHECK(word_embedding != nullptr);
  RRRE_CHECK_GT(window, 0);
  RRRE_CHECK_LE(window, max_tokens);
  kernel_ = RegisterParameter(
      "kernel", Tensor::XavierUniform({window * word_embedding->dim(), filters},
                                      rng, /*requires_grad=*/true));
  bias_ = RegisterParameter("bias",
                            Tensor::Zeros({filters}, /*requires_grad=*/true));
}

Tensor TextCnnEncoder::Encode(const std::vector<int64_t>& token_ids,
                              int64_t num_slots) const {
  RRRE_CHECK_EQ(static_cast<int64_t>(token_ids.size()),
                num_slots * max_tokens_);
  Tensor words = word_embedding_->Forward(token_ids);  // [slots*T, d]
  Tensor conv = tensor::Conv1dMaxPool(words, max_tokens_, kernel_, bias_);
  return tensor::Relu(conv);  // [slots, filters]
}

}  // namespace rrre::baselines
