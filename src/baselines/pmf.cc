#include "baselines/pmf.h"

#include "common/logging.h"

namespace rrre::baselines {

using common::Rng;

Pmf::Pmf() : Pmf(Config()) {}

Pmf::Pmf(Config config) : config_(config) {
  RRRE_CHECK_GT(config_.factors, 0);
  RRRE_CHECK_GT(config_.epochs, 0);
}

void Pmf::Fit(const data::ReviewDataset& train) {
  RRRE_CHECK_GT(train.size(), 0);
  Rng rng(config_.seed);
  const int64_t f = config_.factors;
  user_bias_.assign(static_cast<size_t>(train.num_users()), 0.0);
  item_bias_.assign(static_cast<size_t>(train.num_items()), 0.0);
  user_factors_.resize(static_cast<size_t>(train.num_users() * f));
  item_factors_.resize(static_cast<size_t>(train.num_items() * f));
  for (double& v : user_factors_) v = rng.Normal(0.0, 0.1);
  for (double& v : item_factors_) v = rng.Normal(0.0, 0.1);

  double sum = 0.0;
  for (const data::Review& r : train.reviews()) sum += r.rating;
  global_mean_ = sum / static_cast<double>(train.size());

  std::vector<int64_t> order(static_cast<size_t>(train.size()));
  for (int64_t i = 0; i < train.size(); ++i) order[static_cast<size_t>(i)] = i;

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng.Shuffle(order);
    // Mild learning-rate decay stabilizes late epochs.
    const double lr = config_.lr / (1.0 + 0.05 * static_cast<double>(epoch));
    for (int64_t idx : order) {
      const data::Review& r = train.review(idx);
      double* pu = user_factors_.data() + r.user * f;
      double* qi = item_factors_.data() + r.item * f;
      const double err = static_cast<double>(r.rating) - Predict(r.user, r.item);
      user_bias_[static_cast<size_t>(r.user)] +=
          lr * (err - config_.reg * user_bias_[static_cast<size_t>(r.user)]);
      item_bias_[static_cast<size_t>(r.item)] +=
          lr * (err - config_.reg * item_bias_[static_cast<size_t>(r.item)]);
      for (int64_t d = 0; d < f; ++d) {
        const double pud = pu[d];
        pu[d] += lr * (err * qi[d] - config_.reg * pud);
        qi[d] += lr * (err * pud - config_.reg * qi[d]);
      }
    }
  }
}

double Pmf::Predict(int64_t user, int64_t item) const {
  const int64_t f = config_.factors;
  double dot = 0.0;
  const double* pu = user_factors_.data() + user * f;
  const double* qi = item_factors_.data() + item * f;
  for (int64_t d = 0; d < f; ++d) dot += pu[d] * qi[d];
  return global_mean_ + user_bias_[static_cast<size_t>(user)] +
         item_bias_[static_cast<size_t>(item)] + dot;
}

std::vector<double> Pmf::PredictRatings(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  RRRE_CHECK(!user_bias_.empty()) << "call Fit() first";
  std::vector<double> out;
  out.reserve(pairs.size());
  for (const auto& [u, i] : pairs) out.push_back(Predict(u, i));
  return out;
}

}  // namespace rrre::baselines
