#ifndef RRRE_BASELINES_TEXTCNN_H_
#define RRRE_BASELINES_TEXTCNN_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::baselines {

/// The TextCNN building block used by the DeepCoNN/NARRE/DER baselines
/// (Kim 2014): word vectors -> 1-D convolution -> max-over-time -> ReLU.
class TextCnnEncoder : public nn::Module {
 public:
  /// Output feature dim is `filters`.
  TextCnnEncoder(nn::Embedding* word_embedding, int64_t max_tokens,
                 int64_t window, int64_t filters, common::Rng& rng);

  /// token_ids holds num_slots rows of exactly max_tokens ids; returns
  /// [num_slots, filters].
  tensor::Tensor Encode(const std::vector<int64_t>& token_ids,
                        int64_t num_slots) const;

  int64_t output_dim() const { return filters_; }
  int64_t max_tokens() const { return max_tokens_; }

 private:
  nn::Embedding* word_embedding_;  // Not owned.
  int64_t max_tokens_;
  int64_t filters_;
  tensor::Tensor kernel_;  ///< [window * word_dim, filters]
  tensor::Tensor bias_;    ///< [filters]
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_TEXTCNN_H_
