#ifndef RRRE_BASELINES_RRRE_ADAPTER_H_
#define RRRE_BASELINES_RRRE_ADAPTER_H_

#include <memory>
#include <vector>

#include "baselines/predictor.h"
#include "core/config.h"
#include "core/trainer.h"

namespace rrre::baselines {

/// Adapts core::RrreTrainer to the shared predictor interfaces so the bench
/// harnesses treat RRRE (and RRRE^-) uniformly with the baselines. One
/// adapter instance trains once and serves both tasks.
class RrreAdapter : public RatingPredictor, public ReliabilityPredictor {
 public:
  /// For RRRE^- pass a config with biased_loss = false.
  explicit RrreAdapter(core::RrreConfig config);

  /// RatingPredictor + ReliabilityPredictor share this Fit.
  void Fit(const data::ReviewDataset& train) override;

  std::vector<double> PredictRatings(
      const std::vector<std::pair<int64_t, int64_t>>& pairs) override;

  /// Reliability from the (user, item) pair — RRRE does not look at the
  /// eval review's own text/metadata, unlike the detector baselines.
  std::vector<double> ScoreReviews(const data::ReviewDataset& eval) override;

  core::RrreTrainer& trainer() { return trainer_; }

 private:
  core::RrreTrainer trainer_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_RRRE_ADAPTER_H_
