#ifndef RRRE_BASELINES_DER_H_
#define RRRE_BASELINES_DER_H_

#include <memory>
#include <vector>

#include "baselines/neural_base.h"
#include "baselines/textcnn.h"
#include "nn/fm.h"
#include "nn/gru.h"
#include "nn/linear.h"

namespace rrre::baselines {

/// DER (Chen et al., AAAI 2019), simplified: the user's dynamic preference
/// is the final state of a GRU over their time-ordered review embeddings
/// (the paper's time-aware GRU with sentence-level attention is reduced to
/// a review-level GRU); the item profile is a masked mean over its review
/// embeddings; an FM head couples both with ID embeddings. As in the
/// paper's discussion of Table III, the model leans on per-user sequence
/// length — with a median of ~3 reviews per user it has little dynamics to
/// exploit.
class Der : public NeuralRatingBaseline {
 public:
  struct Config {
    CommonConfig common;
    int64_t max_tokens = 16;
    int64_t s_u = 5;  ///< GRU sequence length over the user's reviews.
    int64_t s_i = 7;  ///< Item history slots (mean-pooled).
    int64_t window = 3;
    int64_t filters = 16;
    int64_t hidden = 16;  ///< GRU state size.
    int64_t id_dim = 16;
    int64_t fm_factors = 8;
  };

  Der();
  explicit Der(Config config);
  ~Der() override;

 protected:
  void BuildModel(int64_t num_users, int64_t num_items, int64_t vocab_size,
                  common::Rng& rng) override;
  nn::Module* module() override;
  nn::Embedding* word_embedding() override;
  tensor::Tensor ForwardRating(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const std::vector<int64_t>& exclude, bool training,
      common::Rng& rng) override;

 private:
  struct Net;
  Config config_;
  std::unique_ptr<Net> net_;
  /// Token ids padded to max_tokens per train review.
  std::vector<int64_t> token_cache_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_DER_H_
