#include "baselines/rev2.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rrre::baselines {

Rev2::Rev2() : Rev2(Config()) {}

Rev2::Rev2(Config config) : config_(config) {
  RRRE_CHECK_GE(config_.gamma1, 0.0);
  RRRE_CHECK_GE(config_.gamma2, 0.0);
}

void Rev2::Fit(const data::ReviewDataset& train) {
  RRRE_CHECK(train.indexed());
  train_ = std::make_unique<data::ReviewDataset>(train);
}

Rev2::Solution Rev2::Solve(const data::ReviewDataset& corpus) const {
  RRRE_CHECK(corpus.indexed());
  Solution s;
  s.fairness.assign(static_cast<size_t>(corpus.num_users()), 1.0);
  s.goodness.assign(static_cast<size_t>(corpus.num_items()), 1.0);
  s.reliability.assign(static_cast<size_t>(corpus.size()), 1.0);

  // Normalized rating score in [-1, 1].
  auto score = [](float rating) {
    return std::clamp((static_cast<double>(rating) - 3.0) / 2.0, -1.0, 1.0);
  };

  for (int64_t it = 0; it < config_.max_iterations; ++it) {
    double max_delta = 0.0;
    // Goodness from reliabilities.
    for (int64_t i = 0; i < corpus.num_items(); ++i) {
      const auto& in = corpus.ReviewsByItem(i);
      double acc = config_.gamma2 * config_.mu_goodness;
      for (int64_t r : in) {
        acc += s.reliability[static_cast<size_t>(r)] *
               score(corpus.review(r).rating);
      }
      const double g =
          acc / (static_cast<double>(in.size()) + config_.gamma2);
      max_delta = std::max(max_delta,
                           std::abs(g - s.goodness[static_cast<size_t>(i)]));
      s.goodness[static_cast<size_t>(i)] = g;
    }
    // Fairness from reliabilities.
    for (int64_t u = 0; u < corpus.num_users(); ++u) {
      const auto& out = corpus.ReviewsByUser(u);
      double acc = config_.gamma1 * config_.mu_fairness;
      for (int64_t r : out) acc += s.reliability[static_cast<size_t>(r)];
      const double f =
          acc / (static_cast<double>(out.size()) + config_.gamma1);
      max_delta = std::max(max_delta,
                           std::abs(f - s.fairness[static_cast<size_t>(u)]));
      s.fairness[static_cast<size_t>(u)] = f;
    }
    // Reliability from fairness + goodness agreement.
    for (int64_t r = 0; r < corpus.size(); ++r) {
      const data::Review& review = corpus.review(r);
      const double agreement =
          1.0 - std::abs(score(review.rating) -
                         s.goodness[static_cast<size_t>(review.item)]) /
                    2.0;
      const double rel =
          (s.fairness[static_cast<size_t>(review.user)] + agreement) / 2.0;
      max_delta = std::max(
          max_delta, std::abs(rel - s.reliability[static_cast<size_t>(r)]));
      s.reliability[static_cast<size_t>(r)] = rel;
    }
    s.iterations = it + 1;
    if (max_delta < config_.tol) {
      s.converged = true;
      break;
    }
  }
  return s;
}

std::vector<double> Rev2::ScoreReviews(const data::ReviewDataset& eval) {
  RRRE_CHECK(train_ != nullptr) << "call Fit() first";
  const data::ReviewDataset combined =
      data::ReviewDataset::Merge(*train_, eval);
  const Solution s = Solve(combined);
  std::vector<double> out;
  out.reserve(static_cast<size_t>(eval.size()));
  for (int64_t i = 0; i < eval.size(); ++i) {
    out.push_back(s.reliability[static_cast<size_t>(train_->size() + i)]);
  }
  return out;
}

}  // namespace rrre::baselines
