#include "baselines/icwsm13.h"

#include "baselines/behavior_features.h"
#include "common/logging.h"

namespace rrre::baselines {

Icwsm13::Icwsm13() : Icwsm13(Config()) {}

Icwsm13::Icwsm13(Config config) : config_(config) {}

void Icwsm13::Fit(const data::ReviewDataset& train) {
  RRRE_CHECK(train.indexed());
  train_ = std::make_unique<data::ReviewDataset>(train);
}

std::vector<double> Icwsm13::ScoreReviews(const data::ReviewDataset& eval) {
  RRRE_CHECK(train_ != nullptr) << "call Fit() first";
  // Compute footprints over the combined corpus: train reviews occupy
  // indices [0, train.size()), eval reviews follow.
  const data::ReviewDataset combined =
      data::ReviewDataset::Merge(*train_, eval);
  const auto features = ComputeBehaviorFeatures(combined);

  std::vector<std::vector<double>> train_x;
  std::vector<int> train_y;
  train_x.reserve(static_cast<size_t>(train_->size()));
  for (int64_t i = 0; i < train_->size(); ++i) {
    train_x.push_back(features[static_cast<size_t>(i)].ToVector());
    train_y.push_back(train_->review(i).is_benign() ? 1 : 0);
  }
  LogisticRegression clf(config_.logreg);
  clf.Fit(train_x, train_y);

  std::vector<std::vector<double>> eval_x;
  eval_x.reserve(static_cast<size_t>(eval.size()));
  for (int64_t i = 0; i < eval.size(); ++i) {
    eval_x.push_back(
        features[static_cast<size_t>(train_->size() + i)].ToVector());
  }
  return clf.PredictProba(eval_x);
}

}  // namespace rrre::baselines
