#ifndef RRRE_BASELINES_LOGREG_H_
#define RRRE_BASELINES_LOGREG_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"

namespace rrre::baselines {

/// L2-regularized binary logistic regression on dense features, trained with
/// mini-batch gradient descent over standardized inputs. The workhorse of
/// the feature-based detectors (ICWSM13, SpEagle+ priors).
class LogisticRegression {
 public:
  struct Config {
    double lr = 0.1;
    double reg = 1e-4;
    int64_t epochs = 100;
    uint64_t seed = 42;
  };

  LogisticRegression();
  explicit LogisticRegression(Config config);

  /// features: one row per example; labels in {0, 1}.
  void Fit(const std::vector<std::vector<double>>& features,
           const std::vector<int>& labels);

  /// P(label == 1) per row. Features are standardized with the training
  /// statistics.
  std::vector<double> PredictProba(
      const std::vector<std::vector<double>>& features) const;

  bool fitted() const { return !weights_.empty(); }

 private:
  std::vector<double> Standardize(const std::vector<double>& row) const;

  Config config_;
  std::vector<double> mean_;
  std::vector<double> stddev_;
  std::vector<double> weights_;
  double bias_ = 0.0;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_LOGREG_H_
