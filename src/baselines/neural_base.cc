#include "baselines/neural_base.h"

#include <algorithm>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/logging.h"
#include "common/threadpool.h"
#include "nn/loss.h"
#include "tensor/grad_sink.h"
#include "tensor/ops.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace rrre::baselines {

using common::Rng;
using tensor::Tensor;

NeuralRatingBaseline::NeuralRatingBaseline(CommonConfig config)
    : config_(config), rng_(config.seed) {
  RRRE_CHECK_GT(config_.epochs, 0);
  RRRE_CHECK_GT(config_.batch_size, 0);
}

void NeuralRatingBaseline::Fit(const data::ReviewDataset& train) {
  RRRE_CHECK(train.indexed());
  RRRE_CHECK_GT(train.size(), 0);
  train_ = std::make_unique<data::ReviewDataset>(train);

  std::vector<std::vector<std::string>> docs;
  docs.reserve(static_cast<size_t>(train_->size()));
  for (const data::Review& r : train_->reviews()) {
    docs.push_back(text::Tokenize(r.text));
  }
  vocab_ = std::make_unique<text::Vocabulary>(
      text::Vocabulary::Build(docs, config_.vocab_min_count));

  Rng init_rng = rng_.Fork();
  BuildModel(train_->num_users(), train_->num_items(), vocab_->size(),
             init_rng);

  if (config_.pretrain_word_vectors) {
    std::vector<std::vector<int64_t>> id_docs;
    id_docs.reserve(docs.size());
    for (const auto& doc : docs) id_docs.push_back(vocab_->Encode(doc));
    text::SkipGramConfig sg;
    sg.dim = config_.word_dim;
    sg.epochs = config_.pretrain_epochs;
    text::SkipGramTrainer pretrainer(sg, vocab_->size());
    Rng sg_rng = rng_.Fork();
    word_embedding()->SetWeights(pretrainer.Train(id_docs, sg_rng));
  }

  std::vector<Tensor> params;
  const Tensor& table = word_embedding()->table();
  for (const Tensor& p : module()->Parameters()) {
    if (config_.freeze_word_vectors && p.impl() == table.impl()) continue;
    params.push_back(p);
  }
  optimizer_ = std::make_unique<nn::Adam>(params, config_.lr);

  const int64_t n = train_->size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  // Same tape + fusion scheme as RrreTrainer::TrainEpochs; fused graphs are
  // bitwise identical to eager ones, so the flag never changes results.
  tensor::SetFusionEnabled(config_.use_tape);
  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    rng_.Shuffle(order);
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t end = std::min(n, start + config_.batch_size);
      std::vector<std::pair<int64_t, int64_t>> pairs;
      std::vector<int64_t> exclude;
      std::vector<float> targets;
      for (int64_t p = start; p < end; ++p) {
        const int64_t idx = order[static_cast<size_t>(p)];
        const data::Review& r = train_->review(idx);
        pairs.emplace_back(r.user, r.item);
        exclude.push_back(config_.exclude_target ? idx : -1);
        targets.push_back(r.rating);
      }
      if (config_.shard_size <= 0) {
        std::optional<tensor::BatchTape::Scope> tape_scope;
        if (config_.use_tape) {
          if (tapes_.empty()) {
            tapes_.push_back(std::make_unique<tensor::BatchTape>());
            tapes_.back()->SetReplayEnabled(config_.tape_replay);
          }
          // Keyed by example count: full batch and tail batch compile to
          // separate replay graphs.
          tapes_[0]->BeginStep(static_cast<uint64_t>(end - start));
          tape_scope.emplace(tapes_[0].get());
        }
        Tensor pred = ForwardRating(pairs, exclude, /*training=*/true, rng_);
        Tensor loss = nn::MseLoss(pred, targets);
        loss.Backward();
      } else {
        // Data-parallel shards, merged in shard order — same scheme as
        // RrreTrainer::Fit: mean-MSE over the batch decomposes exactly into
        // sum_s (b_s / B) * MSE_s.
        const int64_t bsz = end - start;
        const int64_t ssz = config_.shard_size;
        const int64_t num_shards = (bsz + ssz - 1) / ssz;
        Rng batch_rng = rng_.Fork();
        const std::vector<Tensor> all_params = module()->Parameters();
        std::vector<std::unique_ptr<tensor::GradSink>> sinks(
            static_cast<size_t>(num_shards));
        if (config_.use_tape) {
          while (static_cast<int64_t>(tapes_.size()) < num_shards) {
            tapes_.push_back(std::make_unique<tensor::BatchTape>());
            tapes_.back()->SetReplayEnabled(config_.tape_replay);
          }
        }
        common::ParallelFor(0, num_shards, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t s = lo; s < hi; ++s) {
            const int64_t s0 = s * ssz;
            const int64_t s1 = std::min(bsz, s0 + ssz);
            // The key carries the parent batch size as well as the shard's
            // example count: the MulScalar(mse, frac) closure depends on
            // bsz, so a full batch's shard and a same-sized tail-batch
            // shard must compile separately (see RrreTrainer).
            std::optional<tensor::BatchTape::Scope> tape_scope;
            if (config_.use_tape) {
              const uint64_t key = (static_cast<uint64_t>(bsz) << 32) |
                                   static_cast<uint64_t>(s1 - s0);
              tapes_[static_cast<size_t>(s)]->BeginStep(key);
              tape_scope.emplace(tapes_[static_cast<size_t>(s)].get());
            }
            Rng shard_rng = batch_rng.Fork(static_cast<uint64_t>(s));
            std::vector<std::pair<int64_t, int64_t>> spairs(
                pairs.begin() + s0, pairs.begin() + s1);
            std::vector<int64_t> sexclude(exclude.begin() + s0,
                                          exclude.begin() + s1);
            std::vector<float> stargets(targets.begin() + s0,
                                        targets.begin() + s1);
            Tensor pred =
                ForwardRating(spairs, sexclude, /*training=*/true, shard_rng);
            Tensor mse = nn::MseLoss(pred, stargets);
            const float frac =
                static_cast<float>(s1 - s0) / static_cast<float>(bsz);
            Tensor shard_loss = tensor::MulScalar(mse, frac);
            sinks[static_cast<size_t>(s)] =
                std::make_unique<tensor::GradSink>(all_params);
            tensor::GradSink::Scope scope(
                sinks[static_cast<size_t>(s)].get());
            shard_loss.Backward();
          }
        });
        std::unordered_set<tensor::internal::TensorImpl*> zeroed;
        for (const auto& sink : sinks) {
          for (Tensor t : sink->Touched()) {
            if (zeroed.insert(t.impl().get()).second) t.ZeroGrad();
          }
        }
        for (const auto& sink : sinks) sink->AccumulateInto();
      }
      if (config_.grad_clip > 0.0) {
        auto params_ref = optimizer_->params();
        nn::ClipGradNorm(params_ref, config_.grad_clip);
      }
      optimizer_->Step();
    }
  }
  fitted_ = true;
}

std::vector<double> NeuralRatingBaseline::PredictRatings(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  RRRE_CHECK(fitted_) << "call Fit() first";
  const int64_t n = static_cast<int64_t>(pairs.size());
  std::vector<double> out(static_cast<size_t>(n));
  const int64_t bs = config_.batch_size;
  const int64_t num_chunks = (n + bs - 1) / bs;
  // Forward-only chunks with disjoint output ranges; rngs forked serially so
  // results do not depend on chunk scheduling.
  std::vector<Rng> chunk_rngs;
  chunk_rngs.reserve(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) chunk_rngs.push_back(rng_.Fork());
  common::ParallelFor(0, num_chunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      const int64_t start = c * bs;
      const int64_t end = std::min(n, start + bs);
      std::vector<std::pair<int64_t, int64_t>> chunk(pairs.begin() + start,
                                                     pairs.begin() + end);
      std::vector<int64_t> exclude(chunk.size(), -1);
      Tensor pred = ForwardRating(chunk, exclude, /*training=*/false,
                                  chunk_rngs[static_cast<size_t>(c)]);
      for (int64_t i = 0; i < static_cast<int64_t>(chunk.size()); ++i) {
        out[static_cast<size_t>(start + i)] = pred.at(i, 0);
      }
    }
  });
  return out;
}

}  // namespace rrre::baselines
