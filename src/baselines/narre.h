#ifndef RRRE_BASELINES_NARRE_H_
#define RRRE_BASELINES_NARRE_H_

#include <memory>
#include <vector>

#include "baselines/neural_base.h"
#include "baselines/textcnn.h"
#include "core/features.h"
#include "nn/attention.h"
#include "nn/fm.h"
#include "nn/linear.h"

namespace rrre::baselines {

/// NARRE (Chen et al., WWW 2018): review-level attention over each user's
/// and item's review histories, TextCNN review encoders, and an
/// ID-embedding-augmented rating head. Differences from RRRE: no
/// reliability head, plain (unbiased) MSE, CNN text encoder. The attention
/// implementation is shared with RRRE (nn::FraudAttention), which scores a
/// review from its content plus writer/target ID embeddings — a superset of
/// NARRE's counterpart-ID attention.
class Narre : public NeuralRatingBaseline {
 public:
  struct Config {
    CommonConfig common;
    int64_t max_tokens = 16;  ///< Tokens per review.
    int64_t s_u = 5;          ///< User history slots.
    int64_t s_i = 7;          ///< Item history slots.
    int64_t window = 3;
    int64_t filters = 16;
    int64_t id_dim = 16;
    int64_t attention_dim = 16;
    int64_t latent_dim = 16;
    int64_t fm_factors = 8;
  };

  Narre();
  explicit Narre(Config config);
  ~Narre() override;

 protected:
  void BuildModel(int64_t num_users, int64_t num_items, int64_t vocab_size,
                  common::Rng& rng) override;
  nn::Module* module() override;
  nn::Embedding* word_embedding() override;
  tensor::Tensor ForwardRating(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const std::vector<int64_t>& exclude, bool training,
      common::Rng& rng) override;

 private:
  struct Net;
  Config config_;
  std::unique_ptr<Net> net_;
  std::unique_ptr<core::FeatureBuilder> features_;
};

}  // namespace rrre::baselines

#endif  // RRRE_BASELINES_NARRE_H_
