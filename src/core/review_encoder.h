#ifndef RRRE_CORE_REVIEW_ENCODER_H_
#define RRRE_CORE_REVIEW_ENCODER_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "nn/embedding.h"
#include "nn/lstm.h"
#include "nn/module.h"
#include "tensor/tensor.h"
#include "text/vocab.h"

namespace rrre::core {

/// Review content embedding (Sec. III-C): word vectors -> BiLSTM ->
/// rev = [h_fwd ; h_bwd]. Operates on pre-tokenized, padded token-id rows
/// cached by the trainer; slot -1 denotes a zero-padded (absent) review.
class ReviewEncoder : public nn::Module {
 public:
  /// `word_embedding` is shared (owned by the model) so UserNet and ItemNet
  /// read the same pretrained vectors.
  ReviewEncoder(nn::Embedding* word_embedding, int64_t max_tokens,
                int64_t rev_dim, common::Rng& rng);

  /// Encodes reviews given a token matrix accessor: token_ids has one row of
  /// exactly max_tokens ids per requested slot (pad-token rows for absent
  /// reviews). Returns [slots, rev_dim].
  tensor::Tensor Encode(const std::vector<int64_t>& token_ids,
                        int64_t num_slots) const;

  int64_t max_tokens() const { return max_tokens_; }
  int64_t rev_dim() const { return encoder_.output_size(); }

 private:
  nn::Embedding* word_embedding_;  // Not owned.
  int64_t max_tokens_;
  nn::BiLstmEncoder encoder_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_REVIEW_ENCODER_H_
