#include "core/trainer.h"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <optional>
#include <unordered_set>

#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "eval/metrics.h"
#include "nn/loss.h"
#include "obs/trace.h"
#include "tensor/grad_sink.h"
#include "tensor/ops.h"
#include "tensor/serialize.h"
#include "text/tokenizer.h"
#include "text/word2vec.h"

namespace rrre::core {

using common::Rng;
using tensor::Tensor;

RrreTrainer::RrreTrainer(RrreConfig config)
    : config_(config), rng_(config.seed) {
  RRRE_CHECK_GT(config_.batch_size, 0);
  RRRE_CHECK_GT(config_.epochs, 0);
  RRRE_CHECK_GE(config_.lambda, 0.0);
  RRRE_CHECK_LE(config_.lambda, 1.0);
}

void RrreTrainer::Fit(const data::ReviewDataset& train,
                      EpochCallback callback) {
  RRRE_CHECK(train.indexed());
  RRRE_CHECK_GT(train.size(), 0);
  train_ = std::make_unique<data::ReviewDataset>(train);

  double rating_sum = 0.0;
  for (const data::Review& r : train_->reviews()) rating_sum += r.rating;
  rating_offset_ = rating_sum / static_cast<double>(train_->size());

  // 1. Vocabulary over the training texts.
  std::vector<std::vector<std::string>> docs;
  docs.reserve(static_cast<size_t>(train_->size()));
  for (const data::Review& r : train_->reviews()) {
    docs.push_back(text::Tokenize(r.text));
  }
  vocab_ = std::make_unique<text::Vocabulary>(
      text::Vocabulary::Build(docs, config_.vocab_min_count));

  // 2. Model; word vectors pretrained with skip-gram when configured.
  Rng init_rng = rng_.Fork();
  model_ = std::make_unique<RrreModel>(config_, train_->num_users(),
                                       train_->num_items(), vocab_->size(),
                                       init_rng);
  if (config_.pretrain_word_vectors) {
    std::vector<std::vector<int64_t>> id_docs;
    id_docs.reserve(docs.size());
    for (const auto& doc : docs) id_docs.push_back(vocab_->Encode(doc));
    text::SkipGramConfig sg;
    sg.dim = config_.word_dim;
    sg.epochs = config_.pretrain_epochs;
    text::SkipGramTrainer pretrainer(sg, vocab_->size());
    Rng sg_rng = rng_.Fork();
    model_->word_embedding().SetWeights(pretrainer.Train(id_docs, sg_rng));
  }

  features_ = std::make_unique<FeatureBuilder>(config_, train_.get(),
                                               vocab_.get());

  auto params = config_.freeze_word_vectors
                    ? model_->ParametersWithoutWordTable()
                    : model_->Parameters();
  optimizer_ = std::make_unique<nn::Adam>(params, config_.lr);

  // 3. Training loop.
  epochs_completed_ = 0;
  ++params_version_;
  TrainEpochs(0, callback);
}

void RrreTrainer::EnsureTapes(int64_t count) {
  while (static_cast<int64_t>(tapes_.size()) < count) {
    tapes_.push_back(std::make_unique<tensor::BatchTape>());
    tapes_.back()->SetReplayEnabled(config_.tape_replay);
  }
}

tensor::BatchTape::Stats RrreTrainer::TapeStats() const {
  tensor::BatchTape::Stats total;
  for (const auto& tape : tapes_) {
    const tensor::BatchTape::Stats s = tape->stats();
    total.steps += s.steps;
    total.nodes += s.nodes;
    total.buffer_allocs += s.buffer_allocs;
    total.buffer_reuses += s.buffer_reuses;
    total.distinct_sequences += s.distinct_sequences;
    total.dfs_node_visits += s.dfs_node_visits;
    total.closure_allocs += s.closure_allocs;
    total.replay_steps += s.replay_steps;
    total.replay_backwards += s.replay_backwards;
    total.replay_fallbacks += s.replay_fallbacks;
  }
  return total;
}

void RrreTrainer::TrainEpochs(int64_t first_epoch,
                              const EpochCallback& callback) {
  // Fusion rides the same switch as the tape: fused graphs are bitwise
  // identical to eager ones, so this changes graph shape, never arithmetic.
  // The flag is global and sticky — predictions after training also run the
  // (identical) fused forward.
  tensor::SetFusionEnabled(config_.use_tape);
  const int64_t n = train_->size();
  std::vector<int64_t> order(static_cast<size_t>(n));

  for (int64_t epoch = first_epoch; epoch < config_.epochs; ++epoch) {
    common::Timer timer;
    // The permutation is re-derived from identity every epoch so it is a
    // pure function of the RNG state at the epoch boundary — the property
    // that lets a Load + Resume replay the exact shuffle an uninterrupted
    // run would have drawn.
    for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
    rng_.Shuffle(order);
    double sum_loss = 0.0;
    double sum_loss1 = 0.0;
    double sum_loss2 = 0.0;
    double sum_grad_norm = 0.0;
    int64_t batches = 0;
    // Per-shard wall-times for this epoch's telemetry; only the sharded path
    // fills it, and only wall-clock-including telemetry reports it.
    common::Histogram shard_seconds_us;
    for (int64_t start = 0; start < n; start += config_.batch_size) {
      const int64_t end = std::min(n, start + config_.batch_size);
      std::vector<std::pair<int64_t, int64_t>> pairs;
      std::vector<int64_t> exclude;
      std::vector<float> targets;
      std::vector<int64_t> labels;
      std::vector<float> weights;
      pairs.reserve(static_cast<size_t>(end - start));
      for (int64_t p = start; p < end; ++p) {
        const int64_t idx = order[static_cast<size_t>(p)];
        const data::Review& r = train_->review(idx);
        pairs.emplace_back(r.user, r.item);
        exclude.push_back(config_.exclude_target_from_history ? idx : -1);
        targets.push_back(
            static_cast<float>(r.rating - rating_offset_));
        labels.push_back(r.is_benign() ? 1 : 0);
        weights.push_back(config_.biased_loss ? (r.is_benign() ? 1.0f : 0.0f)
                                              : 1.0f);
      }
      if (config_.shard_size <= 0) {
        // Whole-batch path: one graph, one backward.
        std::optional<tensor::BatchTape::Scope> tape_scope;
        if (config_.use_tape) {
          EnsureTapes(1);
          // Recycle the previous batch's graph, keyed by example count so
          // the full batch and the tail batch compile to separate replay
          // graphs.
          tapes_[0]->BeginStep(static_cast<uint64_t>(end - start));
          tape_scope.emplace(tapes_[0].get());
        }
        RrreModel::Batch batch = features_->Build(pairs, exclude, rng_);
        RrreModel::Output out =
            model_->Forward(batch, /*training=*/true, &rng_);

        // loss1 (Eq. 11): reliability cross-entropy; label 1 = benign.
        Tensor loss1 =
            tensor::CrossEntropyWithLogits(out.reliability_logits, labels);
        // loss2 (Eq. 14 / Eq. 13 for RRRE^-): (weighted) MSE + L2.
        Tensor mse = nn::WeightedMseLoss(out.rating, targets, weights,
                                         nn::WeightedMseNorm::kBatchSize);
        Tensor loss2 = mse;
        if (config_.gamma > 0.0) {
          loss2 = tensor::Add(
              loss2, tensor::MulScalar(nn::L2Penalty(optimizer_->params()),
                                       static_cast<float>(config_.gamma)));
        }
        // L = lambda*loss1 + (1-lambda)*loss2 (Eq. 15).
        Tensor loss = tensor::Add(
            tensor::MulScalar(loss1, static_cast<float>(config_.lambda)),
            tensor::MulScalar(loss2,
                              static_cast<float>(1.0 - config_.lambda)));

        loss.Backward();
        if (config_.grad_clip > 0.0) {
          auto params_ref = optimizer_->params();
          sum_grad_norm += nn::ClipGradNorm(params_ref, config_.grad_clip);
        } else if (telemetry_.writer != nullptr) {
          sum_grad_norm += nn::GlobalGradNorm(optimizer_->params());
        }
        optimizer_->Step();
        ++params_version_;

        sum_loss += loss.item();
        sum_loss1 += loss1.item();
        sum_loss2 += loss2.item();
      } else {
        // Data-parallel path: the batch is split into fixed-size shards that
        // run forward + backward concurrently, each on a private graph with
        // gradients redirected into a per-shard GradSink. The decomposition
        // is exact: with shard fractions f_s = b_s / B,
        //   lambda*CE_B + (1-lambda)*MSE_B
        //     = sum_s f_s * (lambda*CE_s + (1-lambda)*MSE_s),
        // so merging shard gradients in shard order and stepping once
        // reproduces the whole-batch objective. Shard randomness comes from
        // keyed forks of one per-batch rng, making the result independent of
        // the thread count and of shard scheduling order.
        const int64_t bsz = end - start;
        const int64_t ssz = config_.shard_size;
        const int64_t num_shards = (bsz + ssz - 1) / ssz;
        const float lam = static_cast<float>(config_.lambda);
        Rng batch_rng = rng_.Fork();
        const std::vector<Tensor> all_params = model_->Parameters();
        std::vector<std::unique_ptr<tensor::GradSink>> sinks(
            static_cast<size_t>(num_shards));
        std::vector<double> ce_vals(static_cast<size_t>(num_shards), 0.0);
        std::vector<double> mse_vals(static_cast<size_t>(num_shards), 0.0);
        std::vector<double> shard_secs(static_cast<size_t>(num_shards), 0.0);
        if (config_.use_tape) EnsureTapes(num_shards);
        common::ParallelFor(0, num_shards, 1, [&](int64_t lo, int64_t hi) {
          for (int64_t s = lo; s < hi; ++s) {
            obs::TraceSpan span("train_shard");
            common::Timer shard_timer;
            const int64_t s0 = s * ssz;
            const int64_t s1 = std::min(bsz, s0 + ssz);
            // Tape s belongs to shard index s: the grain-1 ParallelFor hands
            // each index to exactly one thread, so the arena is never shared.
            // The replay key carries the parent batch size as well as the
            // shard's example count: the loss-mix scale lam*frac depends on
            // bsz, so a full batch's shard and a same-sized tail-batch shard
            // trace different closures and must compile separately.
            std::optional<tensor::BatchTape::Scope> tape_scope;
            if (config_.use_tape) {
              const uint64_t key = (static_cast<uint64_t>(bsz) << 32) |
                                   static_cast<uint64_t>(s1 - s0);
              tapes_[static_cast<size_t>(s)]->BeginStep(key);
              tape_scope.emplace(tapes_[static_cast<size_t>(s)].get());
            }
            Rng shard_rng = batch_rng.Fork(static_cast<uint64_t>(s));
            std::vector<std::pair<int64_t, int64_t>> spairs(
                pairs.begin() + s0, pairs.begin() + s1);
            std::vector<int64_t> sexclude(exclude.begin() + s0,
                                          exclude.begin() + s1);
            std::vector<float> stargets(targets.begin() + s0,
                                        targets.begin() + s1);
            std::vector<int64_t> slabels(labels.begin() + s0,
                                         labels.begin() + s1);
            std::vector<float> sweights(weights.begin() + s0,
                                        weights.begin() + s1);
            RrreModel::Batch sbatch =
                features_->Build(spairs, sexclude, shard_rng);
            RrreModel::Output sout =
                model_->Forward(sbatch, /*training=*/true, &shard_rng);
            Tensor ce = tensor::CrossEntropyWithLogits(
                sout.reliability_logits, slabels);
            Tensor mse = nn::WeightedMseLoss(sout.rating, stargets, sweights,
                                             nn::WeightedMseNorm::kBatchSize);
            const float frac =
                static_cast<float>(s1 - s0) / static_cast<float>(bsz);
            Tensor shard_loss =
                tensor::Add(tensor::MulScalar(ce, lam * frac),
                            tensor::MulScalar(mse, (1.0f - lam) * frac));
            sinks[static_cast<size_t>(s)] =
                std::make_unique<tensor::GradSink>(all_params);
            tensor::GradSink::Scope scope(sinks[static_cast<size_t>(s)].get());
            shard_loss.Backward();
            ce_vals[static_cast<size_t>(s)] = ce.item() * frac;
            mse_vals[static_cast<size_t>(s)] = mse.item() * frac;
            shard_secs[static_cast<size_t>(s)] = shard_timer.ElapsedSeconds();
          }
        });
        if (telemetry_.writer != nullptr) {
          for (double secs : shard_secs) shard_seconds_us.Record(secs * 1e6);
        }

        // The L2 term lives on the master graph. Its Backward() zeroes the
        // optimizer parameters' real grads (providing the fresh-grad
        // guarantee the whole-batch Backward gave) and must therefore run
        // BEFORE the shard sinks are merged.
        double l2_val = 0.0;
        std::unordered_set<tensor::internal::TensorImpl*> zeroed;
        if (config_.gamma > 0.0) {
          // The L2 graph joins shard 0's open tape step (no BeginStep: the
          // shards' nodes are still referenced by the sinks' Touched sets
          // until the merge below, and the ParallelFor has joined, so
          // tapes_[0] is free to use on this thread).
          std::optional<tensor::BatchTape::Scope> l2_scope;
          if (config_.use_tape) l2_scope.emplace(tapes_[0].get());
          Tensor l2_pen = nn::L2Penalty(optimizer_->params());
          Tensor l2_scaled = tensor::MulScalar(
              l2_pen, (1.0f - lam) * static_cast<float>(config_.gamma));
          l2_scaled.Backward();
          l2_val = l2_pen.item();
          for (const Tensor& p : optimizer_->params()) {
            zeroed.insert(p.impl().get());
          }
        }
        // Any touched parameter outside the L2 graph (e.g. a frozen word
        // table) still needs a fresh grad before merging.
        for (const auto& sink : sinks) {
          for (Tensor t : sink->Touched()) {
            if (zeroed.insert(t.impl().get()).second) t.ZeroGrad();
          }
        }
        for (const auto& sink : sinks) sink->AccumulateInto();
        if (config_.grad_clip > 0.0) {
          auto params_ref = optimizer_->params();
          sum_grad_norm += nn::ClipGradNorm(params_ref, config_.grad_clip);
        } else if (telemetry_.writer != nullptr) {
          sum_grad_norm += nn::GlobalGradNorm(optimizer_->params());
        }
        optimizer_->Step();
        ++params_version_;

        double ce_full = 0.0;
        double mse_full = 0.0;
        for (int64_t s = 0; s < num_shards; ++s) {
          ce_full += ce_vals[static_cast<size_t>(s)];
          mse_full += mse_vals[static_cast<size_t>(s)];
        }
        const double loss2_val = mse_full + config_.gamma * l2_val;
        sum_loss +=
            config_.lambda * ce_full + (1.0 - config_.lambda) * loss2_val;
        sum_loss1 += ce_full;
        sum_loss2 += loss2_val;
      }
      ++batches;
    }
    epochs_completed_ = epoch + 1;
    EpochStats stats;
    stats.epoch = epoch;
    stats.loss = sum_loss / batches;
    stats.loss1 = sum_loss1 / batches;
    stats.loss2 = sum_loss2 / batches;
    stats.seconds = timer.ElapsedSeconds();
    stats.grad_norm = sum_grad_norm / static_cast<double>(batches);
    if (telemetry_.writer != nullptr) {
      EmitEpochTelemetry(stats, n, batches, shard_seconds_us);
    }
    if (callback) callback(stats);
  }
}

void RrreTrainer::EmitEpochTelemetry(const EpochStats& stats,
                                     int64_t examples, int64_t batches,
                                     const common::Histogram& shard_seconds) {
  obs::JsonRecord record;
  record.AddInt("epoch", stats.epoch);
  record.AddDouble("loss", stats.loss);
  record.AddDouble("loss1", stats.loss1);
  record.AddDouble("loss2", stats.loss2);
  record.AddDouble("grad_norm", stats.grad_norm);
  record.AddInt("examples", examples);
  record.AddInt("batches", batches);
  if (telemetry_.eval != nullptr && telemetry_.eval->size() > 0) {
    const EvalResult ev = Evaluate(*telemetry_.eval);
    record.AddDouble("eval_brmse", ev.brmse);
    record.AddDouble("eval_auc", ev.auc);
  }
  if (telemetry_.writer->include_timings()) {
    record.AddDouble("seconds", stats.seconds);
    if (shard_seconds.count() > 0) {
      record.AddInt("shards", shard_seconds.count());
      record.AddDouble("shard_us_mean", shard_seconds.Mean());
      record.AddDouble("shard_us_p95", shard_seconds.Percentile(95.0));
      record.AddDouble("shard_us_max", shard_seconds.Max());
    }
  }
  const common::Status status = telemetry_.writer->Write(record);
  if (!status.ok()) {
    RRRE_LOG_WARNING << "epoch telemetry dropped: " << status.ToString();
  }
}

RrreTrainer::EvalResult RrreTrainer::Evaluate(const data::ReviewDataset& eval) {
  RRRE_CHECK(fitted()) << "call Fit() first";
  RRRE_CHECK_GT(eval.size(), 0);
  // Scoring draws histories through the trainer RNG; snapshot and restore it
  // so instrumented and uninstrumented runs train bitwise identically.
  const auto rng_state = rng_.SerializeState();
  const Predictions preds = PredictDataset(eval);
  rng_.RestoreState(rng_state);
  std::vector<double> targets;
  std::vector<int> labels;
  targets.reserve(static_cast<size_t>(eval.size()));
  labels.reserve(static_cast<size_t>(eval.size()));
  for (const data::Review& r : eval.reviews()) {
    targets.push_back(r.rating);
    labels.push_back(r.is_benign() ? 1 : 0);
  }
  EvalResult out;
  out.brmse = eval::BiasedRmse(preds.ratings, targets, labels);
  out.auc = eval::Auc(preds.reliabilities, labels);
  return out;
}

RrreTrainer::Predictions RrreTrainer::PredictPairs(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  RRRE_CHECK(fitted()) << "call Fit() first";
  Predictions out;
  const int64_t n = static_cast<int64_t>(pairs.size());
  out.ratings.resize(static_cast<size_t>(n));
  out.reliabilities.resize(static_cast<size_t>(n));
  const int64_t bs = config_.batch_size;
  const int64_t num_chunks = (n + bs - 1) / bs;
  // Chunks are forward-only and write disjoint output ranges, so they run
  // concurrently; each gets its rng forked serially up front so history
  // sampling does not depend on chunk scheduling.
  std::vector<Rng> chunk_rngs;
  chunk_rngs.reserve(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) chunk_rngs.push_back(rng_.Fork());
  common::ParallelFor(0, num_chunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      const int64_t start = c * bs;
      const int64_t end = std::min(n, start + bs);
      std::vector<std::pair<int64_t, int64_t>> chunk(pairs.begin() + start,
                                                     pairs.begin() + end);
      RrreModel::Batch batch =
          features_->Build(chunk, chunk_rngs[static_cast<size_t>(c)]);
      RrreModel::Output fwd =
          model_->Forward(batch, /*training=*/false, nullptr);
      for (int64_t i = 0; i < batch.batch_size; ++i) {
        out.ratings[static_cast<size_t>(start + i)] =
            fwd.rating.at(i, 0) + rating_offset_;
        out.reliabilities[static_cast<size_t>(start + i)] =
            fwd.reliability.at(i, 1);
      }
    }
  });
  return out;
}

RrreTrainer::Predictions RrreTrainer::PredictDataset(
    const data::ReviewDataset& reviews) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(static_cast<size_t>(reviews.size()));
  for (const data::Review& r : reviews.reviews()) {
    pairs.emplace_back(r.user, r.item);
  }
  return PredictPairs(pairs);
}

RrreTrainer::Predictions RrreTrainer::PredictDatasetTransductive(
    const data::ReviewDataset& reviews) {
  RRRE_CHECK(fitted()) << "call Fit() first";
  const data::ReviewDataset merged =
      data::ReviewDataset::Merge(*train_, reviews);
  FeatureBuilder merged_features(config_, &merged, vocab_.get());
  Predictions out;
  const int64_t n = reviews.size();
  out.ratings.resize(static_cast<size_t>(n));
  out.reliabilities.resize(static_cast<size_t>(n));
  const int64_t bs = config_.batch_size;
  const int64_t num_chunks = (n + bs - 1) / bs;
  std::vector<Rng> chunk_rngs;
  chunk_rngs.reserve(static_cast<size_t>(num_chunks));
  for (int64_t c = 0; c < num_chunks; ++c) chunk_rngs.push_back(rng_.Fork());
  common::ParallelFor(0, num_chunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      const int64_t start = c * bs;
      const int64_t end = std::min(n, start + bs);
      std::vector<std::pair<int64_t, int64_t>> chunk;
      for (int64_t i = start; i < end; ++i) {
        const data::Review& r = reviews.review(i);
        chunk.emplace_back(r.user, r.item);
      }
      RrreModel::Batch batch =
          merged_features.Build(chunk, chunk_rngs[static_cast<size_t>(c)]);
      RrreModel::Output fwd =
          model_->Forward(batch, /*training=*/false, nullptr);
      for (int64_t i = 0; i < batch.batch_size; ++i) {
        out.ratings[static_cast<size_t>(start + i)] =
            fwd.rating.at(i, 0) + rating_offset_;
        out.reliabilities[static_cast<size_t>(start + i)] =
            fwd.reliability.at(i, 1);
      }
    }
  });
  return out;
}

common::Status RrreTrainer::Save(const std::string& prefix) const {
  if (!fitted()) {
    return common::Status::FailedPrecondition("trainer is not fitted");
  }
  RRRE_RETURN_IF_ERROR(model_->Save(prefix + ".model"));
  RRRE_RETURN_IF_ERROR(vocab_->Save(prefix + ".vocab"));
  RRRE_RETURN_IF_ERROR(train_->SaveTsv(prefix + ".train.tsv"));
  if (optimizer_ != nullptr) {
    RRRE_RETURN_IF_ERROR(
        tensor::SaveTensors(prefix + ".optimizer", optimizer_->StateTensors()));
  }
  // Scalar state. The rating offset is stored as raw IEEE-754 bits (the
  // decimal form is informational only) and the RNG as its full word state,
  // so a Load + Resume replays training bitwise identically.
  std::string meta;
  meta += "format=2\n";
  meta += common::StrFormat("rating_offset_bits=%016llx\n",
                            static_cast<unsigned long long>(
                                std::bit_cast<uint64_t>(rating_offset_)));
  meta += common::StrFormat("rating_offset=%.17g\n", rating_offset_);
  meta += common::StrFormat("epochs_completed=%lld\n",
                            static_cast<long long>(epochs_completed_));
  meta += common::StrFormat("has_optimizer=%d\n", optimizer_ != nullptr);
  meta += "rng=";
  const auto rng_state = rng_.SerializeState();
  for (size_t i = 0; i < rng_state.size(); ++i) {
    meta += common::StrFormat(
        "%s%016llx", i == 0 ? "" : ",",
        static_cast<unsigned long long>(rng_state[i]));
  }
  meta += "\n";
  return common::WriteFile(prefix + ".meta", meta);
}

namespace {

/// Parses the key=value .meta file written by Save (format 2), or the legacy
/// single-number form that held only the rating offset.
struct TrainerMeta {
  double rating_offset = 0.0;
  int64_t epochs_completed = 0;
  bool has_optimizer = false;
  bool has_rng = false;
  std::array<uint64_t, common::Rng::kStateWords> rng_state{};
};

common::Result<TrainerMeta> ParseTrainerMeta(const std::string& content,
                                             const std::string& path) {
  TrainerMeta meta;
  if (content.find('=') == std::string::npos) {  // Legacy scalar-only form.
    meta.rating_offset = std::atof(content.c_str());
    return meta;
  }
  bool have_offset = false;
  for (const std::string& raw : common::Split(content, '\n')) {
    const std::string line(common::Trim(raw));
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return common::Status::InvalidArgument("malformed meta line \"" + line +
                                             "\" in " + path);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      if (value != "2") {
        return common::Status::InvalidArgument(
            "unsupported trainer meta format " + value + " in " + path);
      }
    } else if (key == "rating_offset_bits") {
      uint64_t bits = 0;
      if (std::sscanf(value.c_str(), "%llx",
                      reinterpret_cast<unsigned long long*>(&bits)) != 1) {
        return common::Status::InvalidArgument("bad rating_offset_bits in " +
                                               path);
      }
      meta.rating_offset = std::bit_cast<double>(bits);
      have_offset = true;
    } else if (key == "rating_offset") {
      // Informational duplicate of rating_offset_bits; used only when the
      // exact form is absent.
      if (!have_offset) meta.rating_offset = std::atof(value.c_str());
    } else if (key == "epochs_completed") {
      meta.epochs_completed = std::atoll(value.c_str());
      if (meta.epochs_completed < 0) {
        return common::Status::InvalidArgument("bad epochs_completed in " +
                                               path);
      }
    } else if (key == "has_optimizer") {
      meta.has_optimizer = value == "1";
    } else if (key == "rng") {
      const auto words = common::Split(value, ',');
      if (words.size() != meta.rng_state.size()) {
        return common::Status::InvalidArgument("bad rng state in " + path);
      }
      for (size_t i = 0; i < words.size(); ++i) {
        unsigned long long w = 0;
        if (std::sscanf(words[i].c_str(), "%llx", &w) != 1) {
          return common::Status::InvalidArgument("bad rng state in " + path);
        }
        meta.rng_state[i] = w;
      }
      meta.has_rng = true;
    }
    // Unknown keys are skipped so future formats stay forward-readable.
  }
  return meta;
}

}  // namespace

common::Status RrreTrainer::Load(const std::string& prefix) {
  auto vocab = text::Vocabulary::Load(prefix + ".vocab");
  if (!vocab.ok()) return vocab.status();
  auto train = data::ReviewDataset::LoadTsv(prefix + ".train.tsv");
  if (!train.ok()) return train.status();
  auto meta_content = common::ReadFile(prefix + ".meta");
  if (!meta_content.ok()) return meta_content.status();
  auto meta = ParseTrainerMeta(meta_content.value(), prefix + ".meta");
  if (!meta.ok()) return meta.status();

  vocab_ = std::make_unique<text::Vocabulary>(std::move(vocab).ValueOrDie());
  train_ =
      std::make_unique<data::ReviewDataset>(std::move(train).ValueOrDie());
  rating_offset_ = meta.value().rating_offset;
  epochs_completed_ = meta.value().epochs_completed;

  Rng init_rng = rng_.Fork();
  model_ = std::make_unique<RrreModel>(config_, train_->num_users(),
                                       train_->num_items(), vocab_->size(),
                                       init_rng);
  RRRE_RETURN_IF_ERROR(model_->Load(prefix + ".model"));
  features_ = std::make_unique<FeatureBuilder>(config_, train_.get(),
                                               vocab_.get());
  optimizer_.reset();
  if (meta.value().has_optimizer) {
    auto state = tensor::LoadTensors(prefix + ".optimizer");
    if (!state.ok()) return state.status();
    auto params = config_.freeze_word_vectors
                      ? model_->ParametersWithoutWordTable()
                      : model_->Parameters();
    auto optimizer = std::make_unique<nn::Adam>(params, config_.lr);
    RRRE_RETURN_IF_ERROR(optimizer->LoadStateTensors(state.value()));
    optimizer_ = std::move(optimizer);
  }
  // Restored last: the forks above must not perturb the checkpointed stream.
  if (meta.value().has_rng) rng_.RestoreState(meta.value().rng_state);
  ++params_version_;
  return common::Status::Ok();
}

common::Status RrreTrainer::Resume(EpochCallback callback) {
  if (!fitted()) {
    return common::Status::FailedPrecondition(
        "nothing to resume: trainer is not fitted");
  }
  if (optimizer_ == nullptr) {
    return common::Status::FailedPrecondition(
        "checkpoint carries no optimizer state; it was saved before training "
        "or by a pre-resume version — call Fit to retrain instead");
  }
  if (epochs_completed_ >= config_.epochs) return common::Status::Ok();
  TrainEpochs(epochs_completed_, callback);
  return common::Status::Ok();
}

common::Status RrreTrainer::ResumeWith(const data::ReviewDataset& train,
                                       int64_t extra_epochs,
                                       EpochCallback callback) {
  if (!fitted()) {
    return common::Status::FailedPrecondition(
        "nothing to warm-start from: trainer is not fitted");
  }
  if (optimizer_ == nullptr) {
    return common::Status::FailedPrecondition(
        "checkpoint carries no optimizer state; it was saved before training "
        "or by a pre-resume version — call Fit to retrain instead");
  }
  if (extra_epochs <= 0) {
    return common::Status::InvalidArgument("extra_epochs must be positive");
  }
  if (!train.indexed() || train.size() == 0) {
    return common::Status::InvalidArgument(
        "warm-start corpus must be indexed and non-empty");
  }
  if (train.num_users() != train_->num_users() ||
      train.num_items() != train_->num_items()) {
    return common::Status::FailedPrecondition(
        "warm-start corpus universe differs from the fitted one; the id "
        "embedding tables are sized to the original universe");
  }
  train_ = std::make_unique<data::ReviewDataset>(train);
  features_ = std::make_unique<FeatureBuilder>(config_, train_.get(),
                                               vocab_.get());
  // The vocabulary and rating offset stay pinned to the corpus that fitted
  // them: the FM head learned residuals around that offset, and both values
  // round-trip exactly through Save/Load, which keeps a reloaded warm start
  // bitwise identical to an in-process one.
  config_.epochs = epochs_completed_ + extra_epochs;
  TrainEpochs(epochs_completed_, callback);
  return common::Status::Ok();
}

std::vector<std::string> RrreTrainer::CheckpointSuffixes(bool with_optimizer) {
  std::vector<std::string> suffixes = {".model", ".vocab", ".train.tsv"};
  if (with_optimizer) suffixes.push_back(".optimizer");
  suffixes.push_back(".meta");
  return suffixes;
}

const RrreModel& RrreTrainer::model() const {
  RRRE_CHECK(fitted());
  return *model_;
}

const text::Vocabulary& RrreTrainer::vocab() const {
  RRRE_CHECK(fitted());
  return *vocab_;
}

const data::ReviewDataset& RrreTrainer::train_data() const {
  RRRE_CHECK(fitted());
  return *train_;
}

}  // namespace rrre::core
