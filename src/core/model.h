#ifndef RRRE_CORE_MODEL_H_
#define RRRE_CORE_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/review_encoder.h"
#include "nn/attention.h"
#include "nn/embedding.h"
#include "nn/fm.h"
#include "nn/linear.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::core {

/// The RRRE network (Fig. 1): two parallel review towers (UserNet, ItemNet)
/// that turn a user's and an item's review histories into a profile pair
/// (x_u, y_i), plus two prediction heads — a softmax reliability head
/// (Eq. 9-10) and an FM rating head over ID-augmented profiles (Eq. 12).
class RrreModel : public nn::Module {
 public:
  RrreModel(const RrreConfig& config, int64_t num_users, int64_t num_items,
            int64_t vocab_size, common::Rng& rng);

  /// Flattened mini-batch inputs prepared by FeatureBuilder. Histories are
  /// laid out with each example's slots contiguous; absent slots carry
  /// pad-token rows and a kMaskedScore mask entry.
  struct Batch {
    int64_t batch_size = 0;
    std::vector<int64_t> users;  ///< [B] target user ids.
    std::vector<int64_t> items;  ///< [B] target item ids.

    // UserNet inputs: B*s_u slots.
    std::vector<int64_t> user_hist_tokens;  ///< [B*s_u*T] token ids.
    std::vector<int64_t> user_hist_users;   ///< [B*s_u] writer id per slot.
    std::vector<int64_t> user_hist_items;   ///< [B*s_u] item id per slot.
    std::vector<float> user_hist_mask;      ///< [B*s_u] 0 or kMaskedScore.

    // ItemNet inputs: B*s_i slots.
    std::vector<int64_t> item_hist_tokens;
    std::vector<int64_t> item_hist_users;
    std::vector<int64_t> item_hist_items;
    std::vector<float> item_hist_mask;
  };

  struct Output {
    tensor::Tensor rating;              ///< [B, 1] predicted r_ui.
    tensor::Tensor reliability_logits;  ///< [B, 2]: column 0 fake, 1 benign.
    tensor::Tensor reliability;         ///< [B, 2] softmax; l_ui = col 1.
    tensor::Tensor x_u;                 ///< [B, k] user profiles.
    tensor::Tensor y_i;                 ///< [B, k] item profiles.
    tensor::Tensor user_alphas;         ///< [B, s_u] attention weights.
    tensor::Tensor item_alphas;         ///< [B, s_i] attention weights.
  };

  /// Runs the network. `rng` is only consulted when training && dropout > 0.
  Output Forward(const Batch& batch, bool training, common::Rng* rng) const;

  // -- Split forward (tower caching) ------------------------------------------
  // x_u depends only on the user's history and y_i only on the item's
  // (masked padding slots make the profiles independent of the paired
  // counterpart), so towers can be computed once per user/item and reused
  // across pairs — the fast path for full-catalog scoring.

  /// UserNet only: profiles [B, k] from the batch's user-history fields.
  tensor::Tensor ComputeUserProfiles(const Batch& batch) const;
  /// ItemNet only: profiles [B, k] from the batch's item-history fields.
  tensor::Tensor ComputeItemProfiles(const Batch& batch) const;
  /// Heads only: predictions from precomputed profiles x_u, y_i ([B, k]
  /// each) and the target ids. Equivalent to Forward at inference.
  Output ForwardFromProfiles(const tensor::Tensor& x_u,
                             const tensor::Tensor& y_i,
                             const std::vector<int64_t>& users,
                             const std::vector<int64_t>& items) const;

  const RrreConfig& config() const { return config_; }
  nn::Embedding& word_embedding() { return word_embedding_; }
  const nn::Embedding& word_embedding() const { return word_embedding_; }

  /// Trainable parameters excluding the word table (used when the pretrained
  /// vectors are frozen).
  std::vector<tensor::Tensor> ParametersWithoutWordTable() const;

 private:
  /// One tower (UserNet or ItemNet): encode slots, attend, pool, project.
  struct TowerOutput {
    tensor::Tensor profile;  ///< [B, k]
    tensor::Tensor alphas;   ///< [B, s]
  };
  TowerOutput RunTower(const ReviewEncoder& encoder,
                       const nn::FraudAttention& attention,
                       const nn::Linear& projection,
                       const std::vector<int64_t>& tokens,
                       const std::vector<int64_t>& writer_ids,
                       const std::vector<int64_t>& item_ids,
                       const std::vector<float>& mask, int64_t group_size,
                       int64_t batch_size) const;

  RrreConfig config_;
  nn::Embedding word_embedding_;  ///< Shared pretrained word vectors.
  nn::Embedding user_id_embedding_;
  nn::Embedding item_id_embedding_;
  ReviewEncoder user_encoder_;
  ReviewEncoder item_encoder_;
  nn::FraudAttention user_attention_;
  nn::FraudAttention item_attention_;
  nn::Linear user_projection_;  ///< W_f, b_f of Eq. 8.
  nn::Linear item_projection_;
  nn::Linear reliability_head_;  ///< W, b of Eq. 9.
  nn::Linear rating_user_map_;   ///< W_h of Eq. 12 (no bias).
  nn::Linear rating_item_map_;   ///< W_e of Eq. 12 (no bias).
  nn::FactorizationMachine fm_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_MODEL_H_
