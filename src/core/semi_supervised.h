#ifndef RRRE_CORE_SEMI_SUPERVISED_H_
#define RRRE_CORE_SEMI_SUPERVISED_H_

#include <cstdint>
#include <vector>

#include "core/trainer.h"
#include "data/dataset.h"

namespace rrre::core {

/// Configuration of the self-training extension.
struct SemiSupervisedConfig {
  RrreConfig base;          ///< The underlying RRRE configuration.
  int64_t rounds = 1;       ///< Pseudo-labeling rounds after the initial fit.
  /// A review is pseudo-labeled benign when its predicted reliability is at
  /// least `confidence`, fake when at most 1 - confidence; anything in
  /// between stays unused.
  double confidence = 0.9;
};

/// Self-training RRRE — the semi-supervised extension the paper names as
/// future work (Sec. V): fit on the labeled subset, transductively score
/// the unlabeled reviews, adopt confident predictions as pseudo-labels,
/// and refit on the enlarged corpus. Lets the model absorb new users and
/// items that arrive without filter labels.
class SemiSupervisedRrre {
 public:
  explicit SemiSupervisedRrre(SemiSupervisedConfig config);

  struct RoundStats {
    int64_t round = 0;          ///< 0 = the supervised warm-up fit.
    int64_t pseudo_benign = 0;  ///< Unlabeled reviews adopted as benign.
    int64_t pseudo_fake = 0;    ///< Unlabeled reviews adopted as fake.
  };

  /// `labeled` carries trusted labels; `unlabeled` shares the same
  /// user/item universe and its labels are ignored. After Fit the inner
  /// trainer predicts as usual.
  void Fit(const data::ReviewDataset& labeled,
           const data::ReviewDataset& unlabeled);

  RrreTrainer& trainer() { return trainer_; }
  const std::vector<RoundStats>& round_stats() const { return round_stats_; }

 private:
  SemiSupervisedConfig config_;
  RrreTrainer trainer_;
  std::vector<RoundStats> round_stats_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_SEMI_SUPERVISED_H_
