#ifndef RRRE_CORE_SERVING_H_
#define RRRE_CORE_SERVING_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/config.h"
#include "core/trainer.h"

namespace rrre::core {

/// Options for the train-once/serve-many batch scoring entry point behind
/// the `rrre_serve` tool: load a checkpoint, prime the tower-cached
/// BatchScorer, score a TSV of requests, emit rating + reliability TSV.
struct ServeOptions {
  /// Checkpoint prefix as passed to RrreTrainer::Save / Load.
  std::string model_prefix;
  /// Request TSV. Pair mode: one "user<TAB>item" per line. Catalog mode:
  /// one "user" per line, expanded to the full item catalog. A leading
  /// header row ("user[<TAB>item]"), '#' comment lines, and blank or
  /// whitespace-only lines are skipped; CRLF line endings are accepted.
  std::string input_path;
  /// Output TSV: header then "user<TAB>item<TAB>rating<TAB>reliability"
  /// rows aligned with the expanded request order. Values are printed with
  /// enough digits to round-trip doubles exactly.
  std::string output_path;
  /// True: each request line is a bare user id scored against every item.
  bool catalog = false;
  /// Pairs per scoring batch. Towers are still primed once up front; this
  /// chunks the prediction-head sweep so ServeStats can report a per-batch
  /// latency distribution. 0 = one batch. Chunking never changes scores.
  int64_t score_batch = 1024;
  /// When non-empty, score from this materialized tower store instead of
  /// running the towers (see core/tower_store.h). The store must have been
  /// built from the same checkpoint (params fingerprint is verified); the
  /// output TSV is byte-identical to live-tower serving.
  std::string store_path;
};

struct ServeStats {
  int64_t num_requests = 0;   ///< Request lines read (after header/comments).
  int64_t num_scored = 0;     ///< (user, item) pairs scored.
  int64_t users_primed = 0;   ///< Distinct user tower profiles computed.
  int64_t items_primed = 0;   ///< Distinct item tower profiles computed.
  bool store_backed = false;  ///< Profiles came from a mapped tower store.
  double seconds = 0.0;       ///< Wall-clock scoring time (excludes load).
  int64_t num_batches = 0;    ///< Scoring batches of <= score_batch pairs.
  /// Per-batch prediction-head latency (towers are primed up front, outside
  /// the batches); query Percentile(50/95/99) for the tool's summary line.
  common::Histogram batch_latency_us;
};

/// Parses a request TSV (see ServeOptions::input_path) and expands it into
/// explicit (user, item) pairs, validating every id against the trainer's
/// corpus bounds. Errors carry the offending line number.
common::Result<std::vector<std::pair<int64_t, int64_t>>> ReadScoreRequests(
    const std::string& path, bool catalog, int64_t num_users,
    int64_t num_items, int64_t* num_requests = nullptr);

/// Scores the requests in `options` with a tower-cached BatchScorer over the
/// already-loaded `trainer` and writes the output TSV. The scorer primes
/// each distinct user/item tower once — O(users + items) tower work plus
/// cheap per-pair heads — so full-catalog sweeps cost far less than the
/// naive per-pair pipeline.
common::Result<ServeStats> ServeBatch(RrreTrainer& trainer,
                                      const ServeOptions& options);

/// Convenience used by the CLI: constructs a trainer from `config`, loads
/// `options.model_prefix`, and runs ServeBatch.
common::Result<ServeStats> LoadAndServe(const RrreConfig& config,
                                        const ServeOptions& options);

}  // namespace rrre::core

#endif  // RRRE_CORE_SERVING_H_
