#include "core/scorer.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace rrre::core {

using tensor::Tensor;

BatchScorer::BatchScorer(RrreTrainer* trainer)
    : trainer_(trainer),
      features_(trainer->config(), &trainer->train_data(),
                &trainer->vocab()),
      rng_(trainer->config().seed ^ 0xca11ab1eULL),
      profile_dim_(trainer->config().rev_dim),
      params_version_(trainer->params_version()) {
  RRRE_CHECK(trainer != nullptr);
  RRRE_CHECK(trainer->fitted()) << "fit the trainer before scoring";
}

void BatchScorer::Invalidate() {
  user_profiles_.clear();
  item_profiles_.clear();
  // Re-bind the feature builder too: Fit and Load replace the trainer's
  // corpus and vocabulary outright, so the pointers captured at
  // construction would dangle.
  features_ = FeatureBuilder(trainer_->config(), &trainer_->train_data(),
                             &trainer_->vocab());
  params_version_ = trainer_->params_version();
}

void BatchScorer::CheckNotStale() const {
  RRRE_CHECK_EQ(trainer_->params_version(), params_version_)
      << "BatchScorer caches are stale: the trainer's parameters changed "
         "since this scorer was created — call Invalidate() first";
}

void BatchScorer::PrimeUsers(const std::vector<int64_t>& users) {
  CheckNotStale();
  std::vector<int64_t> missing;
  for (int64_t u : users) {
    if (!user_profiles_.count(u)) missing.push_back(u);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  const int64_t chunk_size = trainer_->config().batch_size;
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(chunk_size));
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (size_t i = start; i < end; ++i) {
      pairs.emplace_back(missing[i], 0);  // Item id is inert for UserNet.
    }
    const auto batch = features_.Build(pairs, rng_);
    Tensor profiles = trainer_->model().ComputeUserProfiles(batch);
    for (size_t i = start; i < end; ++i) {
      const int64_t row = static_cast<int64_t>(i - start);
      std::vector<float> p(static_cast<size_t>(profile_dim_));
      for (int64_t c = 0; c < profile_dim_; ++c) p[static_cast<size_t>(c)] = profiles.at(row, c);
      user_profiles_.emplace(missing[i], std::move(p));
    }
  }
}

void BatchScorer::PrimeItems(const std::vector<int64_t>& items) {
  CheckNotStale();
  std::vector<int64_t> missing;
  for (int64_t i : items) {
    if (!item_profiles_.count(i)) missing.push_back(i);
  }
  std::sort(missing.begin(), missing.end());
  missing.erase(std::unique(missing.begin(), missing.end()), missing.end());
  const int64_t chunk_size = trainer_->config().batch_size;
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(chunk_size));
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (size_t i = start; i < end; ++i) {
      pairs.emplace_back(0, missing[i]);  // User id is inert for ItemNet.
    }
    const auto batch = features_.Build(pairs, rng_);
    Tensor profiles = trainer_->model().ComputeItemProfiles(batch);
    for (size_t i = start; i < end; ++i) {
      const int64_t row = static_cast<int64_t>(i - start);
      std::vector<float> p(static_cast<size_t>(profile_dim_));
      for (int64_t c = 0; c < profile_dim_; ++c) p[static_cast<size_t>(c)] = profiles.at(row, c);
      item_profiles_.emplace(missing[i], std::move(p));
    }
  }
}

RrreTrainer::Predictions BatchScorer::Score(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  CheckNotStale();
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  users.reserve(pairs.size());
  items.reserve(pairs.size());
  for (const auto& [u, i] : pairs) {
    users.push_back(u);
    items.push_back(i);
  }
  PrimeUsers(users);
  PrimeItems(items);

  RrreTrainer::Predictions out;
  out.ratings.reserve(pairs.size());
  out.reliabilities.reserve(pairs.size());
  const int64_t chunk_size = trainer_->config().batch_size;
  const int64_t n = static_cast<int64_t>(pairs.size());
  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t end = std::min(n, start + chunk_size);
    const int64_t b = end - start;
    std::vector<float> xu(static_cast<size_t>(b * profile_dim_));
    std::vector<float> yi(static_cast<size_t>(b * profile_dim_));
    std::vector<int64_t> chunk_users;
    std::vector<int64_t> chunk_items;
    for (int64_t e = 0; e < b; ++e) {
      const auto& [u, i] = pairs[static_cast<size_t>(start + e)];
      chunk_users.push_back(u);
      chunk_items.push_back(i);
      const auto& up = user_profiles_.at(u);
      const auto& ip = item_profiles_.at(i);
      std::copy(up.begin(), up.end(),
                xu.begin() + e * profile_dim_);
      std::copy(ip.begin(), ip.end(),
                yi.begin() + e * profile_dim_);
    }
    auto fwd = trainer_->model().ForwardFromProfiles(
        Tensor::FromVector({b, profile_dim_}, std::move(xu)),
        Tensor::FromVector({b, profile_dim_}, std::move(yi)), chunk_users,
        chunk_items);
    for (int64_t e = 0; e < b; ++e) {
      out.ratings.push_back(fwd.rating.at(e, 0) + trainer_->rating_offset());
      out.reliabilities.push_back(fwd.reliability.at(e, 1));
    }
  }
  return out;
}

RrreTrainer::Predictions BatchScorer::ScoreAllItemsForUser(int64_t user) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  const int64_t num_items = trainer_->train_data().num_items();
  pairs.reserve(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(user, i);
  return Score(pairs);
}

}  // namespace rrre::core
