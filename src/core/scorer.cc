#include "core/scorer.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/tensor.h"

namespace rrre::core {

using tensor::Tensor;

void BatchScorer::ProfileCache::Touch(int64_t id) {
  auto it = index_.find(id);
  RRRE_CHECK(it != index_.end());
  lru_.splice(lru_.begin(), lru_, it->second);
}

const std::vector<float>& BatchScorer::ProfileCache::At(int64_t id) const {
  auto it = index_.find(id);
  RRRE_CHECK(it != index_.end()) << "profile for id " << id << " not cached";
  return it->second->second;
}

int64_t BatchScorer::ProfileCache::Insert(int64_t id,
                                          std::vector<float> profile,
                                          int64_t cap) {
  auto it = index_.find(id);
  if (it != index_.end()) {
    it->second->second = std::move(profile);
    lru_.splice(lru_.begin(), lru_, it->second);
    return 0;
  }
  lru_.emplace_front(id, std::move(profile));
  index_[id] = lru_.begin();
  int64_t evicted = 0;
  while (cap > 0 && static_cast<int64_t>(index_.size()) > cap) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
    ++evicted;
  }
  return evicted;
}

void BatchScorer::ProfileCache::Clear() {
  lru_.clear();
  index_.clear();
}

BatchScorer::BatchScorer(RrreTrainer* trainer)
    : BatchScorer(trainer, Options()) {}

BatchScorer::BatchScorer(RrreTrainer* trainer, Options options)
    : trainer_(trainer),
      options_(options),
      features_(trainer->config(), &trainer->train_data(),
                &trainer->vocab()),
      rng_(trainer->config().seed ^ 0xca11ab1eULL),
      profile_dim_(trainer->config().rev_dim),
      params_version_(trainer->params_version()) {
  RRRE_CHECK(trainer != nullptr);
  RRRE_CHECK(trainer->fitted()) << "fit the trainer before scoring";
  RRRE_CHECK_GE(options_.tower_cache_cap, 0);
}

void BatchScorer::AttachStore(std::shared_ptr<const TowerStore> store) {
  RRRE_CHECK(store != nullptr);
  RRRE_CHECK_EQ(store->dim(), profile_dim_)
      << "store profile dim does not match the model's rev_dim";
  RRRE_CHECK_EQ(store->num_users(), trainer_->train_data().num_users());
  RRRE_CHECK_EQ(store->num_items(), trainer_->train_data().num_items());
  store_ = std::move(store);
}

void BatchScorer::Invalidate() {
  // A store is bound to one set of parameters just like the caches are; the
  // caller re-attaches a freshly validated store after a reload.
  store_.reset();
  user_profiles_.Clear();
  item_profiles_.Clear();
  // Re-bind the feature builder too: Fit and Load replace the trainer's
  // corpus and vocabulary outright, so the pointers captured at
  // construction would dangle.
  features_ = FeatureBuilder(trainer_->config(), &trainer_->train_data(),
                             &trainer_->vocab());
  params_version_ = trainer_->params_version();
}

void BatchScorer::CheckNotStale() const {
  RRRE_CHECK_EQ(trainer_->params_version(), params_version_)
      << "BatchScorer caches are stale: the trainer's parameters changed "
         "since this scorer was created — call Invalidate() first";
}

int64_t BatchScorer::EffectiveCap() const {
  if (options_.tower_cache_cap == 0) return 0;
  return std::max(options_.tower_cache_cap, trainer_->config().batch_size);
}

void BatchScorer::PrimeUsers(const std::vector<int64_t>& users) {
  CheckNotStale();
  if (store_ != nullptr) return;  // Every profile is already materialized.
  std::vector<int64_t> distinct = users;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<int64_t> missing;
  for (int64_t u : distinct) {
    if (user_profiles_.Contains(u)) {
      // Touching hits first moves the whole working set to the MRU end, so
      // the inserts below can only evict ids outside this Prime call.
      ++user_stats_.hits;
      user_profiles_.Touch(u);
    } else {
      ++user_stats_.misses;
      missing.push_back(u);
    }
  }
  const int64_t chunk_size = trainer_->config().batch_size;
  const int64_t cap = EffectiveCap();
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(chunk_size));
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (size_t i = start; i < end; ++i) {
      pairs.emplace_back(missing[i], 0);  // Item id is inert for UserNet.
    }
    const auto batch = features_.Build(pairs, rng_);
    Tensor profiles = trainer_->model().ComputeUserProfiles(batch);
    for (size_t i = start; i < end; ++i) {
      const int64_t row = static_cast<int64_t>(i - start);
      std::vector<float> p(static_cast<size_t>(profile_dim_));
      for (int64_t c = 0; c < profile_dim_; ++c) {
        p[static_cast<size_t>(c)] = profiles.at(row, c);
      }
      user_stats_.evictions +=
          user_profiles_.Insert(missing[i], std::move(p), cap);
    }
  }
}

void BatchScorer::PrimeItems(const std::vector<int64_t>& items) {
  CheckNotStale();
  if (store_ != nullptr) return;  // Every profile is already materialized.
  std::vector<int64_t> distinct = items;
  std::sort(distinct.begin(), distinct.end());
  distinct.erase(std::unique(distinct.begin(), distinct.end()),
                 distinct.end());
  std::vector<int64_t> missing;
  for (int64_t i : distinct) {
    if (item_profiles_.Contains(i)) {
      ++item_stats_.hits;
      item_profiles_.Touch(i);
    } else {
      ++item_stats_.misses;
      missing.push_back(i);
    }
  }
  const int64_t chunk_size = trainer_->config().batch_size;
  const int64_t cap = EffectiveCap();
  for (size_t start = 0; start < missing.size();
       start += static_cast<size_t>(chunk_size)) {
    const size_t end =
        std::min(missing.size(), start + static_cast<size_t>(chunk_size));
    std::vector<std::pair<int64_t, int64_t>> pairs;
    for (size_t i = start; i < end; ++i) {
      pairs.emplace_back(0, missing[i]);  // User id is inert for ItemNet.
    }
    const auto batch = features_.Build(pairs, rng_);
    Tensor profiles = trainer_->model().ComputeItemProfiles(batch);
    for (size_t i = start; i < end; ++i) {
      const int64_t row = static_cast<int64_t>(i - start);
      std::vector<float> p(static_cast<size_t>(profile_dim_));
      for (int64_t c = 0; c < profile_dim_; ++c) {
        p[static_cast<size_t>(c)] = profiles.at(row, c);
      }
      item_stats_.evictions +=
          item_profiles_.Insert(missing[i], std::move(p), cap);
    }
  }
}

RrreTrainer::Predictions BatchScorer::Score(
    const std::vector<std::pair<int64_t, int64_t>>& pairs) {
  CheckNotStale();
  RrreTrainer::Predictions out;
  out.ratings.reserve(pairs.size());
  out.reliabilities.reserve(pairs.size());
  const int64_t chunk_size = trainer_->config().batch_size;
  const int64_t n = static_cast<int64_t>(pairs.size());
  for (int64_t start = 0; start < n; start += chunk_size) {
    const int64_t end = std::min(n, start + chunk_size);
    const int64_t b = end - start;
    std::vector<int64_t> chunk_users;
    std::vector<int64_t> chunk_items;
    for (int64_t e = 0; e < b; ++e) {
      const auto& [u, i] = pairs[static_cast<size_t>(start + e)];
      chunk_users.push_back(u);
      chunk_items.push_back(i);
    }
    std::vector<float> xu(static_cast<size_t>(b * profile_dim_));
    std::vector<float> yi(static_cast<size_t>(b * profile_dim_));
    if (store_ != nullptr) {
      // Store-backed fast path: copy rows straight out of the mapped file —
      // no tower work, no cache traffic. The store holds exactly the bytes
      // the towers would produce, so the scores below are bitwise identical
      // to the live-tower path.
      for (int64_t e = 0; e < b; ++e) {
        const float* up = store_->user_profile(chunk_users[static_cast<size_t>(e)]);
        const float* ip = store_->item_profile(chunk_items[static_cast<size_t>(e)]);
        std::copy(up, up + profile_dim_, xu.begin() + e * profile_dim_);
        std::copy(ip, ip + profile_dim_, yi.begin() + e * profile_dim_);
      }
    } else {
      // Prime per chunk, not per call: a chunk holds at most chunk_size
      // distinct ids and the caches hold at least that many (EffectiveCap),
      // so nothing this chunk needs can be evicted before it is read back
      // below.
      PrimeUsers(chunk_users);
      PrimeItems(chunk_items);
      for (int64_t e = 0; e < b; ++e) {
        const auto& up =
            user_profiles_.At(chunk_users[static_cast<size_t>(e)]);
        const auto& ip =
            item_profiles_.At(chunk_items[static_cast<size_t>(e)]);
        std::copy(up.begin(), up.end(), xu.begin() + e * profile_dim_);
        std::copy(ip.begin(), ip.end(), yi.begin() + e * profile_dim_);
      }
    }
    auto fwd = trainer_->model().ForwardFromProfiles(
        Tensor::FromVector({b, profile_dim_}, std::move(xu)),
        Tensor::FromVector({b, profile_dim_}, std::move(yi)), chunk_users,
        chunk_items);
    for (int64_t e = 0; e < b; ++e) {
      out.ratings.push_back(fwd.rating.at(e, 0) + trainer_->rating_offset());
      out.reliabilities.push_back(fwd.reliability.at(e, 1));
    }
  }
  return out;
}

RrreTrainer::Predictions BatchScorer::ScoreAllItemsForUser(int64_t user) {
  std::vector<std::pair<int64_t, int64_t>> pairs;
  const int64_t num_items = trainer_->train_data().num_items();
  pairs.reserve(static_cast<size_t>(num_items));
  for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(user, i);
  return Score(pairs);
}

}  // namespace rrre::core
