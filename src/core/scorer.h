#ifndef RRRE_CORE_SCORER_H_
#define RRRE_CORE_SCORER_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/features.h"
#include "core/tower_store.h"
#include "core/trainer.h"

namespace rrre::core {

/// Tower-cached batch scorer — the fast path for catalog-scale scoring that
/// the paper's Sec. V scalability remark asks for.
///
/// A user profile x_u depends only on the user's review history and an item
/// profile y_i only on the item's (padding slots are masked out of the
/// attention, so neither depends on the paired counterpart). The scorer
/// therefore runs each tower once per distinct user/item, caches the
/// profiles, and evaluates only the cheap prediction heads per pair —
/// O(users + items) tower work instead of O(pairs).
///
/// Results are numerically identical to RrreTrainer::PredictPairs.
///
/// The caches can be bounded (Options::tower_cache_cap) for long-lived
/// servers: entries are evicted in least-recently-used order, and because a
/// profile is a pure function of the id and the bound parameters (the
/// serving default kLatest history sampling draws nothing from the Rng),
/// recomputing an evicted profile is bitwise identical to the cached copy —
/// capped and unbounded scorers produce identical scores.
class BatchScorer {
 public:
  struct Options {
    /// Maximum cached profiles per tower (users and items independently);
    /// 0 = unbounded, preserving offline rrre_serve behaviour. Positive caps
    /// are clamped up to the scoring chunk size (config batch_size): Score
    /// primes one chunk at a time and a smaller cap could evict a profile
    /// the current chunk still needs.
    int64_t tower_cache_cap = 0;
  };

  /// Cumulative cache-effectiveness counters for one tower. A Prime call
  /// counts each distinct requested id as one hit or one miss.
  struct CacheStats {
    int64_t hits = 0;
    int64_t misses = 0;
    int64_t evictions = 0;
  };

  /// `trainer` must be fitted and outlive the scorer. Cached profiles snap
  /// the model's parameters at construction time: the scorer records the
  /// trainer's params_version() and every scoring call checks it, so using
  /// a scorer after further training (or a checkpoint Load) is a hard error
  /// rather than silently stale scores. Call Invalidate() to drop the
  /// caches and re-bind to the current parameters.
  explicit BatchScorer(RrreTrainer* trainer);
  BatchScorer(RrreTrainer* trainer, Options options);

  /// Drops all cached profiles and re-snapshots the trainer's parameter
  /// version — call after the trainer's parameters changed (more training,
  /// a checkpoint Load) to keep using the same scorer.
  void Invalidate();

  /// Switches Score to store-backed mode: profiles are read straight out of
  /// the mapped TowerStore instead of being computed by the towers — the
  /// FM-head-over-two-dot-products fast path, O(dim) per pair with zero
  /// tower work. The store must have been built from the trainer's current
  /// parameters (use MapTowerStoreForCheckpoint) and cover its corpus;
  /// geometry is checked here, parameter identity is the caller's contract.
  /// Because the store holds exactly the bytes the towers produce, store
  /// -backed scores are bitwise identical to live-tower scores.
  /// Invalidate() detaches the store along with the caches.
  void AttachStore(std::shared_ptr<const TowerStore> store);
  bool store_backed() const { return store_ != nullptr; }

  /// Precomputes profiles for the given ids (idempotent per id). No-ops in
  /// store-backed mode — every profile is already materialized.
  void PrimeUsers(const std::vector<int64_t>& users);
  void PrimeItems(const std::vector<int64_t>& items);

  /// Scores arbitrary pairs, priming any missing profiles on demand.
  RrreTrainer::Predictions Score(
      const std::vector<std::pair<int64_t, int64_t>>& pairs);

  /// Convenience: scores user x every item; returns predictions aligned
  /// with item ids 0..num_items-1.
  RrreTrainer::Predictions ScoreAllItemsForUser(int64_t user);

  int64_t cached_users() const { return user_profiles_.size(); }
  int64_t cached_items() const { return item_profiles_.size(); }

  const CacheStats& user_cache_stats() const { return user_stats_; }
  const CacheStats& item_cache_stats() const { return item_stats_; }

 private:
  /// LRU map from id to cached tower profile: an unordered_map index over an
  /// intrusive recency list (front = most recently used). Insertions evict
  /// from the back once `cap` entries are held.
  class ProfileCache {
   public:
    bool Contains(int64_t id) const { return index_.count(id) != 0; }

    /// Marks an existing entry most-recently-used.
    void Touch(int64_t id);

    /// Profile of a cached id. Requires Contains(id).
    const std::vector<float>& At(int64_t id) const;

    /// Inserts `id` as most-recently-used and evicts least-recently-used
    /// entries down to `cap` (0 = unbounded). Returns evictions performed.
    int64_t Insert(int64_t id, std::vector<float> profile, int64_t cap);

    void Clear();
    int64_t size() const { return static_cast<int64_t>(index_.size()); }

   private:
    using Entry = std::pair<int64_t, std::vector<float>>;
    std::list<Entry> lru_;  ///< front = MRU, back = next eviction victim.
    std::unordered_map<int64_t, std::list<Entry>::iterator> index_;
  };

  /// Fatal unless the trainer's parameters are still the ones the cached
  /// profiles were computed from.
  void CheckNotStale() const;

  /// tower_cache_cap clamped up to the chunk size (0 stays unbounded).
  int64_t EffectiveCap() const;

  RrreTrainer* trainer_;
  Options options_;
  /// Non-null in store-backed mode; shared so a hot reload can swap the
  /// batcher's store while an old scorer still drains.
  std::shared_ptr<const TowerStore> store_;
  FeatureBuilder features_;
  common::Rng rng_;
  int64_t profile_dim_;
  /// trainer_->params_version() the caches are bound to.
  int64_t params_version_;
  ProfileCache user_profiles_;
  ProfileCache item_profiles_;
  CacheStats user_stats_;
  CacheStats item_stats_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_SCORER_H_
