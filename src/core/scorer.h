#ifndef RRRE_CORE_SCORER_H_
#define RRRE_CORE_SCORER_H_

#include <cstdint>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/features.h"
#include "core/trainer.h"

namespace rrre::core {

/// Tower-cached batch scorer — the fast path for catalog-scale scoring that
/// the paper's Sec. V scalability remark asks for.
///
/// A user profile x_u depends only on the user's review history and an item
/// profile y_i only on the item's (padding slots are masked out of the
/// attention, so neither depends on the paired counterpart). The scorer
/// therefore runs each tower once per distinct user/item, caches the
/// profiles, and evaluates only the cheap prediction heads per pair —
/// O(users + items) tower work instead of O(pairs).
///
/// Results are numerically identical to RrreTrainer::PredictPairs.
class BatchScorer {
 public:
  /// `trainer` must be fitted and outlive the scorer. Cached profiles snap
  /// the model's parameters at construction time: the scorer records the
  /// trainer's params_version() and every scoring call checks it, so using
  /// a scorer after further training (or a checkpoint Load) is a hard error
  /// rather than silently stale scores. Call Invalidate() to drop the
  /// caches and re-bind to the current parameters.
  explicit BatchScorer(RrreTrainer* trainer);

  /// Drops all cached profiles and re-snapshots the trainer's parameter
  /// version — call after the trainer's parameters changed (more training,
  /// a checkpoint Load) to keep using the same scorer.
  void Invalidate();

  /// Precomputes profiles for the given ids (idempotent per id).
  void PrimeUsers(const std::vector<int64_t>& users);
  void PrimeItems(const std::vector<int64_t>& items);

  /// Scores arbitrary pairs, priming any missing profiles on demand.
  RrreTrainer::Predictions Score(
      const std::vector<std::pair<int64_t, int64_t>>& pairs);

  /// Convenience: scores user x every item; returns predictions aligned
  /// with item ids 0..num_items-1.
  RrreTrainer::Predictions ScoreAllItemsForUser(int64_t user);

  int64_t cached_users() const {
    return static_cast<int64_t>(user_profiles_.size());
  }
  int64_t cached_items() const {
    return static_cast<int64_t>(item_profiles_.size());
  }

 private:
  /// Fatal unless the trainer's parameters are still the ones the cached
  /// profiles were computed from.
  void CheckNotStale() const;

  RrreTrainer* trainer_;
  FeatureBuilder features_;
  common::Rng rng_;
  int64_t profile_dim_;
  /// trainer_->params_version() the caches are bound to.
  int64_t params_version_;
  /// Cached tower outputs, one k-vector per id.
  std::unordered_map<int64_t, std::vector<float>> user_profiles_;
  std::unordered_map<int64_t, std::vector<float>> item_profiles_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_SCORER_H_
