#ifndef RRRE_CORE_RECOMMENDER_H_
#define RRRE_CORE_RECOMMENDER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/trainer.h"

namespace rrre::core {

/// An item surfaced to a user, with the scores that ranked it.
struct RecommendedItem {
  int64_t item = -1;
  double rating = 0.0;
  double reliability = 0.0;
};

/// A review selected as the explanation for a recommended item.
struct ReviewExplanation {
  int64_t review_index = -1;  ///< Index into the training corpus.
  int64_t user = -1;          ///< The review's writer.
  double rating = 0.0;        ///< Predicted rating of (writer, item).
  double reliability = 0.0;   ///< Predicted reliability of (writer, item).
  std::string text;           ///< The review content shown to the customer.
};

/// The recommendation/explanation pipeline of Sec. III-B: rank by predicted
/// rating, keep the top candidates, re-rank those by predicted reliability
/// so customers see well-rated items backed by trustworthy reviews.
class ReliableRecommender {
 public:
  /// `trainer` must be fitted and outlive the recommender.
  explicit ReliableRecommender(RrreTrainer* trainer);

  /// Recommends `top_k` items for a user. `candidate_pool` is the size of
  /// the rating-ranked candidate set before the reliability re-rank; the
  /// paper uses candidate_pool == top_k (pass -1 for that default). Items
  /// the user already reviewed in training are skipped when
  /// `exclude_seen` is true.
  std::vector<RecommendedItem> Recommend(int64_t user, int64_t top_k,
                                         int64_t candidate_pool = -1,
                                         bool exclude_seen = true);

  /// Selects `top_k` reviews of an item as explanations: scores every
  /// training review of the item via its (writer, item) pair, takes the
  /// `candidate_pool` highest-rated, then re-ranks by reliability so fake
  /// praise is filtered out (Table VIII's scenario).
  std::vector<ReviewExplanation> Explain(int64_t item, int64_t top_k,
                                         int64_t candidate_pool = -1);

 private:
  RrreTrainer* trainer_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_RECOMMENDER_H_
