#include "core/review_encoder.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace rrre::core {

using tensor::Tensor;

ReviewEncoder::ReviewEncoder(nn::Embedding* word_embedding,
                             int64_t max_tokens, int64_t rev_dim,
                             common::Rng& rng)
    : word_embedding_(word_embedding),
      max_tokens_(max_tokens),
      encoder_(word_embedding->dim(), rev_dim / 2, rng) {
  RRRE_CHECK(word_embedding != nullptr);
  RRRE_CHECK_EQ(rev_dim % 2, 0) << "rev_dim must be even (BiLSTM concat)";
  RRRE_CHECK_GT(max_tokens, 0);
  RegisterModule("bilstm", &encoder_);
  // word_embedding is registered by the owning model, not here, to avoid
  // duplicating its parameters across UserNet and ItemNet.
}

Tensor ReviewEncoder::Encode(const std::vector<int64_t>& token_ids,
                             int64_t num_slots) const {
  RRRE_CHECK_EQ(static_cast<int64_t>(token_ids.size()),
                num_slots * max_tokens_);
  // One embedding lookup per timestep over the whole slot batch.
  std::vector<Tensor> steps;
  steps.reserve(static_cast<size_t>(max_tokens_));
  std::vector<int64_t> step_ids(static_cast<size_t>(num_slots));
  for (int64_t t = 0; t < max_tokens_; ++t) {
    for (int64_t s = 0; s < num_slots; ++s) {
      step_ids[static_cast<size_t>(s)] =
          token_ids[static_cast<size_t>(s * max_tokens_ + t)];
    }
    steps.push_back(word_embedding_->Forward(step_ids));
  }
  return encoder_.Encode(steps);
}

}  // namespace rrre::core
