#include "core/tower_store.h"

#include <algorithm>
#include <cstring>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "core/features.h"
#include "tensor/serialize.h"
#include "tensor/tensor.h"

namespace rrre::core {

using common::Result;
using common::Status;

namespace {

constexpr char kMagic[8] = {'R', 'R', 'R', 'E', 'T', 'W', 'S', '1'};
constexpr size_t kHeaderBytes = 64;
/// Offsets into the header (see the layout table in tower_store.h).
constexpr size_t kOffHeaderCrc = 8;
constexpr size_t kOffDim = 12;
constexpr size_t kOffNumUsers = 16;
constexpr size_t kOffNumItems = 24;
constexpr size_t kOffFingerprint = 32;
constexpr size_t kOffUserCrc = 40;
constexpr size_t kOffItemCrc = 44;
constexpr size_t kOffReserved = 48;

/// Structural bounds, checked before any count-derived arithmetic. With
/// dim <= 2^16 and counts <= 2^31 every product below fits comfortably in
/// int64, so a hostile header cannot overflow the expected-size computation.
constexpr int64_t kMaxDim = int64_t{1} << 16;
constexpr int64_t kMaxIds = int64_t{1} << 31;

// The library targets little-endian only (same convention as the RRRETNS2
// checkpoint format), so fields are raw memcpy'd.
template <typename T>
void PutField(std::string& buf, size_t offset, T value) {
  std::memcpy(buf.data() + offset, &value, sizeof(T));
}

template <typename T>
T GetField(const uint8_t* base, size_t offset) {
  T value;
  std::memcpy(&value, base + offset, sizeof(T));
  return value;
}

Status Corrupt(const std::string& path, const std::string& what) {
  return Status::InvalidArgument("tower store " + path + ": " + what);
}

}  // namespace

Status TowerStore::WriteFile(const std::string& path, int64_t dim,
                             int64_t num_users, int64_t num_items,
                             uint64_t params_fingerprint,
                             const std::vector<float>& user_profiles,
                             const std::vector<float>& item_profiles) {
  if (dim < 1 || dim > kMaxDim) {
    return Status::InvalidArgument("tower store dim out of range: " +
                                   std::to_string(dim));
  }
  if (num_users < 0 || num_users > kMaxIds || num_items < 0 ||
      num_items > kMaxIds) {
    return Status::InvalidArgument("tower store id count out of range");
  }
  if (static_cast<int64_t>(user_profiles.size()) != num_users * dim ||
      static_cast<int64_t>(item_profiles.size()) != num_items * dim) {
    return Status::InvalidArgument(
        "tower store payload size does not match header counts");
  }
  const size_t user_bytes = user_profiles.size() * sizeof(float);
  const size_t item_bytes = item_profiles.size() * sizeof(float);

  std::string header(kHeaderBytes, '\0');
  std::memcpy(header.data(), kMagic, sizeof(kMagic));
  PutField<uint32_t>(header, kOffDim, static_cast<uint32_t>(dim));
  PutField<int64_t>(header, kOffNumUsers, num_users);
  PutField<int64_t>(header, kOffNumItems, num_items);
  PutField<uint64_t>(header, kOffFingerprint, params_fingerprint);
  PutField<uint32_t>(header, kOffUserCrc,
                     tensor::Crc32(user_profiles.data(), user_bytes));
  PutField<uint32_t>(header, kOffItemCrc,
                     tensor::Crc32(item_profiles.data(), item_bytes));
  // The header CRC covers everything after itself, so a bit flip anywhere in
  // the header — including the reserved tail — is caught before any field is
  // trusted.
  PutField<uint32_t>(
      header, kOffHeaderCrc,
      tensor::Crc32(header.data() + kOffDim, kHeaderBytes - kOffDim));

  common::AtomicFileWriter writer;
  RRRE_RETURN_IF_ERROR(writer.Open(path, /*point_prefix=*/"store"));
  RRRE_RETURN_IF_ERROR(writer.Append(header));
  RRRE_RETURN_IF_ERROR(writer.Append(user_profiles.data(), user_bytes));
  RRRE_RETURN_IF_ERROR(writer.Append(item_profiles.data(), item_bytes));
  return writer.Commit();
}

Result<std::shared_ptr<const TowerStore>> TowerStore::Map(
    const std::string& path) {
  auto file = common::MappedFile::Open(path, /*point_prefix=*/"store");
  if (!file.ok()) return file.status();
  const uint8_t* base = file.value().data();
  const size_t size = file.value().size();

  if (size < kHeaderBytes) {
    return Corrupt(path, "truncated header (" + std::to_string(size) +
                             " bytes, need " + std::to_string(kHeaderBytes) +
                             ")");
  }
  if (std::memcmp(base, kMagic, sizeof(kMagic)) != 0) {
    return Corrupt(path, "bad magic");
  }
  const uint32_t want_header_crc = GetField<uint32_t>(base, kOffHeaderCrc);
  const uint32_t got_header_crc =
      tensor::Crc32(base + kOffDim, kHeaderBytes - kOffDim);
  if (want_header_crc != got_header_crc) {
    return Corrupt(path, "header CRC mismatch");
  }
  const int64_t dim = GetField<uint32_t>(base, kOffDim);
  const int64_t num_users = GetField<int64_t>(base, kOffNumUsers);
  const int64_t num_items = GetField<int64_t>(base, kOffNumItems);
  if (dim < 1 || dim > kMaxDim) {
    return Corrupt(path, "dim out of range: " + std::to_string(dim));
  }
  if (num_users < 0 || num_users > kMaxIds) {
    return Corrupt(path, "user count out of range: " +
                             std::to_string(num_users));
  }
  if (num_items < 0 || num_items > kMaxIds) {
    return Corrupt(path, "item count out of range: " +
                             std::to_string(num_items));
  }
  for (size_t i = kOffReserved; i < kHeaderBytes; ++i) {
    if (base[i] != 0) return Corrupt(path, "reserved header bytes not zero");
  }
  // Counts are bounded above, so these products cannot overflow (<= 2^49).
  const int64_t user_bytes = num_users * dim * int64_t{sizeof(float)};
  const int64_t item_bytes = num_items * dim * int64_t{sizeof(float)};
  const int64_t expected =
      static_cast<int64_t>(kHeaderBytes) + user_bytes + item_bytes;
  if (static_cast<int64_t>(size) < expected) {
    return Corrupt(path, "truncated payload (" + std::to_string(size) +
                             " bytes, need " + std::to_string(expected) + ")");
  }
  if (static_cast<int64_t>(size) > expected) {
    return Corrupt(path, "trailing garbage (" + std::to_string(size) +
                             " bytes, expected exactly " +
                             std::to_string(expected) + ")");
  }
  const uint8_t* user_base = base + kHeaderBytes;
  const uint8_t* item_base = user_base + user_bytes;
  if (tensor::Crc32(user_base, static_cast<size_t>(user_bytes)) !=
      GetField<uint32_t>(base, kOffUserCrc)) {
    return Corrupt(path, "user section CRC mismatch");
  }
  if (tensor::Crc32(item_base, static_cast<size_t>(item_bytes)) !=
      GetField<uint32_t>(base, kOffItemCrc)) {
    return Corrupt(path, "item section CRC mismatch");
  }

  std::shared_ptr<TowerStore> store(new TowerStore());
  store->dim_ = dim;
  store->num_users_ = num_users;
  store->num_items_ = num_items;
  store->params_fingerprint_ = GetField<uint64_t>(base, kOffFingerprint);
  store->file_ = std::move(file).ValueOrDie();
  // Recompute off the moved-to mapping: the pointers must follow file_.
  store->users_ =
      reinterpret_cast<const float*>(store->file_.data() + kHeaderBytes);
  store->items_ = reinterpret_cast<const float*>(store->file_.data() +
                                                 kHeaderBytes + user_bytes);
  return std::shared_ptr<const TowerStore>(std::move(store));
}

const float* TowerStore::user_profile(int64_t user) const {
  RRRE_CHECK(user >= 0 && user < num_users_)
      << "user " << user << " outside the store's [0, " << num_users_ << ")";
  return users_ + user * dim_;
}

const float* TowerStore::item_profile(int64_t item) const {
  RRRE_CHECK(item >= 0 && item < num_items_)
      << "item " << item << " outside the store's [0, " << num_items_ << ")";
  return items_ + item * dim_;
}

Result<uint64_t> CheckpointParamsFingerprint(const std::string& model_prefix) {
  auto bytes = common::ReadFile(model_prefix + ".model");
  if (!bytes.ok()) return bytes.status();
  const uint64_t size32 = static_cast<uint32_t>(bytes.value().size());
  const uint64_t crc =
      tensor::Crc32(bytes.value().data(), bytes.value().size());
  return (size32 << 32) | crc;
}

namespace {

/// Runs one tower over every id in [0, count): chunked by config batch_size
/// exactly like BatchScorer priming, chunks distributed over the global
/// thread pool. `user_tower` selects which history fields drive the batch;
/// the counterpart id in each pair is 0 and inert (masked out of the
/// attention). Writes row-major [count, dim] into `out`.
void ComputeAllProfiles(const RrreTrainer& trainer,
                        const FeatureBuilder& features, bool user_tower,
                        int64_t count, int64_t dim, float* out) {
  const int64_t bs = std::max<int64_t>(1, trainer.config().batch_size);
  const int64_t num_chunks = (count + bs - 1) / bs;
  common::ParallelFor(0, num_chunks, 1, [&](int64_t lo, int64_t hi) {
    for (int64_t c = lo; c < hi; ++c) {
      const int64_t start = c * bs;
      const int64_t end = std::min(count, start + bs);
      std::vector<std::pair<int64_t, int64_t>> pairs;
      pairs.reserve(static_cast<size_t>(end - start));
      for (int64_t id = start; id < end; ++id) {
        pairs.emplace_back(user_tower ? id : 0, user_tower ? 0 : id);
      }
      // kLatest sampling draws nothing from the Rng (enforced by the
      // caller), so a per-chunk Rng cannot perturb the profiles.
      common::Rng rng(trainer.config().seed ^ 0xca11ab1eULL ^
                      static_cast<uint64_t>(c));
      const RrreModel::Batch batch = features.Build(pairs, rng);
      const tensor::Tensor profiles =
          user_tower ? trainer.model().ComputeUserProfiles(batch)
                     : trainer.model().ComputeItemProfiles(batch);
      for (int64_t row = 0; row < end - start; ++row) {
        float* dst = out + (start + row) * dim;
        for (int64_t col = 0; col < dim; ++col) {
          dst[col] = profiles.at(row, col);
        }
      }
    }
  });
}

}  // namespace

Result<TowerStoreBuildStats> BuildTowerStore(const RrreTrainer& trainer,
                                             const std::string& model_prefix,
                                             const std::string& store_path) {
  if (!trainer.fitted()) {
    return Status::FailedPrecondition(
        "cannot build a tower store from an unfitted trainer");
  }
  if (trainer.config().sampling != data::SamplingStrategy::kLatest) {
    return Status::InvalidArgument(
        "tower store requires the deterministic serving history sampling "
        "(kLatest); other strategies draw from the Rng, so profiles would "
        "not be pure functions of (id, params)");
  }
  auto fingerprint = CheckpointParamsFingerprint(model_prefix);
  if (!fingerprint.ok()) return fingerprint.status();

  common::Timer timer;
  const int64_t dim = trainer.config().rev_dim;
  const int64_t num_users = trainer.train_data().num_users();
  const int64_t num_items = trainer.train_data().num_items();
  FeatureBuilder features(trainer.config(), &trainer.train_data(),
                          &trainer.vocab());
  std::vector<float> users(static_cast<size_t>(num_users * dim));
  std::vector<float> items(static_cast<size_t>(num_items * dim));
  ComputeAllProfiles(trainer, features, /*user_tower=*/true, num_users, dim,
                     users.data());
  ComputeAllProfiles(trainer, features, /*user_tower=*/false, num_items, dim,
                     items.data());
  RRRE_RETURN_IF_ERROR(TowerStore::WriteFile(store_path, dim, num_users,
                                             num_items, fingerprint.value(),
                                             users, items));

  TowerStoreBuildStats stats;
  stats.num_users = num_users;
  stats.num_items = num_items;
  stats.dim = dim;
  stats.bytes = static_cast<int64_t>(
      64 + (users.size() + items.size()) * sizeof(float));
  stats.params_fingerprint = fingerprint.value();
  stats.seconds = timer.ElapsedSeconds();
  return stats;
}

Result<std::shared_ptr<const TowerStore>> MapTowerStoreForCheckpoint(
    const std::string& store_path, const std::string& model_prefix,
    const RrreTrainer& trainer) {
  if (!trainer.fitted()) {
    return Status::FailedPrecondition("trainer is not fitted or loaded");
  }
  auto store = TowerStore::Map(store_path);
  if (!store.ok()) return store.status();
  auto fingerprint = CheckpointParamsFingerprint(model_prefix);
  if (!fingerprint.ok()) return fingerprint.status();
  if (store.value()->params_fingerprint() != fingerprint.value()) {
    return Status::FailedPrecondition(
        "tower store " + store_path +
        " was built from different model parameters than " + model_prefix +
        ".model (stale store or mismatched publish)");
  }
  if (store.value()->dim() != trainer.config().rev_dim) {
    return Status::FailedPrecondition(
        "tower store " + store_path + " profile dim " +
        std::to_string(store.value()->dim()) +
        " does not match the model's rev_dim " +
        std::to_string(trainer.config().rev_dim));
  }
  if (store.value()->num_users() != trainer.train_data().num_users() ||
      store.value()->num_items() != trainer.train_data().num_items()) {
    return Status::FailedPrecondition(
        "tower store " + store_path +
        " id space does not match the checkpoint corpus");
  }
  return store;
}

}  // namespace rrre::core
