#ifndef RRRE_CORE_TOWER_STORE_H_
#define RRRE_CORE_TOWER_STORE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/io.h"
#include "common/status.h"
#include "core/trainer.h"

namespace rrre::core {

/// Materialized tower store: every user-preference vector x_u and item
/// -profile vector y_i of a checkpoint, precomputed at publish time into one
/// versioned, mmap-able flat file. The towers (BiLSTM text encoding + fraud
/// attention) are pure functions of (id, params) under the serving history
/// sampling, so precomputing them turns online scoring into FM-head-over
/// -two-dot-products — O(dim) per pair, zero tower work on the hot path —
/// and lets every serving process share one page-cache copy of the vectors.
///
/// File layout (little-endian; all offsets fixed):
///
///   offset  size  field
///   0       8     magic "RRRETWS1"
///   8       4     u32 header CRC-32 over bytes [12, 64)
///   12      4     u32 dim               profile width (config rev_dim)
///   16      8     i64 num_users
///   24      8     i64 num_items
///   32      8     u64 params fingerprint (see CheckpointParamsFingerprint)
///   40      4     u32 CRC-32 of the user section payload
///   44      4     u32 CRC-32 of the item section payload
///   48      16    reserved, must be zero
///   64      -     f32 user profiles, row-major [num_users, dim]
///   ...     -     f32 item profiles, row-major [num_items, dim]
///
/// The file ends exactly after the item section; a mapped file whose size is
/// not byte-exact is rejected (truncation and trailing garbage are both
/// corruption). Every structural field is validated before any
/// count-derived arithmetic or access, so a hostile header cannot trigger
/// overflow or a wild read.
class TowerStore {
 public:
  /// Writes a store file atomically and durably: AtomicFileWriter under the
  /// failpoint family "store" (store.open/.write/.fsync/.rename/.dirsync),
  /// so publication is crash-atomic — a reader sees the old store or the new
  /// one, never a torn file. `user_profiles` / `item_profiles` are row-major
  /// [num_users, dim] / [num_items, dim].
  static common::Status WriteFile(const std::string& path, int64_t dim,
                                  int64_t num_users, int64_t num_items,
                                  uint64_t params_fingerprint,
                                  const std::vector<float>& user_profiles,
                                  const std::vector<float>& item_profiles);

  /// Maps `path` read-only (failpoint "store.mmap") and validates the whole
  /// file: magic, header CRC, dim/count bounds with overflow-safe size
  /// arithmetic, byte-exact file size, and both section CRCs. Any corruption
  /// — a truncated prefix, a flipped bit anywhere, trailing garbage —
  /// yields a descriptive error Status, never UB. Validation reads every
  /// payload byte once (faulting the pages in), so a store that maps OK is
  /// fully readable.
  static common::Result<std::shared_ptr<const TowerStore>> Map(
      const std::string& path);

  int64_t dim() const { return dim_; }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }
  uint64_t params_fingerprint() const { return params_fingerprint_; }

  /// Row pointer into the mapped section; `dim()` floats. Bounds-checked.
  const float* user_profile(int64_t user) const;
  const float* item_profile(int64_t item) const;

 private:
  TowerStore() = default;

  common::MappedFile file_;
  int64_t dim_ = 0;
  int64_t num_users_ = 0;
  int64_t num_items_ = 0;
  uint64_t params_fingerprint_ = 0;
  const float* users_ = nullptr;  ///< Into file_; [num_users * dim].
  const float* items_ = nullptr;  ///< Into file_; [num_items * dim].
};

/// Fingerprint of a checkpoint's model parameters: byte size and CRC-32 of
/// `<model_prefix>.model`, packed as (size32 << 32) | crc32. This is the
/// durable analogue of RrreTrainer::params_version() — the in-memory counter
/// cannot survive a process restart, so the store binds to the parameter
/// *bytes* instead. A store whose fingerprint does not match the checkpoint
/// it is served with must be rejected (see MapTowerStoreForCheckpoint).
common::Result<uint64_t> CheckpointParamsFingerprint(
    const std::string& model_prefix);

struct TowerStoreBuildStats {
  int64_t num_users = 0;
  int64_t num_items = 0;
  int64_t dim = 0;
  int64_t bytes = 0;        ///< Size of the published file.
  double seconds = 0.0;     ///< Tower computation + publish wall clock.
  uint64_t params_fingerprint = 0;
};

/// Batch-runs both towers across every user and item id of the trainer's
/// corpus — chunked exactly like BatchScorer priming and parallelized over
/// chunks with ParallelFor — and publishes the store at `store_path`,
/// fingerprinted against `<model_prefix>.model`. Requires the deterministic
/// serving history sampling (kLatest): that is what makes a profile a pure
/// function of (id, params) and the store bitwise-equivalent to live towers.
common::Result<TowerStoreBuildStats> BuildTowerStore(
    const RrreTrainer& trainer, const std::string& model_prefix,
    const std::string& store_path);

/// Maps `store_path` and verifies it belongs to the checkpoint at
/// `model_prefix` (params fingerprint) and matches the trainer's geometry
/// (profile dim, corpus bounds). The one entry point serving should use: a
/// structurally valid store built from *different* parameters is exactly the
/// stale-cache bug the params_version check exists to prevent.
common::Result<std::shared_ptr<const TowerStore>> MapTowerStoreForCheckpoint(
    const std::string& store_path, const std::string& model_prefix,
    const RrreTrainer& trainer);

}  // namespace rrre::core

#endif  // RRRE_CORE_TOWER_STORE_H_
