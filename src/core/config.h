#ifndef RRRE_CORE_CONFIG_H_
#define RRRE_CORE_CONFIG_H_

#include <cstdint>

#include "data/sampling.h"

namespace rrre::core {

/// Hyper-parameters of the RRRE model and its trainer. Defaults are scaled
/// for a single-core CPU run; the paper's reference settings (k = 64,
/// s_u = 13, s_i = 12, batch 500) are reachable through the bench flags.
struct RrreConfig {
  // -- Architecture ----------------------------------------------------------
  int64_t word_dim = 16;       ///< d: pretrained word-vector dimension.
  int64_t rev_dim = 32;        ///< k: review embedding size (BiLSTM output).
  int64_t id_dim = 16;         ///< User/item ID embedding size.
  int64_t attention_dim = 16;  ///< Width of the fraud-attention hidden layer.
  int64_t fm_factors = 8;      ///< FM pairwise factor count.
  int64_t max_tokens = 16;     ///< T: tokens kept per review.
  int64_t s_u = 5;             ///< User history slots (paper tunes 1..13).
  int64_t s_i = 7;             ///< Item history slots (paper tunes 12..132).

  // -- Objective ---------------------------------------------------------------
  double lambda = 0.5;  ///< L = lambda*loss1 + (1-lambda)*loss2 (Eq. 15).
  double gamma = 1e-5;  ///< L2 coefficient in loss2 (Eq. 14).
  /// true: Eq. 14 (reliability-weighted MSE). false: Eq. 13 — RRRE^-.
  bool biased_loss = true;
  /// true: fraud-attention pooling. false: mean pooling (ablation).
  bool use_attention = true;

  // -- Optimization ------------------------------------------------------------
  double lr = 6e-3;
  int64_t batch_size = 32;
  int64_t epochs = 5;
  double dropout = 0.0;
  double grad_clip = 5.0;
  uint64_t seed = 42;
  /// Examples per data-parallel shard. 0 = whole batch on one graph (the
  /// exact serial code path). When > 0, each minibatch is partitioned into
  /// ceil(B / shard_size) shards that build features, run forward and run
  /// backward concurrently on the global thread pool; shard gradients are
  /// merged in shard order before the single optimizer step, so results do
  /// not depend on the number of threads (see DESIGN.md, "Parallel
  /// execution").
  int64_t shard_size = 0;
  /// Run each training step on a compiled batch tape: fused gate/attention
  /// kernels plus a per-step arena that recycles every graph-node buffer
  /// after the first batch (see DESIGN.md, "Compiled batch tape & blocked
  /// kernels"). Bitwise identical to the eager path; off is kept as the
  /// reference for parity tests and bisection.
  bool use_tape = true;
  /// With the tape on, cache the recorded backward schedule per step
  /// fingerprint and replay it: steady-state steps skip the topological DFS
  /// and rebuild no closures. Bitwise identical to rebuilding every step;
  /// off (`--tape_replay=false`) restores the rebuild-every-step tape as an
  /// escape hatch and a bisection reference.
  bool tape_replay = true;

  // -- Text pipeline -----------------------------------------------------------
  int64_t vocab_min_count = 2;
  bool pretrain_word_vectors = true;  ///< Skip-gram init (Sec. IV-A).
  bool freeze_word_vectors = false;   ///< Fine-tune the pretrained vectors.
  int64_t pretrain_epochs = 2;

  // -- History sampling (Sec. III-D) -------------------------------------------
  data::SamplingStrategy sampling = data::SamplingStrategy::kLatest;
  /// When true, the target review is dropped from its own histories during
  /// training. The paper's Eq. (1) builds W^u/W^i from all reviews of u and
  /// i (including w_ui), so the faithful default keeps it — the model learns
  /// to read the scored review's own content out of the history, which is
  /// what transductive reliability scoring exploits.
  bool exclude_target_from_history = false;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_CONFIG_H_
