#include "core/features.h"

#include "common/logging.h"
#include "data/sampling.h"
#include "nn/attention.h"
#include "text/tokenizer.h"

namespace rrre::core {

FeatureBuilder::FeatureBuilder(const RrreConfig& config,
                               const data::ReviewDataset* train,
                               const text::Vocabulary* vocab)
    : config_(config), train_(train) {
  RRRE_CHECK(train != nullptr);
  RRRE_CHECK(vocab != nullptr);
  RRRE_CHECK(train->indexed());
  const int64_t t = config_.max_tokens;
  token_cache_.reserve(static_cast<size_t>(train->size() * t));
  for (const data::Review& r : train->reviews()) {
    const auto ids = vocab->EncodePadded(text::Tokenize(r.text), t);
    token_cache_.insert(token_cache_.end(), ids.begin(), ids.end());
  }
}

RrreModel::Batch FeatureBuilder::Build(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    const std::vector<int64_t>& exclude, common::Rng& rng) const {
  RRRE_CHECK(!pairs.empty());
  RRRE_CHECK_EQ(pairs.size(), exclude.size());
  const int64_t b = static_cast<int64_t>(pairs.size());
  const int64_t t = config_.max_tokens;
  const int64_t s_u = config_.s_u;
  const int64_t s_i = config_.s_i;

  RrreModel::Batch batch;
  batch.batch_size = b;
  batch.users.reserve(static_cast<size_t>(b));
  batch.items.reserve(static_cast<size_t>(b));
  batch.user_hist_tokens.reserve(static_cast<size_t>(b * s_u * t));
  batch.user_hist_users.reserve(static_cast<size_t>(b * s_u));
  batch.user_hist_items.reserve(static_cast<size_t>(b * s_u));
  batch.user_hist_mask.reserve(static_cast<size_t>(b * s_u));
  batch.item_hist_tokens.reserve(static_cast<size_t>(b * s_i * t));
  batch.item_hist_users.reserve(static_cast<size_t>(b * s_i));
  batch.item_hist_items.reserve(static_cast<size_t>(b * s_i));
  batch.item_hist_mask.reserve(static_cast<size_t>(b * s_i));

  // Appends one history slot (or a pad slot for review -1).
  auto append_slot = [&](int64_t review_idx, int64_t fallback_user,
                         int64_t fallback_item,
                         std::vector<int64_t>& tokens,
                         std::vector<int64_t>& users,
                         std::vector<int64_t>& items,
                         std::vector<float>& mask) {
    if (review_idx < 0) {
      tokens.insert(tokens.end(), static_cast<size_t>(t),
                    text::Vocabulary::kPadId);
      users.push_back(fallback_user);
      items.push_back(fallback_item);
      mask.push_back(nn::FraudAttention::kMaskedScore);
      return;
    }
    const auto begin = token_cache_.begin() + review_idx * t;
    tokens.insert(tokens.end(), begin, begin + t);
    const data::Review& r = train_->review(review_idx);
    users.push_back(r.user);
    items.push_back(r.item);
    mask.push_back(0.0f);
  };

  for (int64_t e = 0; e < b; ++e) {
    const auto [user, item] = pairs[static_cast<size_t>(e)];
    batch.users.push_back(user);
    batch.items.push_back(item);
    const int64_t excluded = exclude[static_cast<size_t>(e)];

    const auto user_hist =
        data::SampleHistory(train_->ReviewsByUser(user), s_u,
                            config_.sampling, rng, excluded);
    for (int64_t idx : user_hist) {
      append_slot(idx, user, item, batch.user_hist_tokens,
                  batch.user_hist_users, batch.user_hist_items,
                  batch.user_hist_mask);
    }
    const auto item_hist =
        data::SampleHistory(train_->ReviewsByItem(item), s_i,
                            config_.sampling, rng, excluded);
    for (int64_t idx : item_hist) {
      append_slot(idx, user, item, batch.item_hist_tokens,
                  batch.item_hist_users, batch.item_hist_items,
                  batch.item_hist_mask);
    }
  }
  return batch;
}

RrreModel::Batch FeatureBuilder::Build(
    const std::vector<std::pair<int64_t, int64_t>>& pairs,
    common::Rng& rng) const {
  return Build(pairs, std::vector<int64_t>(pairs.size(), -1), rng);
}

}  // namespace rrre::core
