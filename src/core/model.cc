#include "core/model.h"

#include "common/logging.h"
#include "nn/dropout.h"
#include "tensor/ops.h"

namespace rrre::core {

using tensor::Tensor;

RrreModel::RrreModel(const RrreConfig& config, int64_t num_users,
                     int64_t num_items, int64_t vocab_size, common::Rng& rng)
    : config_(config),
      word_embedding_(vocab_size, config.word_dim, rng, 0.1f),
      user_id_embedding_(num_users, config.id_dim, rng, 0.1f),
      item_id_embedding_(num_items, config.id_dim, rng, 0.1f),
      user_encoder_(&word_embedding_, config.max_tokens, config.rev_dim, rng),
      item_encoder_(&word_embedding_, config.max_tokens, config.rev_dim, rng),
      user_attention_(config.rev_dim, config.id_dim, config.id_dim,
                      config.attention_dim, rng),
      item_attention_(config.rev_dim, config.id_dim, config.id_dim,
                      config.attention_dim, rng),
      user_projection_(config.rev_dim, config.rev_dim, rng),
      item_projection_(config.rev_dim, config.rev_dim, rng),
      reliability_head_(2 * config.rev_dim, 2, rng),
      rating_user_map_(config.rev_dim, config.id_dim, rng, /*use_bias=*/false),
      rating_item_map_(config.rev_dim, config.id_dim, rng, /*use_bias=*/false),
      fm_(2 * config.id_dim, config.fm_factors, rng) {
  RegisterModule("word_embedding", &word_embedding_);
  RegisterModule("user_id_embedding", &user_id_embedding_);
  RegisterModule("item_id_embedding", &item_id_embedding_);
  RegisterModule("user_encoder", &user_encoder_);
  RegisterModule("item_encoder", &item_encoder_);
  RegisterModule("user_attention", &user_attention_);
  RegisterModule("item_attention", &item_attention_);
  RegisterModule("user_projection", &user_projection_);
  RegisterModule("item_projection", &item_projection_);
  RegisterModule("reliability_head", &reliability_head_);
  RegisterModule("rating_user_map", &rating_user_map_);
  RegisterModule("rating_item_map", &rating_item_map_);
  RegisterModule("fm", &fm_);
}

RrreModel::TowerOutput RrreModel::RunTower(
    const ReviewEncoder& encoder, const nn::FraudAttention& attention,
    const nn::Linear& projection, const std::vector<int64_t>& tokens,
    const std::vector<int64_t>& writer_ids,
    const std::vector<int64_t>& item_ids, const std::vector<float>& mask,
    int64_t group_size, int64_t batch_size) const {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const int64_t slots = batch_size * group_size;
  RRRE_CHECK_EQ(static_cast<int64_t>(writer_ids.size()), slots);
  RRRE_CHECK_EQ(static_cast<int64_t>(item_ids.size()), slots);
  RRRE_CHECK_EQ(static_cast<int64_t>(mask.size()), slots);

  Tensor rev = encoder.Encode(tokens, slots);  // [slots, k]
  Tensor mask_t = Tensor::FromVector({batch_size, group_size}, mask);

  Tensor alphas;
  if (config_.use_attention) {
    Tensor writer_emb = user_id_embedding_.Forward(writer_ids);
    Tensor item_emb = item_id_embedding_.Forward(item_ids);
    alphas = attention.Forward(rev, writer_emb, item_emb, group_size, mask_t);
  } else {
    // Mean-pooling ablation: uniform weights over unmasked slots.
    alphas = Softmax(mask_t);
  }
  Tensor pooled = WeightedPool(rev, alphas);     // [B, k] (Eq. 7)
  Tensor profile = projection.Forward(pooled);   // [B, k] (Eq. 8)
  return TowerOutput{profile, alphas};
}

RrreModel::Output RrreModel::Forward(const Batch& batch, bool training,
                                     common::Rng* rng) const {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const int64_t b = batch.batch_size;
  RRRE_CHECK_GT(b, 0);
  RRRE_CHECK_EQ(static_cast<int64_t>(batch.users.size()), b);
  RRRE_CHECK_EQ(static_cast<int64_t>(batch.items.size()), b);

  TowerOutput user_tower = RunTower(
      user_encoder_, user_attention_, user_projection_,
      batch.user_hist_tokens, batch.user_hist_users, batch.user_hist_items,
      batch.user_hist_mask, config_.s_u, b);
  TowerOutput item_tower = RunTower(
      item_encoder_, item_attention_, item_projection_,
      batch.item_hist_tokens, batch.item_hist_users, batch.item_hist_items,
      batch.item_hist_mask, config_.s_i, b);

  Tensor x_u = user_tower.profile;
  Tensor y_i = item_tower.profile;
  if (training && config_.dropout > 0.0) {
    RRRE_CHECK(rng != nullptr);
    x_u = nn::Dropout(x_u, config_.dropout, *rng, training);
    y_i = nn::Dropout(y_i, config_.dropout, *rng, training);
  }

  Output out = ForwardFromProfiles(x_u, y_i, batch.users, batch.items);
  out.user_alphas = user_tower.alphas;
  out.item_alphas = item_tower.alphas;
  return out;
}

Tensor RrreModel::ComputeUserProfiles(const Batch& batch) const {
  return RunTower(user_encoder_, user_attention_, user_projection_,
                  batch.user_hist_tokens, batch.user_hist_users,
                  batch.user_hist_items, batch.user_hist_mask, config_.s_u,
                  batch.batch_size)
      .profile;
}

Tensor RrreModel::ComputeItemProfiles(const Batch& batch) const {
  return RunTower(item_encoder_, item_attention_, item_projection_,
                  batch.item_hist_tokens, batch.item_hist_users,
                  batch.item_hist_items, batch.item_hist_mask, config_.s_i,
                  batch.batch_size)
      .profile;
}

RrreModel::Output RrreModel::ForwardFromProfiles(
    const Tensor& x_u, const Tensor& y_i, const std::vector<int64_t>& users,
    const std::vector<int64_t>& items) const {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  RRRE_CHECK_EQ(x_u.dim(0), static_cast<int64_t>(users.size()));
  RRRE_CHECK_EQ(y_i.dim(0), static_cast<int64_t>(items.size()));

  // Reliability head (Eq. 9-10).
  Tensor pair = ConcatCols({x_u, y_i});                       // [B, 2k]
  Tensor logits = reliability_head_.Forward(pair);            // [B, 2]
  Tensor reliability = Softmax(logits);                       // [B, 2]

  // Rating head (Eq. 12): FM([(e_u + W_h x_u); (e_i + W_e y_i)]).
  Tensor e_u = user_id_embedding_.Forward(users);             // [B, id]
  Tensor e_i = item_id_embedding_.Forward(items);             // [B, id]
  Tensor pu = Add(e_u, rating_user_map_.Forward(x_u));
  Tensor qi = Add(e_i, rating_item_map_.Forward(y_i));
  Tensor rating = fm_.Forward(ConcatCols({pu, qi}));          // [B, 1]

  Output out;
  out.rating = rating;
  out.reliability_logits = logits;
  out.reliability = reliability;
  out.x_u = x_u;
  out.y_i = y_i;
  return out;
}

std::vector<Tensor> RrreModel::ParametersWithoutWordTable() const {
  const Tensor& table = word_embedding_.table();
  std::vector<Tensor> out;
  for (const Tensor& p : Parameters()) {
    if (p.impl() == table.impl()) continue;
    out.push_back(p);
  }
  return out;
}

}  // namespace rrre::core
