#include "core/semi_supervised.h"

#include "common/logging.h"

namespace rrre::core {

SemiSupervisedRrre::SemiSupervisedRrre(SemiSupervisedConfig config)
    : config_(config), trainer_(config.base) {
  RRRE_CHECK_GE(config_.rounds, 0);
  RRRE_CHECK_GT(config_.confidence, 0.5);
  RRRE_CHECK_LE(config_.confidence, 1.0);
}

void SemiSupervisedRrre::Fit(const data::ReviewDataset& labeled,
                             const data::ReviewDataset& unlabeled) {
  RRRE_CHECK_EQ(labeled.num_users(), unlabeled.num_users());
  RRRE_CHECK_EQ(labeled.num_items(), unlabeled.num_items());
  round_stats_.clear();

  trainer_.Fit(labeled);
  round_stats_.push_back({0, 0, 0});

  for (int64_t round = 1; round <= config_.rounds; ++round) {
    // Score the unlabeled pool with the current model; the scored review's
    // own text is visible through its histories (transductive), which is
    // exactly the setting in which a pseudo-label is meaningful.
    auto preds = trainer_.PredictDatasetTransductive(unlabeled);

    data::ReviewDataset augmented(labeled.num_users(), labeled.num_items());
    for (const data::Review& r : labeled.reviews()) augmented.Add(r);
    RoundStats stats;
    stats.round = round;
    for (int64_t i = 0; i < unlabeled.size(); ++i) {
      const double p_benign = preds.reliabilities[static_cast<size_t>(i)];
      data::Review pseudo = unlabeled.review(i);
      if (p_benign >= config_.confidence) {
        pseudo.label = data::ReliabilityLabel::kBenign;
        ++stats.pseudo_benign;
      } else if (p_benign <= 1.0 - config_.confidence) {
        pseudo.label = data::ReliabilityLabel::kFake;
        ++stats.pseudo_fake;
      } else {
        continue;  // Not confident enough; leave out this round.
      }
      augmented.Add(std::move(pseudo));
    }
    augmented.BuildIndex();
    round_stats_.push_back(stats);

    // Refit from scratch on the enlarged corpus (self-training restart
    // avoids confirmation drift from warm-started optimizer state).
    trainer_.Fit(augmented);
  }
}

}  // namespace rrre::core
