#ifndef RRRE_CORE_FEATURES_H_
#define RRRE_CORE_FEATURES_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "core/config.h"
#include "core/model.h"
#include "data/dataset.h"
#include "text/vocab.h"

namespace rrre::core {

/// Turns (user, item) pairs into RrreModel batches: samples the review
/// histories W^u and W^i from the training corpus (Sec. III-D), attaches
/// cached token ids, writer/item ids, and padding masks.
class FeatureBuilder {
 public:
  /// `train` and `vocab` must outlive the builder. Token ids of every train
  /// review are tokenized and cached here once.
  FeatureBuilder(const RrreConfig& config, const data::ReviewDataset* train,
                 const text::Vocabulary* vocab);

  /// Builds a batch for the given target pairs. `exclude[i]` is a train
  /// review index removed from pair i's histories (-1 for none) — used
  /// during training so the target review does not leak into its own input.
  RrreModel::Batch Build(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      const std::vector<int64_t>& exclude, common::Rng& rng) const;

  /// Convenience overload with no exclusions (inference).
  RrreModel::Batch Build(
      const std::vector<std::pair<int64_t, int64_t>>& pairs,
      common::Rng& rng) const;

  const data::ReviewDataset& train() const { return *train_; }

 private:
  RrreConfig config_;
  const data::ReviewDataset* train_;
  /// Token ids of train review r: token_cache_[r*T, (r+1)*T).
  std::vector<int64_t> token_cache_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_FEATURES_H_
