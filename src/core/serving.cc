#include "core/serving.h"

#include <algorithm>
#include <cstdlib>

#include "common/io.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "core/tower_store.h"

namespace rrre::core {

using common::Result;
using common::Status;

namespace {

/// Strict integer parse; rejects trailing junk so a mangled request file
/// fails loudly instead of scoring the wrong id.
bool ParseId(const std::string& field, int64_t* out) {
  if (field.empty()) return false;
  char* end = nullptr;
  const long long v = std::strtoll(field.c_str(), &end, 10);
  if (end != field.c_str() + field.size()) return false;
  *out = v;
  return true;
}

Status BadLine(const std::string& path, size_t line, const std::string& what) {
  return Status::InvalidArgument(path + ":" + std::to_string(line + 1) + ": " +
                                 what);
}

}  // namespace

Result<std::vector<std::pair<int64_t, int64_t>>> ReadScoreRequests(
    const std::string& path, bool catalog, int64_t num_users,
    int64_t num_items, int64_t* num_requests) {
  auto rows = common::ReadTsv(path);
  if (!rows.ok()) return rows.status();
  std::vector<std::pair<int64_t, int64_t>> pairs;
  int64_t requests = 0;
  for (size_t line = 0; line < rows.value().size(); ++line) {
    const auto& row = rows.value()[line];
    if (!row.empty() && common::StartsWith(row[0], "#")) continue;
    // ReadTsv drops fully blank lines; whitespace-only lines survive as one
    // or more spacey fields (a lone tab makes two) and are equally
    // meaningless — skip them too.
    if (std::all_of(row.begin(), row.end(), [](const std::string& field) {
          return common::Trim(field).empty();
        })) {
      continue;
    }
    int64_t user = 0;
    // A non-numeric first row is the conventional "user[\titem]" header.
    if (line == 0 && !ParseId(row.empty() ? "" : row[0], &user)) continue;
    const size_t want_cols = catalog ? 1 : 2;
    if (row.size() != want_cols) {
      return BadLine(path, line,
                     "expected " + std::to_string(want_cols) +
                         " column(s), got " + std::to_string(row.size()));
    }
    if (!ParseId(row[0], &user)) {
      return BadLine(path, line, "bad user id \"" + row[0] + "\"");
    }
    if (user < 0 || user >= num_users) {
      return BadLine(path, line,
                     "user " + std::to_string(user) + " out of range [0, " +
                         std::to_string(num_users) + ")");
    }
    ++requests;
    if (catalog) {
      for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(user, i);
      continue;
    }
    int64_t item = 0;
    if (!ParseId(row[1], &item)) {
      return BadLine(path, line, "bad item id \"" + row[1] + "\"");
    }
    if (item < 0 || item >= num_items) {
      return BadLine(path, line,
                     "item " + std::to_string(item) + " out of range [0, " +
                         std::to_string(num_items) + ")");
    }
    pairs.emplace_back(user, item);
  }
  if (num_requests != nullptr) *num_requests = requests;
  return pairs;
}

Result<ServeStats> ServeBatch(RrreTrainer& trainer,
                              const ServeOptions& options) {
  if (!trainer.fitted()) {
    return Status::FailedPrecondition("trainer is not fitted or loaded");
  }
  ServeStats stats;
  auto pairs = ReadScoreRequests(
      options.input_path, options.catalog, trainer.train_data().num_users(),
      trainer.train_data().num_items(), &stats.num_requests);
  if (!pairs.ok()) return pairs.status();

  common::Timer timer;
  BatchScorer scorer(&trainer);
  if (!options.store_path.empty()) {
    auto store = MapTowerStoreForCheckpoint(options.store_path,
                                            options.model_prefix, trainer);
    if (!store.ok()) return store.status();
    scorer.AttachStore(std::move(store).ValueOrDie());
    stats.store_backed = true;
  } else {
    // Score() primes missing towers on demand; priming explicitly up front
    // keeps the per-tower batches dense when requests repeat users/items.
    std::vector<int64_t> users;
    std::vector<int64_t> items;
    users.reserve(pairs.value().size());
    items.reserve(pairs.value().size());
    for (const auto& [u, i] : pairs.value()) {
      users.push_back(u);
      items.push_back(i);
    }
    scorer.PrimeUsers(users);
    scorer.PrimeItems(items);
  }
  // Score in score_batch-sized chunks so per-batch latency is observable
  // (the online server lives and dies by this number). Chunking cannot
  // change the scores: profiles are cached per id and the prediction heads
  // are independent per pair.
  const int64_t total = static_cast<int64_t>(pairs.value().size());
  const int64_t chunk = options.score_batch > 0 ? options.score_batch : total;
  RrreTrainer::Predictions preds;
  preds.ratings.reserve(static_cast<size_t>(total));
  preds.reliabilities.reserve(static_cast<size_t>(total));
  for (int64_t start = 0; start < total; start += chunk) {
    const int64_t end = std::min(total, start + chunk);
    const std::vector<std::pair<int64_t, int64_t>> batch(
        pairs.value().begin() + start, pairs.value().begin() + end);
    common::Timer batch_timer;
    const RrreTrainer::Predictions batch_preds = scorer.Score(batch);
    stats.batch_latency_us.Record(batch_timer.ElapsedSeconds() * 1e6);
    ++stats.num_batches;
    preds.ratings.insert(preds.ratings.end(), batch_preds.ratings.begin(),
                         batch_preds.ratings.end());
    preds.reliabilities.insert(preds.reliabilities.end(),
                               batch_preds.reliabilities.begin(),
                               batch_preds.reliabilities.end());
  }
  stats.num_scored = total;
  stats.users_primed = scorer.cached_users();
  stats.items_primed = scorer.cached_items();
  stats.seconds = timer.ElapsedSeconds();

  std::vector<std::vector<std::string>> rows;
  rows.reserve(pairs.value().size() + 1);
  rows.push_back({"user", "item", "rating", "reliability"});
  for (size_t i = 0; i < pairs.value().size(); ++i) {
    rows.push_back({std::to_string(pairs.value()[i].first),
                    std::to_string(pairs.value()[i].second),
                    common::StrFormat("%.17g", preds.ratings[i]),
                    common::StrFormat("%.17g", preds.reliabilities[i])});
  }
  RRRE_RETURN_IF_ERROR(common::WriteTsv(options.output_path, rows));
  return stats;
}

Result<ServeStats> LoadAndServe(const RrreConfig& config,
                                const ServeOptions& options) {
  RrreTrainer trainer(config);
  RRRE_RETURN_IF_ERROR(trainer.Load(options.model_prefix));
  return ServeBatch(trainer, options);
}

}  // namespace rrre::core
