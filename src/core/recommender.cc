#include "core/recommender.h"

#include <algorithm>
#include <set>

#include "common/logging.h"

namespace rrre::core {

ReliableRecommender::ReliableRecommender(RrreTrainer* trainer)
    : trainer_(trainer) {
  RRRE_CHECK(trainer != nullptr);
  RRRE_CHECK(trainer->fitted()) << "fit the trainer before recommending";
}

std::vector<RecommendedItem> ReliableRecommender::Recommend(
    int64_t user, int64_t top_k, int64_t candidate_pool, bool exclude_seen) {
  RRRE_CHECK_GT(top_k, 0);
  if (candidate_pool < 0) candidate_pool = top_k;
  RRRE_CHECK_GE(candidate_pool, top_k);
  const data::ReviewDataset& train = trainer_->train_data();

  std::set<int64_t> seen;
  if (exclude_seen) {
    for (int64_t idx : train.ReviewsByUser(user)) {
      seen.insert(train.review(idx).item);
    }
  }
  std::vector<std::pair<int64_t, int64_t>> pairs;
  std::vector<int64_t> items;
  for (int64_t i = 0; i < train.num_items(); ++i) {
    if (seen.count(i)) continue;
    pairs.emplace_back(user, i);
    items.push_back(i);
  }
  if (pairs.empty()) return {};

  auto preds = trainer_->PredictPairs(pairs);
  std::vector<RecommendedItem> scored;
  scored.reserve(items.size());
  for (size_t i = 0; i < items.size(); ++i) {
    scored.push_back({items[i], preds.ratings[i], preds.reliabilities[i]});
  }
  // Stage 1: top candidates by predicted rating.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const RecommendedItem& a, const RecommendedItem& b) {
                     return a.rating > b.rating;
                   });
  if (static_cast<int64_t>(scored.size()) > candidate_pool) {
    scored.resize(static_cast<size_t>(candidate_pool));
  }
  // Stage 2: re-rank candidates by reliability.
  std::stable_sort(scored.begin(), scored.end(),
                   [](const RecommendedItem& a, const RecommendedItem& b) {
                     return a.reliability > b.reliability;
                   });
  if (static_cast<int64_t>(scored.size()) > top_k) {
    scored.resize(static_cast<size_t>(top_k));
  }
  return scored;
}

std::vector<ReviewExplanation> ReliableRecommender::Explain(
    int64_t item, int64_t top_k, int64_t candidate_pool) {
  RRRE_CHECK_GT(top_k, 0);
  if (candidate_pool < 0) candidate_pool = top_k;
  RRRE_CHECK_GE(candidate_pool, top_k);
  const data::ReviewDataset& train = trainer_->train_data();

  const std::vector<int64_t>& reviews = train.ReviewsByItem(item);
  if (reviews.empty()) return {};
  std::vector<std::pair<int64_t, int64_t>> pairs;
  pairs.reserve(reviews.size());
  for (int64_t idx : reviews) {
    pairs.emplace_back(train.review(idx).user, item);
  }
  auto preds = trainer_->PredictPairs(pairs);

  std::vector<ReviewExplanation> scored;
  scored.reserve(reviews.size());
  for (size_t i = 0; i < reviews.size(); ++i) {
    ReviewExplanation e;
    e.review_index = reviews[i];
    e.user = train.review(reviews[i]).user;
    e.rating = preds.ratings[i];
    e.reliability = preds.reliabilities[i];
    e.text = train.review(reviews[i]).text;
    scored.push_back(std::move(e));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ReviewExplanation& a, const ReviewExplanation& b) {
                     return a.rating > b.rating;
                   });
  if (static_cast<int64_t>(scored.size()) > candidate_pool) {
    scored.resize(static_cast<size_t>(candidate_pool));
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const ReviewExplanation& a, const ReviewExplanation& b) {
                     return a.reliability > b.reliability;
                   });
  if (static_cast<int64_t>(scored.size()) > top_k) {
    scored.resize(static_cast<size_t>(top_k));
  }
  return scored;
}

}  // namespace rrre::core
