#ifndef RRRE_CORE_TRAINER_H_
#define RRRE_CORE_TRAINER_H_

#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/histogram.h"
#include "common/rng.h"
#include "core/config.h"
#include "core/features.h"
#include "core/model.h"
#include "data/dataset.h"
#include "nn/optimizer.h"
#include "obs/telemetry.h"
#include "tensor/tape.h"
#include "text/vocab.h"

namespace rrre::core {

/// End-to-end RRRE training and inference:
///  1. builds the vocabulary from the training reviews,
///  2. pretrains word vectors with skip-gram (Sec. IV-A),
///  3. trains the joint objective L = lambda*loss1 + (1-lambda)*loss2
///     (Eqs. 11, 14, 15) with Adam,
///  4. predicts (rating, reliability) for arbitrary user-item pairs, with
///     histories drawn from the training corpus.
class RrreTrainer {
 public:
  explicit RrreTrainer(RrreConfig config);

  struct EpochStats {
    int64_t epoch = 0;
    double loss = 0.0;       ///< Mean joint loss over batches.
    double loss1 = 0.0;      ///< Mean reliability cross-entropy.
    double loss2 = 0.0;      ///< Mean (biased) rating loss incl. L2.
    double seconds = 0.0;    ///< Wall-clock time of the epoch.
    double grad_norm = 0.0;  ///< Mean pre-clip global gradient norm.
  };
  using EpochCallback = std::function<void(const EpochStats&)>;

  /// Per-epoch JSONL telemetry. When `writer` is set, Fit/Resume append one
  /// record per epoch: the joint-objective decomposition (loss/loss1/loss2),
  /// the mean pre-clip gradient norm, batch/example counts, and — when
  /// `eval` is set — bRMSE and AUC of the current parameters on that
  /// held-out set. Wall-clock fields (epoch seconds, per-shard wall-times)
  /// are emitted only when the writer includes timings, so a timing-free
  /// stream is bitwise identical across thread counts and runs.
  ///
  /// Evaluating mid-training does not perturb the run: the trainer's RNG
  /// state is snapshotted around the eval pass, so the shuffles and history
  /// draws of later epochs are exactly those of an uninstrumented run.
  struct TelemetryOptions {
    obs::TelemetryWriter* writer = nullptr;  ///< Not owned; may be null.
    const data::ReviewDataset* eval = nullptr;  ///< Not owned; optional.
  };
  void SetTelemetry(TelemetryOptions telemetry) { telemetry_ = telemetry; }

  /// Trains on `train` (copied internally — histories are needed at
  /// inference). Calling Fit twice restarts from scratch.
  void Fit(const data::ReviewDataset& train, EpochCallback callback = nullptr);

  /// Continues training a checkpoint restored by Load: runs the remaining
  /// epochs [epochs_completed(), config().epochs). Because Save captures the
  /// optimizer moments, step count and RNG state, the resumed run is bitwise
  /// identical to one that was never interrupted. Returns
  /// FailedPrecondition when the checkpoint carries no optimizer state
  /// (saved by an older version, or never trained); a no-op when training
  /// already reached config().epochs.
  common::Status Resume(EpochCallback callback = nullptr);

  /// Warm-start continuation on a *grown* corpus — the streaming-retrain
  /// primitive. Replaces the training corpus with `train` (which must cover
  /// the same user/item universe: the id embedding tables are sized to it),
  /// keeps the model parameters, optimizer moments, vocabulary and rating
  /// offset exactly as they are, raises config().epochs by `extra_epochs`
  /// and trains the new epochs on the new corpus. Words that entered the
  /// corpus after the vocabulary was built map to OOV, exactly as unseen
  /// words do at inference.
  ///
  /// Determinism contract: the run is a pure function of (checkpoint state,
  /// train, extra_epochs). A Save → Load → ResumeWith on another process is
  /// bitwise identical to calling ResumeWith in the original process, which
  /// is what makes a kill-then-resume of the streaming driver reproduce an
  /// uninterrupted stream byte for byte.
  common::Status ResumeWith(const data::ReviewDataset& train,
                            int64_t extra_epochs,
                            EpochCallback callback = nullptr);

  struct EvalResult {
    double brmse = 0.0;  ///< Biased RMSE (Eq. 17) on the eval set.
    double auc = 0.0;    ///< Benign-vs-fake AUC of the reliability head.
  };

  /// Scores `eval` with the current parameters without perturbing training:
  /// the trainer RNG is snapshotted around the prediction pass, so training
  /// epochs after an Evaluate are bitwise identical to a run that never
  /// evaluated. This is the sliding detection-lag probe of the streaming
  /// loop.
  EvalResult Evaluate(const data::ReviewDataset& eval);

  struct Predictions {
    std::vector<double> ratings;
    std::vector<double> reliabilities;  ///< P(benign) per pair.
  };

  /// Predicts for explicit (user, item) pairs.
  Predictions PredictPairs(
      const std::vector<std::pair<int64_t, int64_t>>& pairs);

  /// Predicts for every review in `reviews` (aligned with reviews.reviews())
  /// with histories drawn from the training corpus only (inductive — used
  /// for rating prediction, where the target review's text must not leak).
  Predictions PredictDataset(const data::ReviewDataset& reviews);

  /// Predicts for every review of `reviews` with histories drawn from the
  /// union of the training corpus and `reviews` itself (labels unused).
  /// This matches Eq. (1)'s W^u/W^i — all reviews of u and i, including the
  /// one being scored — and gives RRRE the same information access as the
  /// detector baselines when scoring reliability (Tables IV-VI).
  Predictions PredictDatasetTransductive(const data::ReviewDataset& reviews);

  /// Persists a fitted trainer: model parameters (<prefix>.model), the
  /// vocabulary (<prefix>.vocab), the training corpus used for histories
  /// (<prefix>.train.tsv), optimizer moments when available
  /// (<prefix>.optimizer) and scalar state — exact rating offset, epoch
  /// counter and RNG state — in <prefix>.meta. The RrreConfig is not
  /// serialized — construct the loading trainer with the same one.
  common::Status Save(const std::string& prefix) const;

  /// Restores a trainer saved by Save into this instance (which must have
  /// been constructed with a matching config). After Load the trainer can
  /// predict, Resume() remaining epochs (when optimizer state was saved), or
  /// Fit again to retrain from scratch. Legacy checkpoints (scalar-only
  /// .meta) still load but cannot Resume.
  common::Status Load(const std::string& prefix);

  /// File suffixes a Save(prefix) writes, in write order. ".optimizer" is
  /// included only when optimizer state exists. Publish layers and cleanup
  /// loops should derive checkpoint file lists from this instead of
  /// hard-coding suffixes, so a format change cannot orphan artifacts.
  static std::vector<std::string> CheckpointSuffixes(bool with_optimizer);

  bool fitted() const { return model_ != nullptr; }
  const RrreModel& model() const;
  const text::Vocabulary& vocab() const;
  const data::ReviewDataset& train_data() const;
  const RrreConfig& config() const { return config_; }
  /// Mean training rating added back onto the FM head's residual output.
  double rating_offset() const { return rating_offset_; }
  /// Epochs finished so far (across Fit and Resume; restored by Load).
  int64_t epochs_completed() const { return epochs_completed_; }
  /// Monotone counter bumped whenever the model parameters change (each
  /// optimizer step, each Fit restart, each Load). Consumers that cache
  /// parameter-derived values (e.g. BatchScorer tower profiles) snapshot it
  /// and treat a mismatch as staleness.
  int64_t params_version() const { return params_version_; }
  /// Aggregated counters of the per-shard batch tapes (zeroes when
  /// config().use_tape is false or training has not run). The interesting
  /// invariants — buffer_allocs stops growing after the first step of each
  /// shape, distinct_sequences stays at the number of distinct batch shapes
  /// — are asserted by tests/test_kernels.cc.
  tensor::BatchTape::Stats TapeStats() const;

 private:
  /// Runs epochs [first_epoch, config_.epochs) of the training loop on the
  /// already-initialized model/optimizer/features.
  void TrainEpochs(int64_t first_epoch, const EpochCallback& callback);

  /// Grows tapes_ to `count` entries (one per concurrent shard; the
  /// whole-batch path uses one). Existing tapes keep their pools — a growing
  /// shard count mid-run only allocates the new slots.
  void EnsureTapes(int64_t count);

  /// Scores telemetry_.eval with the current parameters and appends one
  /// telemetry record for `stats`; RNG state is preserved across the call.
  void EmitEpochTelemetry(const EpochStats& stats, int64_t examples,
                          int64_t batches,
                          const common::Histogram& shard_seconds);

  RrreConfig config_;
  TelemetryOptions telemetry_;
  common::Rng rng_;
  /// Mean training rating; the FM head learns residuals around it so the
  /// rating loss does not dwarf the reliability loss early in training.
  double rating_offset_ = 0.0;
  int64_t epochs_completed_ = 0;
  int64_t params_version_ = 0;
  std::unique_ptr<data::ReviewDataset> train_;
  std::unique_ptr<text::Vocabulary> vocab_;
  std::unique_ptr<RrreModel> model_;
  std::unique_ptr<FeatureBuilder> features_;
  std::unique_ptr<nn::Adam> optimizer_;
  /// One BatchTape per concurrent training shard (index = shard index), so a
  /// shard's arena is only ever touched by the one thread running that
  /// shard. Kept across batches and epochs — that persistence is the whole
  /// point: batch N reuses batch N-1's buffers.
  std::vector<std::unique_ptr<tensor::BatchTape>> tapes_;
};

}  // namespace rrre::core

#endif  // RRRE_CORE_TRAINER_H_
