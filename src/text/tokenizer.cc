#include "text/tokenizer.h"

#include <cctype>

namespace rrre::text {

std::vector<std::string> Tokenize(std::string_view text) {
  std::vector<std::string> tokens;
  std::string current;
  for (char ch : text) {
    const unsigned char c = static_cast<unsigned char>(ch);
    if (std::isalnum(c)) {
      current.push_back(static_cast<char>(std::tolower(c)));
    } else if (ch == '\'') {
      // Drop apostrophes inside words ("don't" -> "dont").
      continue;
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

}  // namespace rrre::text
