#include "text/word2vec.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace rrre::text {

using common::Rng;
using tensor::Tensor;

SkipGramTrainer::SkipGramTrainer(SkipGramConfig config, int64_t vocab_size)
    : config_(config), vocab_size_(vocab_size) {
  RRRE_CHECK_GT(vocab_size_, Vocabulary::kUnkId);
  RRRE_CHECK_GT(config_.dim, 0);
  RRRE_CHECK_GT(config_.window, 0);
  RRRE_CHECK_GE(config_.negatives, 1);
}

namespace {

float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

/// Unigram^0.75 negative-sampling table (word2vec convention).
std::vector<int64_t> BuildNegativeTable(
    const std::vector<std::vector<int64_t>>& docs, int64_t vocab_size,
    size_t table_size = 1 << 16) {
  std::vector<double> counts(static_cast<size_t>(vocab_size), 0.0);
  for (const auto& doc : docs) {
    for (int64_t id : doc) {
      if (id > Vocabulary::kUnkId) counts[static_cast<size_t>(id)] += 1.0;
    }
  }
  double total = 0.0;
  for (double& c : counts) {
    c = std::pow(c, 0.75);
    total += c;
  }
  std::vector<int64_t> table;
  table.reserve(table_size);
  if (total <= 0.0) {
    // Degenerate corpus: sample uniformly over real words.
    for (size_t i = 0; i < table_size; ++i) {
      table.push_back(
          Vocabulary::kUnkId + 1 +
          static_cast<int64_t>(i % std::max<int64_t>(
                                       1, vocab_size - Vocabulary::kUnkId - 1)));
    }
    return table;
  }
  double cum = 0.0;
  size_t word = 0;
  while (word < counts.size() && counts[word] == 0.0) ++word;
  cum = counts[word] / total;
  for (size_t i = 0; i < table_size; ++i) {
    const double frac = static_cast<double>(i) / static_cast<double>(table_size);
    while (frac > cum && word + 1 < counts.size()) {
      ++word;
      cum += counts[word] / total;
    }
    table.push_back(static_cast<int64_t>(word));
  }
  return table;
}

}  // namespace

Tensor SkipGramTrainer::Train(const std::vector<std::vector<int64_t>>& docs,
                              Rng& rng) const {
  const int64_t v = vocab_size_;
  const int64_t d = config_.dim;
  // Input (center) and output (context) vector tables, flat row-major.
  std::vector<float> in(static_cast<size_t>(v * d));
  std::vector<float> out(static_cast<size_t>(v * d), 0.0f);
  const float init_bound = 0.5f / static_cast<float>(d);
  for (float& x : in) {
    x = static_cast<float>(rng.Uniform(-init_bound, init_bound));
  }

  const std::vector<int64_t> neg_table = BuildNegativeTable(docs, v);

  // Token frequencies for optional subsampling.
  std::vector<double> freq(static_cast<size_t>(v), 0.0);
  double total_tokens = 0.0;
  for (const auto& doc : docs) {
    for (int64_t id : doc) {
      freq[static_cast<size_t>(id)] += 1.0;
      total_tokens += 1.0;
    }
  }

  std::vector<float> grad_center(static_cast<size_t>(d));
  const int64_t total_steps = std::max<int64_t>(
      1, config_.epochs * static_cast<int64_t>(total_tokens));
  int64_t step = 0;

  for (int64_t epoch = 0; epoch < config_.epochs; ++epoch) {
    for (const auto& doc : docs) {
      // Materialize the sentence after subsampling and <pad>/<unk> removal.
      std::vector<int64_t> sent;
      sent.reserve(doc.size());
      for (int64_t id : doc) {
        if (id <= Vocabulary::kUnkId) continue;
        if (config_.subsample > 0.0 && total_tokens > 0.0) {
          const double f = freq[static_cast<size_t>(id)] / total_tokens;
          const double keep =
              std::sqrt(config_.subsample / std::max(f, 1e-12)) +
              config_.subsample / std::max(f, 1e-12);
          if (rng.Uniform() > keep) continue;
        }
        sent.push_back(id);
      }
      for (size_t pos = 0; pos < sent.size(); ++pos) {
        const double progress =
            static_cast<double>(step++) / static_cast<double>(total_steps);
        const float lr = static_cast<float>(
            std::max(config_.min_lr, config_.lr * (1.0 - progress)));
        const int64_t center = sent[pos];
        const int64_t b =
            1 + static_cast<int64_t>(rng.UniformInt(
                    static_cast<uint64_t>(config_.window)));
        const size_t lo = pos >= static_cast<size_t>(b) ? pos - b : 0;
        const size_t hi = std::min(sent.size(), pos + static_cast<size_t>(b) + 1);
        for (size_t cpos = lo; cpos < hi; ++cpos) {
          if (cpos == pos) continue;
          const int64_t context = sent[cpos];
          float* vin = in.data() + center * d;
          std::fill(grad_center.begin(), grad_center.end(), 0.0f);
          // One positive + `negatives` negative targets.
          for (int64_t s = 0; s <= config_.negatives; ++s) {
            int64_t target;
            float label;
            if (s == 0) {
              target = context;
              label = 1.0f;
            } else {
              target = neg_table[rng.UniformInt(
                  static_cast<uint64_t>(neg_table.size()))];
              if (target == context) continue;
              label = 0.0f;
            }
            float* vout = out.data() + target * d;
            float dot = 0.0f;
            for (int64_t i = 0; i < d; ++i) dot += vin[i] * vout[i];
            const float g = lr * (label - StableSigmoid(dot));
            for (int64_t i = 0; i < d; ++i) {
              grad_center[static_cast<size_t>(i)] += g * vout[i];
              vout[i] += g * vin[i];
            }
          }
          for (int64_t i = 0; i < d; ++i) {
            vin[i] += grad_center[static_cast<size_t>(i)];
          }
        }
      }
    }
  }

  // <pad> row pinned to zero.
  std::fill(in.begin() + Vocabulary::kPadId * d,
            in.begin() + (Vocabulary::kPadId + 1) * d, 0.0f);
  return Tensor::FromVector({v, d}, std::move(in));
}

double CosineSimilarity(const Tensor& table, int64_t a, int64_t b) {
  RRRE_CHECK_EQ(table.ndim(), 2);
  const int64_t d = table.dim(1);
  const float* pa = table.data() + a * d;
  const float* pb = table.data() + b * d;
  double dot = 0.0;
  double na = 0.0;
  double nb = 0.0;
  for (int64_t i = 0; i < d; ++i) {
    dot += static_cast<double>(pa[i]) * pb[i];
    na += static_cast<double>(pa[i]) * pa[i];
    nb += static_cast<double>(pb[i]) * pb[i];
  }
  if (na == 0.0 || nb == 0.0) return 0.0;
  return dot / (std::sqrt(na) * std::sqrt(nb));
}

}  // namespace rrre::text
