#ifndef RRRE_TEXT_VOCAB_H_
#define RRRE_TEXT_VOCAB_H_

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace rrre::text {

/// Token-to-id mapping with reserved specials. Id 0 is <pad> (its word
/// vector is pinned to zero so zero-padding is inert), id 1 is <unk>.
class Vocabulary {
 public:
  static constexpr int64_t kPadId = 0;
  static constexpr int64_t kUnkId = 1;

  Vocabulary();

  /// Builds from tokenized documents, keeping tokens that appear at least
  /// min_count times, in descending frequency order (ties: lexicographic).
  static Vocabulary Build(const std::vector<std::vector<std::string>>& docs,
                          int64_t min_count = 1);

  /// Token id, or kUnkId for unknown tokens.
  int64_t Id(const std::string& token) const;

  /// Token string for an id.
  const std::string& Token(int64_t id) const;

  bool Contains(const std::string& token) const;

  /// Encodes tokens into ids (<unk> for out-of-vocabulary).
  std::vector<int64_t> Encode(const std::vector<std::string>& tokens) const;

  /// Encodes and shapes to exactly `length` ids: truncates long inputs,
  /// right-pads short inputs with <pad>.
  std::vector<int64_t> EncodePadded(const std::vector<std::string>& tokens,
                                    int64_t length) const;

  /// Number of entries including the specials.
  int64_t size() const { return static_cast<int64_t>(id_to_token_.size()); }

  /// Persists the vocabulary (one token per line, id = line number).
  common::Status Save(const std::string& path) const;
  /// Loads a vocabulary written by Save; validates the reserved specials.
  static common::Result<Vocabulary> Load(const std::string& path);

 private:
  std::unordered_map<std::string, int64_t> token_to_id_;
  std::vector<std::string> id_to_token_;
};

}  // namespace rrre::text

#endif  // RRRE_TEXT_VOCAB_H_
