#ifndef RRRE_TEXT_TOKENIZER_H_
#define RRRE_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace rrre::text {

/// Splits review text into lowercase word tokens. A token is a maximal run of
/// ASCII letters/digits (apostrophes inside words are dropped: "don't" ->
/// "dont"). Punctuation and other symbols are separators.
std::vector<std::string> Tokenize(std::string_view text);

}  // namespace rrre::text

#endif  // RRRE_TEXT_TOKENIZER_H_
