#ifndef RRRE_TEXT_WORD2VEC_H_
#define RRRE_TEXT_WORD2VEC_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "tensor/tensor.h"
#include "text/vocab.h"

namespace rrre::text {

/// Configuration for skip-gram-with-negative-sampling pretraining.
struct SkipGramConfig {
  int64_t dim = 32;          ///< Word-vector dimensionality (paper's d).
  int64_t window = 3;        ///< Max context distance.
  int64_t negatives = 4;     ///< Negative samples per positive pair.
  int64_t epochs = 3;        ///< Passes over the corpus.
  double lr = 0.025;         ///< Initial learning rate (linearly decayed).
  double min_lr = 1e-4;      ///< Learning-rate floor.
  double subsample = 0.0;    ///< Frequent-word subsampling threshold (0=off).
};

/// Pretrains word vectors on token-id documents — the "pretrained as
/// vectors" step of Sec. IV-A of the paper. A plain SGNS implementation on
/// raw arrays (no autograd) for speed.
///
/// The returned table has shape [vocab_size, dim]; the <pad> row (id 0) is
/// pinned to zero so zero-padded positions are inert in the BiLSTM input.
class SkipGramTrainer {
 public:
  SkipGramTrainer(SkipGramConfig config, int64_t vocab_size);

  /// Trains on documents of token ids and returns the input-vector table.
  tensor::Tensor Train(const std::vector<std::vector<int64_t>>& docs,
                       common::Rng& rng) const;

 private:
  SkipGramConfig config_;
  int64_t vocab_size_;
};

/// Cosine similarity between rows a and b of an embedding table.
double CosineSimilarity(const tensor::Tensor& table, int64_t a, int64_t b);

}  // namespace rrre::text

#endif  // RRRE_TEXT_WORD2VEC_H_
