#include "text/vocab.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"

namespace rrre::text {

Vocabulary::Vocabulary() {
  id_to_token_ = {"<pad>", "<unk>"};
  token_to_id_ = {{"<pad>", kPadId}, {"<unk>", kUnkId}};
}

Vocabulary Vocabulary::Build(
    const std::vector<std::vector<std::string>>& docs, int64_t min_count) {
  std::map<std::string, int64_t> counts;
  for (const auto& doc : docs) {
    for (const auto& tok : doc) ++counts[tok];
  }
  std::vector<std::pair<std::string, int64_t>> kept;
  for (const auto& [tok, count] : counts) {
    if (count >= min_count) kept.emplace_back(tok, count);
  }
  std::sort(kept.begin(), kept.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  Vocabulary vocab;
  for (const auto& [tok, count] : kept) {
    const int64_t id = vocab.size();
    vocab.token_to_id_.emplace(tok, id);
    vocab.id_to_token_.push_back(tok);
  }
  return vocab;
}

int64_t Vocabulary::Id(const std::string& token) const {
  auto it = token_to_id_.find(token);
  return it == token_to_id_.end() ? kUnkId : it->second;
}

const std::string& Vocabulary::Token(int64_t id) const {
  RRRE_CHECK_GE(id, 0);
  RRRE_CHECK_LT(id, size());
  return id_to_token_[static_cast<size_t>(id)];
}

bool Vocabulary::Contains(const std::string& token) const {
  return token_to_id_.count(token) > 0;
}

std::vector<int64_t> Vocabulary::Encode(
    const std::vector<std::string>& tokens) const {
  std::vector<int64_t> ids;
  ids.reserve(tokens.size());
  for (const auto& tok : tokens) ids.push_back(Id(tok));
  return ids;
}

std::vector<int64_t> Vocabulary::EncodePadded(
    const std::vector<std::string>& tokens, int64_t length) const {
  RRRE_CHECK_GT(length, 0);
  std::vector<int64_t> ids(static_cast<size_t>(length), kPadId);
  const size_t n = std::min(tokens.size(), static_cast<size_t>(length));
  for (size_t i = 0; i < n; ++i) ids[i] = Id(tokens[i]);
  return ids;
}

common::Status Vocabulary::Save(const std::string& path) const {
  std::ostringstream out;
  for (const auto& token : id_to_token_) out << token << '\n';
  return common::WriteFile(path, out.str());
}

common::Result<Vocabulary> Vocabulary::Load(const std::string& path) {
  auto content = common::ReadFile(path);
  if (!content.ok()) return content.status();
  std::vector<std::string> lines = common::Split(content.value(), '\n');
  if (!lines.empty() && lines.back().empty()) lines.pop_back();
  if (lines.size() < 2 || lines[0] != "<pad>" || lines[1] != "<unk>") {
    return common::Status::InvalidArgument(
        "vocabulary file missing reserved specials: " + path);
  }
  Vocabulary vocab;
  for (size_t i = 2; i < lines.size(); ++i) {
    if (lines[i].empty()) {
      return common::Status::InvalidArgument(
          "empty token in vocabulary file: " + path);
    }
    const int64_t id = vocab.size();
    if (!vocab.token_to_id_.emplace(lines[i], id).second) {
      return common::Status::InvalidArgument("duplicate token '" + lines[i] +
                                             "' in " + path);
    }
    vocab.id_to_token_.push_back(lines[i]);
  }
  return vocab;
}

}  // namespace rrre::text
