#include "stream/detection.h"

#include <algorithm>

namespace rrre::stream {

void DetectionLagTracker::OnEpoch(int64_t epoch, int64_t partition, int tier,
                                  double brmse, double auc) {
  const bool new_wave = !have_last_ || tier != last_tier_;
  if (new_wave) {
    WaveStat wave;
    wave.tier = tier;
    wave.start_partition = partition;
    wave.start_epoch = epoch;
    if (have_last_) {
      wave.baseline_auc = last_auc_;
      wave.baseline_brmse = last_brmse_;
      wave.target_auc = options_.auc_slack * last_auc_;
      wave.target_brmse = options_.brmse_slack * last_brmse_;
    } else {
      // Cold start: no pre-attack metrics exist, so "recovery" means plain
      // convergence to the absolute targets.
      wave.target_auc = options_.cold_auc_target;
      wave.target_brmse = options_.cold_brmse_target;
    }
    wave.worst_auc = auc;
    wave.worst_brmse = brmse;
    waves_.push_back(wave);
  }

  WaveStat& wave = waves_.back();
  ++wave.epochs_observed;
  wave.worst_auc = std::min(wave.worst_auc, auc);
  wave.worst_brmse = std::max(wave.worst_brmse, brmse);
  if (wave.lag_epochs < 0 && auc >= wave.target_auc &&
      brmse <= wave.target_brmse) {
    wave.lag_epochs = epoch - wave.start_epoch + 1;
  }

  have_last_ = true;
  last_tier_ = tier;
  last_brmse_ = brmse;
  last_auc_ = auc;
}

}  // namespace rrre::stream
