#include "stream/publish.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>

#include "common/failpoint.h"
#include "common/io.h"
#include "common/strings.h"
#include "core/tower_store.h"

namespace rrre::stream {

using common::Result;
using common::Status;

namespace {

constexpr char kManifestName[] = "MANIFEST";
constexpr char kGenPrefix[] = "gen-";

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace

std::string GenerationDirName(int64_t generation) {
  return common::StrFormat("%s%06lld", kGenPrefix,
                           static_cast<long long>(generation));
}

std::string GenerationDir(const std::string& root, int64_t generation) {
  return root + "/" + GenerationDirName(generation);
}

std::string CurrentPath(const std::string& root, const std::string& rel) {
  return root + "/current/" + rel;
}

Status WriteManifest(const std::string& dir, const Manifest& m) {
  if (m.generation < 0) {
    return Status::InvalidArgument("manifest generation not set");
  }
  std::string body;
  body += "format=1\n";
  body += common::StrFormat("generation=%lld\n",
                            static_cast<long long>(m.generation));
  body += common::StrFormat("partition=%lld\n",
                            static_cast<long long>(m.partition));
  body += common::StrFormat("tier=%d\n", m.tier);
  body += common::StrFormat("epochs_completed=%lld\n",
                            static_cast<long long>(m.epochs_completed));
  body += common::StrFormat(
      "params_fingerprint=%016llx\n",
      static_cast<unsigned long long>(m.params_fingerprint));
  body += "checkpoint=" + m.checkpoint + "\n";
  body += "store=" + m.store + "\n";
  body += "files=" + common::Join(m.files, ",") + "\n";

  common::AtomicFileWriter writer;
  RRRE_RETURN_IF_ERROR(writer.Open(dir + "/" + kManifestName, "manifest"));
  RRRE_RETURN_IF_ERROR(writer.Append(body));
  return writer.Commit();
}

Result<Manifest> ReadManifest(const std::string& dir) {
  const std::string path = dir + "/" + kManifestName;
  auto content = common::ReadFile(path);
  if (!content.ok()) {
    return Status::NotFound("no manifest in " + dir + ": " +
                            content.status().message());
  }
  Manifest m;
  bool saw_format = false;
  for (const std::string& raw : common::Split(content.value(), '\n')) {
    const std::string line(common::Trim(raw));
    if (line.empty()) continue;
    const size_t eq = line.find('=');
    if (eq == std::string::npos) {
      return Status::IoError("malformed manifest line in " + path + ": " +
                                line);
    }
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    if (key == "format") {
      if (value != "1") {
        return Status::IoError("unsupported manifest format " + value +
                                  " in " + path);
      }
      saw_format = true;
    } else if (key == "generation") {
      m.generation = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "partition") {
      m.partition = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "tier") {
      m.tier = static_cast<int>(std::strtol(value.c_str(), nullptr, 10));
    } else if (key == "epochs_completed") {
      m.epochs_completed = std::strtoll(value.c_str(), nullptr, 10);
    } else if (key == "params_fingerprint") {
      m.params_fingerprint = std::strtoull(value.c_str(), nullptr, 16);
    } else if (key == "checkpoint") {
      m.checkpoint = value;
    } else if (key == "store") {
      m.store = value;
    } else if (key == "files") {
      m.files.clear();
      if (!value.empty()) m.files = common::Split(value, ',');
    }
    // Unknown keys are ignored so older readers tolerate newer manifests.
  }
  if (!saw_format || m.generation < 0 || m.checkpoint.empty()) {
    return Status::IoError("manifest " + path + " missing required fields");
  }
  for (const std::string& rel : m.files) {
    if (!FileExists(dir + "/" + rel)) {
      return Status::IoError("manifest " + path +
                                " lists missing artifact " + rel);
    }
  }
  auto fingerprint = core::CheckpointParamsFingerprint(dir + "/" + m.checkpoint);
  if (!fingerprint.ok()) {
    return Status::IoError("manifest " + path +
                              " checkpoint unreadable: " +
                              fingerprint.status().message());
  }
  if (fingerprint.value() != m.params_fingerprint) {
    return Status::IoError(common::StrFormat(
        "manifest %s fingerprint %016llx != checkpoint %016llx", path.c_str(),
        static_cast<unsigned long long>(m.params_fingerprint),
        static_cast<unsigned long long>(fingerprint.value())));
  }
  return m;
}

Result<std::pair<Manifest, std::string>> LatestGeneration(
    const std::string& root) {
  DIR* d = ::opendir(root.c_str());
  if (d == nullptr) {
    return Status::NotFound("cannot open publish root " + root + ": " +
                            std::strerror(errno));
  }
  std::vector<int64_t> generations;
  while (struct dirent* entry = ::readdir(d)) {
    const std::string name = entry->d_name;
    if (!common::StartsWith(name, kGenPrefix)) continue;
    const std::string digits = name.substr(std::strlen(kGenPrefix));
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos) {
      continue;
    }
    generations.push_back(std::strtoll(digits.c_str(), nullptr, 10));
  }
  ::closedir(d);
  // Newest first: a generation with a torn or missing manifest (crash between
  // artifact writes and the manifest commit) is skipped and the previous one
  // wins — that is the whole recovery story.
  std::sort(generations.rbegin(), generations.rend());
  for (int64_t generation : generations) {
    const std::string dir = GenerationDir(root, generation);
    auto manifest = ReadManifest(dir);
    if (!manifest.ok()) continue;
    if (manifest.value().generation != generation) continue;
    return std::make_pair(std::move(manifest).ValueOrDie(), dir);
  }
  return Status::NotFound("no published generation under " + root);
}

Status UpdateCurrentLink(const std::string& root, int64_t generation) {
  const std::string link_path = root + "/current";
  const std::string tmp_path = link_path + ".tmp";
  const std::string target = GenerationDirName(generation);
  // A stale tmp link from a crashed publish would make symlink() fail with
  // EEXIST; clear it first (unlink of a missing path is fine).
  ::unlink(tmp_path.c_str());
  RRRE_RETURN_IF_ERROR(
      common::failpoint::MaybeError("publish.symlink", "symlink " + target));
  if (::symlink(target.c_str(), tmp_path.c_str()) != 0) {
    return Status::IoError("symlink " + tmp_path + " -> " + target +
                           " failed: " + std::strerror(errno));
  }
  RRRE_RETURN_IF_ERROR(
      common::failpoint::MaybeError("publish.rename", "rename " + link_path));
  if (::rename(tmp_path.c_str(), link_path.c_str()) != 0) {
    const Status status =
        Status::IoError("rename " + tmp_path + " -> " + link_path +
                        " failed: " + std::strerror(errno));
    ::unlink(tmp_path.c_str());
    return status;
  }
  RRRE_RETURN_IF_ERROR(
      common::failpoint::MaybeError("publish.dirsync", "fsync " + root));
  return common::FsyncParentDir(link_path);
}

}  // namespace rrre::stream
