#include "stream/driver.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <utility>

#include "common/io.h"
#include "common/socket.h"
#include "common/strings.h"
#include "core/tower_store.h"

namespace rrre::stream {

using common::Result;
using common::Status;

StreamDriver::StreamDriver(const data::AdversaryModel* arena,
                           StreamOptions options)
    : arena_(arena),
      options_(std::move(options)),
      trainer_(options_.config),
      tracker_(options_.detection) {}

Status StreamDriver::Recover() {
  RRRE_RETURN_IF_ERROR(common::EnsureDir(options_.publish_root));
  auto latest = LatestGeneration(options_.publish_root);
  if (!latest.ok()) {
    // Fresh stream: nothing published (or nothing valid — a torn generation
    // without a manifest does not count).
    next_partition_ = 0;
    trained_through_ = -1;
    published_through_ = -1;
    return Status::Ok();
  }
  const Manifest& m = latest.value().first;
  const std::string& dir = latest.value().second;
  RRRE_RETURN_IF_ERROR(trainer_.Load(dir + "/" + m.checkpoint));
  next_partition_ = m.partition + 1;
  trained_through_ = m.partition;
  published_through_ = m.partition;
  // The symlink is untrusted state; repair it to match the manifest scan (a
  // crash can land between WriteManifest and the link swap).
  return UpdateCurrentLink(options_.publish_root, m.generation);
}

Status StreamDriver::Step(GenerationResult* result) {
  if (Done()) {
    return Status::FailedPrecondition("stream exhausted: all partitions done");
  }
  const int64_t k = next_partition_;
  const int tier = static_cast<int>(arena_->TierOfPartition(k));
  GenerationResult out;
  out.generation = k;
  out.tier = tier;

  if (trained_through_ < k) {
    const data::ReviewDataset cumulative = arena_->CumulativeThrough(k);
    const data::ReviewDataset eval = arena_->EvalSlice(k);
    double last_brmse = 0.0;
    double last_auc = 0.0;
    auto callback = [&](const core::RrreTrainer::EpochStats& stats) {
      const core::RrreTrainer::EvalResult r = trainer_.Evaluate(eval);
      last_brmse = r.brmse;
      last_auc = r.auc;
      tracker_.OnEpoch(stats.epoch, k, tier, r.brmse, r.auc);
      if (options_.telemetry != nullptr) {
        obs::JsonRecord record;
        record.AddString("event", "stream_epoch");
        record.AddInt("generation", k);
        record.AddInt("tier", tier);
        record.AddInt("epoch", stats.epoch);
        record.AddDouble("loss", stats.loss);
        record.AddDouble("eval_brmse", r.brmse);
        record.AddDouble("eval_auc", r.auc);
        options_.telemetry->Write(record);
      }
    };
    const int64_t extra = options_.epochs_per_partition > 0
                              ? options_.epochs_per_partition
                              : options_.config.epochs;
    if (!trainer_.fitted()) {
      out.epochs_trained = options_.config.epochs;
      trainer_.Fit(cumulative, callback);
    } else {
      out.epochs_trained = extra;
      RRRE_RETURN_IF_ERROR(trainer_.ResumeWith(cumulative, extra, callback));
    }
    out.eval_brmse = last_brmse;
    out.eval_auc = last_auc;
    trained_through_ = k;
  }

  const std::string dir = GenerationDir(options_.publish_root, k);
  const std::string prefix = dir + "/ckpt";
  if (published_through_ < k) {
    RRRE_RETURN_IF_ERROR(common::EnsureDir(dir));
    RRRE_RETURN_IF_ERROR(trainer_.Save(prefix));
    std::vector<std::string> files;
    for (const std::string& suffix :
         core::RrreTrainer::CheckpointSuffixes(/*with_optimizer=*/true)) {
      files.push_back("ckpt" + suffix);
    }
    Manifest m;
    m.generation = k;
    m.partition = k;
    m.tier = tier;
    m.epochs_completed = trainer_.epochs_completed();
    m.checkpoint = "ckpt";
    if (options_.build_store) {
      auto stats =
          core::BuildTowerStore(trainer_, prefix, prefix + ".tower_store");
      if (!stats.ok()) return stats.status();
      m.store = "ckpt.tower_store";
      files.push_back(m.store);
    }
    auto fingerprint = core::CheckpointParamsFingerprint(prefix);
    if (!fingerprint.ok()) return fingerprint.status();
    m.params_fingerprint = fingerprint.value();
    m.files = std::move(files);
    // The manifest is the commit point: written last, so a crash anywhere
    // above leaves a generation recovery will skip.
    RRRE_RETURN_IF_ERROR(WriteManifest(dir, m));
    RRRE_RETURN_IF_ERROR(UpdateCurrentLink(options_.publish_root, k));
    published_through_ = k;
  }

  // Re-derive the fingerprint from disk so a retried Step (publish already
  // durable, reload previously failed) reloads against the right target.
  auto fingerprint = core::CheckpointParamsFingerprint(prefix);
  if (!fingerprint.ok()) return fingerprint.status();
  out.params_fingerprint = fingerprint.value();

  for (const StreamEndpoint& endpoint : options_.reload_endpoints) {
    RRRE_RETURN_IF_ERROR(ReloadEndpoint(endpoint, out.params_fingerprint));
  }
  out.reloaded = true;

  if (options_.telemetry != nullptr) {
    obs::JsonRecord record;
    record.AddString("event", "stream_generation");
    record.AddInt("generation", k);
    record.AddInt("tier", tier);
    record.AddInt("epochs_completed", trainer_.epochs_completed());
    record.AddString("fingerprint",
                     common::StrFormat("%016llx",
                                       static_cast<unsigned long long>(
                                           out.params_fingerprint)));
    record.AddDouble("eval_brmse", out.eval_brmse);
    record.AddDouble("eval_auc", out.eval_auc);
    record.AddBool("reloaded", out.reloaded);
    options_.telemetry->Write(record);
  }

  next_partition_ = k + 1;
  if (result != nullptr) *result = out;
  return Status::Ok();
}

namespace {

/// One request/response round-trip on an established connection.
Result<std::string> RoundTrip(common::Socket& socket,
                              common::LineReader& reader,
                              const std::string& request) {
  RRRE_RETURN_IF_ERROR(socket.SendAll(request));
  auto line = reader.ReadLine();
  if (!line.ok()) return line.status();
  if (!line.value().has_value()) {
    return Status::IoError("peer closed during " + request);
  }
  return *line.value();
}

}  // namespace

Status StreamDriver::ReloadEndpoint(const StreamEndpoint& endpoint,
                                    uint64_t fingerprint) {
  auto socket = common::Socket::Connect(endpoint.host, endpoint.port);
  if (!socket.ok()) return socket.status();
  common::Socket conn = std::move(socket).ValueOrDie();
  RRRE_RETURN_IF_ERROR(conn.SetRecvTimeout(options_.reload_timeout_ms));
  RRRE_RETURN_IF_ERROR(conn.SetSendTimeout(options_.reload_timeout_ms));
  common::LineReader reader(&conn);

  const std::string where =
      endpoint.host + ":" + std::to_string(endpoint.port);
  auto reply = RoundTrip(conn, reader, "RELOAD\n");
  if (!reply.ok()) return reply.status();
  if (!common::StartsWith(reply.value(), "#reloaded")) {
    return Status::IoError("RELOAD rejected by " + where + ": " +
                           reply.value());
  }

  // The RELOAD ack means the new snapshot is in; poll STATS until the peer
  // reports the published fingerprint — and, when it reports one (the router
  // does), zero quarantined backends, i.e. a clean roll.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(options_.reload_timeout_ms);
  for (;;) {
    auto stats = RoundTrip(conn, reader, "STATS\n");
    if (!stats.ok()) return stats.status();
    uint64_t seen = 0;
    int64_t quarantined = 0;
    for (const std::string& token : common::Split(stats.value(), '\t')) {
      if (common::StartsWith(token, "fingerprint=")) {
        seen = std::strtoull(token.c_str() + 12, nullptr, 10);
      } else if (common::StartsWith(token, "quarantined=")) {
        quarantined = std::strtoll(token.c_str() + 12, nullptr, 10);
      }
    }
    if (seen == fingerprint && quarantined == 0) return Status::Ok();
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(common::StrFormat(
          "%s did not converge on fingerprint %llu (saw %llu, "
          "quarantined=%lld)",
          where.c_str(), static_cast<unsigned long long>(fingerprint),
          static_cast<unsigned long long>(seen),
          static_cast<long long>(quarantined)));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

}  // namespace rrre::stream
