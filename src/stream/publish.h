#ifndef RRRE_STREAM_PUBLISH_H_
#define RRRE_STREAM_PUBLISH_H_

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rrre::stream {

/// The versioned publish layout of the streaming retrain loop:
///
///   <root>/gen-000000/ckpt.{model,vocab,train.tsv,optimizer,meta}
///   <root>/gen-000000/ckpt.tower_store
///   <root>/gen-000000/MANIFEST            <- written LAST
///   <root>/gen-000001/...
///   <root>/current -> gen-000001          <- swapped after the manifest
///
/// Every artifact is written with AtomicFileWriter; the MANIFEST is written
/// last (failpoint family "manifest", parent-dir fsync in Commit), so a
/// crash at any point leaves either no manifest — the generation does not
/// exist as far as recovery is concerned — or a manifest whose listed
/// artifacts are all durable. A manifest can never point at missing bytes.
///
/// The `current` symlink is a *convenience* pointer for serving processes
/// (configure them with `<root>/current/ckpt`); recovery never trusts it —
/// LatestGeneration() re-scans the generation directories and validates
/// manifests, then the driver repairs the link.

/// Parsed MANIFEST contents. Paths are relative to the generation directory
/// so a publish root can be moved or mounted elsewhere.
struct Manifest {
  int64_t generation = -1;
  int64_t partition = -1;
  int tier = 0;
  int64_t epochs_completed = 0;
  /// CheckpointParamsFingerprint of the checkpoint — the cross-process
  /// version identity the serving fleet converges on.
  uint64_t params_fingerprint = 0;
  /// Checkpoint prefix relative to the generation dir (always "ckpt").
  std::string checkpoint = "ckpt";
  /// Tower store relative path; empty when the generation has no store.
  std::string store;
  /// Every artifact file (relative), manifest excluded.
  std::vector<std::string> files;
};

/// "gen-%06d".
std::string GenerationDirName(int64_t generation);

/// "<root>/gen-%06d".
std::string GenerationDir(const std::string& root, int64_t generation);

/// Serializes `m` and writes `<dir>/MANIFEST` atomically + durably (tmp,
/// fsync, rename, parent-dir fsync) under the failpoint family "manifest".
/// Callers must have durably written every listed artifact first.
common::Status WriteManifest(const std::string& dir, const Manifest& m);

/// Reads and validates `<dir>/MANIFEST`: parses it, checks every listed file
/// exists, and verifies the checkpoint's params fingerprint matches the
/// manifest's. A generation that fails any check is treated as not
/// published.
common::Result<Manifest> ReadManifest(const std::string& dir);

/// Scans `root` for the newest generation with a valid manifest. Returns
/// (manifest, generation dir); NotFound when no valid generation exists.
common::Result<std::pair<Manifest, std::string>> LatestGeneration(
    const std::string& root);

/// Atomically points `<root>/current` at GenerationDirName(generation):
/// symlink under a temp name, rename over `current`, parent-dir fsync.
/// Failpoints: publish.symlink / publish.rename / publish.dirsync.
common::Status UpdateCurrentLink(const std::string& root, int64_t generation);

/// "<root>/current/<rel>" — the path serving processes should be configured
/// with so a link swap retargets them on their next reload.
std::string CurrentPath(const std::string& root, const std::string& rel);

}  // namespace rrre::stream

#endif  // RRRE_STREAM_PUBLISH_H_
