#ifndef RRRE_STREAM_DETECTION_H_
#define RRRE_STREAM_DETECTION_H_

#include <cstdint>
#include <vector>

namespace rrre::stream {

/// Per-wave summary of how the retrain loop absorbed one attack escalation.
struct WaveStat {
  int tier = 0;
  int64_t start_partition = 0;
  /// Global epoch index of the first retrain epoch under this wave.
  int64_t start_epoch = 0;
  /// Eval metrics at the last epoch *before* the wave began (the pre-attack
  /// baseline the recovery targets are derived from). For wave 0 there is no
  /// baseline and these are 0.
  double baseline_auc = 0.0;
  double baseline_brmse = 0.0;
  /// Recovery targets: recovered at the first epoch with
  /// auc >= target_auc && brmse <= target_brmse.
  double target_auc = 0.0;
  double target_brmse = 0.0;
  /// Worst observed metrics during the wave (min AUC, max bRMSE) — how deep
  /// the attack bit before the loop recovered.
  double worst_auc = 0.0;
  double worst_brmse = 0.0;
  /// Detection lag: epochs from wave onset until recovery, inclusive of the
  /// recovering epoch. -1 while (or if never) unrecovered.
  int64_t lag_epochs = -1;
  int64_t epochs_observed = 0;
};

/// Measures detection lag across an escalating attack schedule: each change
/// of adversary tier opens a new wave, the eval metrics at the last epoch
/// before the change become the baseline, and the wave's lag is the number
/// of retrain epochs until bRMSE and AUC are back within a slack factor of
/// that baseline. Wave 0 (cold start) has no baseline, so it recovers
/// against absolute targets instead.
///
/// Feed it every eval point in epoch order via OnEpoch; read waves() at the
/// end. Deterministic: pure function of the fed sequence.
class DetectionLagTracker {
 public:
  struct Options {
    /// Recovered when brmse <= brmse_slack * baseline_brmse ...
    double brmse_slack = 1.05;
    /// ... and auc >= auc_slack * baseline_auc.
    double auc_slack = 0.98;
    /// Absolute targets for wave 0, which has no pre-attack baseline.
    double cold_auc_target = 0.70;
    double cold_brmse_target = 1.15;
  };

  DetectionLagTracker() : DetectionLagTracker(Options{}) {}
  explicit DetectionLagTracker(const Options& options) : options_(options) {}

  /// Reports the eval metrics after global epoch `epoch` while training on
  /// data whose newest partition has adversary tier `tier`. Epochs must be
  /// fed in order; a tier change opens a new wave (closing the previous one
  /// recovered or not).
  void OnEpoch(int64_t epoch, int64_t partition, int tier, double brmse,
               double auc);

  const std::vector<WaveStat>& waves() const { return waves_; }

 private:
  Options options_;
  std::vector<WaveStat> waves_;
  bool have_last_ = false;
  int last_tier_ = -1;
  double last_brmse_ = 0.0;
  double last_auc_ = 0.0;
};

}  // namespace rrre::stream

#endif  // RRRE_STREAM_DETECTION_H_
