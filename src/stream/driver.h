#ifndef RRRE_STREAM_DRIVER_H_
#define RRRE_STREAM_DRIVER_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/config.h"
#include "core/trainer.h"
#include "data/adversary.h"
#include "obs/telemetry.h"
#include "stream/detection.h"
#include "stream/publish.h"

namespace rrre::stream {

/// A serving process the driver hot-reloads after each publish.
struct StreamEndpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
};

struct StreamOptions {
  /// Trainer configuration. config.epochs is the epoch budget of the cold
  /// start (partition 0); later partitions train epochs_per_partition more.
  core::RrreConfig config;
  /// Extra epochs per warm-start retrain; 0 reuses config.epochs.
  int64_t epochs_per_partition = 0;
  /// Root of the versioned publish layout (see publish.h).
  std::string publish_root;
  /// Build and publish a tower store with each generation. Requires the
  /// deterministic serving history sampling (see BuildTowerStore).
  bool build_store = true;
  /// rrre_served / rrre_routed processes to RELOAD after each publish. A
  /// router endpoint reloads its whole fleet behind its rolling barrier.
  std::vector<StreamEndpoint> reload_endpoints;
  /// Deadline for one endpoint to acknowledge the RELOAD and converge its
  /// STATS fingerprint (and, for a router, report quarantined=0).
  int reload_timeout_ms = 15000;
  /// Per-epoch + per-generation JSONL stream; not owned, may be null.
  obs::TelemetryWriter* telemetry = nullptr;
  DetectionLagTracker::Options detection;
};

/// What one Step() produced.
struct GenerationResult {
  int64_t generation = -1;
  int tier = 0;
  int64_t epochs_trained = 0;
  uint64_t params_fingerprint = 0;
  /// Eval metrics of the final epoch of this generation's retrain (0/0 when
  /// the retrain was skipped because recovery found it already trained).
  double eval_brmse = 0.0;
  double eval_auc = 0.0;
  /// True when every reload endpoint converged on the new fingerprint.
  bool reloaded = false;
};

/// The streaming retrain loop: consumes arena partitions in order,
/// warm-starts each retrain from the previous checkpoint (exact-resume
/// path), publishes generation k = partition k under the versioned layout,
/// swaps the `current` symlink, and hot-reloads the serving fleet. A sliding
/// eval after every epoch feeds the DetectionLagTracker.
///
/// Crash-safety / determinism: Recover() re-derives all progress from the
/// newest valid manifest — never from the symlink, never from in-memory
/// state. Because partition k's corpus is a pure function of the arena seed
/// and the retrain is a pure function of (checkpoint, corpus, epochs), a
/// driver killed anywhere and restarted publishes byte-identical artifacts
/// for every remaining generation.
class StreamDriver {
 public:
  /// `arena` is not owned and must outlive the driver.
  StreamDriver(const data::AdversaryModel* arena, StreamOptions options);

  /// Restores progress from options.publish_root: loads the newest valid
  /// generation's checkpoint into the trainer and repairs the `current`
  /// link, or starts fresh when none exists. Must be called before Step.
  common::Status Recover();

  /// Trains, publishes and reloads the next partition. Retry-safe: a Step
  /// that failed mid-way (e.g. an injected publish fault) can be called
  /// again and resumes at the failed phase without re-training — that is
  /// what keeps the retried run bitwise identical to an unfaulted one.
  common::Status Step(GenerationResult* result);

  /// True when every arena partition has been trained, published, reloaded.
  bool Done() const { return next_partition_ >= arena_->num_partitions(); }

  int64_t next_partition() const { return next_partition_; }
  const DetectionLagTracker& tracker() const { return tracker_; }
  core::RrreTrainer& trainer() { return trainer_; }

 private:
  /// Sends RELOAD to one endpoint and polls its STATS line until the
  /// fingerprint matches `fingerprint` and (when the peer reports one — the
  /// router does) quarantined is 0.
  common::Status ReloadEndpoint(const StreamEndpoint& endpoint,
                                uint64_t fingerprint);

  const data::AdversaryModel* arena_;
  StreamOptions options_;
  core::RrreTrainer trainer_;
  DetectionLagTracker tracker_;

  int64_t next_partition_ = 0;
  /// Progress watermarks: partition k's retrain ran iff trained_through_ >=
  /// k, its generation is durable iff published_through_ >= k. They are what
  /// makes a failed Step retryable without double-training.
  int64_t trained_through_ = -1;
  int64_t published_through_ = -1;
};

}  // namespace rrre::stream

#endif  // RRRE_STREAM_DRIVER_H_
