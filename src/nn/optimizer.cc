#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace rrre::nn {

using tensor::Tensor;

namespace {

/// A gradient buffer is live only when backward actually allocated it this
/// step; otherwise the parameter did not participate in the loss.
bool HasLiveGrad(const Tensor& t) {
  return t.impl()->grad.size() == t.impl()->data.size();
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    RRRE_CHECK(p.defined());
    RRRE_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (Tensor& p : params_) {
    if (!HasLiveGrad(p)) continue;
    float* data = p.data();
    const std::vector<float>& grad = p.impl()->grad;
    const size_t n = grad.size();
    if (momentum_ > 0.0) {
      auto& vel = velocity_[p.impl().get()];
      if (vel.size() != n) vel.assign(n, 0.0f);
      for (size_t i = 0; i < n; ++i) {
        float g = grad[i] + static_cast<float>(weight_decay_) * data[i];
        vel[i] = static_cast<float>(momentum_) * vel[i] + g;
        data[i] -= static_cast<float>(lr_) * vel[i];
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        float g = grad[i] + static_cast<float>(weight_decay_) * data[i];
        data[i] -= static_cast<float>(lr_) * g;
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Tensor& p : params_) {
    if (!HasLiveGrad(p)) continue;
    float* data = p.data();
    const std::vector<float>& grad = p.impl()->grad;
    const size_t n = grad.size();
    Slot& slot = slots_[p.impl().get()];
    if (slot.m.size() != n) {
      slot.m.assign(n, 0.0f);
      slot.v.assign(n, 0.0f);
    }
    for (size_t i = 0; i < n; ++i) {
      double g = grad[i] + weight_decay_ * data[i];
      slot.m[i] = static_cast<float>(beta1_ * slot.m[i] + (1.0 - beta1_) * g);
      slot.v[i] =
          static_cast<float>(beta2_ * slot.v[i] + (1.0 - beta2_) * g * g);
      const double mhat = slot.m[i] / bias1;
      const double vhat = slot.v[i] / bias2;
      data[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

double GlobalGradNorm(const std::vector<Tensor>& params) {
  double total = 0.0;
  for (const Tensor& p : params) {
    if (!HasLiveGrad(p)) continue;
    for (float g : p.impl()->grad) total += static_cast<double>(g) * g;
  }
  return std::sqrt(total);
}

double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  RRRE_CHECK_GT(max_norm, 0.0);
  const double norm = GlobalGradNorm(params);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params) {
      if (!HasLiveGrad(p)) continue;
      for (float& g : p.impl()->grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace rrre::nn
