#include "nn/optimizer.h"

#include <cmath>

#include "common/logging.h"

namespace rrre::nn {

using tensor::Tensor;

namespace {

/// A gradient buffer is live only when backward actually allocated it this
/// step; otherwise the parameter did not participate in the loss.
bool HasLiveGrad(const Tensor& t) {
  return t.impl()->grad.size() == t.impl()->data.size();
}

}  // namespace

Optimizer::Optimizer(std::vector<Tensor> params) : params_(std::move(params)) {
  for (const Tensor& p : params_) {
    RRRE_CHECK(p.defined());
    RRRE_CHECK(p.requires_grad());
  }
}

void Optimizer::ZeroGrad() {
  for (Tensor& p : params_) p.ZeroGrad();
}

Sgd::Sgd(std::vector<Tensor> params, double lr, double momentum,
         double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      momentum_(momentum),
      weight_decay_(weight_decay) {}

void Sgd::Step() {
  for (Tensor& p : params_) {
    if (!HasLiveGrad(p)) continue;
    float* data = p.data();
    const std::vector<float>& grad = p.impl()->grad;
    const size_t n = grad.size();
    if (momentum_ > 0.0) {
      auto& vel = velocity_[p.impl().get()];
      if (vel.size() != n) vel.assign(n, 0.0f);
      for (size_t i = 0; i < n; ++i) {
        float g = grad[i] + static_cast<float>(weight_decay_) * data[i];
        vel[i] = static_cast<float>(momentum_) * vel[i] + g;
        data[i] -= static_cast<float>(lr_) * vel[i];
      }
    } else {
      for (size_t i = 0; i < n; ++i) {
        float g = grad[i] + static_cast<float>(weight_decay_) * data[i];
        data[i] -= static_cast<float>(lr_) * g;
      }
    }
  }
}

Adam::Adam(std::vector<Tensor> params, double lr, double beta1, double beta2,
           double eps, double weight_decay)
    : Optimizer(std::move(params)),
      lr_(lr),
      beta1_(beta1),
      beta2_(beta2),
      eps_(eps),
      weight_decay_(weight_decay) {}

void Adam::Step() {
  ++t_;
  const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (Tensor& p : params_) {
    if (!HasLiveGrad(p)) continue;
    float* data = p.data();
    const std::vector<float>& grad = p.impl()->grad;
    const size_t n = grad.size();
    Slot& slot = slots_[p.impl().get()];
    if (slot.m.size() != n) {
      slot.m.assign(n, 0.0f);
      slot.v.assign(n, 0.0f);
    }
    for (size_t i = 0; i < n; ++i) {
      double g = grad[i] + weight_decay_ * data[i];
      slot.m[i] = static_cast<float>(beta1_ * slot.m[i] + (1.0 - beta1_) * g);
      slot.v[i] =
          static_cast<float>(beta2_ * slot.v[i] + (1.0 - beta2_) * g * g);
      const double mhat = slot.m[i] / bias1;
      const double vhat = slot.v[i] / bias2;
      data[i] -= static_cast<float>(lr_ * mhat / (std::sqrt(vhat) + eps_));
    }
  }
}

std::map<std::string, Tensor> Adam::StateTensors() const {
  std::map<std::string, Tensor> state;
  // Two f32 words hold the step count exactly for t < 2^48 (a float is
  // integer-exact up to 2^24).
  const auto lo = static_cast<float>(t_ & ((int64_t{1} << 24) - 1));
  const auto hi = static_cast<float>(t_ >> 24);
  state.emplace("adam.t", Tensor::FromVector({2}, {lo, hi}));
  for (size_t i = 0; i < params_.size(); ++i) {
    const auto it = slots_.find(params_[i].impl().get());
    if (it == slots_.end()) continue;
    const std::string key = "adam." + std::to_string(i);
    const auto n = static_cast<int64_t>(it->second.m.size());
    state.emplace(key + ".m", Tensor::FromVector({n}, it->second.m));
    state.emplace(key + ".v", Tensor::FromVector({n}, it->second.v));
  }
  return state;
}

common::Status Adam::LoadStateTensors(
    const std::map<std::string, Tensor>& state) {
  const auto t_it = state.find("adam.t");
  if (t_it == state.end() || t_it->second.numel() != 2) {
    return common::Status::InvalidArgument(
        "optimizer state is missing a valid adam.t entry");
  }
  // Validate everything before mutating so a bad checkpoint cannot leave the
  // optimizer half-restored.
  std::unordered_map<const void*, Slot> slots;
  for (const auto& [name, t] : state) {
    if (name == "adam.t") continue;
    if (name.rfind("adam.", 0) != 0) {
      return common::Status::InvalidArgument("unknown optimizer state key: " +
                                             name);
    }
    const std::string body = name.substr(5);  // "<i>.m" or "<i>.v"
    const size_t dot = body.find('.');
    if (dot == std::string::npos ||
        (body.substr(dot + 1) != "m" && body.substr(dot + 1) != "v")) {
      return common::Status::InvalidArgument("unknown optimizer state key: " +
                                             name);
    }
    size_t index = 0;
    try {
      index = std::stoul(body.substr(0, dot));
    } catch (...) {
      return common::Status::InvalidArgument("unknown optimizer state key: " +
                                             name);
    }
    if (index >= params_.size()) {
      return common::Status::InvalidArgument(
          "optimizer state key " + name + " exceeds the parameter count (" +
          std::to_string(params_.size()) + ")");
    }
    const Tensor& param = params_[index];
    if (t.numel() != param.numel()) {
      return common::Status::InvalidArgument(
          "optimizer state size mismatch for " + name + ": " +
          std::to_string(t.numel()) + " vs parameter " +
          std::to_string(param.numel()));
    }
    Slot& slot = slots[param.impl().get()];
    auto& dst = body.substr(dot + 1) == "m" ? slot.m : slot.v;
    if (!dst.empty()) {
      return common::Status::InvalidArgument("duplicate optimizer state key: " +
                                             name);
    }
    dst = t.ToVector();
  }
  for (const auto& [impl, slot] : slots) {
    (void)impl;
    if (slot.m.size() != slot.v.size()) {
      return common::Status::InvalidArgument(
          "optimizer state has an unpaired adam.<i>.m / adam.<i>.v entry");
    }
  }
  const auto lo = static_cast<int64_t>(t_it->second.at(0));
  const auto hi = static_cast<int64_t>(t_it->second.at(1));
  if (lo < 0 || hi < 0 || lo >= (int64_t{1} << 24)) {
    return common::Status::InvalidArgument(
        "optimizer state has an invalid step count");
  }
  t_ = (hi << 24) | lo;
  slots_ = std::move(slots);
  return common::Status::Ok();
}

double GlobalGradNorm(const std::vector<Tensor>& params) {
  double total = 0.0;
  for (const Tensor& p : params) {
    if (!HasLiveGrad(p)) continue;
    for (float g : p.impl()->grad) total += static_cast<double>(g) * g;
  }
  return std::sqrt(total);
}

double ClipGradNorm(std::vector<Tensor>& params, double max_norm) {
  RRRE_CHECK_GT(max_norm, 0.0);
  const double norm = GlobalGradNorm(params);
  if (norm > max_norm) {
    const float scale = static_cast<float>(max_norm / norm);
    for (Tensor& p : params) {
      if (!HasLiveGrad(p)) continue;
      for (float& g : p.impl()->grad) g *= scale;
    }
  }
  return norm;
}

}  // namespace rrre::nn
