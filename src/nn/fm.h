#ifndef RRRE_NN_FM_H_
#define RRRE_NN_FM_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Second-order factorization machine over a dense feature vector (the FM()
/// layer in Eq. 12 of the paper, as in NARRE/DeepCoNN):
///
///   y = w0 + x.w + 0.5 * sum_f [ (x V)_f^2 - (x^2)(V^2)_f ]
///
/// computed with the O(n*f) reformulation of Rendle (2010).
class FactorizationMachine : public Module {
 public:
  FactorizationMachine(int64_t num_inputs, int64_t num_factors,
                       common::Rng& rng);

  /// x: [batch, num_inputs] -> [batch, 1].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

 private:
  tensor::Tensor w0_;  // [1]
  tensor::Tensor w_;   // [num_inputs, 1]
  tensor::Tensor v_;   // [num_inputs, num_factors]
};

}  // namespace rrre::nn

#endif  // RRRE_NN_FM_H_
