#include "nn/loss.h"

#include <algorithm>

#include "common/logging.h"
#include "tensor/ops.h"

namespace rrre::nn {

using tensor::Tensor;

namespace {

Tensor AsColumn(const Tensor& pred) {
  if (pred.ndim() == 2) {
    RRRE_CHECK_EQ(pred.dim(1), 1);
    return pred;
  }
  RRRE_CHECK_EQ(pred.ndim(), 1);
  return tensor::Reshape(pred, {pred.dim(0), 1});
}

}  // namespace

Tensor MseLoss(const Tensor& pred, const std::vector<float>& targets) {
  Tensor p = AsColumn(pred);
  const int64_t b = p.dim(0);
  RRRE_CHECK_EQ(static_cast<int64_t>(targets.size()), b);
  Tensor t = Tensor::FromVector({b, 1}, targets);
  return tensor::Mean(tensor::Square(tensor::Sub(p, t)));
}

Tensor WeightedMseLoss(const Tensor& pred, const std::vector<float>& targets,
                       const std::vector<float>& weights,
                       WeightedMseNorm norm) {
  Tensor p = AsColumn(pred);
  const int64_t b = p.dim(0);
  RRRE_CHECK_EQ(static_cast<int64_t>(targets.size()), b);
  RRRE_CHECK_EQ(static_cast<int64_t>(weights.size()), b);
  Tensor t = Tensor::FromVector({b, 1}, targets);
  Tensor w = Tensor::FromVector({b, 1}, weights);
  Tensor weighted = tensor::Mul(w, tensor::Square(tensor::Sub(p, t)));
  double denom = static_cast<double>(b);
  if (norm == WeightedMseNorm::kWeightSum) {
    double wsum = 0.0;
    for (float v : weights) {
      RRRE_CHECK_GE(v, 0.0f);
      wsum += v;
    }
    denom = std::max(wsum, 1e-12);
  }
  return tensor::MulScalar(tensor::Sum(weighted),
                           static_cast<float>(1.0 / denom));
}

Tensor L2Penalty(const std::vector<Tensor>& params) {
  RRRE_CHECK(!params.empty());
  Tensor total = tensor::Sum(tensor::Square(params[0]));
  for (size_t i = 1; i < params.size(); ++i) {
    total = tensor::Add(total, tensor::Sum(tensor::Square(params[i])));
  }
  return total;
}

}  // namespace rrre::nn
