#include "nn/attention.h"

#include "obs/trace.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rrre::nn {

using tensor::Tensor;

FraudAttention::FraudAttention(int64_t rev_dim, int64_t user_id_dim,
                               int64_t item_id_dim, int64_t attention_dim,
                               common::Rng& rng) {
  w_rev_ = RegisterParameter(
      "w_rev", Tensor::XavierUniform({rev_dim, attention_dim}, rng, true));
  w_u_ = RegisterParameter(
      "w_u", Tensor::XavierUniform({user_id_dim, attention_dim}, rng, true));
  w_i_ = RegisterParameter(
      "w_i", Tensor::XavierUniform({item_id_dim, attention_dim}, rng, true));
  b1_ = RegisterParameter("b1", Tensor::Zeros({attention_dim}, true));
  h_ = RegisterParameter(
      "h", Tensor::XavierUniform({attention_dim, 1}, rng, true));
  b2_ = RegisterParameter("b2", Tensor::Zeros({1}, true));
}

Tensor FraudAttention::Forward(const Tensor& rev, const Tensor& user_ids,
                               const Tensor& item_ids, int64_t group_size,
                               const Tensor& mask) const {
  obs::TraceSpan span("attention_forward");
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const int64_t rows = rev.dim(0);
  RRRE_CHECK_EQ(user_ids.dim(0), rows);
  RRRE_CHECK_EQ(item_ids.dim(0), rows);
  RRRE_CHECK_GT(group_size, 0);
  RRRE_CHECK_EQ(rows % group_size, 0);
  const int64_t batch = rows / group_size;

  // Fused: one node for the three-way add + bias + tanh, bitwise identical
  // to the eager chain (left-to-right partial sums match the Add nesting).
  Tensor hidden =
      FusionEnabled()
          ? AddNBiasAct({MatMul(rev, w_rev_), MatMul(user_ids, w_u_),
                         MatMul(item_ids, w_i_)},
                        b1_, Activation::kTanh)
          : Tanh(AddBias(Add(Add(MatMul(rev, w_rev_), MatMul(user_ids, w_u_)),
                             MatMul(item_ids, w_i_)),
                         b1_));
  Tensor scores = AddBias(MatMul(hidden, h_), b2_);       // [B*s, 1]
  Tensor grouped = Reshape(scores, {batch, group_size});  // [B, s]
  if (mask.defined()) {
    RRRE_CHECK(mask.shape() == grouped.shape())
        << ShapeToString(mask.shape()) << " vs "
        << ShapeToString(grouped.shape());
    grouped = Add(grouped, mask);
  }
  return Softmax(grouped);  // [B, s]
}

}  // namespace rrre::nn
