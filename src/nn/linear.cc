#include "nn/linear.h"

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rrre::nn {

using tensor::Tensor;

Linear::Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
               bool use_bias)
    : in_features_(in_features),
      out_features_(out_features),
      use_bias_(use_bias) {
  weight_ = RegisterParameter(
      "weight", Tensor::XavierUniform({in_features, out_features}, rng,
                                      /*requires_grad=*/true));
  if (use_bias_) {
    bias_ = RegisterParameter(
        "bias", Tensor::Zeros({out_features}, /*requires_grad=*/true));
  }
}

Tensor Linear::Forward(const Tensor& x) const {
  Tensor y = tensor::MatMul(x, weight_);
  if (use_bias_) {
    // Single-part AddNBiasAct with no activation is bitwise AddBias; under
    // fusion it saves one node per layer call on the tape.
    y = tensor::FusionEnabled()
            ? tensor::AddNBiasAct({y}, bias_, tensor::Activation::kNone)
            : tensor::AddBias(y, bias_);
  }
  return y;
}

}  // namespace rrre::nn
