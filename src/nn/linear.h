#ifndef RRRE_NN_LINEAR_H_
#define RRRE_NN_LINEAR_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Fully-connected layer: y = x W + b with W: [in, out].
class Linear : public Module {
 public:
  Linear(int64_t in_features, int64_t out_features, common::Rng& rng,
         bool use_bias = true);

  /// x: [batch, in] -> [batch, out].
  tensor::Tensor Forward(const tensor::Tensor& x) const;

  int64_t in_features() const { return in_features_; }
  int64_t out_features() const { return out_features_; }

 private:
  int64_t in_features_;
  int64_t out_features_;
  bool use_bias_;
  tensor::Tensor weight_;
  tensor::Tensor bias_;
};

}  // namespace rrre::nn

#endif  // RRRE_NN_LINEAR_H_
