#include "nn/lstm.h"

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rrre::nn {

using tensor::Tensor;

LstmCell::LstmCell(int64_t input_size, int64_t hidden_size, common::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", Tensor::XavierUniform({input_size, 4 * hidden_size}, rng,
                                    /*requires_grad=*/true));
  w_hh_ = RegisterParameter(
      "w_hh", Tensor::XavierUniform({hidden_size, 4 * hidden_size}, rng,
                                    /*requires_grad=*/true));
  Tensor bias = Tensor::Zeros({4 * hidden_size}, /*requires_grad=*/true);
  // Forget gate (second block) biased to 1.
  for (int64_t j = 0; j < hidden_size; ++j) bias.at(hidden_size + j) = 1.0f;
  bias_ = RegisterParameter("bias", bias);
}

LstmCell::State LstmCell::InitialState(int64_t batch) const {
  return State{Tensor::Zeros({batch, hidden_size_}),
               Tensor::Zeros({batch, hidden_size_})};
}

LstmCell::State LstmCell::Step(const Tensor& x, const State& state) const {
  RRRE_CHECK_EQ(x.dim(1), input_size_);
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  if (FusionEnabled()) {
    // Fused gate block: 2 nodes instead of 10, bitwise identical to the
    // eager chain below (tests/test_kernels.cc, LstmFusedMatchesEager).
    Tensor pre = AddNBiasAct({MatMul(x, w_ih_), MatMul(state.h, w_hh_)},
                             bias_, Activation::kNone);
    LstmStepOut out = LstmPointwise(pre, state.c);
    return State{out.h, out.c};
  }
  Tensor pre = AddBias(Add(MatMul(x, w_ih_), MatMul(state.h, w_hh_)), bias_);
  const int64_t h = hidden_size_;
  Tensor i = Sigmoid(SliceCols(pre, 0, h));
  Tensor f = Sigmoid(SliceCols(pre, h, h));
  Tensor g = Tanh(SliceCols(pre, 2 * h, h));
  Tensor o = Sigmoid(SliceCols(pre, 3 * h, h));
  Tensor c_next = Add(Mul(f, state.c), Mul(i, g));
  Tensor h_next = Mul(o, Tanh(c_next));
  return State{h_next, c_next};
}

BiLstmEncoder::BiLstmEncoder(int64_t input_size, int64_t hidden_size,
                             common::Rng& rng)
    : forward_(input_size, hidden_size, rng),
      backward_(input_size, hidden_size, rng) {
  RegisterModule("fwd", &forward_);
  RegisterModule("bwd", &backward_);
}

Tensor BiLstmEncoder::Encode(const std::vector<Tensor>& steps) const {
  RRRE_CHECK(!steps.empty());
  const int64_t batch = steps[0].dim(0);
  LstmCell::State fwd = forward_.InitialState(batch);
  for (const Tensor& x : steps) fwd = forward_.Step(x, fwd);
  LstmCell::State bwd = backward_.InitialState(batch);
  for (auto it = steps.rbegin(); it != steps.rend(); ++it) {
    bwd = backward_.Step(*it, bwd);
  }
  return tensor::ConcatCols({fwd.h, bwd.h});
}

}  // namespace rrre::nn
