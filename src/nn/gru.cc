#include "nn/gru.h"

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rrre::nn {

using tensor::Tensor;

GruCell::GruCell(int64_t input_size, int64_t hidden_size, common::Rng& rng)
    : input_size_(input_size), hidden_size_(hidden_size) {
  w_ih_ = RegisterParameter(
      "w_ih", Tensor::XavierUniform({input_size, 3 * hidden_size}, rng,
                                    /*requires_grad=*/true));
  w_hh_ = RegisterParameter(
      "w_hh", Tensor::XavierUniform({hidden_size, 3 * hidden_size}, rng,
                                    /*requires_grad=*/true));
  bias_ = RegisterParameter(
      "bias", Tensor::Zeros({3 * hidden_size}, /*requires_grad=*/true));
}

Tensor GruCell::InitialState(int64_t batch) const {
  return Tensor::Zeros({batch, hidden_size_});
}

Tensor GruCell::Step(const Tensor& x, const Tensor& h) const {
  RRRE_CHECK_EQ(x.dim(1), input_size_);
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  const int64_t hs = hidden_size_;
  if (FusionEnabled()) {
    // Fused gate block: 3 nodes instead of 12, bitwise identical to the
    // eager chain below (tests/test_kernels.cc, GruFusedMatchesEager).
    Tensor gi = AddNBiasAct({MatMul(x, w_ih_)}, bias_, Activation::kNone);
    Tensor gh = MatMul(h, w_hh_);
    return GruPointwise(gi, gh, h);
  }
  Tensor gi = AddBias(MatMul(x, w_ih_), bias_);
  Tensor gh = MatMul(h, w_hh_);
  Tensor r = Sigmoid(Add(SliceCols(gi, 0, hs), SliceCols(gh, 0, hs)));
  Tensor z = Sigmoid(Add(SliceCols(gi, hs, hs), SliceCols(gh, hs, hs)));
  Tensor n =
      Tanh(Add(SliceCols(gi, 2 * hs, hs), Mul(r, SliceCols(gh, 2 * hs, hs))));
  // h' = (1 - z) * n + z * h.
  return Add(Mul(Sub(Tensor::Full({h.dim(0), hs}, 1.0f), z), n), Mul(z, h));
}

Tensor GruCell::Encode(const std::vector<Tensor>& steps) const {
  RRRE_CHECK(!steps.empty());
  Tensor h = InitialState(steps[0].dim(0));
  for (const Tensor& x : steps) h = Step(x, h);
  return h;
}

}  // namespace rrre::nn
