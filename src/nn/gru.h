#ifndef RRRE_NN_GRU_H_
#define RRRE_NN_GRU_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Single GRU cell (gate order r, z, n), used by the DER baseline to model a
/// user's time-ordered review sequence.
class GruCell : public Module {
 public:
  GruCell(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  /// Zero hidden state for a batch: [batch, hidden].
  tensor::Tensor InitialState(int64_t batch) const;

  /// One timestep: x [batch, input], h [batch, hidden] -> next h.
  tensor::Tensor Step(const tensor::Tensor& x, const tensor::Tensor& h) const;

  /// Runs the cell over a sequence and returns the final hidden state.
  tensor::Tensor Encode(const std::vector<tensor::Tensor>& steps) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  tensor::Tensor w_ih_;  // [input, 3*hidden]
  tensor::Tensor w_hh_;  // [hidden, 3*hidden]
  tensor::Tensor bias_;  // [3*hidden]
};

}  // namespace rrre::nn

#endif  // RRRE_NN_GRU_H_
