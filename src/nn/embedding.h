#ifndef RRRE_NN_EMBEDDING_H_
#define RRRE_NN_EMBEDDING_H_

#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Trainable lookup table mapping integer ids to dense vectors. Used for the
/// user/item ID embeddings e^u, e^i of the paper and for word embeddings.
class Embedding : public Module {
 public:
  /// Entries are initialized N(0, init_stddev).
  Embedding(int64_t num_embeddings, int64_t dim, common::Rng& rng,
            float init_stddev = 0.1f);

  /// ids (each in [0, num_embeddings)) -> [ids.size(), dim].
  tensor::Tensor Forward(const std::vector<int64_t>& ids) const;

  /// Overwrites the table with externally computed vectors (e.g. pretrained
  /// word vectors); shape must match.
  void SetWeights(const tensor::Tensor& values);

  const tensor::Tensor& table() const { return table_; }
  int64_t num_embeddings() const { return num_embeddings_; }
  int64_t dim() const { return dim_; }

 private:
  int64_t num_embeddings_;
  int64_t dim_;
  tensor::Tensor table_;
};

}  // namespace rrre::nn

#endif  // RRRE_NN_EMBEDDING_H_
