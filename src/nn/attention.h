#ifndef RRRE_NN_ATTENTION_H_
#define RRRE_NN_ATTENTION_H_

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// The paper's fraud-attention (Eq. 5-6): scores each review in a user's
/// (item's) history from its content embedding plus the ID embeddings of the
/// review's writer and target, then softmax-normalizes within the history.
///
///   a*_j = h^T tanh(W_rev rev_j + W_u e^u_j + W_i e^i_j + b1) + b2
///   alpha = softmax over the s reviews of each example
///
/// Inputs are flattened histories: [B*s, .] with each example's s reviews
/// contiguous. Output is [B, s].
class FraudAttention : public Module {
 public:
  FraudAttention(int64_t rev_dim, int64_t user_id_dim, int64_t item_id_dim,
                 int64_t attention_dim, common::Rng& rng);

  /// rev: [B*s, rev_dim]; user_ids: [B*s, user_id_dim];
  /// item_ids: [B*s, item_id_dim]; group_size = s. Returns alphas [B, s].
  ///
  /// `mask` is optional ([B, s] when defined): entries with value 0 keep
  /// their slot and entries with a large negative value (use kMaskedScore)
  /// suppress zero-padded history slots before the softmax.
  tensor::Tensor Forward(const tensor::Tensor& rev,
                         const tensor::Tensor& user_ids,
                         const tensor::Tensor& item_ids, int64_t group_size,
                         const tensor::Tensor& mask = {}) const;

  /// Additive score that effectively removes a slot from the softmax.
  static constexpr float kMaskedScore = -1e9f;

 private:
  tensor::Tensor w_rev_;  // [rev_dim, attention_dim]
  tensor::Tensor w_u_;    // [user_id_dim, attention_dim]
  tensor::Tensor w_i_;    // [item_id_dim, attention_dim]
  tensor::Tensor b1_;     // [attention_dim]
  tensor::Tensor h_;      // [attention_dim, 1]
  tensor::Tensor b2_;     // [1]
};

}  // namespace rrre::nn

#endif  // RRRE_NN_ATTENTION_H_
