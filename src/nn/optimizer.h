#ifndef RRRE_NN_OPTIMIZER_H_
#define RRRE_NN_OPTIMIZER_H_

#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Base class for gradient-descent optimizers over a fixed parameter list.
/// A parameter whose gradient buffer was never touched in the current step
/// (e.g. an embedding row outside the batch's graph) is treated as having
/// zero gradient and skipped.
class Optimizer {
 public:
  explicit Optimizer(std::vector<tensor::Tensor> params);
  virtual ~Optimizer() = default;

  Optimizer(const Optimizer&) = delete;
  Optimizer& operator=(const Optimizer&) = delete;

  /// Applies one update from the gradients currently stored in the params.
  virtual void Step() = 0;

  /// Zeroes all parameter gradients.
  void ZeroGrad();

  const std::vector<tensor::Tensor>& params() const { return params_; }

 protected:
  std::vector<tensor::Tensor> params_;
};

/// SGD with optional momentum and decoupled weight decay.
class Sgd : public Optimizer {
 public:
  Sgd(std::vector<tensor::Tensor> params, double lr, double momentum = 0.0,
      double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

 private:
  double lr_;
  double momentum_;
  double weight_decay_;
  std::unordered_map<const void*, std::vector<float>> velocity_;
};

/// Adam (Kingma & Ba 2015) with optional decoupled weight decay.
class Adam : public Optimizer {
 public:
  Adam(std::vector<tensor::Tensor> params, double lr, double beta1 = 0.9,
       double beta2 = 0.999, double eps = 1e-8, double weight_decay = 0.0);

  void Step() override;

  void set_lr(double lr) { lr_ = lr; }
  double lr() const { return lr_; }

  /// Number of optimizer steps taken so far (the bias-correction time t).
  int64_t step_count() const { return t_; }

  /// Exports the complete optimizer state as named tensors suitable for
  /// SaveTensors: "adam.t" (step count, split into two exact f32 words) plus
  /// "adam.<i>.m" / "adam.<i>.v" first/second moments for every parameter i
  /// (indexed in params() order) that has accumulated a slot. Parameters
  /// whose gradient was never live have no slot and are omitted.
  std::map<std::string, tensor::Tensor> StateTensors() const;

  /// Restores state exported by StateTensors onto an optimizer constructed
  /// over the same parameter list (same order and shapes). Replaces any
  /// existing moments; a resumed run then steps bitwise identically to one
  /// that was never interrupted. Unknown keys, missing counterparts, or
  /// size mismatches are errors and leave the optimizer unchanged.
  common::Status LoadStateTensors(
      const std::map<std::string, tensor::Tensor>& state);

 private:
  struct Slot {
    std::vector<float> m;
    std::vector<float> v;
  };
  double lr_;
  double beta1_;
  double beta2_;
  double eps_;
  double weight_decay_;
  int64_t t_ = 0;
  std::unordered_map<const void*, Slot> slots_;
};

/// L2 norm of all gradients concatenated.
double GlobalGradNorm(const std::vector<tensor::Tensor>& params);

/// Scales all gradients so the global norm is at most max_norm. Returns the
/// pre-clip norm.
double ClipGradNorm(std::vector<tensor::Tensor>& params, double max_norm);

}  // namespace rrre::nn

#endif  // RRRE_NN_OPTIMIZER_H_
