#ifndef RRRE_NN_LSTM_H_
#define RRRE_NN_LSTM_H_

#include <utility>
#include <vector>

#include "common/rng.h"
#include "nn/module.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Single LSTM cell (gate order i, f, g, o). Forget-gate bias is initialized
/// to 1 so early training does not forget aggressively.
class LstmCell : public Module {
 public:
  LstmCell(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  struct State {
    tensor::Tensor h;  // [batch, hidden]
    tensor::Tensor c;  // [batch, hidden]
  };

  /// Zero state for a batch.
  State InitialState(int64_t batch) const;

  /// One timestep: x [batch, input] + state -> next state.
  State Step(const tensor::Tensor& x, const State& state) const;

  int64_t hidden_size() const { return hidden_size_; }

 private:
  int64_t input_size_;
  int64_t hidden_size_;
  tensor::Tensor w_ih_;  // [input, 4*hidden]
  tensor::Tensor w_hh_;  // [hidden, 4*hidden]
  tensor::Tensor bias_;  // [4*hidden]
};

/// Bidirectional LSTM encoder producing a fixed-size summary of a sequence:
/// the concatenation [h_fwd_T ; h_bwd_T] of both directions' final hidden
/// states, matching Eq. (4) of the paper (rev = LSTM+ concat LSTM-).
class BiLstmEncoder : public Module {
 public:
  /// output dim = 2 * hidden_size.
  BiLstmEncoder(int64_t input_size, int64_t hidden_size, common::Rng& rng);

  /// steps[t] is the batch input at time t: [batch, input]. All steps must
  /// share the batch size. Returns [batch, 2*hidden].
  tensor::Tensor Encode(const std::vector<tensor::Tensor>& steps) const;

  int64_t output_size() const { return 2 * forward_.hidden_size(); }

 private:
  LstmCell forward_;
  LstmCell backward_;
};

}  // namespace rrre::nn

#endif  // RRRE_NN_LSTM_H_
