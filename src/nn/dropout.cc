#include "nn/dropout.h"

#include "common/logging.h"
#include "tensor/ops.h"

namespace rrre::nn {

using tensor::Tensor;

Tensor Dropout(const Tensor& x, double p, common::Rng& rng, bool training) {
  RRRE_CHECK_GE(p, 0.0);
  RRRE_CHECK_LT(p, 1.0);
  if (!training || p == 0.0) return x;
  const float keep_scale = static_cast<float>(1.0 / (1.0 - p));
  Tensor mask = Tensor::Zeros(x.shape());
  for (int64_t i = 0; i < mask.numel(); ++i) {
    mask.at(i) = rng.Bernoulli(p) ? 0.0f : keep_scale;
  }
  return tensor::Mul(x, mask);
}

}  // namespace rrre::nn
