#ifndef RRRE_NN_LOSS_H_
#define RRRE_NN_LOSS_H_

#include <vector>

#include "tensor/tensor.h"

namespace rrre::nn {

/// Mean squared error: mean over the batch of (pred - target)^2.
/// pred: [B, 1] (or [B]); targets: B values.
tensor::Tensor MseLoss(const tensor::Tensor& pred,
                       const std::vector<float>& targets);

/// How the weighted squared error is normalized.
enum class WeightedMseNorm {
  /// Divide by batch size N — Eq. (14) of the paper (loss2).
  kBatchSize,
  /// Divide by the sum of weights — bRMSE-style normalization (Eq. 17).
  kWeightSum,
};

/// Weighted squared error: sum_b w_b (pred_b - target_b)^2 / norm. With the
/// ground-truth reliability labels as weights this is the paper's biased
/// rating loss, which shields training from fake reviews.
tensor::Tensor WeightedMseLoss(const tensor::Tensor& pred,
                               const std::vector<float>& targets,
                               const std::vector<float>& weights,
                               WeightedMseNorm norm = WeightedMseNorm::kBatchSize);

/// Sum of squared entries of all given tensors — the L2 term of Eq. (14);
/// multiply by gamma at the call site.
tensor::Tensor L2Penalty(const std::vector<tensor::Tensor>& params);

}  // namespace rrre::nn

#endif  // RRRE_NN_LOSS_H_
