#ifndef RRRE_NN_DROPOUT_H_
#define RRRE_NN_DROPOUT_H_

#include "common/rng.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Inverted dropout: during training each entry is zeroed with probability p
/// and survivors are scaled by 1/(1-p); at inference the input passes
/// through unchanged. Stateless — the mask is drawn from the caller's rng.
tensor::Tensor Dropout(const tensor::Tensor& x, double p, common::Rng& rng,
                       bool training);

}  // namespace rrre::nn

#endif  // RRRE_NN_DROPOUT_H_
