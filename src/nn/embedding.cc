#include "nn/embedding.h"

#include <algorithm>

#include "tensor/ops.h"

namespace rrre::nn {

using tensor::Tensor;

Embedding::Embedding(int64_t num_embeddings, int64_t dim, common::Rng& rng,
                     float init_stddev)
    : num_embeddings_(num_embeddings), dim_(dim) {
  table_ = RegisterParameter(
      "table", Tensor::Randn({num_embeddings, dim}, rng, init_stddev,
                             /*requires_grad=*/true));
}

Tensor Embedding::Forward(const std::vector<int64_t>& ids) const {
  return tensor::EmbeddingLookup(table_, ids);
}

void Embedding::SetWeights(const Tensor& values) {
  RRRE_CHECK(values.shape() == table_.shape())
      << tensor::ShapeToString(values.shape()) << " vs "
      << tensor::ShapeToString(table_.shape());
  std::copy(values.data(), values.data() + values.numel(), table_.data());
}

}  // namespace rrre::nn
