#ifndef RRRE_NN_MODULE_H_
#define RRRE_NN_MODULE_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "tensor/tensor.h"

namespace rrre::nn {

/// Base class for neural layers and models. Provides a named registry of
/// trainable parameters (and child modules) used by optimizers, L2
/// regularization, and checkpointing.
///
/// Subclasses register parameters in their constructor:
///   weight_ = RegisterParameter("weight", Tensor::XavierUniform(...));
/// and register sub-layers with RegisterModule so their parameters are
/// reachable from the root model.
class Module {
 public:
  virtual ~Module() = default;

  Module() = default;
  Module(const Module&) = delete;
  Module& operator=(const Module&) = delete;

  /// All trainable parameters, depth-first; child parameters are prefixed
  /// with "<child>.".
  std::map<std::string, tensor::Tensor> NamedParameters() const;

  /// Flat view of the same parameters (registration order).
  std::vector<tensor::Tensor> Parameters() const;

  /// Zeroes gradient buffers of all parameters.
  void ZeroGrad();

  /// Total number of trainable scalars.
  int64_t NumParameters() const;

  /// Saves all parameters to a checkpoint file.
  common::Status Save(const std::string& path) const;

  /// Loads parameter values from a checkpoint written by Save. Every
  /// parameter must be present with a matching shape.
  common::Status Load(const std::string& path);

 protected:
  /// Registers (and returns) a trainable parameter.
  tensor::Tensor RegisterParameter(const std::string& name, tensor::Tensor t);

  /// Registers a child module. The pointer must outlive this module.
  void RegisterModule(const std::string& name, Module* child);

 private:
  std::vector<std::pair<std::string, tensor::Tensor>> params_;
  std::vector<std::pair<std::string, Module*>> children_;
};

}  // namespace rrre::nn

#endif  // RRRE_NN_MODULE_H_
