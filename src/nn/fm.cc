#include "nn/fm.h"

#include "tensor/ops.h"
#include "tensor/tape.h"

namespace rrre::nn {

using tensor::Tensor;

FactorizationMachine::FactorizationMachine(int64_t num_inputs,
                                           int64_t num_factors,
                                           common::Rng& rng) {
  w0_ = RegisterParameter("w0", Tensor::Zeros({1}, true));
  w_ = RegisterParameter(
      "w", Tensor::XavierUniform({num_inputs, 1}, rng, true));
  // Small factor init keeps early pairwise terms from dominating.
  v_ = RegisterParameter(
      "v", Tensor::Randn({num_inputs, num_factors}, rng, 0.05f, true));
}

Tensor FactorizationMachine::Forward(const Tensor& x) const {
  using namespace tensor;  // NOLINT(build/namespaces) - op-heavy function.
  Tensor linear = AddBias(MatMul(x, w_), w0_);           // [B, 1]
  Tensor xv = MatMul(x, v_);                             // [B, f]
  Tensor x2v2 = MatMul(Square(x), Square(v_));           // [B, f]
  // Fused: collapses the Square/Sub/RowSum/MulScalar chain into one node,
  // bitwise identical (same per-element roundings, double row accumulator).
  Tensor pair = FusionEnabled()
                    ? FmPairwise(xv, x2v2)
                    : MulScalar(RowSum(Sub(Square(xv), x2v2)), 0.5f);
  return Add(linear, pair);
}

}  // namespace rrre::nn
