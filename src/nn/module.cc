#include "nn/module.h"

#include "common/logging.h"
#include "tensor/serialize.h"

namespace rrre::nn {

using common::Status;
using tensor::Tensor;

std::map<std::string, Tensor> Module::NamedParameters() const {
  std::map<std::string, Tensor> out;
  for (const auto& [name, t] : params_) {
    const bool inserted = out.emplace(name, t).second;
    RRRE_CHECK(inserted) << "duplicate parameter name: " << name;
  }
  for (const auto& [child_name, child] : children_) {
    for (const auto& [name, t] : child->NamedParameters()) {
      const bool inserted = out.emplace(child_name + "." + name, t).second;
      RRRE_CHECK(inserted) << "duplicate parameter name: " << child_name << "."
                           << name;
    }
  }
  return out;
}

std::vector<Tensor> Module::Parameters() const {
  std::vector<Tensor> out;
  for (const auto& [name, t] : params_) out.push_back(t);
  for (const auto& [child_name, child] : children_) {
    auto child_params = child->Parameters();
    out.insert(out.end(), child_params.begin(), child_params.end());
  }
  return out;
}

void Module::ZeroGrad() {
  for (Tensor& t : Parameters()) t.ZeroGrad();
}

int64_t Module::NumParameters() const {
  int64_t total = 0;
  for (const Tensor& t : Parameters()) total += t.numel();
  return total;
}

Status Module::Save(const std::string& path) const {
  return tensor::SaveTensors(path, NamedParameters());
}

Status Module::Load(const std::string& path) {
  auto loaded = tensor::LoadTensors(path);
  if (!loaded.ok()) return loaded.status();
  auto params = NamedParameters();
  for (auto& [name, param] : params) {
    auto it = loaded.value().find(name);
    if (it == loaded.value().end()) {
      return Status::InvalidArgument("checkpoint missing parameter: " + name);
    }
    const Tensor& src = it->second;
    if (src.shape() != param.shape()) {
      return Status::InvalidArgument(
          "shape mismatch for " + name + ": checkpoint " +
          tensor::ShapeToString(src.shape()) + " vs model " +
          tensor::ShapeToString(param.shape()));
    }
    std::copy(src.data(), src.data() + src.numel(), param.data());
  }
  return Status::Ok();
}

Tensor Module::RegisterParameter(const std::string& name, Tensor t) {
  RRRE_CHECK(t.defined());
  RRRE_CHECK(t.requires_grad())
      << "parameter " << name << " must require grad";
  params_.emplace_back(name, t);
  return t;
}

void Module::RegisterModule(const std::string& name, Module* child) {
  RRRE_CHECK(child != nullptr);
  children_.emplace_back(name, child);
}

}  // namespace rrre::nn
