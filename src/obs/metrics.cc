#include "obs/metrics.h"

#include "common/logging.h"
#include "common/strings.h"

namespace rrre::obs {

namespace internal {

int ThreadShardIndex() {
  static std::atomic<int> next{0};
  thread_local const int index =
      next.fetch_add(1, std::memory_order_relaxed) % kNumShards;
  return index;
}

}  // namespace internal

MetricsRegistry::Entry* MetricsRegistry::GetEntry(const std::string& name,
                                                  Kind kind,
                                                  const std::string& help) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(name);
  if (it != entries_.end()) {
    RRRE_CHECK(it->second.kind == kind)
        << "metric \"" << name << "\" already registered as a different kind";
    return &it->second;
  }
  Entry entry;
  entry.kind = kind;
  entry.help = help;
  switch (kind) {
    case Kind::kCounter:
      entry.counter = std::make_unique<Counter>();
      break;
    case Kind::kGauge:
      entry.gauge = std::make_unique<Gauge>();
      break;
    case Kind::kHistogram:
      entry.histogram = std::make_unique<HistogramMetric>();
      break;
  }
  return &entries_.emplace(name, std::move(entry)).first->second;
}

Counter* MetricsRegistry::GetCounter(const std::string& name,
                                     const std::string& help) {
  return GetEntry(name, Kind::kCounter, help)->counter.get();
}

Gauge* MetricsRegistry::GetGauge(const std::string& name,
                                 const std::string& help) {
  return GetEntry(name, Kind::kGauge, help)->gauge.get();
}

HistogramMetric* MetricsRegistry::GetHistogram(const std::string& name,
                                               const std::string& help) {
  return GetEntry(name, Kind::kHistogram, help)->histogram.get();
}

std::string MetricsRegistry::RenderText() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (const auto& [name, entry] : entries_) {  // std::map: sorted by name.
    if (!entry.help.empty()) {
      out += "# HELP " + name + " " + entry.help + "\n";
    }
    switch (entry.kind) {
      case Kind::kCounter:
        out += "# TYPE " + name + " counter\n";
        out += common::StrFormat(
            "%s %lld\n", name.c_str(),
            static_cast<long long>(entry.counter->Value()));
        break;
      case Kind::kGauge:
        out += "# TYPE " + name + " gauge\n";
        out += common::StrFormat(
            "%s %lld\n", name.c_str(),
            static_cast<long long>(entry.gauge->Value()));
        break;
      case Kind::kHistogram: {
        const common::Histogram h = entry.histogram->Snapshot();
        out += "# TYPE " + name + " summary\n";
        out += common::StrFormat("%s{quantile=\"0.5\"} %.17g\n", name.c_str(),
                                 h.Percentile(50.0));
        out += common::StrFormat("%s{quantile=\"0.95\"} %.17g\n", name.c_str(),
                                 h.Percentile(95.0));
        out += common::StrFormat("%s{quantile=\"0.99\"} %.17g\n", name.c_str(),
                                 h.Percentile(99.0));
        out += common::StrFormat("%s_sum %.17g\n", name.c_str(), h.sum());
        out += common::StrFormat("%s_count %lld\n", name.c_str(),
                                 static_cast<long long>(h.count()));
        out += common::StrFormat("%s_min %.17g\n", name.c_str(), h.Min());
        out += common::StrFormat("%s_max %.17g\n", name.c_str(), h.Max());
        break;
      }
    }
  }
  return out;
}

MetricsRegistry& MetricsRegistry::Global() {
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

}  // namespace rrre::obs
