#include "obs/trace.h"

#include <cstdlib>
#include <string>
#include <vector>

namespace rrre::obs {

namespace {

std::atomic<bool>& ProfilingFlag() {
  static std::atomic<bool> enabled = [] {
    const char* env = std::getenv("RRRE_PROF");
    return env != nullptr && std::string(env) == "1";
  }();
  return enabled;
}

/// The calling thread's stack of open spans (innermost last).
std::vector<TraceSpan*>& SpanStack() {
  thread_local std::vector<TraceSpan*> stack;
  return stack;
}

}  // namespace

bool ProfilingEnabled() {
  return ProfilingFlag().load(std::memory_order_relaxed);
}

void SetProfilingEnabled(bool enabled) {
  ProfilingFlag().store(enabled, std::memory_order_relaxed);
}

TraceSpan::TraceSpan(const char* name, MetricsRegistry* registry)
    : active_(ProfilingEnabled()), name_(name), registry_(registry) {
  if (!active_) return;
  SpanStack().push_back(this);
  start_ = std::chrono::steady_clock::now();
}

TraceSpan::~TraceSpan() {
  if (!active_) return;
  const double total_us =
      std::chrono::duration<double, std::micro>(
          std::chrono::steady_clock::now() - start_)
          .count();
  std::vector<TraceSpan*>& stack = SpanStack();
  stack.pop_back();  // Scoped lifetimes guarantee this span is innermost.
  if (!stack.empty()) stack.back()->child_us_ += total_us;
  const std::string base = std::string("span_") + name_;
  registry_->GetHistogram(base + "_us")->Record(total_us);
  if (child_us_ > 0.0) {
    registry_->GetHistogram(base + "_self_us")
        ->Record(total_us - child_us_);
  }
}

int TraceSpan::Depth() { return static_cast<int>(SpanStack().size()); }

}  // namespace rrre::obs
