#include "obs/telemetry.h"

#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstring>

#include "common/io.h"
#include "common/strings.h"

namespace rrre::obs {

using common::Result;
using common::Status;

namespace {

std::string EscapeJsonString(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        out.push_back(c);
    }
  }
  return out;
}

}  // namespace

void JsonRecord::AddInt(const std::string& key, int64_t value) {
  fields_.emplace_back(
      key, common::StrFormat("%lld", static_cast<long long>(value)));
  quoted_.push_back(false);
}

void JsonRecord::AddDouble(const std::string& key, double value) {
  fields_.emplace_back(key, common::StrFormat("%.17g", value));
  quoted_.push_back(false);
}

void JsonRecord::AddString(const std::string& key, const std::string& value) {
  fields_.emplace_back(key, value);
  quoted_.push_back(true);
}

void JsonRecord::AddBool(const std::string& key, bool value) {
  fields_.emplace_back(key, value ? "true" : "false");
  quoted_.push_back(false);
}

std::string JsonRecord::ToJsonLine() const {
  std::string out = "{";
  for (size_t i = 0; i < fields_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += "\"" + EscapeJsonString(fields_[i].first) + "\":";
    if (quoted_[i]) {
      out += "\"" + EscapeJsonString(fields_[i].second) + "\"";
    } else {
      out += fields_[i].second;
    }
  }
  out += "}\n";
  return out;
}

const std::string* JsonRecord::Find(const std::string& key) const {
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

namespace {

/// Parses a JSON string starting at `pos` (which must point at the opening
/// quote); leaves `pos` one past the closing quote.
Result<std::string> ParseQuoted(const std::string& line, size_t* pos) {
  if (*pos >= line.size() || line[*pos] != '"') {
    return Status::InvalidArgument("expected '\"' at offset " +
                                   std::to_string(*pos));
  }
  ++*pos;
  std::string out;
  while (*pos < line.size() && line[*pos] != '"') {
    char c = line[*pos];
    if (c == '\\') {
      ++*pos;
      if (*pos >= line.size()) {
        return Status::InvalidArgument("dangling escape in JSON string");
      }
      switch (line[*pos]) {
        case '"': c = '"'; break;
        case '\\': c = '\\'; break;
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        default:
          return Status::InvalidArgument("unsupported JSON escape \\" +
                                         std::string(1, line[*pos]));
      }
    }
    out.push_back(c);
    ++*pos;
  }
  if (*pos >= line.size()) {
    return Status::InvalidArgument("unterminated JSON string");
  }
  ++*pos;  // Closing quote.
  return out;
}

}  // namespace

Result<JsonRecord> ParseJsonLine(const std::string& line) {
  JsonRecord record;
  size_t pos = 0;
  // '\n' counts as whitespace so a ToJsonLine() result parses unmodified.
  auto skip_ws = [&] {
    while (pos < line.size() &&
           (line[pos] == ' ' || line[pos] == '\t' || line[pos] == '\r' ||
            line[pos] == '\n')) {
      ++pos;
    }
  };
  skip_ws();
  if (pos >= line.size() || line[pos] != '{') {
    return Status::InvalidArgument("telemetry line does not start with '{'");
  }
  ++pos;
  skip_ws();
  if (pos < line.size() && line[pos] == '}') {
    ++pos;
    return record;
  }
  for (;;) {
    skip_ws();
    auto key = ParseQuoted(line, &pos);
    if (!key.ok()) return key.status();
    skip_ws();
    if (pos >= line.size() || line[pos] != ':') {
      return Status::InvalidArgument("expected ':' after key \"" +
                                     key.value() + "\"");
    }
    ++pos;
    skip_ws();
    if (pos < line.size() && line[pos] == '"') {
      auto value = ParseQuoted(line, &pos);
      if (!value.ok()) return value.status();
      record.fields_.emplace_back(key.value(), value.value());
      record.quoted_.push_back(true);
    } else {
      const size_t start = pos;
      while (pos < line.size() && line[pos] != ',' && line[pos] != '}') ++pos;
      const std::string value(common::Trim(line.substr(start, pos - start)));
      if (value.empty()) {
        return Status::InvalidArgument("empty value for key \"" + key.value() +
                                       "\"");
      }
      record.fields_.emplace_back(key.value(), value);
      record.quoted_.push_back(false);
    }
    skip_ws();
    if (pos >= line.size()) {
      return Status::InvalidArgument("unterminated telemetry object");
    }
    if (line[pos] == ',') {
      ++pos;
      continue;
    }
    if (line[pos] == '}') {
      ++pos;
      break;
    }
    return Status::InvalidArgument("expected ',' or '}' at offset " +
                                   std::to_string(pos));
  }
  skip_ws();
  if (pos != line.size()) {
    return Status::InvalidArgument("trailing bytes after telemetry object");
  }
  return record;
}

Result<std::vector<JsonRecord>> ParseJsonLines(const std::string& content) {
  std::vector<JsonRecord> records;
  size_t start = 0;
  int64_t line_no = 0;
  while (start < content.size()) {
    size_t end = content.find('\n', start);
    if (end == std::string::npos) end = content.size();
    const std::string line = content.substr(start, end - start);
    start = end + 1;
    ++line_no;
    if (common::Trim(line).empty()) continue;
    auto record = ParseJsonLine(line);
    if (!record.ok()) {
      return Status::InvalidArgument("line " + std::to_string(line_no) + ": " +
                                     record.status().message());
    }
    records.push_back(std::move(record).ValueOrDie());
  }
  return records;
}

TelemetryWriter::TelemetryWriter(Options options)
    : options_(std::move(options)), status_(Status::Ok()) {
  tmp_path_ = options_.path + ".tmp";
  file_ = std::fopen(tmp_path_.c_str(), "w");
  if (file_ == nullptr) {
    status_ = Status::IoError("cannot open telemetry file " + tmp_path_ +
                              ": " + std::strerror(errno));
  }
}

TelemetryWriter::~TelemetryWriter() { Close(); }

Status TelemetryWriter::Write(const JsonRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!status_.ok()) return status_;
  if (closed_) {
    return Status::FailedPrecondition("telemetry writer already closed: " +
                                      options_.path);
  }
  const std::string line = record.ToJsonLine();
  if (std::fwrite(line.data(), 1, line.size(), file_) != line.size() ||
      std::fflush(file_) != 0) {
    status_ = Status::IoError("telemetry write to " + tmp_path_ +
                              " failed: " + std::strerror(errno));
  }
  return status_;
}

Status TelemetryWriter::Close() {
  std::lock_guard<std::mutex> lock(mu_);
  if (closed_) return status_;
  closed_ = true;
  if (file_ == nullptr) return status_;
  if (!status_.ok()) {
    // An errored stream is garbage: drop the tmp file rather than promote it.
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    return status_;
  }
  if (std::fflush(file_) != 0 || ::fsync(::fileno(file_)) != 0) {
    status_ = Status::IoError("telemetry fsync of " + tmp_path_ +
                              " failed: " + std::strerror(errno));
    std::fclose(file_);
    file_ = nullptr;
    std::remove(tmp_path_.c_str());
    return status_;
  }
  std::fclose(file_);
  file_ = nullptr;
  if (std::rename(tmp_path_.c_str(), options_.path.c_str()) != 0) {
    status_ = Status::IoError("telemetry rename " + tmp_path_ + " -> " +
                              options_.path + " failed: " +
                              std::strerror(errno));
    std::remove(tmp_path_.c_str());
    return status_;
  }
  status_ = common::FsyncParentDir(options_.path);
  return status_;
}

}  // namespace rrre::obs
