#ifndef RRRE_OBS_METRICS_H_
#define RRRE_OBS_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "common/histogram.h"

namespace rrre::obs {

namespace internal {
/// Number of per-thread shards each sharded metric carries. Threads are
/// assigned a shard index on first use (round-robin over a process-wide
/// counter, modulo kNumShards), so writes from different threads hit
/// different cache lines in steady state while scrapes stay O(kNumShards).
constexpr int kNumShards = 16;

/// Stable shard index of the calling thread, in [0, kNumShards).
int ThreadShardIndex();
}  // namespace internal

/// Monotone event count, sharded per thread: Increment touches only the
/// calling thread's shard (one relaxed atomic add on a private cache line),
/// Value sums the shards in index order. Integer addition is exact and
/// commutative, so Value is independent of thread scheduling.
class Counter {
 public:
  void Increment(int64_t delta = 1) {
    shards_[static_cast<size_t>(internal::ThreadShardIndex())].value.fetch_add(
        delta, std::memory_order_relaxed);
  }

  int64_t Value() const {
    int64_t total = 0;
    for (const Shard& s : shards_) {
      total += s.value.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  struct alignas(64) Shard {
    std::atomic<int64_t> value{0};
  };
  std::array<Shard, internal::kNumShards> shards_{};
};

/// Point-in-time level (queue depth, active connections). Set semantics do
/// not shard — the last write wins — so a single atomic suffices.
class Gauge {
 public:
  void Set(int64_t value) { value_.store(value, std::memory_order_relaxed); }
  void Add(int64_t delta) { value_.fetch_add(delta, std::memory_order_relaxed); }
  int64_t Value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<int64_t> value_{0};
};

/// Latency/value distribution, sharded per thread over common::Histogram.
/// Record locks only the calling thread's shard (uncontended in steady
/// state); Snapshot merges the shards in index order — the deterministic
/// merge order that makes two scrapes with no intervening traffic
/// byte-identical (bucket counts are integers; the running sum is merged in
/// a fixed order so its floating-point value is reproducible too).
class HistogramMetric {
 public:
  void Record(double value) {
    Shard& s = shards_[static_cast<size_t>(internal::ThreadShardIndex())];
    std::lock_guard<std::mutex> lock(s.mu);
    s.histogram.Record(value);
  }

  /// Merged view of all shards, in shard-index order.
  common::Histogram Snapshot() const {
    common::Histogram merged;
    for (const Shard& s : shards_) {
      std::lock_guard<std::mutex> lock(s.mu);
      merged.Merge(s.histogram);
    }
    return merged;
  }

 private:
  struct Shard {
    mutable std::mutex mu;
    common::Histogram histogram;
  };
  std::array<Shard, internal::kNumShards> shards_{};
};

/// Registry of named metrics with a Prometheus-style text exposition.
///
/// Handles returned by GetCounter/GetGauge/GetHistogram are stable for the
/// registry's lifetime — resolve them once at setup and keep the pointer;
/// the hot path never touches the registry map. Calling a getter twice with
/// the same name returns the same metric; a name registered as one kind
/// cannot be re-registered as another (checked).
///
/// Servers own an instance each (so tests and multi-server processes do not
/// bleed counts into each other); process-wide instrumentation such as the
/// RRRE_PROF kernel spans uses Global().
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter* GetCounter(const std::string& name, const std::string& help = "");
  Gauge* GetGauge(const std::string& name, const std::string& help = "");
  HistogramMetric* GetHistogram(const std::string& name,
                                const std::string& help = "");

  /// Prometheus-style text exposition: one "# TYPE" line per metric, values
  /// with %.17g doubles, metrics sorted by name. Counters/gauges are single
  /// samples; histograms render as summaries (quantile samples plus _sum,
  /// _count, _min, _max). Deterministic: two scrapes with no intervening
  /// writes are byte-identical.
  std::string RenderText() const;

  /// The process-wide registry (kernel spans, offline tools).
  static MetricsRegistry& Global();

 private:
  enum class Kind { kCounter, kGauge, kHistogram };
  struct Entry {
    Kind kind;
    std::string help;
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<HistogramMetric> histogram;
  };

  Entry* GetEntry(const std::string& name, Kind kind, const std::string& help);

  mutable std::mutex mu_;  ///< Guards the map shape, not metric values.
  std::map<std::string, Entry> entries_;
};

}  // namespace rrre::obs

#endif  // RRRE_OBS_METRICS_H_
