#ifndef RRRE_OBS_TRACE_H_
#define RRRE_OBS_TRACE_H_

#include <atomic>
#include <chrono>

#include "obs/metrics.h"

namespace rrre::obs {

/// Whether trace spans record anything. Initialized once from the RRRE_PROF
/// environment variable (RRRE_PROF=1 enables); tests can flip it at runtime.
/// When disabled a TraceSpan costs one relaxed atomic load and a branch, so
/// spans are cheap enough to leave in hot kernels permanently.
bool ProfilingEnabled();
void SetProfilingEnabled(bool enabled);

/// RAII scoped timer. On construction (when profiling is enabled) it pushes
/// itself onto the calling thread's span stack; on destruction it pops,
/// records its total duration into the histogram `span_<name>_us` in
/// `registry`, adds that duration to its parent's child-time accumulator,
/// and records the self time (total minus children) into
/// `span_<name>_self_us` whenever the two differ (i.e. the span had nested
/// children). Nesting is per thread; spans on different threads are
/// independent stacks feeding the same sharded histograms.
///
/// `name` must be a string literal (or otherwise outlive the span): it is
/// captured by pointer, not copied, to keep construction allocation-free.
class TraceSpan {
 public:
  explicit TraceSpan(const char* name,
                     MetricsRegistry* registry = &MetricsRegistry::Global());
  ~TraceSpan();

  TraceSpan(const TraceSpan&) = delete;
  TraceSpan& operator=(const TraceSpan&) = delete;

  /// Depth of the calling thread's span stack (0 = no open span). Exposed
  /// for tests.
  static int Depth();

 private:
  bool active_;
  const char* name_;
  MetricsRegistry* registry_;
  double child_us_ = 0.0;  ///< Filled in by nested spans as they close.
  std::chrono::steady_clock::time_point start_;
};

}  // namespace rrre::obs

#endif  // RRRE_OBS_TRACE_H_
