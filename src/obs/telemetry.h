#ifndef RRRE_OBS_TELEMETRY_H_
#define RRRE_OBS_TELEMETRY_H_

#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"

namespace rrre::obs {

/// One flat JSON object with insertion-ordered fields — the unit of a JSONL
/// telemetry stream. Doubles are printed with %.17g so every value
/// round-trips bitwise through the parser; field order is the insertion
/// order, so a record built from the same values serializes byte-identically
/// regardless of platform map iteration quirks.
class JsonRecord {
 public:
  void AddInt(const std::string& key, int64_t value);
  void AddDouble(const std::string& key, double value);
  void AddString(const std::string& key, const std::string& value);
  /// Serialized as the JSON literals true/false (round-trips through
  /// ParseJsonLine like any unquoted token).
  void AddBool(const std::string& key, bool value);

  /// {"k":v,...}\n — one JSONL line.
  std::string ToJsonLine() const;

  /// Raw serialized value for `key` ("" when absent). For strings this is
  /// the unquoted, unescaped payload.
  const std::string* Find(const std::string& key) const;

  const std::vector<std::pair<std::string, std::string>>& fields() const {
    return fields_;
  }

 private:
  friend common::Result<JsonRecord> ParseJsonLine(const std::string& line);
  /// (key, serialized value) pairs; strings are stored unescaped and
  /// re-escaped on serialization, with quoted_ marking them.
  std::vector<std::pair<std::string, std::string>> fields_;
  std::vector<bool> quoted_;
};

/// Parses one flat JSONL object produced by JsonRecord::ToJsonLine (string,
/// integer and floating-point values; no nesting). The returned record
/// re-serializes to the exact input line — the round-trip property the
/// telemetry tests rely on.
common::Result<JsonRecord> ParseJsonLine(const std::string& line);

/// Parses a whole JSONL file content, one record per non-empty line.
common::Result<std::vector<JsonRecord>> ParseJsonLines(
    const std::string& content);

/// Append-only JSONL sink for training/serving telemetry. Records are
/// written and flushed line-atomically under a mutex, so concurrent writers
/// interleave whole lines, never bytes.
///
/// The stream goes to `path + ".tmp"`; Close() (also run by the destructor)
/// fsyncs it and renames it to `path`, fsyncing the parent directory. The
/// final file therefore appears atomically: a crash mid-run leaves at most a
/// stray `.tmp`, never a torn file under the final name.
///
/// `include_timings` gates wall-clock fields: producers route timing fields
/// through AddTiming*, which no-op when timings are excluded. A file written
/// with include_timings = false is a pure function of the computation and
/// therefore bitwise identical across thread counts and runs.
class TelemetryWriter {
 public:
  struct Options {
    std::string path;
    bool include_timings = true;
  };

  /// Creates/truncates options.path. Check ok() before writing.
  explicit TelemetryWriter(Options options);
  ~TelemetryWriter();

  TelemetryWriter(const TelemetryWriter&) = delete;
  TelemetryWriter& operator=(const TelemetryWriter&) = delete;

  common::Status status() const { return status_; }
  bool include_timings() const { return options_.include_timings; }

  /// Appends one record as a JSONL line and flushes.
  common::Status Write(const JsonRecord& record);

  /// Commits the stream under its final name (fsync tmp, rename, fsync
  /// parent dir). Idempotent; further Writes fail. If the writer is already
  /// in an error state the tmp file is discarded instead of committed.
  common::Status Close();

 private:
  Options options_;
  common::Status status_;
  std::mutex mu_;
  std::FILE* file_ = nullptr;
  std::string tmp_path_;
  bool closed_ = false;
};

}  // namespace rrre::obs

#endif  // RRRE_OBS_TELEMETRY_H_
