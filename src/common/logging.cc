#include "common/logging.h"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <ctime>

namespace rrre::common {

namespace {
std::atomic<LogLevel> g_log_level{LogLevel::kInfo};

const char* LevelTag(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kFatal:
      return "F";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_log_level.load(std::memory_order_relaxed); }

void SetLogLevel(LogLevel level) {
  g_log_level.store(level, std::memory_order_relaxed);
}

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line)
    : level_(level) {
  const char* base = file;
  for (const char* p = file; *p != '\0'; ++p) {
    if (*p == '/') base = p + 1;
  }
  stream_ << "[" << LevelTag(level) << " " << base << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  if (level_ >= GetLogLevel() || level_ == LogLevel::kFatal) {
    stream_ << "\n";
    std::fputs(stream_.str().c_str(), stderr);
    std::fflush(stderr);
  }
  if (level_ == LogLevel::kFatal) {
    std::abort();
  }
}

}  // namespace internal
}  // namespace rrre::common
