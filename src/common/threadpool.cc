#include "common/threadpool.h"

#include <algorithm>
#include <atomic>
#include <exception>

#include "common/logging.h"

namespace rrre::common {

namespace {

thread_local bool tls_in_worker = false;

std::mutex g_global_mu;
ThreadPool* g_global_pool = nullptr;
int g_global_size = 0;  // 0 = hardware concurrency.

int ResolveThreads(int num_threads) {
  if (num_threads > 0) return num_threads;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

}  // namespace

/// One ParallelFor invocation: workers and the caller pull chunk indices
/// from `next_chunk` until exhausted; the last finisher signals `done_cv`.
struct ThreadPool::Job {
  int64_t begin = 0;
  int64_t end = 0;
  int64_t grain = 1;
  int64_t num_chunks = 0;
  const std::function<void(int64_t, int64_t)>* fn = nullptr;

  std::atomic<int64_t> next_chunk{0};
  std::atomic<int64_t> chunks_done{0};

  std::mutex done_mu;
  std::condition_variable done_cv;

  std::mutex error_mu;
  std::exception_ptr error;
};

ThreadPool::ThreadPool(int num_threads)
    : num_threads_(ResolveThreads(num_threads)) {
  workers_.reserve(static_cast<size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i) {
    workers_.emplace_back([this]() { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    shutdown_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

void ThreadPool::RunChunks(Job& job) {
  tls_in_worker = true;
  for (;;) {
    const int64_t c = job.next_chunk.fetch_add(1, std::memory_order_relaxed);
    if (c >= job.num_chunks) break;
    const int64_t lo = job.begin + c * job.grain;
    const int64_t hi = std::min(job.end, lo + job.grain);
    try {
      (*job.fn)(lo, hi);
    } catch (...) {
      std::lock_guard<std::mutex> lock(job.error_mu);
      if (!job.error) job.error = std::current_exception();
    }
    if (job.chunks_done.fetch_add(1, std::memory_order_acq_rel) + 1 ==
        job.num_chunks) {
      std::lock_guard<std::mutex> lock(job.done_mu);
      job.done_cv.notify_all();
    }
  }
  tls_in_worker = false;
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Job> job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this]() { return shutdown_ || !jobs_.empty(); });
      if (shutdown_ && jobs_.empty()) return;
      job = jobs_.front();
      // Leave the job queued for other workers until its chunks run out;
      // drop it once exhausted so the queue does not grow stale entries.
      if (job->next_chunk.load(std::memory_order_relaxed) >= job->num_chunks) {
        jobs_.pop_front();
        continue;
      }
    }
    RunChunks(*job);
    std::lock_guard<std::mutex> lock(mu_);
    if (!jobs_.empty() && jobs_.front().get() == job.get()) {
      jobs_.pop_front();
    }
  }
}

void ThreadPool::ParallelFor(int64_t begin, int64_t end, int64_t grain,
                             const std::function<void(int64_t, int64_t)>& fn) {
  RRRE_CHECK_GT(grain, 0);
  if (end <= begin) return;
  const int64_t num_chunks = (end - begin + grain - 1) / grain;

  // Serial fast paths keep the exact chunk partition: a caller relying on
  // per-chunk reduction slots sees the same call sequence either way.
  if (num_threads_ == 1 || num_chunks == 1 || tls_in_worker) {
    const bool was_in_worker = tls_in_worker;
    tls_in_worker = true;
    std::exception_ptr error;
    for (int64_t c = 0; c < num_chunks; ++c) {
      const int64_t lo = begin + c * grain;
      const int64_t hi = std::min(end, lo + grain);
      try {
        fn(lo, hi);
      } catch (...) {
        if (!error) error = std::current_exception();
      }
    }
    tls_in_worker = was_in_worker;
    if (error) std::rethrow_exception(error);
    return;
  }

  auto job = std::make_shared<Job>();
  job->begin = begin;
  job->end = end;
  job->grain = grain;
  job->num_chunks = num_chunks;
  job->fn = &fn;
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_.push_back(job);
  }
  work_cv_.notify_all();

  RunChunks(*job);
  {
    std::unique_lock<std::mutex> lock(job->done_mu);
    job->done_cv.wait(lock, [&job]() {
      return job->chunks_done.load(std::memory_order_acquire) ==
             job->num_chunks;
    });
  }
  {
    // The job may still sit at the queue head; remove it so workers do not
    // touch a dead shared_ptr target. (They hold their own reference while
    // running, so this is purely queue hygiene.)
    std::lock_guard<std::mutex> lock(mu_);
    if (!jobs_.empty() && jobs_.front().get() == job.get()) jobs_.pop_front();
  }
  if (job->error) std::rethrow_exception(job->error);
}

ThreadPool& ThreadPool::Global() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool == nullptr) {
    g_global_pool = new ThreadPool(g_global_size);
  }
  return *g_global_pool;
}

void ThreadPool::SetGlobalSize(int num_threads) {
  std::lock_guard<std::mutex> lock(g_global_mu);
  g_global_size = num_threads;
  if (g_global_pool != nullptr &&
      g_global_pool->size() == ResolveThreads(num_threads)) {
    return;
  }
  delete g_global_pool;
  g_global_pool = nullptr;
  g_global_pool = new ThreadPool(g_global_size);
}

int ThreadPool::GlobalSize() {
  std::lock_guard<std::mutex> lock(g_global_mu);
  if (g_global_pool != nullptr) return g_global_pool->size();
  return ResolveThreads(g_global_size);
}

bool ThreadPool::InWorker() { return tls_in_worker; }

void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn) {
  ThreadPool::Global().ParallelFor(begin, end, grain, fn);
}

}  // namespace rrre::common
