#ifndef RRRE_COMMON_HISTOGRAM_H_
#define RRRE_COMMON_HISTOGRAM_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rrre::common {

/// Log-bucketed latency/size histogram with percentile queries.
///
/// Buckets are log-linear (HdrHistogram style): each power-of-two octave is
/// split into kSubBuckets equal-width sub-buckets, so the relative error of a
/// percentile is bounded by 1/kSubBuckets (~6%) regardless of magnitude.
/// Values in [0, 1] (and any negative or NaN input) land in the first bucket —
/// callers record in units where sub-unit resolution is irrelevant
/// (microseconds for latencies, counts for batch sizes).
///
/// A Histogram is not thread-safe. The intended concurrent pattern is one
/// instance per thread, combined with Merge() once the threads are done —
/// merging only adds bucket counts, so a merged histogram reports exactly the
/// percentiles of the union of the inputs' samples (to bucket resolution).
class Histogram {
 public:
  Histogram();

  /// Adds one sample.
  void Record(double value);

  /// Adds all of `other`'s samples to this histogram.
  void Merge(const Histogram& other);

  int64_t count() const { return count_; }
  double sum() const { return sum_; }
  double Mean() const;
  /// Exact smallest / largest recorded value (0 when empty).
  double Min() const;
  double Max() const;

  /// Value at or below which `pct` percent of samples fall, to bucket
  /// resolution (clamped to the exact [Min, Max] range; exact for p100).
  /// `pct` is in [0, 100]. Returns 0 for an empty histogram.
  double Percentile(double pct) const;

  /// "n=120 mean=41.2 p50=38 p95=70 p99=83 max=91" — for log lines.
  std::string Summary() const;

 private:
  static int BucketIndex(double value);
  static double BucketUpperEdge(int index);

  static constexpr int kSubBuckets = 16;  ///< Per octave; ~6% resolution.
  static constexpr int kOctaves = 44;     ///< Covers values up to ~1.7e13.
  static constexpr int kNumBuckets = 1 + kOctaves * kSubBuckets;

  std::vector<int64_t> buckets_;
  int64_t count_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

}  // namespace rrre::common

#endif  // RRRE_COMMON_HISTOGRAM_H_
