#ifndef RRRE_COMMON_SIGNALS_H_
#define RRRE_COMMON_SIGNALS_H_

#include <cstdint>

namespace rrre::common {

/// Process-wide signal flags for long-lived servers. The handlers only touch
/// lock-free atomics — the async-signal-safe subset — and the serving loop
/// polls the flags from ordinary thread context.
///
/// SIGINT / SIGTERM set the shutdown flag (graceful drain); each SIGHUP bumps
/// a reload counter (hot checkpoint reload). SIGPIPE is ignored so a peer
/// hanging up mid-write surfaces as a send() error, not process death.
void InstallServeSignalHandlers();

/// True once SIGINT/SIGTERM arrived or RequestShutdown() was called.
bool ShutdownRequested();

/// Sets the shutdown flag from ordinary code (tests, error paths).
void RequestShutdown();

/// Monotone count of SIGHUPs received. Callers remember the last value they
/// acted on and reload when the counter moves.
uint64_t ReloadRequestCount();

}  // namespace rrre::common

#endif  // RRRE_COMMON_SIGNALS_H_
