#include "common/rng.h"

#include <bit>
#include <cmath>
#include <numbers>

#include "common/logging.h"

namespace rrre::common {

namespace {

uint64_t SplitMix64(uint64_t& state) {
  uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(sm);
}

uint64_t Rng::NextUint64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(NextUint64() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * Uniform(); }

uint64_t Rng::UniformInt(uint64_t n) {
  RRRE_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = UINT64_MAX - UINT64_MAX % n;
  uint64_t v = NextUint64();
  while (v >= limit) v = NextUint64();
  return v % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  RRRE_CHECK_LE(lo, hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = Uniform();
  while (u1 <= 1e-300) u1 = Uniform();
  const double u2 = Uniform();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * std::numbers::pi * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

bool Rng::Bernoulli(double p) { return Uniform() < p; }

size_t Rng::Categorical(const std::vector<double>& weights) {
  RRRE_CHECK(!weights.empty());
  double total = 0.0;
  for (double w : weights) {
    RRRE_CHECK_GE(w, 0.0);
    total += w;
  }
  RRRE_CHECK_GT(total, 0.0);
  double x = Uniform() * total;
  for (size_t i = 0; i < weights.size(); ++i) {
    x -= weights[i];
    if (x < 0.0) return i;
  }
  return weights.size() - 1;
}

std::vector<size_t> Rng::SampleWithoutReplacement(size_t n, size_t k) {
  RRRE_CHECK_LE(k, n);
  std::vector<size_t> idx(n);
  for (size_t i = 0; i < n; ++i) idx[i] = i;
  // Partial Fisher-Yates: only the first k positions need to be randomized.
  for (size_t i = 0; i < k; ++i) {
    size_t j = i + UniformInt(static_cast<uint64_t>(n - i));
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::Fork() { return Rng(NextUint64()); }

std::array<uint64_t, Rng::kStateWords> Rng::SerializeState() const {
  return {s_[0], s_[1], s_[2], s_[3], has_cached_normal_ ? uint64_t{1} : 0,
          std::bit_cast<uint64_t>(cached_normal_)};
}

void Rng::RestoreState(const std::array<uint64_t, kStateWords>& state) {
  for (int i = 0; i < 4; ++i) s_[i] = state[static_cast<size_t>(i)];
  has_cached_normal_ = state[4] != 0;
  cached_normal_ = std::bit_cast<double>(state[5]);
}

Rng Rng::Fork(uint64_t stream) const {
  // Mix the full 256-bit state with the stream id through two splitmix64
  // rounds. Consecutive stream ids land in unrelated regions of seed space,
  // and the parent's own sequence is untouched (const).
  uint64_t sm = s_[0] ^ Rotl(s_[1], 13) ^ Rotl(s_[2], 29) ^ Rotl(s_[3], 41);
  sm += 0x9e3779b97f4a7c15ULL * (stream + 1);
  uint64_t seed = SplitMix64(sm);
  seed ^= SplitMix64(sm);
  return Rng(seed);
}

}  // namespace rrre::common
