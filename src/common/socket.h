#ifndef RRRE_COMMON_SOCKET_H_
#define RRRE_COMMON_SOCKET_H_

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "common/status.h"

namespace rrre::common {

/// RAII wrapper over a POSIX TCP socket (IPv4). Used by the online serving
/// layer; only the operations the line protocol needs are exposed.
///
/// Thread-safety: a Socket may be used by one reading and one writing thread
/// concurrently (recv and send on a connected TCP fd are independent), and
/// ShutdownRead/ShutdownBoth may be called from a third thread to unblock
/// them — that is the server's drain path. Close() must only run once no
/// other thread can touch the fd.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket() { Close(); }

  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;
  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;

  /// Binds to `port` on all interfaces (0 = ephemeral; the chosen port is
  /// reported by local_port()) and starts listening.
  static Result<Socket> Listen(uint16_t port, int backlog = 128);

  /// Connects to a numeric IPv4 address ("127.0.0.1").
  static Result<Socket> Connect(const std::string& host, uint16_t port);

  /// Waits up to `timeout_ms` for a pending connection; returns an empty
  /// optional on timeout. The timeout is what lets the accept loop poll a
  /// shutdown flag instead of blocking forever in accept(2).
  Result<std::optional<Socket>> AcceptWithTimeout(int timeout_ms);

  /// Sends the whole buffer (looping over partial sends, EINTR-safe, no
  /// SIGPIPE). Fails when the peer has closed; DeadlineExceeded when a send
  /// timeout set via SetSendTimeout expires.
  ///
  /// When `bytes_sent` is non-null it receives the number of bytes handed to
  /// the kernel before the call returned — on every path, including errors.
  /// A failure with *bytes_sent == 0 means the request never left this host
  /// (safe to retry on another peer, whatever the verb); a failure with
  /// partial progress means the peer may have received and acted on it, so
  /// only idempotent requests may be blindly resent. The router's failover
  /// policy is built on exactly this distinction.
  ///
  /// Failpoints: `sock.send.reset` (IoError as if the peer reset),
  /// `sock.send.eintr` (extra retry loop iterations), `sock.send.short`
  /// (clamps each kernel send to the configured byte budget — exercises the
  /// partial-send resume path).
  Status SendAll(std::string_view data, size_t* bytes_sent = nullptr);

  /// Receives up to `len` bytes. 0 means clean EOF (a peer reset also reads
  /// as EOF, matching the drain path). DeadlineExceeded when a receive
  /// timeout set via SetRecvTimeout expires.
  ///
  /// Failpoints: `sock.recv.reset` (EOF as if the peer reset),
  /// `sock.recv.eagain` (DeadlineExceeded as if the read deadline fired),
  /// `sock.recv.eintr` (extra retry iterations), `sock.recv.short` (clamps
  /// the bytes delivered per call — exercises reassembly in LineReader).
  Result<size_t> RecvSome(char* buf, size_t len);

  /// Arms SO_RCVTIMEO / SO_SNDTIMEO: a blocked recv/send returns
  /// DeadlineExceeded after `ms` milliseconds. 0 disables the deadline.
  /// The server puts a receive deadline on accepted connections so a stalled
  /// client cannot pin a drain forever.
  Status SetRecvTimeout(int ms);
  Status SetSendTimeout(int ms);

  /// Half-closes the read side: a blocked reader sees EOF, writes still
  /// flush. This is the graceful-drain primitive.
  void ShutdownRead();
  void ShutdownBoth();
  void Close();

  /// Closes with SO_LINGER{on, 0}: the kernel sends a real RST instead of a
  /// FIN and discards unsent data. Tests use this to subject the server to a
  /// genuine mid-conversation connection reset.
  void CloseWithReset();

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  /// Port a listening socket is bound to (0 otherwise).
  uint16_t local_port() const { return local_port_; }

 private:
  int fd_ = -1;
  uint16_t local_port_ = 0;
};

/// Buffered newline-delimited reader over a Socket. Returns lines without
/// the trailing '\n' (and without '\r' for CRLF peers); an empty optional
/// signals clean EOF. A final unterminated line before EOF is returned as-is.
class LineReader {
 public:
  explicit LineReader(Socket* socket) : socket_(socket) {}

  Result<std::optional<std::string>> ReadLine();

  /// Bytes buffered past the last completed line. After a *failed* ReadLine
  /// with no other response outstanding, non-zero means the peer started a
  /// response that was cut off mid-line — a torn response, distinct from
  /// "never answered". The router uses this to decide whether a failed
  /// request may have been acted on by a backend.
  size_t partial_bytes() const { return buffer_.size() - pos_; }

 private:
  Socket* socket_;
  std::string buffer_;
  size_t pos_ = 0;  ///< Start of the unconsumed region of buffer_.
};

}  // namespace rrre::common

#endif  // RRRE_COMMON_SOCKET_H_
