#include "common/histogram.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "common/strings.h"

namespace rrre::common {

Histogram::Histogram() : buckets_(kNumBuckets, 0) {}

int Histogram::BucketIndex(double value) {
  if (!(value > 1.0)) return 0;  // NaN, negatives and [0, 1].
  int exp = 0;
  const double mantissa = std::frexp(value, &exp);  // value = m * 2^exp.
  const int octave = exp - 1;                       // floor(log2(value)) >= 0.
  const int sub = std::min(
      kSubBuckets - 1,
      static_cast<int>((mantissa * 2.0 - 1.0) * kSubBuckets));
  const int index = 1 + octave * kSubBuckets + sub;
  return std::min(index, kNumBuckets - 1);
}

double Histogram::BucketUpperEdge(int index) {
  if (index <= 0) return 1.0;
  const int octave = (index - 1) / kSubBuckets;
  const int sub = (index - 1) % kSubBuckets;
  return std::ldexp(1.0 + static_cast<double>(sub + 1) / kSubBuckets, octave);
}

void Histogram::Record(double value) {
  ++buckets_[static_cast<size_t>(BucketIndex(value))];
  if (count_ == 0) {
    min_ = max_ = value;
  } else {
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }
  ++count_;
  sum_ += value;
}

void Histogram::Merge(const Histogram& other) {
  if (other.count_ == 0) return;
  for (size_t i = 0; i < buckets_.size(); ++i) buckets_[i] += other.buckets_[i];
  if (count_ == 0) {
    min_ = other.min_;
    max_ = other.max_;
  } else {
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

double Histogram::Mean() const {
  return count_ == 0 ? 0.0 : sum_ / static_cast<double>(count_);
}

double Histogram::Min() const { return count_ == 0 ? 0.0 : min_; }

double Histogram::Max() const { return count_ == 0 ? 0.0 : max_; }

double Histogram::Percentile(double pct) const {
  if (count_ == 0) return 0.0;
  RRRE_CHECK(pct >= 0.0 && pct <= 100.0) << "percentile out of range: " << pct;
  const int64_t rank = std::clamp(
      static_cast<int64_t>(std::ceil(pct / 100.0 * static_cast<double>(count_))),
      int64_t{1}, count_);
  int64_t cumulative = 0;
  for (int i = 0; i < kNumBuckets; ++i) {
    cumulative += buckets_[static_cast<size_t>(i)];
    if (cumulative >= rank) {
      return std::clamp(BucketUpperEdge(i), min_, max_);
    }
  }
  return max_;  // Unreachable: counts always sum to count_.
}

std::string Histogram::Summary() const {
  return StrFormat("n=%lld mean=%.1f p50=%.0f p95=%.0f p99=%.0f max=%.0f",
                   static_cast<long long>(count_), Mean(), Percentile(50.0),
                   Percentile(95.0), Percentile(99.0), Max());
}

}  // namespace rrre::common
