#include "common/signals.h"

#include <atomic>
#include <csignal>

namespace rrre::common {

namespace {

std::atomic<bool> g_shutdown{false};
std::atomic<uint64_t> g_reload_count{0};

static_assert(std::atomic<bool>::is_always_lock_free &&
                  std::atomic<uint64_t>::is_always_lock_free,
              "signal handlers require lock-free atomics");

void HandleShutdownSignal(int) { g_shutdown.store(true); }

void HandleReloadSignal(int) { g_reload_count.fetch_add(1); }

}  // namespace

void InstallServeSignalHandlers() {
  struct sigaction sa {};
  sa.sa_handler = HandleShutdownSignal;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGINT, &sa, nullptr);
  sigaction(SIGTERM, &sa, nullptr);
  sa.sa_handler = HandleReloadSignal;
  sigaction(SIGHUP, &sa, nullptr);
  std::signal(SIGPIPE, SIG_IGN);
}

bool ShutdownRequested() { return g_shutdown.load(); }

void RequestShutdown() { g_shutdown.store(true); }

uint64_t ReloadRequestCount() { return g_reload_count.load(); }

}  // namespace rrre::common
