#ifndef RRRE_COMMON_THREADPOOL_H_
#define RRRE_COMMON_THREADPOOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace rrre::common {

/// Fixed-size worker pool with a blocking ParallelFor primitive.
///
/// Determinism contract: ParallelFor splits [begin, end) into chunks of
/// `grain` consecutive indices — chunk c is [begin + c*grain,
/// min(end, begin + (c+1)*grain)) — and invokes `fn(chunk_begin, chunk_end)`
/// exactly once per chunk. The chunk *partition* depends only on (begin, end,
/// grain), never on the pool size or scheduling, so a caller that keeps all
/// cross-chunk state in per-chunk slots and combines them in chunk order gets
/// bitwise-identical results for any thread count, including fully serial
/// execution (size() == 1).
///
/// Nested calls (ParallelFor from inside a ParallelFor task) run inline on
/// the calling thread, chunk by chunk in order — the partition is unchanged,
/// only the scheduling degrades to serial.
///
/// Exceptions thrown by `fn` are captured; the first one (in chunk order of
/// observation) is rethrown on the calling thread after all chunks finish.
class ThreadPool {
 public:
  /// `num_threads` counts the calling thread: N means N-1 workers plus the
  /// caller, 1 means no workers (everything inline), 0 means hardware
  /// concurrency.
  explicit ThreadPool(int num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Total threads participating in ParallelFor (workers + caller).
  int size() const { return num_threads_; }

  /// Invokes fn(chunk_begin, chunk_end) for every grain-sized chunk of
  /// [begin, end). Blocks until all chunks are done. grain must be > 0.
  void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                   const std::function<void(int64_t, int64_t)>& fn);

  /// The process-wide pool used by the tensor kernels and trainers. Created
  /// on first use with SetGlobalSize's value (default: hardware concurrency).
  static ThreadPool& Global();

  /// Resizes the global pool (joins the old one). Only call while no
  /// ParallelFor is in flight. 0 = hardware concurrency.
  static void SetGlobalSize(int num_threads);

  /// Size the global pool has (or would be created with).
  static int GlobalSize();

  /// True while the current thread is executing a ParallelFor task; used to
  /// run nested calls inline.
  static bool InWorker();

 private:
  struct Job;

  void WorkerLoop();
  /// Runs chunks of `job` until none are left; returns after contributing.
  static void RunChunks(Job& job);

  int num_threads_;
  std::vector<std::thread> workers_;

  std::mutex mu_;
  std::condition_variable work_cv_;
  std::deque<std::shared_ptr<Job>> jobs_;
  bool shutdown_ = false;
};

/// Convenience wrapper over ThreadPool::Global().ParallelFor.
void ParallelFor(int64_t begin, int64_t end, int64_t grain,
                 const std::function<void(int64_t, int64_t)>& fn);

}  // namespace rrre::common

#endif  // RRRE_COMMON_THREADPOOL_H_
