#ifndef RRRE_COMMON_FAILPOINT_H_
#define RRRE_COMMON_FAILPOINT_H_

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"

namespace rrre::common::failpoint {

/// Named-failpoint fault injection for the I/O and network seams.
///
/// A *failpoint* is a named hook compiled into a seam (checkpoint writes,
/// socket send/recv, the hot-reload path). Disarmed — the production state —
/// evaluating a point costs one relaxed atomic load and a branch, the same
/// trick the RRRE_PROF trace spans use, so the hooks stay in release builds.
/// Armed, the point fires according to a deterministic trigger schedule and
/// the seam injects the corresponding fault.
///
/// Arming is either programmatic (Arm/Disarm, used by tests) or via the
/// RRRE_FAILPOINTS environment variable, parsed on first use:
///
///   RRRE_FAILPOINTS='ckpt.write:short=64,after=3;sock.send.reset:prob=0.01'
///
///   spec   := entry (';' entry)*
///   entry  := point [':' clause (',' clause)*]
///   clause := 'error' | 'short' ['=' BYTES] | 'delay' '=' USEC | 'crash'
///           | 'after' '=' N | 'count' '=' N | 'prob' '=' P | 'seed' '=' S
///
/// The action clauses say *what* to inject; seams that encode the fault in
/// the point name (e.g. `sock.send.reset`) ignore the action and only honor
/// the trigger clauses. The trigger clauses say *when*: skip the first
/// `after` evaluations, fire at most `count` times, and fire each eligible
/// evaluation with probability `prob` drawn from a per-point Rng seeded by
/// `seed` — so a fault schedule replays exactly from (spec, seed).
///
/// The failpoint catalog (which seams evaluate which names) lives in
/// DESIGN.md "Fault injection & durability".
enum class Action {
  kError,    ///< The seam fails with an injected I/O error.
  kShortIo,  ///< The seam processes at most `arg` bytes, then (for writes)
             ///< fails — modeling a torn write.
  kDelayUs,  ///< Sleep `arg` microseconds, then proceed normally.
  kCrash,    ///< std::_Exit the process — a crash / power-loss at the seam.
};

struct Config {
  Action action = Action::kError;
  /// Action argument: byte budget for short-io, microseconds for delay-us.
  int64_t arg = 1;
  /// Skip the first `after` evaluations of the point.
  int64_t after = 0;
  /// Fire at most this many times; -1 = unlimited.
  int64_t count = -1;
  /// Probability a post-`after`, under-`count` evaluation fires.
  double prob = 1.0;
  /// Seed of the per-point Rng behind `prob` draws.
  uint64_t seed = 0x5eedfa11;
};

/// What an armed point injects when it fires.
struct Fired {
  Action action;
  int64_t arg;
};

/// True when at least one point is armed. The disabled fast path: callers
/// gate every Check behind this single relaxed load.
bool Enabled();

/// Evaluates the named point: increments its evaluation counter and returns
/// the action to inject when the trigger schedule says fire, nullopt to
/// proceed normally. Never fires for disarmed points.
std::optional<Fired> Check(const char* name);

/// Status-seam helper: OK unless `name` fires. kError/kShortIo fire as
/// IoError mentioning `what` and the point name; kDelayUs sleeps and returns
/// OK; kCrash exits the process (simulated power loss — no cleanup runs).
Status MaybeError(const char* name, const std::string& what);

/// Byte-seam helper: the number of bytes the seam may process. Returns `len`
/// unless `name` fires with kShortIo, in which case min(len, max(1, arg)).
/// Other actions at a byte seam degrade: kError/kCrash are handled as in
/// MaybeError via the returned `fired` flag being irrelevant — callers that
/// need those arm the seam's error point instead.
size_t AllowedBytes(const char* name, size_t len);

/// Arms `name` with the given config, resetting its counters. Replaces any
/// existing arming of the same point.
void Arm(const std::string& name, const Config& config = Config());

/// Disarms one point / every point. Counters are discarded.
void Disarm(const std::string& name);
void DisarmAll();

/// Parses an RRRE_FAILPOINTS-grammar spec and arms every entry. On a parse
/// error nothing is armed and the error names the offending entry.
Status ArmFromSpec(const std::string& spec);

/// Evaluation / fire counters of an armed point (0 for unknown points) —
/// what makes fault schedules assertable and replayable in tests.
int64_t EvalCount(const std::string& name);
int64_t FireCount(const std::string& name);

/// Names of all armed points, sorted.
std::vector<std::string> ArmedPoints();

}  // namespace rrre::common::failpoint

#endif  // RRRE_COMMON_FAILPOINT_H_
