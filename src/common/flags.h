#ifndef RRRE_COMMON_FLAGS_H_
#define RRRE_COMMON_FLAGS_H_

#include <map>
#include <string>
#include <vector>

#include "common/status.h"

namespace rrre::common {

/// Minimal command-line flag parser for the bench/example binaries.
///
/// Accepted syntax: --name=value, --name value, and bare --name for booleans.
/// Unknown flags are an error; positional arguments are collected separately.
///
///   FlagParser flags;
///   flags.AddInt("epochs", 10, "training epochs");
///   flags.AddString("dataset", "yelpchi", "dataset profile");
///   RRRE_CHECK_OK(flags.Parse(argc, argv));
///   int epochs = flags.GetInt("epochs");
class FlagParser {
 public:
  void AddInt(const std::string& name, int64_t default_value,
              const std::string& help);
  void AddDouble(const std::string& name, double default_value,
                 const std::string& help);
  void AddString(const std::string& name, const std::string& default_value,
                 const std::string& help);
  void AddBool(const std::string& name, bool default_value,
               const std::string& help);

  /// Parses argv. Returns InvalidArgument on unknown flags or bad values.
  /// `--help` prints usage and sets help_requested().
  Status Parse(int argc, const char* const* argv);

  int64_t GetInt(const std::string& name) const;
  double GetDouble(const std::string& name) const;
  const std::string& GetString(const std::string& name) const;
  bool GetBool(const std::string& name) const;

  const std::vector<std::string>& positional() const { return positional_; }
  bool help_requested() const { return help_requested_; }

  /// Formatted flag list for --help output.
  std::string Usage(const std::string& program) const;

 private:
  enum class Type { kInt, kDouble, kString, kBool };
  struct Flag {
    Type type;
    std::string help;
    int64_t int_value = 0;
    double double_value = 0.0;
    std::string string_value;
    bool bool_value = false;
  };

  Status SetValue(const std::string& name, const std::string& value);
  const Flag& GetFlag(const std::string& name, Type type) const;

  std::map<std::string, Flag> flags_;
  std::vector<std::string> positional_;
  bool help_requested_ = false;
};

}  // namespace rrre::common

#endif  // RRRE_COMMON_FLAGS_H_
