#ifndef RRRE_COMMON_STATUS_H_
#define RRRE_COMMON_STATUS_H_

#include <optional>
#include <string>
#include <string_view>
#include <utility>

#include "common/logging.h"

namespace rrre::common {

/// Error codes carried by Status. Modeled after the Arrow/RocksDB convention:
/// library functions that can fail return Status (or Result<T>) instead of
/// throwing exceptions across the API boundary.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument = 1,
  kNotFound = 2,
  kIoError = 3,
  kFailedPrecondition = 4,
  kOutOfRange = 5,
  kInternal = 6,
  kDeadlineExceeded = 7,
};

/// Returns a human-readable name for a status code ("OK", "InvalidArgument"...).
std::string_view StatusCodeToString(StatusCode code);

/// A success-or-error value. Cheap to copy in the OK case (no allocation).
class Status {
 public:
  /// Constructs an OK status.
  Status() = default;

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status IoError(std::string message) {
    return Status(StatusCode::kIoError, std::move(message));
  }
  static Status FailedPrecondition(std::string message) {
    return Status(StatusCode::kFailedPrecondition, std::move(message));
  }
  static Status OutOfRange(std::string message) {
    return Status(StatusCode::kOutOfRange, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_ = StatusCode::kOk;
  std::string message_;
};

/// Either a value of type T or an error Status. Accessing the value of an
/// errored Result is a programming error (checked via CHECK in ValueOrDie).
template <typename T>
class Result {
 public:
  /// Implicit so `return value;` works in functions returning Result<T>.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  /// Implicit so `return Status::...();` works.
  Result(Status status) : status_(std::move(status)) {}  // NOLINT

  bool ok() const { return status_.ok() && value_.has_value(); }
  const Status& status() const { return status_; }

  const T& value() const& { return *value_; }
  T& value() & { return *value_; }
  T&& value() && { return *std::move(value_); }

  /// Moves the value out, or aborts with the error message if not ok.
  T ValueOrDie() && {
    RRRE_CHECK(ok()) << status_.ToString();
    return *std::move(value_);
  }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Propagates a non-OK status out of the calling function.
#define RRRE_RETURN_IF_ERROR(expr)                    \
  do {                                                \
    ::rrre::common::Status _st = (expr);              \
    if (!_st.ok()) return _st;                        \
  } while (0)

/// Evaluates a Result<T> expression, assigning the value to `lhs` or
/// returning its error status.
#define RRRE_ASSIGN_OR_RETURN(lhs, expr)              \
  RRRE_ASSIGN_OR_RETURN_IMPL_(                        \
      RRRE_STATUS_CONCAT_(_result, __LINE__), lhs, expr)

#define RRRE_STATUS_CONCAT_INNER_(a, b) a##b
#define RRRE_STATUS_CONCAT_(a, b) RRRE_STATUS_CONCAT_INNER_(a, b)
#define RRRE_ASSIGN_OR_RETURN_IMPL_(tmp, lhs, expr)   \
  auto tmp = (expr);                                  \
  if (!tmp.ok()) return tmp.status();                 \
  lhs = std::move(tmp).value()

}  // namespace rrre::common

#endif  // RRRE_COMMON_STATUS_H_
