#ifndef RRRE_COMMON_RNG_H_
#define RRRE_COMMON_RNG_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace rrre::common {

/// Deterministic pseudo-random number generator (xoshiro256** seeded through
/// splitmix64). Every stochastic component in the library draws from an Rng
/// instance so experiments are reproducible from a single seed.
class Rng {
 public:
  explicit Rng(uint64_t seed = 42);

  /// Uniform 64-bit value.
  uint64_t NextUint64();

  /// Uniform double in [0, 1).
  double Uniform();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal via Box-Muller.
  double Normal();

  /// Normal with given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Bernoulli draw: true with probability p.
  bool Bernoulli(double p);

  /// Samples an index in [0, weights.size()) proportionally to weights.
  /// Weights must be non-negative with a positive sum.
  size_t Categorical(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (size_t i = v.size(); i > 1; --i) {
      size_t j = UniformInt(static_cast<uint64_t>(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Samples k distinct indices from [0, n) (k <= n), in random order.
  std::vector<size_t> SampleWithoutReplacement(size_t n, size_t k);

  /// Derives an independent child generator; used to give each subsystem its
  /// own stream without coupling their draw sequences. Advances this
  /// generator by one draw.
  Rng Fork();

  /// Keyed fork: derives the `stream`-th child of this generator's current
  /// state WITHOUT advancing it, so Fork(0), Fork(1), ... are stable,
  /// decorrelated streams from one parent state. The derivation runs the
  /// (state, stream) pair through splitmix64, is pure 64-bit integer
  /// arithmetic, and therefore produces identical streams on every platform.
  /// This is how parallel workers get per-shard randomness that does not
  /// depend on the number of threads or the order shards execute in.
  Rng Fork(uint64_t stream) const;

  /// Number of 64-bit words in a serialized state.
  static constexpr size_t kStateWords = 6;

  /// Captures the complete generator state (the four xoshiro words plus the
  /// Box-Muller normal cache) so a restored generator continues the exact
  /// same draw sequence — the hook exact-resume checkpoints use.
  std::array<uint64_t, kStateWords> SerializeState() const;

  /// Restores a state captured by SerializeState.
  void RestoreState(const std::array<uint64_t, kStateWords>& state);

 private:
  uint64_t s_[4];
  bool has_cached_normal_ = false;
  double cached_normal_ = 0.0;
};

}  // namespace rrre::common

#endif  // RRRE_COMMON_RNG_H_
