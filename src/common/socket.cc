#include "common/socket.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>
#include <utility>

#include "common/failpoint.h"

namespace rrre::common {

namespace {

Status ErrnoStatus(const std::string& what) {
  return Status::IoError(what + ": " + std::strerror(errno));
}

}  // namespace

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      local_port_(std::exchange(other.local_port_, 0)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    Close();
    fd_ = std::exchange(other.fd_, -1);
    local_port_ = std::exchange(other.local_port_, 0);
  }
  return *this;
}

Result<Socket> Socket::Listen(uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    return ErrnoStatus("bind to port " + std::to_string(port));
  }
  if (::listen(fd, backlog) != 0) return ErrnoStatus("listen");
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&bound), &len) != 0) {
    return ErrnoStatus("getsockname");
  }
  sock.local_port_ = ntohs(bound.sin_port);
  return sock;
}

Result<Socket> Socket::Connect(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("not a numeric IPv4 address: " + host);
  }
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return ErrnoStatus("socket");
  Socket sock(fd);
  int rc;
  do {
    rc = ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return ErrnoStatus("connect to " + host + ":" + std::to_string(port));
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return sock;
}

Result<std::optional<Socket>> Socket::AcceptWithTimeout(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_ms);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return ErrnoStatus("poll");
  if (rc == 0) return std::optional<Socket>();
  const int client = ::accept(fd_, nullptr, nullptr);
  if (client < 0) return ErrnoStatus("accept");
  const int one = 1;
  ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::optional<Socket>(Socket(client));
}

Status Socket::SendAll(std::string_view data, size_t* bytes_sent) {
  const bool inject = failpoint::Enabled();
  size_t sent = 0;
  // Report progress on every exit path — callers distinguish "never sent"
  // (sent == 0, safe to retry anywhere) from "maybe delivered" (partial
  // progress; only idempotent requests may be blindly resent).
  if (bytes_sent != nullptr) *bytes_sent = 0;
  while (sent < data.size()) {
    size_t want = data.size() - sent;
    if (inject) {
      if (failpoint::Check("sock.send.reset").has_value()) {
        return Status::IoError("send: injected connection reset"
                               " [failpoint sock.send.reset]");
      }
      // An injected EINTR models a signal landing mid-send: skip this
      // iteration, re-enter the loop — the syscall must be retried.
      if (failpoint::Check("sock.send.eintr").has_value()) continue;
      want = failpoint::AllowedBytes("sock.send.short", want);
    }
    const ssize_t n = ::send(fd_, data.data() + sent, want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        return Status::DeadlineExceeded("send timed out");
      }
      return ErrnoStatus("send");
    }
    sent += static_cast<size_t>(n);
    if (bytes_sent != nullptr) *bytes_sent = sent;
  }
  return Status::Ok();
}

Result<size_t> Socket::RecvSome(char* buf, size_t len) {
  if (failpoint::Enabled()) {
    // A reset reads as EOF to callers, matching the real ECONNRESET path.
    if (failpoint::Check("sock.recv.reset").has_value()) return size_t{0};
    if (failpoint::Check("sock.recv.eagain").has_value()) {
      return Status::DeadlineExceeded(
          "recv timed out [failpoint sock.recv.eagain]");
    }
    while (failpoint::Check("sock.recv.eintr").has_value()) {
      // Each fire models one EINTR-interrupted recv; the loop is the retry.
    }
    len = failpoint::AllowedBytes("sock.recv.short", len);
  }
  ssize_t n;
  do {
    n = ::recv(fd_, buf, len, 0);
  } while (n < 0 && errno == EINTR);
  if (n < 0) {
    // A reset or an abort from the drain path both read as EOF to callers.
    if (errno == ECONNRESET) return size_t{0};
    if (errno == EAGAIN || errno == EWOULDBLOCK) {
      return Status::DeadlineExceeded("recv timed out");
    }
    return ErrnoStatus("recv");
  }
  return static_cast<size_t>(n);
}

namespace {

Status SetTimeoutOption(int fd, int option, int ms) {
  timeval tv{};
  tv.tv_sec = ms / 1000;
  tv.tv_usec = static_cast<suseconds_t>(ms % 1000) * 1000;
  if (::setsockopt(fd, SOL_SOCKET, option, &tv, sizeof(tv)) != 0) {
    return ErrnoStatus("setsockopt timeout");
  }
  return Status::Ok();
}

}  // namespace

Status Socket::SetRecvTimeout(int ms) {
  return SetTimeoutOption(fd_, SO_RCVTIMEO, ms);
}

Status Socket::SetSendTimeout(int ms) {
  return SetTimeoutOption(fd_, SO_SNDTIMEO, ms);
}

void Socket::ShutdownRead() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RD);
}

void Socket::ShutdownBoth() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::CloseWithReset() {
  if (fd_ >= 0) {
    linger lg{};
    lg.l_onoff = 1;
    lg.l_linger = 0;
    ::setsockopt(fd_, SOL_SOCKET, SO_LINGER, &lg, sizeof(lg));
    ::close(fd_);
    fd_ = -1;
  }
}

Result<std::optional<std::string>> LineReader::ReadLine() {
  while (true) {
    const size_t newline = buffer_.find('\n', pos_);
    if (newline != std::string::npos) {
      std::string line = buffer_.substr(pos_, newline - pos_);
      pos_ = newline + 1;
      if (pos_ == buffer_.size()) {
        buffer_.clear();
        pos_ = 0;
      }
      if (!line.empty() && line.back() == '\r') line.pop_back();
      return std::optional<std::string>(std::move(line));
    }
    char chunk[4096];
    auto n = socket_->RecvSome(chunk, sizeof(chunk));
    if (!n.ok()) return n.status();
    if (n.value() == 0) {
      if (pos_ < buffer_.size()) {  // Unterminated trailing line.
        std::string line = buffer_.substr(pos_);
        buffer_.clear();
        pos_ = 0;
        if (!line.empty() && line.back() == '\r') line.pop_back();
        return std::optional<std::string>(std::move(line));
      }
      return std::optional<std::string>();
    }
    buffer_.append(chunk, n.value());
  }
}

}  // namespace rrre::common
