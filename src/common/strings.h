#ifndef RRRE_COMMON_STRINGS_H_
#define RRRE_COMMON_STRINGS_H_

#include <string>
#include <string_view>
#include <vector>

namespace rrre::common {

/// Splits `s` on `sep`, keeping empty fields ("a,,b" -> {"a","","b"}).
std::vector<std::string> Split(std::string_view s, char sep);

/// Splits `s` on runs of ASCII whitespace, dropping empty fields.
std::vector<std::string> SplitWhitespace(std::string_view s);

/// Joins `parts` with `sep`.
std::string Join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view Trim(std::string_view s);

/// ASCII lowercase copy.
std::string ToLower(std::string_view s);

bool StartsWith(std::string_view s, std::string_view prefix);
bool EndsWith(std::string_view s, std::string_view suffix);

/// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace rrre::common

#endif  // RRRE_COMMON_STRINGS_H_
