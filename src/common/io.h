#ifndef RRRE_COMMON_IO_H_
#define RRRE_COMMON_IO_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace rrre::common {

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// Writes `content` to `path`, replacing any existing file.
Status WriteFile(const std::string& path, const std::string& content);

/// Reads a tab-separated file into rows of fields. Blank lines are skipped.
/// Fields may not contain tabs or newlines; the review-text columns written by
/// this library escape them (see EscapeTsvField).
Result<std::vector<std::vector<std::string>>> ReadTsv(const std::string& path);

/// Writes rows of fields as a tab-separated file.
Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

/// Replaces tabs and newlines with spaces so a free-text field is TSV-safe.
std::string EscapeTsvField(std::string_view field);

}  // namespace rrre::common

#endif  // RRRE_COMMON_IO_H_
