#ifndef RRRE_COMMON_IO_H_
#define RRRE_COMMON_IO_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace rrre::common {

/// Reads a whole file into a string.
Result<std::string> ReadFile(const std::string& path);

/// A file mapped read-only into the address space (MAP_PRIVATE): the page
/// cache backs the bytes, so several processes mapping the same file share
/// one physical copy — what makes a multi-gigabyte precomputed store cheap
/// to hold open in every serving process. Move-only; the destructor unmaps.
///
/// Open evaluates the failpoint `<point_prefix>.mmap` before touching the
/// filesystem so fault-injection tests can break the mapping seam.
class MappedFile {
 public:
  MappedFile() = default;
  ~MappedFile();
  MappedFile(MappedFile&& other) noexcept;
  MappedFile& operator=(MappedFile&& other) noexcept;
  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  /// Maps `path` read-only. An empty file yields a valid MappedFile with
  /// size() == 0 and data() == nullptr (mmap rejects zero-length mappings).
  static Result<MappedFile> Open(const std::string& path,
                                 const std::string& point_prefix = "io");

  const uint8_t* data() const { return static_cast<const uint8_t*>(data_); }
  size_t size() const { return size_; }
  bool valid() const { return data_ != nullptr || mapped_empty_; }

 private:
  void* data_ = nullptr;
  size_t size_ = 0;
  bool mapped_empty_ = false;  ///< Open succeeded on a zero-length file.
};

/// Crash-safe file writer: streams into `path + ".tmp"`, and on Commit()
/// fsyncs the tmp file, renames it over `path`, and fsyncs the parent
/// directory. A crash at any point leaves either the old file intact or a
/// stray `.tmp` — never a torn or zero-length `path`. The destructor unlinks
/// the tmp file if Commit() was not reached.
///
/// Every step evaluates a failpoint named `<point_prefix>.<step>` for steps
/// open / write / fsync / rename / dirsync, so fault-injection tests can
/// break any stage of the sequence (see common/failpoint.h).
class AtomicFileWriter {
 public:
  AtomicFileWriter() = default;
  ~AtomicFileWriter();
  AtomicFileWriter(const AtomicFileWriter&) = delete;
  AtomicFileWriter& operator=(const AtomicFileWriter&) = delete;

  /// Creates/truncates `path + ".tmp"`. `point_prefix` names the failpoint
  /// family this writer evaluates (e.g. "ckpt", "io").
  Status Open(const std::string& path, const std::string& point_prefix = "io");

  /// Appends bytes to the tmp file. Short kernel writes are retried.
  Status Append(const void* data, size_t len);
  Status Append(const std::string& content) {
    return Append(content.data(), content.size());
  }

  /// fsync(tmp), rename(tmp -> path), fsync(parent dir). After an OK return
  /// the new content is durable under the final name.
  Status Commit();

 private:
  void Abandon();

  int fd_ = -1;
  std::string path_;
  std::string tmp_path_;
  std::string point_prefix_;
  bool committed_ = false;
};

/// Writes `content` to `path` atomically and durably (tmp + fsync + rename +
/// parent-dir fsync). This is the crash-safe path every output writer should
/// use; a mid-write crash can never tear an existing `path`.
Status AtomicWriteFile(const std::string& path, const std::string& content);

/// fsyncs the directory containing `path` — what makes a rename(2) into that
/// directory durable. Writers that stream + rename outside AtomicFileWriter
/// (e.g. TelemetryWriter) finish their commit with this.
Status FsyncParentDir(const std::string& path);

/// Creates `path` and any missing parents (mkdir -p semantics). Succeeds when
/// the directory already exists; fails when a component exists but is not a
/// directory.
Status EnsureDir(const std::string& path);

/// Writes `content` to `path`, replacing any existing file. Routed through
/// AtomicWriteFile so partially-written output files cannot be observed.
Status WriteFile(const std::string& path, const std::string& content);

/// Reads a tab-separated file into rows of fields. Blank lines are skipped.
/// Fields may not contain tabs or newlines; the review-text columns written by
/// this library escape them (see EscapeTsvField).
Result<std::vector<std::vector<std::string>>> ReadTsv(const std::string& path);

/// Writes rows of fields as a tab-separated file.
Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows);

/// Replaces tabs and newlines with spaces so a free-text field is TSV-safe.
std::string EscapeTsvField(std::string_view field);

}  // namespace rrre::common

#endif  // RRRE_COMMON_IO_H_
