#ifndef RRRE_COMMON_LOGGING_H_
#define RRRE_COMMON_LOGGING_H_

#include <cstdlib>
#include <sstream>
#include <string>

namespace rrre::common {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// Global minimum severity that is actually emitted (default: kInfo).
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

/// Accumulates one log line and flushes it to stderr on destruction.
/// kFatal aborts the process after flushing.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  template <typename T>
  LogMessage& operator<<(const T& v) {
    stream_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Makes a streamed LogMessage usable as the second arm of a ?: whose first
/// arm is (void)0 — the glog "voidify" trick that lets CHECK macros accept
/// trailing `<< message` text.
struct Voidify {
  void operator&(LogMessage&) {}
};

}  // namespace internal
}  // namespace rrre::common

#define RRRE_LOG_DEBUG \
  ::rrre::common::internal::LogMessage(::rrre::common::LogLevel::kDebug, __FILE__, __LINE__)
#define RRRE_LOG_INFO \
  ::rrre::common::internal::LogMessage(::rrre::common::LogLevel::kInfo, __FILE__, __LINE__)
#define RRRE_LOG_WARNING \
  ::rrre::common::internal::LogMessage(::rrre::common::LogLevel::kWarning, __FILE__, __LINE__)
#define RRRE_LOG_ERROR \
  ::rrre::common::internal::LogMessage(::rrre::common::LogLevel::kError, __FILE__, __LINE__)
#define RRRE_LOG_FATAL \
  ::rrre::common::internal::LogMessage(::rrre::common::LogLevel::kFatal, __FILE__, __LINE__)

/// Aborts with a message when `cond` is false. Used for programmer-error
/// invariants (shape mismatches etc.); recoverable errors use Status instead.
/// Supports trailing streamed context: RRRE_CHECK(x) << "details".
#define RRRE_CHECK(cond)                         \
  (cond) ? (void)0                               \
         : ::rrre::common::internal::Voidify() & \
               RRRE_LOG_FATAL << "Check failed: " #cond " "

#define RRRE_CHECK_OP_(a, b, op)                   \
  ((a)op(b)) ? (void)0                             \
             : ::rrre::common::internal::Voidify() & \
                   RRRE_LOG_FATAL << "Check failed: " #a " " #op " " #b \
                                  << " (" << (a) << " vs " << (b) << ") "

#define RRRE_CHECK_EQ(a, b) RRRE_CHECK_OP_(a, b, ==)
#define RRRE_CHECK_NE(a, b) RRRE_CHECK_OP_(a, b, !=)
#define RRRE_CHECK_LT(a, b) RRRE_CHECK_OP_(a, b, <)
#define RRRE_CHECK_LE(a, b) RRRE_CHECK_OP_(a, b, <=)
#define RRRE_CHECK_GT(a, b) RRRE_CHECK_OP_(a, b, >)
#define RRRE_CHECK_GE(a, b) RRRE_CHECK_OP_(a, b, >=)

/// Aborts when a Status-returning expression fails.
#define RRRE_CHECK_OK(expr)                                               \
  do {                                                                    \
    const auto& _st = (expr);                                             \
    if (!_st.ok()) RRRE_LOG_FATAL << "Status not OK: " << _st.ToString(); \
  } while (0)

#endif  // RRRE_COMMON_LOGGING_H_
