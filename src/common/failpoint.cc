#include "common/failpoint.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <map>
#include <mutex>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"

namespace rrre::common::failpoint {

namespace {

struct Point {
  Config config;
  int64_t evals = 0;
  int64_t fires = 0;
  Rng rng{0};
};

struct Registry {
  std::mutex mu;
  std::map<std::string, Point> points;
  /// Number of armed points; the lock-free gate behind Enabled().
  std::atomic<int64_t> armed{0};
};

/// Parses the comma-separated clause list of one spec entry into `config`.
Status ParseClausesInto(const std::string& clauses, Config* config) {
  for (const std::string& raw : Split(clauses, ',')) {
    const std::string clause(Trim(raw));
    if (clause.empty()) continue;
    const size_t eq = clause.find('=');
    const std::string key =
        eq == std::string::npos ? clause : clause.substr(0, eq);
    const std::string value =
        eq == std::string::npos ? std::string() : clause.substr(eq + 1);
    auto parse_int = [&](int64_t* out) -> Status {
      if (value.empty()) {
        return Status::InvalidArgument("clause \"" + key +
                                       "\" needs an integer value");
      }
      char* end = nullptr;
      const long long v = std::strtoll(value.c_str(), &end, 10);
      if (end != value.c_str() + value.size()) {
        return Status::InvalidArgument("bad integer \"" + value +
                                       "\" in clause \"" + clause + "\"");
      }
      *out = v;
      return Status::Ok();
    };
    if (key == "error") {
      config->action = Action::kError;
    } else if (key == "short") {
      config->action = Action::kShortIo;
      if (!value.empty()) RRRE_RETURN_IF_ERROR(parse_int(&config->arg));
    } else if (key == "delay") {
      config->action = Action::kDelayUs;
      RRRE_RETURN_IF_ERROR(parse_int(&config->arg));
    } else if (key == "crash") {
      config->action = Action::kCrash;
    } else if (key == "after") {
      RRRE_RETURN_IF_ERROR(parse_int(&config->after));
      if (config->after < 0) {
        return Status::InvalidArgument("after must be >= 0");
      }
    } else if (key == "count") {
      RRRE_RETURN_IF_ERROR(parse_int(&config->count));
    } else if (key == "prob") {
      if (value.empty()) {
        return Status::InvalidArgument("prob needs a value");
      }
      char* end = nullptr;
      config->prob = std::strtod(value.c_str(), &end);
      if (end != value.c_str() + value.size() || config->prob < 0.0 ||
          config->prob > 1.0) {
        return Status::InvalidArgument("bad probability \"" + value + "\"");
      }
    } else if (key == "seed") {
      int64_t seed = 0;
      RRRE_RETURN_IF_ERROR(parse_int(&seed));
      config->seed = static_cast<uint64_t>(seed);
    } else {
      return Status::InvalidArgument("unknown failpoint clause \"" + clause +
                                     "\"");
    }
  }
  return Status::Ok();
}

/// Parses a whole RRRE_FAILPOINTS spec; all-or-nothing into `out`.
Status ParseSpecInto(const std::string& spec,
                     std::map<std::string, Config>* out) {
  for (const std::string& entry : Split(spec, ';')) {
    const std::string trimmed(Trim(entry));
    if (trimmed.empty()) continue;
    const size_t colon = trimmed.find(':');
    const std::string name = trimmed.substr(0, colon);
    if (name.empty()) {
      return Status::InvalidArgument("empty failpoint name in \"" + trimmed +
                                     "\"");
    }
    Config config;
    if (colon != std::string::npos) {
      RRRE_RETURN_IF_ERROR(
          ParseClausesInto(trimmed.substr(colon + 1), &config));
    }
    (*out)[name] = config;
  }
  return Status::Ok();
}

/// The process-wide registry. RRRE_FAILPOINTS is parsed exactly once, inside
/// the static initializer (i.e. on the first failpoint call of the process).
/// A malformed spec is a hard configuration error: fault-injection runs are
/// deliberate, and silently dropping a typoed point would let a "tested"
/// schedule inject nothing.
Registry& GetRegistry() {
  static Registry* registry = [] {
    auto* r = new Registry();
    const char* env = std::getenv("RRRE_FAILPOINTS");
    if (env != nullptr && env[0] != '\0') {
      std::map<std::string, Config> parsed;
      const Status status = ParseSpecInto(env, &parsed);
      if (!status.ok()) {
        RRRE_LOG_FATAL << "bad RRRE_FAILPOINTS spec: " << status.ToString();
      }
      for (const auto& [name, config] : parsed) {
        Point point;
        point.config = config;
        point.rng = Rng(config.seed);
        r->points.emplace(name, std::move(point));
      }
      r->armed.store(static_cast<int64_t>(r->points.size()),
                     std::memory_order_relaxed);
    }
    return r;
  }();
  return *registry;
}

}  // namespace

bool Enabled() {
  return GetRegistry().armed.load(std::memory_order_relaxed) > 0;
}

std::optional<Fired> Check(const char* name) {
  Registry& registry = GetRegistry();
  if (registry.armed.load(std::memory_order_relaxed) <= 0) {
    return std::nullopt;
  }
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  if (it == registry.points.end()) return std::nullopt;
  Point& point = it->second;
  const int64_t eval = point.evals++;
  if (eval < point.config.after) return std::nullopt;
  if (point.config.count >= 0 && point.fires >= point.config.count) {
    return std::nullopt;
  }
  if (point.config.prob < 1.0 && !point.rng.Bernoulli(point.config.prob)) {
    return std::nullopt;
  }
  ++point.fires;
  return Fired{point.config.action, point.config.arg};
}

Status MaybeError(const char* name, const std::string& what) {
  const auto fired = Check(name);
  if (!fired.has_value()) return Status::Ok();
  switch (fired->action) {
    case Action::kDelayUs:
      std::this_thread::sleep_for(std::chrono::microseconds(fired->arg));
      return Status::Ok();
    case Action::kCrash:
      // _Exit skips atexit handlers and stream flushing — the closest
      // userspace approximation of the process dying at this instruction.
      std::_Exit(137);
    case Action::kError:
    case Action::kShortIo:
      return Status::IoError("injected failure at " + what + " [failpoint " +
                             name + "]");
  }
  return Status::Ok();
}

size_t AllowedBytes(const char* name, size_t len) {
  const auto fired = Check(name);
  if (!fired.has_value() || fired->action != Action::kShortIo || len == 0) {
    return len;
  }
  return std::min(len, static_cast<size_t>(std::max<int64_t>(1, fired->arg)));
}

void Arm(const std::string& name, const Config& config) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  Point point;
  point.config = config;
  point.rng = Rng(config.seed);
  registry.points[name] = std::move(point);
  registry.armed.store(static_cast<int64_t>(registry.points.size()),
                       std::memory_order_relaxed);
}

void Disarm(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.erase(name);
  registry.armed.store(static_cast<int64_t>(registry.points.size()),
                       std::memory_order_relaxed);
}

void DisarmAll() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  registry.points.clear();
  registry.armed.store(0, std::memory_order_relaxed);
}

Status ArmFromSpec(const std::string& spec) {
  std::map<std::string, Config> parsed;
  RRRE_RETURN_IF_ERROR(ParseSpecInto(spec, &parsed));
  for (const auto& [name, config] : parsed) Arm(name, config);
  return Status::Ok();
}

int64_t EvalCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.evals;
}

int64_t FireCount(const std::string& name) {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.points.find(name);
  return it == registry.points.end() ? 0 : it->second.fires;
}

std::vector<std::string> ArmedPoints() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  std::vector<std::string> names;
  names.reserve(registry.points.size());
  for (const auto& [name, point] : registry.points) names.push_back(name);
  return names;
}

}  // namespace rrre::common::failpoint
