#include "common/io.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/failpoint.h"
#include "common/strings.h"

namespace rrre::common {

namespace {

std::string ParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  if (slash == std::string::npos) return ".";
  if (slash == 0) return "/";
  return path.substr(0, slash);
}

std::string ErrnoString() { return std::strerror(errno); }

}  // namespace

AtomicFileWriter::~AtomicFileWriter() { Abandon(); }

void AtomicFileWriter::Abandon() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (!committed_ && !tmp_path_.empty()) {
    ::unlink(tmp_path_.c_str());
  }
  tmp_path_.clear();
}

Status AtomicFileWriter::Open(const std::string& path,
                              const std::string& point_prefix) {
  RRRE_CHECK(fd_ < 0) << "AtomicFileWriter::Open called twice";
  path_ = path;
  point_prefix_ = point_prefix;
  committed_ = false;
  if (failpoint::Enabled()) {
    RRRE_RETURN_IF_ERROR(
        failpoint::MaybeError((point_prefix_ + ".open").c_str(),
                              "open " + path));
  }
  const std::string tmp = path + ".tmp";
  const int fd =
      ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC | O_CLOEXEC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open for writing: " + tmp + " (" +
                           ErrnoString() + ")");
  }
  fd_ = fd;
  tmp_path_ = tmp;
  return Status::Ok();
}

Status AtomicFileWriter::Append(const void* data, size_t len) {
  RRRE_CHECK(fd_ >= 0) << "AtomicFileWriter::Append before Open";
  const char* p = static_cast<const char*>(data);
  const bool inject = failpoint::Enabled();
  while (len > 0) {
    const size_t want = len;
    if (inject) {
      // One Check per iteration, dispatched over every action here: routing
      // short-io through AllowedBytes and the rest through MaybeError would
      // evaluate the point twice and burn count/after budget on the probe.
      const std::string point = point_prefix_ + ".write";
      if (const auto fired = failpoint::Check(point.c_str())) {
        switch (fired->action) {
          case failpoint::Action::kDelayUs:
            std::this_thread::sleep_for(
                std::chrono::microseconds(fired->arg));
            break;
          case failpoint::Action::kCrash:
            std::_Exit(137);  // Simulated power loss: no cleanup runs.
          case failpoint::Action::kShortIo: {
            // A short-io fires as a torn write: some bytes land, then the
            // write fails — the state a crash or full disk leaves behind.
            const size_t torn = std::min(
                len, static_cast<size_t>(std::max<int64_t>(1, fired->arg)));
            ::write(fd_, p, torn);
            Abandon();
            return Status::IoError("injected short write at " + tmp_path_ +
                                   " [failpoint " + point + "]");
          }
          case failpoint::Action::kError: {
            const std::string tmp = tmp_path_;
            Abandon();
            return Status::IoError("injected failure at write " + tmp +
                                   " [failpoint " + point + "]");
          }
        }
      }
    }
    const ssize_t n = ::write(fd_, p, want);
    if (n < 0) {
      if (errno == EINTR) continue;
      const std::string err = ErrnoString();
      Abandon();
      return Status::IoError("write failed: " + tmp_path_ + " (" + err + ")");
    }
    p += n;
    len -= static_cast<size_t>(n);
  }
  return Status::Ok();
}

Status AtomicFileWriter::Commit() {
  RRRE_CHECK(fd_ >= 0) << "AtomicFileWriter::Commit before Open";
  const bool inject = failpoint::Enabled();
  // 1. fsync the tmp file: its bytes must be durable before the rename can
  //    make them reachable, or a post-rename power loss surfaces a
  //    zero-length "valid" file.
  if (inject) {
    const Status status = failpoint::MaybeError(
        (point_prefix_ + ".fsync").c_str(), "fsync " + tmp_path_);
    if (!status.ok()) {
      Abandon();
      return status;
    }
  }
  if (::fsync(fd_) != 0) {
    const std::string err = ErrnoString();
    Abandon();
    return Status::IoError("fsync failed: " + tmp_path_ + " (" + err + ")");
  }
  if (::close(fd_) != 0) {
    fd_ = -1;
    const std::string err = ErrnoString();
    Abandon();
    return Status::IoError("close failed: " + tmp_path_ + " (" + err + ")");
  }
  fd_ = -1;
  // 2. rename: atomically replace the target. Readers see old or new bytes,
  //    never a mix.
  if (inject) {
    const Status status = failpoint::MaybeError(
        (point_prefix_ + ".rename").c_str(), "rename " + tmp_path_);
    if (!status.ok()) {
      Abandon();
      return status;
    }
  }
  if (std::rename(tmp_path_.c_str(), path_.c_str()) != 0) {
    const std::string err = ErrnoString();
    Abandon();
    return Status::IoError("rename failed: " + tmp_path_ + " -> " + path_ +
                           " (" + err + ")");
  }
  committed_ = true;
  tmp_path_.clear();
  // 3. fsync the parent directory: the rename itself is metadata in the
  //    directory, and is not durable until the directory inode is synced.
  if (inject) {
    RRRE_RETURN_IF_ERROR(failpoint::MaybeError(
        (point_prefix_ + ".dirsync").c_str(), "fsync dir of " + path_));
  }
  return FsyncParentDir(path_);
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) ::munmap(data_, size_);
}

MappedFile::MappedFile(MappedFile&& other) noexcept
    : data_(other.data_),
      size_(other.size_),
      mapped_empty_(other.mapped_empty_) {
  other.data_ = nullptr;
  other.size_ = 0;
  other.mapped_empty_ = false;
}

MappedFile& MappedFile::operator=(MappedFile&& other) noexcept {
  if (this != &other) {
    if (data_ != nullptr) ::munmap(data_, size_);
    data_ = other.data_;
    size_ = other.size_;
    mapped_empty_ = other.mapped_empty_;
    other.data_ = nullptr;
    other.size_ = 0;
    other.mapped_empty_ = false;
  }
  return *this;
}

Result<MappedFile> MappedFile::Open(const std::string& path,
                                    const std::string& point_prefix) {
  if (failpoint::Enabled()) {
    RRRE_RETURN_IF_ERROR(failpoint::MaybeError(
        (point_prefix + ".mmap").c_str(), "mmap " + path));
  }
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::IoError("cannot open for mapping: " + path + " (" +
                           ErrnoString() + ")");
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = ErrnoString();
    ::close(fd);
    return Status::IoError("fstat failed: " + path + " (" + err + ")");
  }
  MappedFile out;
  if (st.st_size == 0) {
    ::close(fd);
    out.mapped_empty_ = true;
    return out;
  }
  void* mapped = ::mmap(nullptr, static_cast<size_t>(st.st_size), PROT_READ,
                        MAP_PRIVATE, fd, 0);
  const std::string err = ErrnoString();
  ::close(fd);  // The mapping keeps its own reference to the file.
  if (mapped == MAP_FAILED) {
    return Status::IoError("mmap failed: " + path + " (" + err + ")");
  }
  out.data_ = mapped;
  out.size_ = static_cast<size_t>(st.st_size);
  return out;
}

Status FsyncParentDir(const std::string& path) {
  const std::string dir = ParentDir(path);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY | O_CLOEXEC);
  if (dir_fd < 0) {
    return Status::IoError("cannot open parent dir for fsync: " + dir + " (" +
                           ErrnoString() + ")");
  }
  const int rc = ::fsync(dir_fd);
  const int saved_errno = errno;
  ::close(dir_fd);
  if (rc != 0) {
    return Status::IoError("parent dir fsync failed: " + dir + " (" +
                           std::strerror(saved_errno) + ")");
  }
  return Status::Ok();
}

Status EnsureDir(const std::string& path) {
  if (path.empty()) return Status::InvalidArgument("EnsureDir of empty path");
  // Create each missing component left to right; EEXIST at any level is the
  // success case of a concurrent or earlier creation.
  size_t pos = 0;
  while (pos != std::string::npos) {
    pos = path.find('/', pos + 1);
    const std::string prefix =
        pos == std::string::npos ? path : path.substr(0, pos);
    if (prefix.empty() || prefix == "/" || prefix == ".") continue;
    if (::mkdir(prefix.c_str(), 0777) != 0 && errno != EEXIST) {
      return Status::IoError("mkdir failed: " + prefix + " (" + ErrnoString() +
                             ")");
    }
  }
  struct stat st{};
  if (::stat(path.c_str(), &st) != 0 || !S_ISDIR(st.st_mode)) {
    return Status::IoError("EnsureDir: not a directory: " + path);
  }
  return Status::Ok();
}

Status AtomicWriteFile(const std::string& path, const std::string& content) {
  AtomicFileWriter writer;
  RRRE_RETURN_IF_ERROR(writer.Open(path));
  RRRE_RETURN_IF_ERROR(writer.Append(content));
  return writer.Commit();
}

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return ss.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  return AtomicWriteFile(path, content);
}

Result<std::vector<std::vector<std::string>>> ReadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream ss;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) ss << '\t';
      ss << row[i];
    }
    ss << '\n';
  }
  return WriteFile(path, ss.str());
}

std::string EscapeTsvField(std::string_view field) {
  std::string out(field);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace rrre::common
