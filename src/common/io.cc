#include "common/io.h"

#include <fstream>
#include <sstream>

#include "common/strings.h"

namespace rrre::common {

Result<std::string> ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  if (in.bad()) return Status::IoError("read failed: " + path);
  return ss.str();
}

Status WriteFile(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out << content;
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::vector<std::vector<std::string>>> ReadTsv(const std::string& path) {
  std::ifstream in(path);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  std::vector<std::vector<std::string>> rows;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    rows.push_back(Split(line, '\t'));
  }
  if (in.bad()) return Status::IoError("read failed: " + path);
  return rows;
}

Status WriteTsv(const std::string& path,
                const std::vector<std::vector<std::string>>& rows) {
  std::ostringstream ss;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) ss << '\t';
      ss << row[i];
    }
    ss << '\n';
  }
  return WriteFile(path, ss.str());
}

std::string EscapeTsvField(std::string_view field) {
  std::string out(field);
  for (char& c : out) {
    if (c == '\t' || c == '\n' || c == '\r') c = ' ';
  }
  return out;
}

}  // namespace rrre::common
