#include "common/flags.h"

#include <cstdlib>
#include <sstream>

#include "common/logging.h"
#include "common/strings.h"

namespace rrre::common {

void FlagParser::AddInt(const std::string& name, int64_t default_value,
                        const std::string& help) {
  Flag f;
  f.type = Type::kInt;
  f.help = help;
  f.int_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddDouble(const std::string& name, double default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kDouble;
  f.help = help;
  f.double_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddString(const std::string& name,
                           const std::string& default_value,
                           const std::string& help) {
  Flag f;
  f.type = Type::kString;
  f.help = help;
  f.string_value = default_value;
  flags_[name] = std::move(f);
}

void FlagParser::AddBool(const std::string& name, bool default_value,
                         const std::string& help) {
  Flag f;
  f.type = Type::kBool;
  f.help = help;
  f.bool_value = default_value;
  flags_[name] = std::move(f);
}

Status FlagParser::SetValue(const std::string& name, const std::string& value) {
  auto it = flags_.find(name);
  if (it == flags_.end()) {
    return Status::InvalidArgument("unknown flag: --" + name);
  }
  Flag& f = it->second;
  char* end = nullptr;
  switch (f.type) {
    case Type::kInt: {
      f.int_value = std::strtoll(value.c_str(), &end, 10);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad int for --" + name + ": " + value);
      }
      break;
    }
    case Type::kDouble: {
      f.double_value = std::strtod(value.c_str(), &end);
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad double for --" + name + ": " + value);
      }
      break;
    }
    case Type::kString:
      f.string_value = value;
      break;
    case Type::kBool: {
      std::string v = ToLower(value);
      if (v == "true" || v == "1" || v == "yes" || v.empty()) {
        f.bool_value = true;
      } else if (v == "false" || v == "0" || v == "no") {
        f.bool_value = false;
      } else {
        return Status::InvalidArgument("bad bool for --" + name + ": " + value);
      }
      break;
    }
  }
  return Status::Ok();
}

Status FlagParser::Parse(int argc, const char* const* argv) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (!StartsWith(arg, "--")) {
      positional_.push_back(arg);
      continue;
    }
    std::string body = arg.substr(2);
    if (body == "help") {
      help_requested_ = true;
      continue;
    }
    std::string name;
    std::string value;
    size_t eq = body.find('=');
    if (eq != std::string::npos) {
      name = body.substr(0, eq);
      value = body.substr(eq + 1);
    } else {
      name = body;
      auto it = flags_.find(name);
      if (it == flags_.end()) {
        return Status::InvalidArgument("unknown flag: --" + name);
      }
      if (it->second.type == Type::kBool) {
        value = "true";
      } else {
        if (i + 1 >= argc) {
          return Status::InvalidArgument("missing value for --" + name);
        }
        value = argv[++i];
      }
    }
    RRRE_RETURN_IF_ERROR(SetValue(name, value));
  }
  return Status::Ok();
}

const FlagParser::Flag& FlagParser::GetFlag(const std::string& name,
                                            Type type) const {
  auto it = flags_.find(name);
  RRRE_CHECK(it != flags_.end()) << "flag not registered: " << name;
  RRRE_CHECK(it->second.type == type) << "flag type mismatch: " << name;
  return it->second;
}

int64_t FlagParser::GetInt(const std::string& name) const {
  return GetFlag(name, Type::kInt).int_value;
}

double FlagParser::GetDouble(const std::string& name) const {
  return GetFlag(name, Type::kDouble).double_value;
}

const std::string& FlagParser::GetString(const std::string& name) const {
  return GetFlag(name, Type::kString).string_value;
}

bool FlagParser::GetBool(const std::string& name) const {
  return GetFlag(name, Type::kBool).bool_value;
}

std::string FlagParser::Usage(const std::string& program) const {
  std::ostringstream ss;
  ss << "Usage: " << program << " [flags]\n";
  for (const auto& [name, f] : flags_) {
    ss << "  --" << name;
    switch (f.type) {
      case Type::kInt:
        ss << "=<int> (default " << f.int_value << ")";
        break;
      case Type::kDouble:
        ss << "=<double> (default " << f.double_value << ")";
        break;
      case Type::kString:
        ss << "=<string> (default \"" << f.string_value << "\")";
        break;
      case Type::kBool:
        ss << " (default " << (f.bool_value ? "true" : "false") << ")";
        break;
    }
    ss << "  " << f.help << "\n";
  }
  return ss.str();
}

}  // namespace rrre::common
