#ifndef RRRE_COMMON_TIMER_H_
#define RRRE_COMMON_TIMER_H_

#include <chrono>

namespace rrre::common {

/// Monotonic wall-clock stopwatch, used by the figure benches that report the
/// paper's "time cost" series.
class Timer {
 public:
  Timer() : start_(Clock::now()) {}

  void Reset() { start_ = Clock::now(); }

  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace rrre::common

#endif  // RRRE_COMMON_TIMER_H_
