#include "serve/batcher.h"

#include <chrono>
#include <utility>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/timer.h"
#include "core/tower_store.h"

namespace rrre::serve {

using common::Status;

namespace {

inline void Inc(obs::Counter* counter, int64_t delta = 1) {
  if (counter != nullptr) counter->Increment(delta);
}

inline void GaugeAdd(obs::Gauge* gauge, int64_t delta) {
  if (gauge != nullptr) gauge->Add(delta);
}

/// Fingerprint of the checkpoint at `prefix`; 0 (unknown) on failure — a
/// fingerprinting error must never take down serving, it only degrades the
/// STATS field the router's reload barrier reads.
uint64_t FingerprintOrZero(const std::string& prefix) {
  if (prefix.empty()) return 0;
  auto fp = core::CheckpointParamsFingerprint(prefix);
  if (!fp.ok()) {
    RRRE_LOG_WARNING << "cannot fingerprint checkpoint " << prefix << ": "
                     << fp.status().ToString();
    return 0;
  }
  return fp.value();
}

}  // namespace

MicroBatcher::MicroBatcher(std::unique_ptr<core::RrreTrainer> trainer,
                           Options options,
                           std::shared_ptr<const core::TowerStore> store)
    : options_(std::move(options)),
      trainer_(std::move(trainer)),
      store_(std::move(store)) {
  RRRE_CHECK(trainer_ != nullptr);
  RRRE_CHECK(trainer_->fitted()) << "load or fit the trainer before serving";
  RRRE_CHECK_EQ(store_ != nullptr, !options_.store_path.empty())
      << "pass a pre-mapped TowerStore iff store_path is set";
  RRRE_CHECK_GE(options_.max_batch, 1);
  RRRE_CHECK_GE(options_.queue_capacity, 1);
  RRRE_CHECK_GE(options_.max_delay_us, 0);
  if (options_.metrics != nullptr) {
    obs::MetricsRegistry* m = options_.metrics;
    m_submitted_ = m->GetCounter("rrre_batcher_submitted_total",
                                 "requests admitted to the batching queue");
    m_rejected_ = m->GetCounter("rrre_batcher_rejected_total",
                                "requests refused by admission control");
    m_batches_ =
        m->GetCounter("rrre_batcher_batches_total", "Score calls executed");
    m_pairs_scored_ = m->GetCounter("rrre_batcher_pairs_scored_total",
                                    "expanded pairs across all batches");
    m_reloads_ = m->GetCounter("rrre_batcher_reloads_total",
                               "successful checkpoint swaps");
    m_queue_depth_ = m->GetGauge("rrre_batcher_queue_depth",
                                 "requests waiting for a batch slot");
    m_generation_ = m->GetGauge("rrre_batcher_generation",
                                "serving snapshot counter (+1 per reload)");
    m_batch_pairs_ = m->GetHistogram("rrre_batcher_batch_pairs",
                                     "expanded pairs per executed batch");
    m_batch_latency_us_ = m->GetHistogram(
        "rrre_batcher_batch_latency_us", "per-batch Score latency");
    m_user_cache_hits_ = m->GetCounter("rrre_scorer_user_cache_hits_total",
                                       "user tower-cache hits");
    m_user_cache_misses_ = m->GetCounter(
        "rrre_scorer_user_cache_misses_total", "user tower-cache misses");
    m_user_cache_evictions_ =
        m->GetCounter("rrre_scorer_user_cache_evictions_total",
                      "user tower-cache LRU evictions");
    m_item_cache_hits_ = m->GetCounter("rrre_scorer_item_cache_hits_total",
                                       "item tower-cache hits");
    m_item_cache_misses_ = m->GetCounter(
        "rrre_scorer_item_cache_misses_total", "item tower-cache misses");
    m_item_cache_evictions_ =
        m->GetCounter("rrre_scorer_item_cache_evictions_total",
                      "item tower-cache LRU evictions");
  }
  RRRE_CHECK_GE(options_.tower_cache_cap, 0);
  scorer_ = MakeScorer();
  num_users_.store(trainer_->train_data().num_users());
  num_items_.store(trainer_->train_data().num_items());
  params_version_.store(trainer_->params_version());
  params_fingerprint_.store(FingerprintOrZero(options_.model_prefix));
  paused_ = options_.start_paused;
  scorer_thread_ = std::thread(&MicroBatcher::ScorerLoop, this);
}

MicroBatcher::~MicroBatcher() { Stop(); }

bool MicroBatcher::TrySubmit(int64_t user, int64_t item, DoneFn done) {
  std::lock_guard<std::mutex> lock(mu_);
  if (stopping_ ||
      static_cast<int64_t>(queue_.size()) >= options_.queue_capacity) {
    ++stats_.rejected;
    Inc(m_rejected_);
    return false;
  }
  queue_.push_back(WorkItem{user, item, std::move(done)});
  ++stats_.submitted;
  Inc(m_submitted_);
  GaugeAdd(m_queue_depth_, 1);
  work_cv_.notify_one();
  return true;
}

void MicroBatcher::RequestReload(std::string prefix, ReloadDoneFn done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      reloads_.push_back(ReloadRequest{std::move(prefix), std::move(done)});
      work_cv_.notify_one();
      return;
    }
  }
  if (done) done(Status::FailedPrecondition("batcher is stopping"), -1);
}

void MicroBatcher::Pause() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = true;
}

void MicroBatcher::Resume() {
  std::lock_guard<std::mutex> lock(mu_);
  paused_ = false;
  work_cv_.notify_all();
}

void MicroBatcher::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  done_cv_.wait(lock, [&] {
    return queue_.empty() && reloads_.empty() && !executing_;
  });
}

void MicroBatcher::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_ && !scorer_thread_.joinable()) return;
    stopping_ = true;
    work_cv_.notify_all();
  }
  if (scorer_thread_.joinable()) scorer_thread_.join();
}

MicroBatcher::Stats MicroBatcher::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void MicroBatcher::ScorerLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    work_cv_.wait(lock, [&] {
      return stopping_ || !reloads_.empty() ||
             (!queue_.empty() && !paused_);
    });
    if (!reloads_.empty()) {
      ReloadRequest request = std::move(reloads_.front());
      reloads_.pop_front();
      executing_ = true;
      lock.unlock();
      DoReload(std::move(request));
      lock.lock();
      executing_ = false;
      done_cv_.notify_all();
      continue;
    }
    if (queue_.empty()) {
      if (stopping_) break;  // Stop() drains the queue before exiting.
      continue;
    }
    // Form a batch: take what is queued, then linger up to max_delay_us for
    // more until max_batch expanded pairs are gathered. A catalog request
    // counts as num_items pairs (it is always taken when first, so a catalog
    // larger than max_batch still runs — as its own batch).
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::microseconds(options_.max_delay_us);
    std::vector<WorkItem> batch;
    int64_t pair_count = 0;
    const int64_t catalog_pairs = num_items_.load();
    for (;;) {
      while (!queue_.empty() && pair_count < options_.max_batch) {
        const int64_t weight =
            queue_.front().item == kCatalogItem ? catalog_pairs : 1;
        if (!batch.empty() && pair_count + weight > options_.max_batch) break;
        batch.push_back(std::move(queue_.front()));
        queue_.pop_front();
        GaugeAdd(m_queue_depth_, -1);
        pair_count += weight;
      }
      if (pair_count >= options_.max_batch || stopping_) break;
      if (!queue_.empty()) break;  // Next request does not fit this batch.
      if (work_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        break;  // Linger expired: ship what we have.
      }
    }
    executing_ = true;
    lock.unlock();
    ExecuteBatch(std::move(batch));
    lock.lock();
    executing_ = false;
    done_cv_.notify_all();
  }
}

void MicroBatcher::ExecuteBatch(std::vector<WorkItem> batch) {
  // Validate against the *current* snapshot: a reload may have shrunk the
  // corpus after admission validated these ids.
  const int64_t num_users = num_users_.load();
  const int64_t num_items = num_items_.load();
  std::vector<std::pair<int64_t, int64_t>> pairs;
  struct Slice {
    size_t offset;
    size_t length;
  };
  std::vector<Slice> slices(batch.size());
  std::vector<bool> out_of_range(batch.size(), false);
  for (size_t w = 0; w < batch.size(); ++w) {
    const WorkItem& item = batch[w];
    if (item.user < 0 || item.user >= num_users ||
        (item.item != kCatalogItem &&
         (item.item < 0 || item.item >= num_items))) {
      out_of_range[w] = true;
      continue;
    }
    slices[w].offset = pairs.size();
    if (item.item == kCatalogItem) {
      for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(item.user, i);
      slices[w].length = static_cast<size_t>(num_items);
    } else {
      pairs.emplace_back(item.user, item.item);
      slices[w].length = 1;
    }
  }

  core::RrreTrainer::Predictions preds;
  double elapsed_us = 0.0;
  if (!pairs.empty()) {
    common::Timer timer;
    const int64_t version_before = trainer_->params_version();
    preds = scorer_->Score(pairs);
    // The invariant the hot-reload design rests on: parameters never change
    // under a batch, because reloads only run between batches on this very
    // thread.
    RRRE_CHECK_EQ(trainer_->params_version(), version_before)
        << "model parameters changed under an in-flight batch";
    elapsed_us = timer.ElapsedSeconds() * 1e6;
    MirrorCacheStats();
  }

  // Account the batch before dispatching callbacks, so an observer woken by
  // its completion reads stats that already include the batch it was in.
  if (!pairs.empty()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.batches;
      stats_.pairs_scored += static_cast<int64_t>(pairs.size());
      stats_.batch_pairs.Record(static_cast<double>(pairs.size()));
      stats_.batch_latency_us.Record(elapsed_us);
    }
    Inc(m_batches_);
    Inc(m_pairs_scored_, static_cast<int64_t>(pairs.size()));
    if (m_batch_pairs_ != nullptr) {
      m_batch_pairs_->Record(static_cast<double>(pairs.size()));
      m_batch_latency_us_->Record(elapsed_us);
    }
  }

  for (size_t w = 0; w < batch.size(); ++w) {
    const WorkItem& item = batch[w];
    if (!item.done) continue;
    if (out_of_range[w]) {
      item.done(Status::OutOfRange(
                    "id out of range for the current snapshot (user " +
                    std::to_string(item.user) + ", item " +
                    std::to_string(item.item) + ")"),
                {});
      continue;
    }
    std::vector<ScoredPair> results(slices[w].length);
    for (size_t k = 0; k < slices[w].length; ++k) {
      const size_t p = slices[w].offset + k;
      results[k] = ScoredPair{pairs[p].first, pairs[p].second,
                              preds.ratings[p], preds.reliabilities[p]};
    }
    item.done(Status::Ok(), results);
  }
}

void MicroBatcher::DoReload(ReloadRequest request) {
  // Load into a fresh trainer so a bad checkpoint cannot wreck the snapshot
  // that is currently serving. The serve.reload failpoint injects a load
  // failure here — the recovery contract (keep the old snapshot, report the
  // error) is identical to a genuinely corrupt checkpoint.
  auto fresh = std::make_unique<core::RrreTrainer>(trainer_->config());
  Status status =
      common::failpoint::MaybeError("serve.reload", "reload " + request.prefix);
  if (status.ok()) status = fresh->Load(request.prefix);
  // Store-backed serving swaps store and parameters together: re-map the
  // store path (a republish renamed a new file into place; the old mapping
  // still points at the old inode) and verify it against the *fresh*
  // checkpoint. A torn, corrupt, or stale-fingerprint store fails the whole
  // reload — the old snapshot and old store keep serving.
  std::shared_ptr<const core::TowerStore> fresh_store;
  if (status.ok() && store_ != nullptr) {
    auto mapped = core::MapTowerStoreForCheckpoint(options_.store_path,
                                                   request.prefix, *fresh);
    if (mapped.ok()) {
      fresh_store = std::move(mapped).ValueOrDie();
    } else {
      status = mapped.status();
    }
  }
  int64_t generation = -1;
  if (status.ok()) {
    trainer_ = std::move(fresh);
    if (store_ != nullptr) store_ = std::move(fresh_store);
    scorer_ = MakeScorer();
    // The fresh scorer starts its counters at zero; re-base the mirror so
    // the registry keeps accumulating instead of double-counting or going
    // backwards.
    mirrored_user_stats_ = core::BatchScorer::CacheStats();
    mirrored_item_stats_ = core::BatchScorer::CacheStats();
    num_users_.store(trainer_->train_data().num_users());
    num_items_.store(trainer_->train_data().num_items());
    params_version_.store(trainer_->params_version());
    params_fingerprint_.store(FingerprintOrZero(request.prefix));
    generation = generation_.fetch_add(1) + 1;
    Inc(m_reloads_);
    if (m_generation_ != nullptr) m_generation_->Set(generation);
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reloads;
  } else {
    RRRE_LOG_WARNING << "hot reload of " << request.prefix
                     << " failed; still serving the previous snapshot: "
                     << status.ToString();
  }
  if (request.done) request.done(status, generation);
}

std::unique_ptr<core::BatchScorer> MicroBatcher::MakeScorer() {
  core::BatchScorer::Options scorer_options;
  scorer_options.tower_cache_cap = options_.tower_cache_cap;
  auto scorer =
      std::make_unique<core::BatchScorer>(trainer_.get(), scorer_options);
  if (store_ != nullptr) scorer->AttachStore(store_);
  return scorer;
}

void MicroBatcher::MirrorCacheStats() {
  if (m_user_cache_hits_ == nullptr) return;
  const auto& user = scorer_->user_cache_stats();
  const auto& item = scorer_->item_cache_stats();
  Inc(m_user_cache_hits_, user.hits - mirrored_user_stats_.hits);
  Inc(m_user_cache_misses_, user.misses - mirrored_user_stats_.misses);
  Inc(m_user_cache_evictions_,
      user.evictions - mirrored_user_stats_.evictions);
  Inc(m_item_cache_hits_, item.hits - mirrored_item_stats_.hits);
  Inc(m_item_cache_misses_, item.misses - mirrored_item_stats_.misses);
  Inc(m_item_cache_evictions_,
      item.evictions - mirrored_item_stats_.evictions);
  mirrored_user_stats_ = user;
  mirrored_item_stats_ = item;
}

}  // namespace rrre::serve
