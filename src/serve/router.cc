#include "serve/router.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "common/failpoint.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "serve/loadgen.h"
#include "serve/protocol.h"

namespace rrre::serve {

using common::Result;
using common::Socket;
using common::Status;

namespace {

inline void Inc(obs::Counter* counter) {
  if (counter != nullptr) counter->Increment();
}

/// splitmix64: cheap, well-mixed 64-bit hash for ring points and user keys.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

/// The STATS fields the router consumes; everything else is ignored.
struct BackendStatsFields {
  int64_t users = 0;
  int64_t items = 0;
  int64_t generation = 0;
  uint64_t fingerprint = 0;
};

Result<BackendStatsFields> ParseBackendStats(const std::string& line) {
  if (!common::StartsWith(line, "#stats\t")) {
    return Status::Internal("unexpected STATS response: " + line);
  }
  BackendStatsFields out;
  for (const auto& field : common::Split(line, '\t')) {
    if (common::StartsWith(field, "users=")) {
      out.users = std::atoll(field.c_str() + 6);
    } else if (common::StartsWith(field, "items=")) {
      out.items = std::atoll(field.c_str() + 6);
    } else if (common::StartsWith(field, "generation=")) {
      out.generation = std::atoll(field.c_str() + 11);
    } else if (common::StartsWith(field, "fingerprint=")) {
      out.fingerprint = std::strtoull(field.c_str() + 12, nullptr, 10);
    }
  }
  if (out.users <= 0 || out.items <= 0) {
    return Status::Internal("STATS did not report corpus bounds: " + line);
  }
  return out;
}

/// Rewrites one backend exposition line with a `shard` label so per-shard
/// series stay distinguishable after aggregation. Comment lines (`# TYPE`)
/// are dropped — the merged exposition would otherwise repeat them per
/// shard. Returns "" for lines to drop.
std::string RelabelShardLine(const std::string& line, int shard) {
  if (line.empty() || line[0] == '#') return "";
  const size_t space = line.find(' ');
  if (space == std::string::npos) return "";
  const std::string label = "shard=\"" + std::to_string(shard) + "\"";
  std::string name = line.substr(0, space);
  const size_t brace = name.find('{');
  if (brace == std::string::npos) {
    name += "{" + label + "}";
  } else {
    name.insert(brace + 1, label + ",");
  }
  return name + line.substr(space) + "\n";
}

}  // namespace

// ---------------------------------------------------------------------------
// ConsistentRing
// ---------------------------------------------------------------------------

ConsistentRing::ConsistentRing(int num_backends, int virtual_nodes)
    : num_backends_(num_backends) {
  RRRE_CHECK_GE(num_backends, 1);
  RRRE_CHECK_GE(virtual_nodes, 1);
  points_.reserve(static_cast<size_t>(num_backends) *
                  static_cast<size_t>(virtual_nodes));
  for (int b = 0; b < num_backends; ++b) {
    for (int v = 0; v < virtual_nodes; ++v) {
      // Point = hash(backend, vnode): independent of fleet size, so adding a
      // backend only inserts its own points and steals only their arcs.
      points_.emplace_back(
          Mix64((static_cast<uint64_t>(b) << 32) | static_cast<uint64_t>(v)),
          b);
    }
  }
  std::sort(points_.begin(), points_.end());
}

std::vector<int> ConsistentRing::PreferenceOrder(int64_t user) const {
  const uint64_t h = Mix64(static_cast<uint64_t>(user));
  auto it = std::lower_bound(points_.begin(), points_.end(),
                             std::make_pair(h, 0));
  std::vector<int> order;
  order.reserve(static_cast<size_t>(num_backends_));
  std::vector<bool> seen(static_cast<size_t>(num_backends_), false);
  for (size_t walked = 0;
       walked < points_.size() &&
       order.size() < static_cast<size_t>(num_backends_);
       ++walked, ++it) {
    if (it == points_.end()) it = points_.begin();
    const int b = it->second;
    if (!seen[static_cast<size_t>(b)]) {
      seen[static_cast<size_t>(b)] = true;
      order.push_back(b);
    }
  }
  return order;
}

// ---------------------------------------------------------------------------
// Backend state (health-thread-owned connection + shared flags)
// ---------------------------------------------------------------------------

struct Router::BackendState {
  RouterOptions::Backend addr;
  std::atomic<bool> alive{true};
  std::atomic<bool> quarantined{false};
  std::atomic<uint64_t> fingerprint{0};
  std::atomic<int64_t> generation{0};
  /// Health connection — touched only by the health thread.
  Socket health_socket;
  std::unique_ptr<common::LineReader> health_reader;
};

// ---------------------------------------------------------------------------
// ClientConn: one synchronous handler thread per client connection
// ---------------------------------------------------------------------------

/// Requests on a connection are handled strictly in arrival order by one
/// thread, so pipelined clients get ordered responses for free and a
/// connection can never interleave two parameter versions within a single
/// routed response. Each connection owns its own lazy backend links — no
/// cross-connection multiplexing, so a condemned link can only ever
/// misalign the connection that broke it (and it is closed before that).
class Router::ClientConn
    : public std::enable_shared_from_this<Router::ClientConn> {
 public:
  ClientConn(Router* router, Socket socket, uint64_t conn_seed)
      : router_(router),
        socket_(std::move(socket)),
        links_(router->backends_.size()),
        rng_(0x9e3779b97f4a7c15ULL * (conn_seed + 1)) {}

  void Start() {
    auto self = shared_from_this();
    thread_ = std::thread([self] { self->HandlerLoop(); });
  }

  void AbortRead() { socket_.ShutdownRead(); }
  bool Finished() const { return finished_.load(); }
  void Join() {
    if (thread_.joinable()) thread_.join();
  }

  ~ClientConn() {
    if (thread_.joinable()) thread_.join();
  }

 private:
  /// Lazy connection to one backend. The LineReader points at `socket`,
  /// which lives at a stable address because links_ is sized once.
  struct Link {
    Socket socket;
    std::unique_ptr<common::LineReader> reader;
    bool connected = false;
  };

  void HandlerLoop() {
    common::LineReader reader(&socket_);
    for (;;) {
      auto line = reader.ReadLine();
      if (!line.ok() || !line.value().has_value()) break;
      bool close = false;
      const std::string reply = HandleLine(*line.value(), &close);
      if (!reply.empty() && !socket_.SendAll(reply).ok()) break;
      if (close) break;
    }
    socket_.ShutdownBoth();
    finished_.store(true);
  }

  std::string HandleLine(const std::string& line, bool* close) {
    const Request req = ParseRequest(line);
    if (req.type == Request::Type::kBlank) return "";
    router_->requests_.fetch_add(1);
    Inc(router_->m_requests_);
    switch (req.type) {
      case Request::Type::kPing:
        return FormatPong();
      case Request::Type::kStats:
        return router_->FormatStatsLine();
      case Request::Type::kMetrics:
        return HandleMetrics();
      case Request::Type::kQuit:
        *close = true;
        return FormatBye();
      case Request::Type::kReload:
        return HandleReload();
      case Request::Type::kInvalid:
        router_->parse_errors_.fetch_add(1);
        Inc(router_->m_parse_errors_);
        return FormatError("parse", req.error);
      case Request::Type::kPair: {
        // Scoring holds the reload barrier shared: a rolling reload cannot
        // start mid-request, and no request dispatches mid-roll.
        std::shared_lock<std::shared_mutex> barrier(router_->reload_mu_);
        auto resp = RouteLine(line, req.user, /*retry_overload=*/false);
        if (!resp.ok()) {
          return FormatError("upstream", resp.status().message());
        }
        return resp.value() + "\n";
      }
      case Request::Type::kCatalog: {
        std::shared_lock<std::shared_mutex> barrier(router_->reload_mu_);
        return HandleCatalog(line, req.user);
      }
      case Request::Type::kBlank:
        return "";
    }
    return "";
  }

  // -- backend link primitives ----------------------------------------------

  Status EnsureLink(int k) {
    Link& link = links_[static_cast<size_t>(k)];
    if (link.connected) return Status::Ok();
    const auto& addr = router_->backends_[static_cast<size_t>(k)]->addr;
    auto sock = Socket::Connect(addr.host, addr.port);
    if (!sock.ok()) return sock.status();
    // Per-op deadlines are the stall detector: a backend that stops
    // answering turns into DeadlineExceeded here and the request fails over.
    RRRE_RETURN_IF_ERROR(
        sock.value().SetRecvTimeout(router_->options_.backend_timeout_ms));
    RRRE_RETURN_IF_ERROR(
        sock.value().SetSendTimeout(router_->options_.backend_timeout_ms));
    link.socket = std::move(sock).ValueOrDie();
    link.reader = std::make_unique<common::LineReader>(&link.socket);
    link.connected = true;
    return Status::Ok();
  }

  /// Closes a link after any failed operation. A failed link is never
  /// reused: leftover response bytes would misalign every later
  /// request/response pairing on it.
  void CondemnLink(int k) {
    Link& link = links_[static_cast<size_t>(k)];
    link.reader.reset();
    link.socket = Socket();
    link.connected = false;
  }

  /// Sends one request wire to backend `k`. On failure `*maybe_delivered`
  /// says whether any byte left this host — the never-sent / maybe-delivered
  /// distinction (Socket::SendAll's partial-progress count) that gates
  /// whether non-idempotent verbs may be resent.
  Status SendToBackend(int k, const std::string& wire, bool* maybe_delivered) {
    *maybe_delivered = false;
    RRRE_RETURN_IF_ERROR(EnsureLink(k));
    Link& link = links_[static_cast<size_t>(k)];
    if (common::failpoint::Enabled() &&
        common::failpoint::Check("router.backend.send").has_value()) {
      // Injected failure before any byte leaves: the never-sent path.
      CondemnLink(k);
      return Status::IoError("backend send failed before any byte"
                             " [failpoint router.backend.send]");
    }
    size_t sent = 0;
    const Status status = link.socket.SendAll(wire, &sent);
    if (!status.ok()) {
      *maybe_delivered = sent > 0;
      CondemnLink(k);
      return status;
    }
    *maybe_delivered = true;
    if (common::failpoint::Enabled() &&
        common::failpoint::Check("router.backend.reset").has_value()) {
      // Reset after the request went out: delivery is uncertain.
      CondemnLink(k);
      return Status::IoError("backend connection reset after send"
                             " [failpoint router.backend.reset]");
    }
    return Status::Ok();
  }

  /// Reads one response line from backend `k`; condemns the link on any
  /// failure (EOF, reset-as-EOF, deadline, torn line).
  Result<std::string> ReadResponseLine(int k) {
    Link& link = links_[static_cast<size_t>(k)];
    if (common::failpoint::Enabled() &&
        common::failpoint::Check("router.backend.stall").has_value()) {
      CondemnLink(k);
      return Status::DeadlineExceeded(
          "backend stalled [failpoint router.backend.stall]");
    }
    auto line = link.reader->ReadLine();
    if (!line.ok()) {
      CondemnLink(k);
      return line.status();
    }
    if (!line.value().has_value()) {
      const size_t torn = link.reader->partial_bytes();
      CondemnLink(k);
      return Status::IoError(
          torn > 0 ? "backend closed mid-response (" + std::to_string(torn) +
                         " bytes of a torn line)"
                   : "backend closed the connection");
    }
    if (common::failpoint::Enabled() &&
        common::failpoint::Check("router.backend.torn").has_value()) {
      // The response was cut off mid-line: discard what arrived and condemn
      // the link, exactly as a real torn read would.
      CondemnLink(k);
      return Status::IoError(
          "backend response torn [failpoint router.backend.torn]");
    }
    return *line.value();
  }

  void Backoff(int64_t attempt) {
    std::this_thread::sleep_for(std::chrono::microseconds(
        BackoffUs(attempt, router_->options_.backoff_base_us,
                  router_->options_.backoff_cap_us, rng_)));
  }

  /// The serving backend for `user` at retry `attempt`: walk the ring
  /// preference order restricted to serving backends, cycling if the retry
  /// budget exceeds the fleet. -1 when nothing serves.
  int PickBackend(const std::vector<int>& preference, int64_t attempt) const {
    std::vector<int> serving;
    for (int k : preference) {
      if (router_->BackendServing(k)) serving.push_back(k);
    }
    if (serving.empty()) return -1;
    return serving[static_cast<size_t>(attempt) % serving.size()];
  }

  /// Routes a single-line request (pair score, or a bare user relayed for
  /// its authoritative range error) and returns the single response line.
  /// Transport faults fail over along the ring with jittered backoff;
  /// scoring is idempotent, so maybe-delivered requests are still resent.
  /// With `retry_overload`, "!ERR overload" answers are also retried (used
  /// inside catalog fan-out, where a torn catalog is unacceptable);
  /// otherwise they relay to the client, matching a direct backend.
  Result<std::string> RouteLine(const std::string& line, int64_t user,
                                bool retry_overload) {
    const std::string wire = line + "\n";
    const std::vector<int> preference = router_->ring_.PreferenceOrder(user);
    Status last = Status::FailedPrecondition("no serving backends");
    for (int64_t attempt = 0; attempt <= router_->options_.max_retries;
         ++attempt) {
      if (attempt > 0) {
        router_->retries_.fetch_add(1);
        Inc(router_->m_retries_);
        Backoff(attempt - 1);
      }
      const int k = PickBackend(preference, attempt);
      if (k < 0) continue;
      bool maybe_delivered = false;
      const Status sent = SendToBackend(k, wire, &maybe_delivered);
      if (!sent.ok()) {
        last = sent;
        continue;
      }
      auto resp = ReadResponseLine(k);
      if (!resp.ok()) {
        last = resp.status();
        continue;
      }
      if (retry_overload && IsOverloadLine(resp.value()) &&
          attempt < router_->options_.max_retries) {
        last = Status::FailedPrecondition("backend overloaded");
        continue;
      }
      if (k != preference[0]) {
        router_->failovers_.fetch_add(1);
        Inc(router_->m_failovers_);
      }
      return resp.value();
    }
    router_->upstream_errors_.fetch_add(1);
    Inc(router_->m_upstream_errors_);
    return last;
  }

  // -- catalog fan-out ------------------------------------------------------

  /// Fans a bare-user catalog request out across every serving shard as
  /// contiguous item slices of pipelined pair requests, then merges the
  /// responses back in item order. Scoring is batch-composition invariant,
  /// so the reassembled response is byte-identical to one direct backend
  /// answering the whole catalog. Items lost to a mid-stream backend fault
  /// are re-scored individually through the failover path, so a killed
  /// shard degrades throughput, never correctness.
  std::string HandleCatalog(const std::string& line, int64_t user) {
    const int64_t num_users = router_->fleet_users_.load();
    const int64_t num_items = router_->fleet_items_.load();
    if (user < 0 || user >= num_users) {
      // Relay to the home shard so the range error is byte-identical to
      // direct serving.
      auto resp = RouteLine(line, user, /*retry_overload=*/false);
      return resp.ok() ? resp.value() + "\n"
                       : FormatError("upstream", resp.status().message());
    }
    const std::vector<int> serving = router_->ServingBackends();
    if (serving.empty()) {
      router_->upstream_errors_.fetch_add(1);
      Inc(router_->m_upstream_errors_);
      return FormatError("upstream", "no serving backends");
    }
    router_->fanouts_.fetch_add(1);
    Inc(router_->m_fanouts_);

    const int64_t shards = static_cast<int64_t>(serving.size());
    auto slice_lo = [&](int64_t s) { return s * num_items / shards; };

    // Phase 1: pipeline each shard its slice. All slices are in flight
    // before any response is read, so the fan-out overlaps across shards
    // without the router needing threads of its own.
    std::vector<bool> broken(serving.size(), false);
    for (int64_t s = 0; s < shards; ++s) {
      std::string wire;
      for (int64_t item = slice_lo(s); item < slice_lo(s + 1); ++item) {
        wire += std::to_string(user) + "\t" + std::to_string(item) + "\n";
      }
      if (wire.empty()) continue;
      bool maybe_delivered = false;
      if (!SendToBackend(serving[static_cast<size_t>(s)], wire,
                         &maybe_delivered)
               .ok()) {
        broken[static_cast<size_t>(s)] = true;
      }
    }

    // Phase 2: collect responses slice by slice, in item order. A transport
    // fault or a misaligned line condemns the slice's link and queues its
    // remaining items for individual re-scoring; an overload answer queues
    // just that item.
    std::vector<std::string> lines(static_cast<size_t>(num_items));
    std::vector<int64_t> missing;
    for (int64_t s = 0; s < shards; ++s) {
      const int k = serving[static_cast<size_t>(s)];
      bool slice_dead = broken[static_cast<size_t>(s)];
      for (int64_t item = slice_lo(s); item < slice_lo(s + 1); ++item) {
        if (slice_dead) {
          missing.push_back(item);
          continue;
        }
        auto resp = ReadResponseLine(k);
        if (!resp.ok()) {
          slice_dead = true;
          missing.push_back(item);
          continue;
        }
        const std::string& got = resp.value();
        if (IsErrorLine(got)) {
          missing.push_back(item);
          continue;
        }
        // Responses carry their ids: a line that is not for this item means
        // the stream lost alignment — never serve it, condemn the link.
        const std::string expect =
            std::to_string(user) + "\t" + std::to_string(item) + "\t";
        if (!common::StartsWith(got, expect)) {
          CondemnLink(k);
          slice_dead = true;
          missing.push_back(item);
          continue;
        }
        lines[static_cast<size_t>(item)] = got + "\n";
      }
    }

    // Phase 3: re-score everything missing through the failover path.
    for (const int64_t item : missing) {
      const std::string pair_line =
          std::to_string(user) + "\t" + std::to_string(item);
      auto resp = RouteLine(pair_line, user, /*retry_overload=*/true);
      if (!resp.ok()) {
        return FormatError("upstream", resp.status().message());
      }
      if (IsErrorLine(resp.value())) {
        // A persistent per-item error poisons the whole catalog — answer it
        // as one unit, like a direct backend would, instead of serving a
        // torn catalog.
        return resp.value() + "\n";
      }
      lines[static_cast<size_t>(item)] = resp.value() + "\n";
    }

    std::string out = FormatCatalogHeader(user, num_items);
    for (const std::string& l : lines) out += l;
    return out;
  }

  // -- rolling reload -------------------------------------------------------

  Result<BackendStatsFields> QueryBackendStats(int k) {
    bool maybe_delivered = false;
    RRRE_RETURN_IF_ERROR(SendToBackend(k, "STATS\n", &maybe_delivered));
    auto line = ReadResponseLine(k);
    if (!line.ok()) return line.status();
    return ParseBackendStats(line.value());
  }

  /// After a RELOAD whose delivery is uncertain (sent but the answer was
  /// lost): never resend — poll STATS until the generation advances past
  /// `generation_before`. Resending would reload twice; polling observes
  /// what actually happened.
  Status AwaitReloadLanded(int k, int64_t generation_before) {
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(router_->options_.backend_timeout_ms);
    Status last = Status::DeadlineExceeded("reload outcome unknown");
    while (std::chrono::steady_clock::now() < deadline) {
      auto stats = QueryBackendStats(k);
      if (stats.ok()) {
        if (stats.value().generation > generation_before) return Status::Ok();
        last = Status::Internal("reload did not advance the generation");
      } else {
        last = stats.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
    return last;
  }

  Status ReloadBackend(int k) {
    auto before = QueryBackendStats(k);
    if (!before.ok()) return before.status();
    Status last = Status::FailedPrecondition("no reload attempt made");
    for (int64_t attempt = 0; attempt <= router_->options_.max_retries;
         ++attempt) {
      if (attempt > 0) Backoff(attempt - 1);
      bool maybe_delivered = false;
      const Status sent = SendToBackend(k, "RELOAD\n", &maybe_delivered);
      if (!sent.ok()) {
        if (!maybe_delivered) {
          // Never left this host: resending cannot double-reload.
          last = sent;
          continue;
        }
        return AwaitReloadLanded(k, before.value().generation);
      }
      auto resp = ReadResponseLine(k);
      if (!resp.ok()) {
        return AwaitReloadLanded(k, before.value().generation);
      }
      if (common::StartsWith(resp.value(), "#reloaded\t")) return Status::Ok();
      return Status::Internal("backend refused reload: " + resp.value());
    }
    return last;
  }

  /// Rolling RELOAD across the fleet behind the exclusive barrier: reload
  /// one shard at a time, then hold the barrier until every shard reports
  /// the same params fingerprint. Shards that never converge (their reload
  /// failed and they kept the old snapshot) are quarantined, so scoring
  /// resumes against a fleet that provably serves one parameter version.
  std::string HandleReload() {
    std::unique_lock<std::shared_mutex> barrier(router_->reload_mu_);
    const std::vector<int> serving = router_->ServingBackends();
    if (serving.empty()) {
      return FormatError("reload", "no serving backends");
    }
    router_->reload_barriers_.fetch_add(1);
    Inc(router_->m_reload_barriers_);

    int64_t reloaded = 0;
    Status first_error = Status::Ok();
    for (const int k : serving) {
      const Status status = ReloadBackend(k);
      if (status.ok()) {
        ++reloaded;
      } else {
        if (first_error.ok()) first_error = status;
        RRRE_LOG_WARNING << "rolling reload: backend " << k
                         << " failed: " << status.ToString();
      }
    }
    if (reloaded == 0) {
      return FormatError("reload", first_error.ToString());
    }

    // Fingerprint barrier: poll until every serving shard agrees. The
    // target is whatever the first successfully reloaded shard now serves.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(
                              router_->options_.reload_barrier_timeout_ms);
    uint64_t target = 0;
    int64_t min_generation = 0;
    std::vector<uint64_t> fps(serving.size(), 0);
    bool converged = false;
    while (!converged && std::chrono::steady_clock::now() < deadline) {
      target = 0;
      min_generation = 0;
      converged = true;
      for (size_t i = 0; i < serving.size(); ++i) {
        auto stats = QueryBackendStats(serving[i]);
        if (!stats.ok()) {
          converged = false;
          continue;
        }
        fps[i] = stats.value().fingerprint;
        if (target == 0) {
          target = fps[i];
          min_generation = stats.value().generation;
        } else {
          min_generation = std::min(min_generation, stats.value().generation);
        }
        if (fps[i] != target) converged = false;
      }
      if (!converged) {
        std::this_thread::sleep_for(std::chrono::milliseconds(10));
      }
    }

    // Quarantine divergers; publish the new fleet fingerprint.
    for (size_t i = 0; i < serving.size(); ++i) {
      auto& backend = *router_->backends_[static_cast<size_t>(serving[i])];
      backend.fingerprint.store(fps[i]);
      backend.quarantined.store(fps[i] != target);
      if (fps[i] != target) {
        RRRE_LOG_WARNING << "rolling reload: backend " << serving[i]
                         << " diverged (fingerprint " << fps[i]
                         << " != " << target << "); quarantined";
      }
    }
    router_->fleet_fingerprint_.store(target);
    if (router_->m_quarantined_ != nullptr) {
      int64_t quarantined = 0;
      for (const auto& b : router_->backends_) {
        quarantined += b->quarantined.load() ? 1 : 0;
      }
      router_->m_quarantined_->Set(quarantined);
    }
    if (!converged) {
      return FormatError("reload",
                         "fleet did not converge on one fingerprint");
    }
    return FormatReloaded(min_generation);
  }

  // -- metrics aggregation --------------------------------------------------

  /// The router's own exposition followed by every serving backend's,
  /// relabeled with `shard="k"`. A shard that fails mid-scrape is skipped —
  /// a scrape is best-effort observability, not a scoring path.
  std::string HandleMetrics() {
    if (router_->metrics_ == nullptr) {
      return FormatError("metrics", "metrics are disabled on this router");
    }
    std::shared_lock<std::shared_mutex> barrier(router_->reload_mu_);
    std::string text = router_->metrics_->RenderText();
    for (const int k : router_->ServingBackends()) {
      bool maybe_delivered = false;
      if (!SendToBackend(k, "METRICS\n", &maybe_delivered).ok()) continue;
      auto header = ReadResponseLine(k);
      if (!header.ok()) continue;
      if (!common::StartsWith(header.value(), "#metrics\tlines=")) {
        continue;  // Metrics disabled on that shard — its error was 1 line.
      }
      const long long lines = std::atoll(header.value().c_str() +
                                         sizeof("#metrics\tlines=") - 1);
      std::string shard_text;
      bool ok = true;
      for (long long i = 0; i < lines; ++i) {
        auto line = ReadResponseLine(k);
        if (!line.ok()) {
          ok = false;
          break;
        }
        shard_text += RelabelShardLine(line.value(), k);
      }
      if (ok) text += shard_text;
    }
    int64_t count = 0;
    for (const char c : text) count += c == '\n' ? 1 : 0;
    return FormatMetricsHeader(count) + text;
  }

  Router* router_;
  Socket socket_;
  std::vector<Link> links_;
  common::Rng rng_;
  std::thread thread_;
  std::atomic<bool> finished_{false};
};

// ---------------------------------------------------------------------------
// Router
// ---------------------------------------------------------------------------

Result<std::unique_ptr<Router>> Router::Start(const RouterOptions& options) {
  if (options.backends.empty()) {
    return Status::InvalidArgument("router needs at least one backend");
  }
  // Probe the fleet: every backend must answer STATS, and all must agree on
  // corpus bounds and params fingerprint — proxying a fleet that already
  // serves two parameter versions would bake the split-brain in.
  std::vector<BackendStatsFields> probed;
  for (size_t k = 0; k < options.backends.size(); ++k) {
    const auto& addr = options.backends[k];
    auto sock = Socket::Connect(addr.host, addr.port);
    if (!sock.ok()) {
      return Status::IoError("backend " + std::to_string(k) + " (" +
                                 addr.host + ":" + std::to_string(addr.port) +
                                 ") unreachable: " +
                                 sock.status().ToString());
    }
    RRRE_RETURN_IF_ERROR(
        sock.value().SetRecvTimeout(options.backend_timeout_ms));
    RRRE_RETURN_IF_ERROR(sock.value().SendAll("STATS\n"));
    common::LineReader reader(&sock.value());
    auto line = reader.ReadLine();
    if (!line.ok()) return line.status();
    if (!line.value().has_value()) {
      return Status::IoError("backend " + std::to_string(k) +
                                 " closed during the startup probe");
    }
    auto stats = ParseBackendStats(*line.value());
    if (!stats.ok()) return stats.status();
    probed.push_back(stats.value());
    if (probed.front().users != probed.back().users ||
        probed.front().items != probed.back().items) {
      return Status::InvalidArgument(
          "backend " + std::to_string(k) +
          " serves a different corpus than backend 0");
    }
    if (probed.front().fingerprint != probed.back().fingerprint) {
      return Status::InvalidArgument(
          "backend " + std::to_string(k) +
          " serves a different parameter version than backend 0 "
          "(fingerprint mismatch)");
    }
  }
  auto listener = Socket::Listen(options.port);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<obs::MetricsRegistry> metrics;
  if (options.enable_metrics) {
    metrics = std::make_unique<obs::MetricsRegistry>();
  }
  ConsistentRing ring(static_cast<int>(options.backends.size()),
                      options.virtual_nodes);
  std::unique_ptr<Router> router(
      new Router(options, std::move(ring), std::move(listener).ValueOrDie(),
                 std::move(metrics)));
  for (size_t k = 0; k < options.backends.size(); ++k) {
    router->backends_[k]->fingerprint.store(probed[k].fingerprint);
    router->backends_[k]->generation.store(probed[k].generation);
  }
  router->fleet_users_.store(probed.front().users);
  router->fleet_items_.store(probed.front().items);
  router->fleet_fingerprint_.store(probed.front().fingerprint);
  router->accept_thread_ = std::thread(&Router::AcceptLoop, router.get());
  router->health_thread_ = std::thread(&Router::HealthLoop, router.get());
  return router;
}

Router::Router(const RouterOptions& options, ConsistentRing ring,
               Socket listener, std::unique_ptr<obs::MetricsRegistry> metrics)
    : options_(options),
      ring_(std::move(ring)),
      listener_(std::move(listener)),
      metrics_(std::move(metrics)) {
  for (const auto& addr : options_.backends) {
    auto state = std::make_unique<BackendState>();
    state->addr = addr;
    backends_.push_back(std::move(state));
  }
  if (metrics_ != nullptr) {
    m_requests_ = metrics_->GetCounter(
        "rrre_router_requests_total",
        "requests received by the router (incl. control verbs)");
    m_parse_errors_ = metrics_->GetCounter("rrre_router_parse_errors_total",
                                           "malformed request lines");
    m_retries_ = metrics_->GetCounter(
        "rrre_router_retries_total",
        "backend round-trips retried after a transport fault");
    m_failovers_ = metrics_->GetCounter(
        "rrre_router_failovers_total",
        "requests answered by a replica instead of the home shard");
    m_upstream_errors_ = metrics_->GetCounter(
        "rrre_router_upstream_errors_total",
        "requests that exhausted every replica");
    m_fanouts_ = metrics_->GetCounter(
        "rrre_router_fanouts_total",
        "catalog requests fanned out across the fleet");
    m_reload_barriers_ = metrics_->GetCounter(
        "rrre_router_reload_barriers_total",
        "rolling reload barriers orchestrated");
    m_backends_serving_ = metrics_->GetGauge(
        "rrre_router_backends_serving",
        "backends currently alive and fingerprint-converged");
    // A loadgen --metrics scrape can land mid-roll, racing the fingerprint
    // barrier; exposing the quarantine count lets the scraper distinguish a
    // clean roll (0) from a fleet still carrying diverged shards.
    m_quarantined_ = metrics_->GetGauge(
        "rrre_router_quarantined",
        "backends currently quarantined for fingerprint divergence");
    m_connections_active_ = metrics_->GetGauge(
        "rrre_router_connections_active", "currently open client connections");
  }
}

Router::~Router() { Shutdown(); }

bool Router::BackendServing(int index) const {
  const auto& backend = *backends_[static_cast<size_t>(index)];
  return backend.alive.load() && !backend.quarantined.load();
}

std::vector<int> Router::ServingBackends() const {
  std::vector<int> out;
  for (size_t k = 0; k < backends_.size(); ++k) {
    if (BackendServing(static_cast<int>(k))) out.push_back(static_cast<int>(k));
  }
  return out;
}

void Router::AcceptLoop() {
  while (!stopping_.load()) {
    auto client = listener_.AcceptWithTimeout(/*timeout_ms=*/100);
    ReapFinishedConnections();
    if (!client.ok()) {
      if (stopping_.load()) break;
      RRRE_LOG_WARNING << "accept failed: " << client.status().ToString();
      continue;
    }
    if (!client.value().has_value()) continue;  // Poll timeout.
    Socket socket = std::move(*client.value());
    if (options_.read_timeout_ms > 0) {
      socket.SetRecvTimeout(options_.read_timeout_ms);
      socket.SetSendTimeout(options_.read_timeout_ms);
    }
    std::shared_ptr<ClientConn> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int64_t>(connections_.size()) >=
          options_.max_connections) {
        socket.SendAll(FormatError("busy", "connection limit reached"));
        continue;  // Socket closes on scope exit.
      }
      conn = std::make_shared<ClientConn>(
          this, std::move(socket),
          static_cast<uint64_t>(connections_accepted_.load()));
      connections_.push_back(conn);
      if (m_connections_active_ != nullptr) {
        m_connections_active_->Set(static_cast<int64_t>(connections_.size()));
      }
    }
    connections_accepted_.fetch_add(1);
    conn->Start();
  }
}

void Router::ReapFinishedConnections() {
  std::vector<std::shared_ptr<ClientConn>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->Finished()) {
        finished.push_back(std::move(connections_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
    if (m_connections_active_ != nullptr) {
      m_connections_active_->Set(static_cast<int64_t>(connections_.size()));
    }
  }
  for (auto& conn : finished) conn->Join();
}

void Router::HealthLoop() {
  while (!stopping_.load()) {
    HealthPass();
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(options_.health_period_ms);
    while (!stopping_.load() && std::chrono::steady_clock::now() < deadline) {
      std::this_thread::sleep_for(std::chrono::milliseconds(10));
    }
  }
  for (auto& backend : backends_) {
    backend->health_reader.reset();
    backend->health_socket = Socket();
  }
}

void Router::HealthPass() {
  // Skip the pass while a reload barrier holds the lock exclusively:
  // fingerprints legitimately diverge mid-roll and must not trip the
  // quarantine. The barrier itself re-evaluates quarantine when it ends.
  std::shared_lock<std::shared_mutex> barrier(reload_mu_, std::try_to_lock);
  if (!barrier.owns_lock()) return;
  const uint64_t fleet_fp = fleet_fingerprint_.load();
  for (size_t k = 0; k < backends_.size(); ++k) {
    BackendState& backend = *backends_[k];
    auto fail = [&] {
      backend.alive.store(false);
      backend.health_reader.reset();
      backend.health_socket = Socket();
    };
    if (!backend.health_socket.valid()) {
      auto sock = Socket::Connect(backend.addr.host, backend.addr.port);
      if (!sock.ok() ||
          !sock.value().SetRecvTimeout(options_.backend_timeout_ms).ok() ||
          !sock.value().SetSendTimeout(options_.backend_timeout_ms).ok()) {
        fail();
        continue;
      }
      backend.health_socket = std::move(sock).ValueOrDie();
      backend.health_reader =
          std::make_unique<common::LineReader>(&backend.health_socket);
    }
    // Liveness: PING must pong. Version: STATS must carry a fingerprint.
    if (!backend.health_socket.SendAll("PING\nSTATS\n").ok()) {
      fail();
      continue;
    }
    auto pong = backend.health_reader->ReadLine();
    if (!pong.ok() || !pong.value().has_value() ||
        *pong.value() != "#pong") {
      fail();
      continue;
    }
    auto stats_line = backend.health_reader->ReadLine();
    if (!stats_line.ok() || !stats_line.value().has_value()) {
      fail();
      continue;
    }
    auto stats = ParseBackendStats(*stats_line.value());
    if (!stats.ok()) {
      fail();
      continue;
    }
    backend.alive.store(true);
    backend.fingerprint.store(stats.value().fingerprint);
    backend.generation.store(stats.value().generation);
    // Quarantine policing: a shard whose fingerprint left the fleet's (a
    // side-channel reload, a divergent restart) must not serve through the
    // router until it matches again — serving it would let one connection
    // observe two parameter versions.
    backend.quarantined.store(fleet_fp != 0 &&
                              stats.value().fingerprint != fleet_fp);
  }
  if (m_backends_serving_ != nullptr) {
    m_backends_serving_->Set(static_cast<int64_t>(ServingBackends().size()));
  }
  if (m_quarantined_ != nullptr) {
    int64_t quarantined = 0;
    for (const auto& b : backends_) quarantined += b->quarantined.load() ? 1 : 0;
    m_quarantined_->Set(quarantined);
  }
}

void Router::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  if (health_thread_.joinable()) health_thread_.join();
  std::vector<std::shared_ptr<ClientConn>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  // Half-close every client: handlers finish the request in flight (every
  // admitted request is answered), then see EOF and exit.
  for (auto& conn : conns) conn->AbortRead();
  for (auto& conn : conns) conn->Join();
  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
}

RouterStats Router::stats() const {
  RouterStats out;
  out.connections_accepted = connections_accepted_.load();
  out.requests = requests_.load();
  out.parse_errors = parse_errors_.load();
  out.retries = retries_.load();
  out.failovers = failovers_.load();
  out.upstream_errors = upstream_errors_.load();
  out.fanouts = fanouts_.load();
  out.reload_barriers = reload_barriers_.load();
  for (const auto& backend : backends_) {
    out.quarantined += backend->quarantined.load() ? 1 : 0;
  }
  std::lock_guard<std::mutex> lock(mu_);
  out.connections_active = static_cast<int64_t>(connections_.size());
  return out;
}

std::string Router::FormatStatsLine() const {
  // Starts with "#stats\t" and carries users=/items= so loadgen's bounds
  // discovery works against the router exactly as against a backend.
  const RouterStats s = stats();
  return common::StrFormat(
      "#stats\tusers=%lld\titems=%lld\tfingerprint=%llu\tbackends=%d\t"
      "serving=%d\trequests=%lld\tparse_errors=%lld\tretries=%lld\t"
      "failovers=%lld\tupstream_errors=%lld\tfanouts=%lld\t"
      "reload_barriers=%lld\tquarantined=%lld\tconnections=%lld\n",
      static_cast<long long>(fleet_users_.load()),
      static_cast<long long>(fleet_items_.load()),
      static_cast<unsigned long long>(fleet_fingerprint_.load()),
      static_cast<int>(backends_.size()),
      static_cast<int>(ServingBackends().size()),
      static_cast<long long>(s.requests),
      static_cast<long long>(s.parse_errors),
      static_cast<long long>(s.retries),
      static_cast<long long>(s.failovers),
      static_cast<long long>(s.upstream_errors),
      static_cast<long long>(s.fanouts),
      static_cast<long long>(s.reload_barriers),
      static_cast<long long>(s.quarantined),
      static_cast<long long>(s.connections_active));
}

}  // namespace rrre::serve
