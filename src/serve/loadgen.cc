#include "serve/loadgen.h"

#include <chrono>
#include <cstdlib>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/socket.h"
#include "common/strings.h"
#include "common/timer.h"
#include "serve/protocol.h"

namespace rrre::serve {

using common::Result;
using common::Socket;
using common::Status;

namespace {

/// Asks the server for its corpus bounds via the STATS command.
Status DiscoverBounds(const LoadGenOptions& options, int64_t* num_users,
                      int64_t* num_items) {
  auto sock = Socket::Connect(options.host, options.port);
  if (!sock.ok()) return sock.status();
  RRRE_RETURN_IF_ERROR(sock.value().SendAll("STATS\n"));
  common::LineReader reader(&sock.value());
  auto line = reader.ReadLine();
  if (!line.ok()) return line.status();
  if (!line.value().has_value() ||
      !common::StartsWith(*line.value(), "#stats\t")) {
    return Status::Internal("unexpected STATS response");
  }
  for (const auto& field : common::Split(*line.value(), '\t')) {
    if (common::StartsWith(field, "users=")) {
      *num_users = std::atoll(field.c_str() + 6);
    } else if (common::StartsWith(field, "items=")) {
      *num_items = std::atoll(field.c_str() + 6);
    }
  }
  if (*num_users <= 0 || *num_items <= 0) {
    return Status::Internal("STATS did not report corpus bounds: " +
                            *line.value());
  }
  return Status::Ok();
}

struct ConnResult {
  Status status = Status::Ok();
  int64_t sent = 0;
  int64_t scored = 0;
  int64_t overloaded = 0;
  int64_t errors = 0;
  int64_t retried = 0;
  common::Histogram latency_us;
};

void RunConnection(const LoadGenOptions& options, int64_t conn_index,
                   int64_t requests, int64_t num_users, int64_t num_items,
                   ConnResult* out) {
  auto sock = Socket::Connect(options.host, options.port);
  if (!sock.ok()) {
    out->status = sock.status();
    return;
  }
  common::LineReader reader(&sock.value());
  common::Rng rng(options.seed + 0x9e3779b97f4a7c15ULL *
                                     static_cast<uint64_t>(conn_index + 1));
  // Pacing: each connection sends at target_qps / connections.
  const double period_s =
      options.target_qps > 0.0
          ? static_cast<double>(options.connections) / options.target_qps
          : 0.0;
  const auto start = std::chrono::steady_clock::now();
  for (int64_t n = 0; n < requests; ++n) {
    if (period_s > 0.0) {
      const auto next_send =
          start + std::chrono::duration_cast<
                      std::chrono::steady_clock::duration>(
                      std::chrono::duration<double>(period_s *
                                                    static_cast<double>(n)));
      std::this_thread::sleep_until(next_send);
    }
    const int64_t user =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_users)));
    const int64_t item =
        static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(num_items)));
    const std::string request =
        std::to_string(user) + "\t" + std::to_string(item) + "\n";
    // Attempt loop: an overload response is retried up to max_retries times
    // with jittered exponential backoff; anything else settles the request.
    for (int64_t attempt = 0;; ++attempt) {
      common::Timer timer;
      auto st = sock.value().SendAll(request);
      if (!st.ok()) {
        out->status = st;
        return;
      }
      ++out->sent;
      auto line = reader.ReadLine();
      if (!line.ok()) {
        out->status = line.status();
        return;
      }
      if (!line.value().has_value()) {
        out->status = Status::Internal("server closed mid-run after " +
                                       std::to_string(n + 1) + " requests");
        return;
      }
      out->latency_us.Record(timer.ElapsedSeconds() * 1e6);
      const std::string& response = *line.value();
      if (IsOverloadLine(response)) {
        if (attempt < options.max_retries) {
          ++out->retried;
          std::this_thread::sleep_for(std::chrono::microseconds(BackoffUs(
              attempt, options.backoff_base_us, options.backoff_cap_us,
              rng)));
          continue;
        }
        ++out->overloaded;
      } else if (IsErrorLine(response)) {
        ++out->errors;
      } else {
        ++out->scored;
      }
      break;
    }
  }
  sock.value().SendAll("QUIT\n");
}

}  // namespace

int64_t BackoffUs(int64_t attempt, int64_t base_us, int64_t cap_us,
                  common::Rng& rng) {
  if (base_us < 1) base_us = 1;
  if (cap_us < base_us) cap_us = base_us;
  // Ceiling = min(cap, base * 2^attempt), computed without overflow.
  int64_t ceiling = base_us;
  for (int64_t k = 0; k < attempt && ceiling < cap_us; ++k) {
    ceiling = ceiling > cap_us / 2 ? cap_us : ceiling * 2;
  }
  // Equal jitter: half deterministic, half uniform — bounded below by
  // ceiling/2 so retries always back off, spread across [ceiling/2, ceiling].
  const int64_t half = ceiling / 2;
  return half +
         static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
             ceiling - half + 1)));
}

Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options) {
  int64_t num_users = options.num_users;
  int64_t num_items = options.num_items;
  if (num_users <= 0 || num_items <= 0) {
    RRRE_RETURN_IF_ERROR(DiscoverBounds(options, &num_users, &num_items));
  }
  const int64_t connections = std::max<int64_t>(1, options.connections);
  std::vector<ConnResult> results(static_cast<size_t>(connections));
  std::vector<std::thread> threads;
  threads.reserve(static_cast<size_t>(connections));
  common::Timer timer;
  for (int64_t c = 0; c < connections; ++c) {
    // First connections absorb the remainder so the totals add up exactly.
    const int64_t base = options.total_requests / connections;
    const int64_t requests =
        base + (c < options.total_requests % connections ? 1 : 0);
    threads.emplace_back(RunConnection, std::cref(options), c, requests,
                         num_users, num_items,
                         &results[static_cast<size_t>(c)]);
  }
  for (auto& t : threads) t.join();
  LoadGenReport report;
  report.seconds = timer.ElapsedSeconds();
  for (const auto& r : results) {
    if (!r.status.ok()) return r.status;
    report.sent += r.sent;
    report.scored += r.scored;
    report.overloaded += r.overloaded;
    report.errors += r.errors;
    report.retried += r.retried;
    report.latency_us.Merge(r.latency_us);
  }
  const int64_t responses = report.scored + report.overloaded + report.errors;
  report.qps = report.seconds > 0.0
                   ? static_cast<double>(responses) / report.seconds
                   : 0.0;
  return report;
}

}  // namespace rrre::serve
