#include "serve/protocol.h"

#include <cstdlib>

#include "common/strings.h"

namespace rrre::serve {

namespace {

/// Strict base-10 parse, rejecting trailing junk — same contract as the
/// offline request reader, so a mangled id errors instead of mis-scoring.
bool ParseId(std::string_view field, int64_t* out) {
  if (field.empty()) return false;
  const std::string s(field);
  char* end = nullptr;
  const long long v = std::strtoll(s.c_str(), &end, 10);
  if (end != s.c_str() + s.size()) return false;
  *out = v;
  return true;
}

}  // namespace

Request ParseRequest(std::string_view line) {
  Request req;
  if (line.empty() || line[0] == '#') {
    req.type = Request::Type::kBlank;
    return req;
  }
  if (common::Trim(line).empty()) {
    req.type = Request::Type::kBlank;
    return req;
  }
  if (line == "PING") {
    req.type = Request::Type::kPing;
    return req;
  }
  if (line == "STATS") {
    req.type = Request::Type::kStats;
    return req;
  }
  if (line == "METRICS") {
    req.type = Request::Type::kMetrics;
    return req;
  }
  if (line == "RELOAD") {
    req.type = Request::Type::kReload;
    return req;
  }
  if (line == "QUIT") {
    req.type = Request::Type::kQuit;
    return req;
  }
  const auto fields = common::Split(line, '\t');
  if (fields.size() != 1 && fields.size() != 2) {
    req.error = "expected 1 or 2 tab-separated fields, got " +
                std::to_string(fields.size());
    return req;
  }
  if (!ParseId(fields[0], &req.user)) {
    req.error = "bad user id \"" + fields[0] + "\"";
    return req;
  }
  if (fields.size() == 1) {
    req.type = Request::Type::kCatalog;
    return req;
  }
  if (!ParseId(fields[1], &req.item)) {
    req.error = "bad item id \"" + fields[1] + "\"";
    return req;
  }
  req.type = Request::Type::kPair;
  return req;
}

std::string FormatScoreLine(int64_t user, int64_t item, double rating,
                            double reliability) {
  return common::StrFormat("%lld\t%lld\t%.17g\t%.17g\n",
                           static_cast<long long>(user),
                           static_cast<long long>(item), rating, reliability);
}

std::string FormatCatalogHeader(int64_t user, int64_t count) {
  return common::StrFormat("#catalog\t%lld\t%lld\n",
                           static_cast<long long>(user),
                           static_cast<long long>(count));
}

std::string FormatMetricsHeader(int64_t lines) {
  return common::StrFormat("#metrics\tlines=%lld\n",
                           static_cast<long long>(lines));
}

std::string FormatError(std::string_view code, std::string_view message) {
  std::string out = "!ERR\t";
  out.append(code);
  out.push_back('\t');
  out.append(message);
  out.push_back('\n');
  return out;
}

std::string FormatPong() { return "#pong\n"; }

std::string FormatBye() { return "#bye\n"; }

std::string FormatReloaded(int64_t version) {
  return common::StrFormat("#reloaded\tversion=%lld\n",
                           static_cast<long long>(version));
}

bool IsErrorLine(std::string_view line) {
  return common::StartsWith(line, "!ERR\t");
}

bool IsOverloadLine(std::string_view line) {
  return common::StartsWith(line, "!ERR\toverload\t");
}

}  // namespace rrre::serve
