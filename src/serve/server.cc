#include "serve/server.h"

#include <condition_variable>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "serve/protocol.h"

namespace rrre::serve {

using common::Result;
using common::Socket;
using common::Status;

/// One client connection. The reader thread owns parsing and admission; the
/// writer thread owns the socket's send side and flushes responses strictly
/// in request order. Batcher callbacks (scorer thread) only fill pending
/// slots under the connection mutex — they never touch the socket.
class Server::Connection
    : public std::enable_shared_from_this<Server::Connection> {
 public:
  Connection(Server* server, Socket socket)
      : server_(server), socket_(std::move(socket)) {}

  ~Connection() {
    // Threads are joined by the server (reap or Shutdown) before the last
    // reference can drop on a foreign thread; these joins are a no-op then.
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

  void Start() {
    auto self = shared_from_this();
    reader_ = std::thread([self] { self->ReaderLoop(); });
    writer_ = std::thread([self] { self->WriterLoop(); });
  }

  /// Half-closes the read side: the reader sees EOF and stops admitting;
  /// responses already admitted still flush. Safe from any thread.
  void AbortRead() { socket_.ShutdownRead(); }

  /// Both loops have run to completion — Join will not block.
  bool Finished() const { return exited_.load() == 2; }

  void Join() {
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

 private:
  /// A response slot in the per-connection FIFO. `ready` flips exactly once,
  /// under mu_.
  struct Pending {
    bool ready = false;
    std::string payload;
  };

  std::shared_ptr<Pending> PushPending() {
    auto pending = std::make_shared<Pending>();
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(pending);
    return pending;
  }

  void PushReady(std::string payload) {
    auto pending = std::make_shared<Pending>();
    pending->ready = true;
    pending->payload = std::move(payload);
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(pending));
    cv_.notify_all();
  }

  void Fulfill(const std::shared_ptr<Pending>& pending, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    pending->payload = std::move(payload);
    pending->ready = true;
    cv_.notify_all();
  }

  void ReaderLoop() {
    common::LineReader reader(&socket_);
    for (;;) {
      auto line = reader.ReadLine();
      if (!line.ok() || !line.value().has_value()) break;
      if (!HandleLine(*line.value())) break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      reader_done_ = true;
      cv_.notify_all();
    }
    exited_.fetch_add(1);
  }

  /// Returns false when the connection should close (QUIT).
  bool HandleLine(const std::string& line) {
    const Request req = ParseRequest(line);
    if (req.type == Request::Type::kBlank) return true;
    server_->requests_.fetch_add(1);
    switch (req.type) {
      case Request::Type::kPing:
        PushReady(FormatPong());
        return true;
      case Request::Type::kStats:
        PushReady(server_->FormatStatsLine());
        return true;
      case Request::Type::kQuit:
        PushReady(FormatBye());
        return false;
      case Request::Type::kReload: {
        auto pending = PushPending();
        auto self = shared_from_this();
        server_->batcher_->RequestReload(
            server_->options_.model_prefix,
            [self, pending](const Status& status, int64_t generation) {
              self->Fulfill(pending,
                            status.ok()
                                ? FormatReloaded(generation)
                                : FormatError("reload", status.ToString()));
            });
        return true;
      }
      case Request::Type::kInvalid:
        server_->parse_errors_.fetch_add(1);
        PushReady(FormatError("parse", req.error));
        return true;
      case Request::Type::kPair:
      case Request::Type::kCatalog:
        HandleScoreRequest(req);
        return true;
      case Request::Type::kBlank:
        return true;
    }
    return true;
  }

  void HandleScoreRequest(const Request& req) {
    const bool catalog = req.type == Request::Type::kCatalog;
    const int64_t num_users = server_->batcher_->num_users();
    const int64_t num_items = server_->batcher_->num_items();
    if (req.user < 0 || req.user >= num_users) {
      server_->range_errors_.fetch_add(1);
      PushReady(FormatError(
          "range", "user " + std::to_string(req.user) + " out of range [0, " +
                       std::to_string(num_users) + ")"));
      return;
    }
    if (!catalog && (req.item < 0 || req.item >= num_items)) {
      server_->range_errors_.fetch_add(1);
      PushReady(FormatError(
          "range", "item " + std::to_string(req.item) + " out of range [0, " +
                       std::to_string(num_items) + ")"));
      return;
    }
    auto pending = PushPending();
    auto self = shared_from_this();
    const int64_t user = req.user;
    const bool accepted = server_->batcher_->TrySubmit(
        req.user, catalog ? MicroBatcher::kCatalogItem : req.item,
        [self, pending, user, catalog](
            const Status& status,
            const std::vector<MicroBatcher::ScoredPair>& results) {
          if (!status.ok()) {
            self->server_->range_errors_.fetch_add(1);
            self->Fulfill(pending, FormatError("range", status.message()));
            return;
          }
          std::string out;
          if (catalog) {
            out = FormatCatalogHeader(user,
                                      static_cast<int64_t>(results.size()));
          }
          for (const auto& r : results) {
            out += FormatScoreLine(r.user, r.item, r.rating, r.reliability);
          }
          self->Fulfill(pending, std::move(out));
        });
    if (!accepted) {
      server_->overloads_.fetch_add(1);
      Fulfill(pending, FormatError("overload",
                                   "admission queue full — retry later"));
    }
  }

  void WriterLoop() {
    bool send_failed = false;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] {
        return (!queue_.empty() && queue_.front()->ready) ||
               (reader_done_ && queue_.empty());
      });
      if (queue_.empty()) break;
      std::string payload = std::move(queue_.front()->payload);
      queue_.pop_front();
      lock.unlock();
      // After a send failure (peer hung up) keep consuming so every pending
      // callback still finds its slot, but stop writing.
      if (!send_failed && !socket_.SendAll(payload).ok()) send_failed = true;
      lock.lock();
    }
    lock.unlock();
    // Reader is done and everything admitted was answered: full close so the
    // peer sees EOF promptly.
    socket_.ShutdownBoth();
    exited_.fetch_add(1);
  }

  Server* server_;
  Socket socket_;
  std::thread reader_;
  std::thread writer_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Pending>> queue_;  ///< Response FIFO.
  bool reader_done_ = false;
  std::atomic<int> exited_{0};
};

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  auto trainer = std::make_unique<core::RrreTrainer>(options.config);
  RRRE_RETURN_IF_ERROR(trainer->Load(options.model_prefix));
  auto listener = Socket::Listen(options.port);
  if (!listener.ok()) return listener.status();
  auto batcher =
      std::make_unique<MicroBatcher>(std::move(trainer), options.batcher);
  std::unique_ptr<Server> server(new Server(
      options, std::move(batcher), std::move(listener).ValueOrDie()));
  return server;
}

Server::Server(const ServerOptions& options,
               std::unique_ptr<MicroBatcher> batcher, Socket listener)
    : options_(options),
      batcher_(std::move(batcher)),
      listener_(std::move(listener)) {
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
}

Server::~Server() { Shutdown(); }

void Server::Reload(MicroBatcher::ReloadDoneFn done) {
  batcher_->RequestReload(
      options_.model_prefix,
      [done](const Status& status, int64_t generation) {
        if (status.ok()) {
          RRRE_LOG_INFO << "hot reload complete, serving generation "
                        << generation;
        }
        if (done) done(status, generation);
      });
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto client = listener_.AcceptWithTimeout(/*timeout_ms=*/100);
    ReapFinishedConnections();
    if (!client.ok()) {
      if (stopping_.load()) break;
      RRRE_LOG_WARNING << "accept failed: " << client.status().ToString();
      continue;
    }
    if (!client.value().has_value()) continue;  // Poll timeout.
    Socket socket = std::move(*client.value());
    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int64_t>(connections_.size()) >=
          options_.max_connections) {
        connections_rejected_.fetch_add(1);
        socket.SendAll(FormatError("busy", "connection limit reached"));
        continue;  // Socket closes on scope exit.
      }
      conn = std::make_shared<Connection>(this, std::move(socket));
      connections_.push_back(conn);
    }
    connections_accepted_.fetch_add(1);
    conn->Start();
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->Finished()) {
        finished.push_back(std::move(connections_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
  }
  for (auto& conn : finished) conn->Join();
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  // Half-close every connection: readers stop admitting, the batcher keeps
  // running so admitted requests drain to their writers.
  for (auto& conn : conns) conn->AbortRead();
  batcher_->Resume();  // A paused batcher would deadlock the drain.
  for (auto& conn : conns) conn->Join();
  batcher_->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = connections_accepted_.load();
  out.connections_rejected = connections_rejected_.load();
  out.requests = requests_.load();
  out.parse_errors = parse_errors_.load();
  out.range_errors = range_errors_.load();
  out.overloads = overloads_.load();
  out.batcher = batcher_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  out.connections_active = static_cast<int64_t>(connections_.size());
  return out;
}

std::string Server::FormatStatsLine() const {
  const MicroBatcher::Stats b = batcher_->stats();
  int64_t active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = static_cast<int64_t>(connections_.size());
  }
  return common::StrFormat(
      "#stats\tusers=%lld\titems=%lld\tversion=%lld\tgeneration=%lld\t"
      "requests=%lld\tparse_errors=%lld\trange_errors=%lld\toverloads=%lld\t"
      "submitted=%lld\trejected=%lld\tbatches=%lld\tpairs=%lld\t"
      "reloads=%lld\tconnections=%lld\n",
      static_cast<long long>(batcher_->num_users()),
      static_cast<long long>(batcher_->num_items()),
      static_cast<long long>(batcher_->params_version()),
      static_cast<long long>(batcher_->generation()),
      static_cast<long long>(requests_.load()),
      static_cast<long long>(parse_errors_.load()),
      static_cast<long long>(range_errors_.load()),
      static_cast<long long>(overloads_.load()),
      static_cast<long long>(b.submitted), static_cast<long long>(b.rejected),
      static_cast<long long>(b.batches),
      static_cast<long long>(b.pairs_scored),
      static_cast<long long>(b.reloads), static_cast<long long>(active));
}

}  // namespace rrre::serve
