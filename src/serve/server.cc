#include "serve/server.h"

#include <condition_variable>
#include <deque>
#include <utility>

#include "common/logging.h"
#include "common/strings.h"
#include "core/tower_store.h"
#include "serve/protocol.h"

namespace rrre::serve {

using common::Result;
using common::Socket;
using common::Status;

namespace {

inline void Inc(obs::Counter* counter) {
  if (counter != nullptr) counter->Increment();
}

}  // namespace

/// One client connection. The reader thread owns parsing and admission; the
/// writer thread owns the socket's send side and flushes responses strictly
/// in request order. Batcher callbacks (scorer thread) only fill pending
/// slots under the connection mutex — they never touch the socket.
class Server::Connection
    : public std::enable_shared_from_this<Server::Connection> {
 public:
  Connection(Server* server, Socket socket)
      : server_(server), socket_(std::move(socket)) {}

  ~Connection() {
    // Threads are joined by the server (reap or Shutdown) before the last
    // reference can drop on a foreign thread; these joins are a no-op then.
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

  void Start() {
    auto self = shared_from_this();
    reader_ = std::thread([self] { self->ReaderLoop(); });
    writer_ = std::thread([self] { self->WriterLoop(); });
  }

  /// Half-closes the read side: the reader sees EOF and stops admitting;
  /// responses already admitted still flush. Safe from any thread.
  void AbortRead() { socket_.ShutdownRead(); }

  /// Both loops have run to completion — Join will not block.
  bool Finished() const { return exited_.load() == 2; }

  void Join() {
    if (reader_.joinable()) reader_.join();
    if (writer_.joinable()) writer_.join();
  }

 private:
  /// A response slot in the per-connection FIFO. `ready` flips exactly once,
  /// under mu_.
  struct Pending {
    bool ready = false;
    std::string payload;
  };

  std::shared_ptr<Pending> PushPending() {
    auto pending = std::make_shared<Pending>();
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(pending);
    return pending;
  }

  void PushReady(std::string payload) {
    auto pending = std::make_shared<Pending>();
    pending->ready = true;
    pending->payload = std::move(payload);
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(pending));
    cv_.notify_all();
  }

  void Fulfill(const std::shared_ptr<Pending>& pending, std::string payload) {
    std::lock_guard<std::mutex> lock(mu_);
    pending->payload = std::move(payload);
    pending->ready = true;
    cv_.notify_all();
  }

  void ReaderLoop() {
    common::LineReader reader(&socket_);
    for (;;) {
      auto line = reader.ReadLine();
      if (!line.ok()) {
        // The read deadline fired: the client sat silent past
        // read_timeout_ms. Treated like EOF — stop admitting, let already
        // admitted responses flush — but counted separately.
        if (line.status().code() == common::StatusCode::kDeadlineExceeded) {
          server_->read_timeouts_.fetch_add(1);
          Inc(server_->m_read_timeouts_);
        }
        break;
      }
      if (!line.value().has_value()) break;
      if (!HandleLine(*line.value())) break;
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      reader_done_ = true;
      cv_.notify_all();
    }
    exited_.fetch_add(1);
  }

  /// Returns false when the connection should close (QUIT).
  bool HandleLine(const std::string& line) {
    const Request req = ParseRequest(line);
    if (req.type == Request::Type::kBlank) return true;
    server_->requests_.fetch_add(1);
    switch (req.type) {
      case Request::Type::kPing:
        PushReady(FormatPong());
        return true;
      case Request::Type::kStats:
        PushReady(server_->FormatStatsLine());
        return true;
      case Request::Type::kMetrics:
        // The scrape is deliberately not counted in any exposed metric, so
        // it cannot perturb what it reports.
        PushReady(server_->FormatMetricsResponse());
        return true;
      case Request::Type::kQuit:
        PushReady(FormatBye());
        return false;
      case Request::Type::kReload: {
        auto pending = PushPending();
        auto self = shared_from_this();
        server_->batcher_->RequestReload(
            server_->options_.model_prefix,
            [self, pending](const Status& status, int64_t generation) {
              self->Fulfill(pending,
                            status.ok()
                                ? FormatReloaded(generation)
                                : FormatError("reload", status.ToString()));
            });
        return true;
      }
      case Request::Type::kInvalid:
        server_->parse_errors_.fetch_add(1);
        Inc(server_->m_parse_errors_);
        PushReady(FormatError("parse", req.error));
        return true;
      case Request::Type::kPair:
      case Request::Type::kCatalog:
        Inc(server_->m_requests_);
        HandleScoreRequest(req);
        return true;
      case Request::Type::kBlank:
        return true;
    }
    return true;
  }

  void HandleScoreRequest(const Request& req) {
    const bool catalog = req.type == Request::Type::kCatalog;
    const int64_t num_users = server_->batcher_->num_users();
    const int64_t num_items = server_->batcher_->num_items();
    if (req.user < 0 || req.user >= num_users) {
      server_->range_errors_.fetch_add(1);
      Inc(server_->m_range_errors_);
      PushReady(FormatError(
          "range", "user " + std::to_string(req.user) + " out of range [0, " +
                       std::to_string(num_users) + ")"));
      return;
    }
    if (!catalog && (req.item < 0 || req.item >= num_items)) {
      server_->range_errors_.fetch_add(1);
      Inc(server_->m_range_errors_);
      PushReady(FormatError(
          "range", "item " + std::to_string(req.item) + " out of range [0, " +
                       std::to_string(num_items) + ")"));
      return;
    }
    auto pending = PushPending();
    auto self = shared_from_this();
    const int64_t user = req.user;
    const bool accepted = server_->batcher_->TrySubmit(
        req.user, catalog ? MicroBatcher::kCatalogItem : req.item,
        [self, pending, user, catalog](
            const Status& status,
            const std::vector<MicroBatcher::ScoredPair>& results) {
          if (!status.ok()) {
            self->server_->range_errors_.fetch_add(1);
            Inc(self->server_->m_range_errors_);
            self->Fulfill(pending, FormatError("range", status.message()));
            return;
          }
          std::string out;
          if (catalog) {
            out = FormatCatalogHeader(user,
                                      static_cast<int64_t>(results.size()));
          }
          for (const auto& r : results) {
            out += FormatScoreLine(r.user, r.item, r.rating, r.reliability);
          }
          self->Fulfill(pending, std::move(out));
        });
    if (!accepted) {
      server_->overloads_.fetch_add(1);
      Inc(server_->m_overloads_);
      Fulfill(pending, FormatError("overload",
                                   "admission queue full — retry later"));
    }
  }

  void WriterLoop() {
    bool send_failed = false;
    std::unique_lock<std::mutex> lock(mu_);
    for (;;) {
      cv_.wait(lock, [&] {
        return (!queue_.empty() && queue_.front()->ready) ||
               (reader_done_ && queue_.empty());
      });
      if (queue_.empty()) break;
      std::string payload = std::move(queue_.front()->payload);
      queue_.pop_front();
      lock.unlock();
      // After a send failure (peer hung up) keep consuming so every pending
      // callback still finds its slot, but stop writing.
      if (!send_failed && !socket_.SendAll(payload).ok()) send_failed = true;
      lock.lock();
    }
    lock.unlock();
    // Reader is done and everything admitted was answered: full close so the
    // peer sees EOF promptly.
    socket_.ShutdownBoth();
    exited_.fetch_add(1);
  }

  Server* server_;
  Socket socket_;
  std::thread reader_;
  std::thread writer_;

  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<std::shared_ptr<Pending>> queue_;  ///< Response FIFO.
  bool reader_done_ = false;
  std::atomic<int> exited_{0};
};

Result<std::unique_ptr<Server>> Server::Start(const ServerOptions& options) {
  auto trainer = std::make_unique<core::RrreTrainer>(options.config);
  RRRE_RETURN_IF_ERROR(trainer->Load(options.model_prefix));
  std::shared_ptr<const core::TowerStore> store;
  if (!options.store_path.empty()) {
    auto mapped = core::MapTowerStoreForCheckpoint(
        options.store_path, options.model_prefix, *trainer);
    if (!mapped.ok()) return mapped.status();
    store = std::move(mapped).ValueOrDie();
  }
  auto listener = Socket::Listen(options.port);
  if (!listener.ok()) return listener.status();
  std::unique_ptr<obs::MetricsRegistry> metrics;
  MicroBatcher::Options batcher_options = options.batcher;
  batcher_options.store_path = options.store_path;
  batcher_options.model_prefix = options.model_prefix;
  if (options.enable_metrics) {
    metrics = std::make_unique<obs::MetricsRegistry>();
    batcher_options.metrics = metrics.get();
  } else {
    batcher_options.metrics = nullptr;
  }
  auto batcher = std::make_unique<MicroBatcher>(
      std::move(trainer), batcher_options, std::move(store));
  std::unique_ptr<Server> server(
      new Server(options, std::move(metrics), std::move(batcher),
                 std::move(listener).ValueOrDie()));
  return server;
}

Server::Server(const ServerOptions& options,
               std::unique_ptr<obs::MetricsRegistry> metrics,
               std::unique_ptr<MicroBatcher> batcher, Socket listener)
    : options_(options),
      metrics_(std::move(metrics)),
      batcher_(std::move(batcher)),
      listener_(std::move(listener)) {
  if (metrics_ != nullptr) {
    m_requests_ = metrics_->GetCounter(
        "rrre_serve_requests_total",
        "score requests received (pair + catalog; control verbs excluded)");
    m_parse_errors_ = metrics_->GetCounter("rrre_serve_parse_errors_total",
                                           "malformed request lines");
    m_range_errors_ = metrics_->GetCounter("rrre_serve_range_errors_total",
                                           "requests with out-of-range ids");
    m_overloads_ = metrics_->GetCounter(
        "rrre_serve_overloads_total", "requests refused by admission control");
    m_connections_accepted_ = metrics_->GetCounter(
        "rrre_serve_connections_accepted_total", "connections accepted");
    m_connections_rejected_ = metrics_->GetCounter(
        "rrre_serve_connections_rejected_total",
        "connections refused at the connection limit");
    m_read_timeouts_ = metrics_->GetCounter(
        "rrre_serve_read_timeouts_total",
        "connections dropped by the read deadline");
    m_connections_active_ = metrics_->GetGauge("rrre_serve_connections_active",
                                               "currently open connections");
  }
  accept_thread_ = std::thread(&Server::AcceptLoop, this);
}

Server::~Server() { Shutdown(); }

void Server::Reload(MicroBatcher::ReloadDoneFn done) {
  batcher_->RequestReload(
      options_.model_prefix,
      [done](const Status& status, int64_t generation) {
        if (status.ok()) {
          RRRE_LOG_INFO << "hot reload complete, serving generation "
                        << generation;
        }
        if (done) done(status, generation);
      });
}

void Server::AcceptLoop() {
  while (!stopping_.load()) {
    auto client = listener_.AcceptWithTimeout(/*timeout_ms=*/100);
    ReapFinishedConnections();
    if (!client.ok()) {
      if (stopping_.load()) break;
      RRRE_LOG_WARNING << "accept failed: " << client.status().ToString();
      continue;
    }
    if (!client.value().has_value()) continue;  // Poll timeout.
    Socket socket = std::move(*client.value());
    if (options_.read_timeout_ms > 0) {
      // Arm both directions: the recv deadline drops silent clients, the
      // send deadline keeps a non-reading client from stalling the writer.
      socket.SetRecvTimeout(options_.read_timeout_ms);
      socket.SetSendTimeout(options_.read_timeout_ms);
    }
    std::shared_ptr<Connection> conn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (static_cast<int64_t>(connections_.size()) >=
          options_.max_connections) {
        connections_rejected_.fetch_add(1);
        Inc(m_connections_rejected_);
        socket.SendAll(FormatError("busy", "connection limit reached"));
        continue;  // Socket closes on scope exit.
      }
      conn = std::make_shared<Connection>(this, std::move(socket));
      connections_.push_back(conn);
      if (m_connections_active_ != nullptr) {
        m_connections_active_->Set(static_cast<int64_t>(connections_.size()));
      }
    }
    connections_accepted_.fetch_add(1);
    Inc(m_connections_accepted_);
    conn->Start();
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::shared_ptr<Connection>> finished;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (size_t i = 0; i < connections_.size();) {
      if (connections_[i]->Finished()) {
        finished.push_back(std::move(connections_[i]));
        connections_[i] = std::move(connections_.back());
        connections_.pop_back();
      } else {
        ++i;
      }
    }
    if (m_connections_active_ != nullptr) {
      m_connections_active_->Set(static_cast<int64_t>(connections_.size()));
    }
  }
  for (auto& conn : finished) conn->Join();
}

void Server::Shutdown() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (shutdown_done_) return;
    shutdown_done_ = true;
  }
  stopping_.store(true);
  if (accept_thread_.joinable()) accept_thread_.join();
  std::vector<std::shared_ptr<Connection>> conns;
  {
    std::lock_guard<std::mutex> lock(mu_);
    conns = connections_;
  }
  // Half-close every connection: readers stop admitting, the batcher keeps
  // running so admitted requests drain to their writers.
  for (auto& conn : conns) conn->AbortRead();
  batcher_->Resume();  // A paused batcher would deadlock the drain.
  for (auto& conn : conns) conn->Join();
  batcher_->Stop();
  std::lock_guard<std::mutex> lock(mu_);
  connections_.clear();
}

ServerStats Server::stats() const {
  ServerStats out;
  out.connections_accepted = connections_accepted_.load();
  out.connections_rejected = connections_rejected_.load();
  out.requests = requests_.load();
  out.parse_errors = parse_errors_.load();
  out.range_errors = range_errors_.load();
  out.overloads = overloads_.load();
  out.read_timeouts = read_timeouts_.load();
  out.batcher = batcher_->stats();
  std::lock_guard<std::mutex> lock(mu_);
  out.connections_active = static_cast<int64_t>(connections_.size());
  return out;
}

std::string Server::FormatStatsLine() const {
  const MicroBatcher::Stats b = batcher_->stats();
  int64_t active;
  {
    std::lock_guard<std::mutex> lock(mu_);
    active = static_cast<int64_t>(connections_.size());
  }
  // `fingerprint=` is the checkpoint params fingerprint — the only version
  // field comparable *across* processes; the router's rolling-reload barrier
  // reads it to prove a shard fleet serves one parameter version.
  return common::StrFormat(
      "#stats\tusers=%lld\titems=%lld\tversion=%lld\tgeneration=%lld\t"
      "fingerprint=%llu\t"
      "requests=%lld\tparse_errors=%lld\trange_errors=%lld\toverloads=%lld\t"
      "submitted=%lld\trejected=%lld\tbatches=%lld\tpairs=%lld\t"
      "reloads=%lld\tconnections=%lld\n",
      static_cast<long long>(batcher_->num_users()),
      static_cast<long long>(batcher_->num_items()),
      static_cast<long long>(batcher_->params_version()),
      static_cast<long long>(batcher_->generation()),
      static_cast<unsigned long long>(batcher_->params_fingerprint()),
      static_cast<long long>(requests_.load()),
      static_cast<long long>(parse_errors_.load()),
      static_cast<long long>(range_errors_.load()),
      static_cast<long long>(overloads_.load()),
      static_cast<long long>(b.submitted), static_cast<long long>(b.rejected),
      static_cast<long long>(b.batches),
      static_cast<long long>(b.pairs_scored),
      static_cast<long long>(b.reloads), static_cast<long long>(active));
}

std::string Server::RenderMetricsText() const {
  return metrics_ == nullptr ? std::string() : metrics_->RenderText();
}

std::string Server::FormatMetricsResponse() const {
  if (metrics_ == nullptr) {
    return FormatError("metrics", "metrics are disabled on this server");
  }
  const std::string text = metrics_->RenderText();
  int64_t lines = 0;
  for (char c : text) lines += c == '\n' ? 1 : 0;
  return FormatMetricsHeader(lines) + text;
}

}  // namespace rrre::serve
