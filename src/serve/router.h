#ifndef RRRE_SERVE_ROUTER_H_
#define RRRE_SERVE_ROUTER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <shared_mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "obs/metrics.h"

namespace rrre::serve {

/// Consistent-hash ring over backend indices: each backend contributes
/// `virtual_nodes` points, a user id hashes to a position, and the backends
/// encountered walking clockwise from that position (first occurrence of
/// each index) form the user's deterministic preference order — home shard
/// first, replicas after. Adding or removing one backend moves only the keys
/// whose arc it owned (~1/N of them); everything else keeps its home shard,
/// which is what keeps per-shard tower caches warm across fleet resizes.
class ConsistentRing {
 public:
  ConsistentRing(int num_backends, int virtual_nodes);

  /// Every backend index exactly once, in ring-walk order from `user`'s
  /// position. The first entry is the home shard.
  std::vector<int> PreferenceOrder(int64_t user) const;

  int Owner(int64_t user) const { return PreferenceOrder(user)[0]; }

  int num_backends() const { return num_backends_; }

 private:
  int num_backends_;
  /// (point, backend index), sorted by point.
  std::vector<std::pair<uint64_t, int>> points_;
};

/// Configuration of the rrre_routed proxy.
struct RouterOptions {
  struct Backend {
    std::string host = "127.0.0.1";
    uint16_t port = 0;
  };
  /// The shard fleet. At startup every backend must be reachable and all
  /// must agree on corpus bounds and params fingerprint — a fleet already
  /// serving two parameter versions is refused rather than proxied.
  std::vector<Backend> backends;
  /// TCP port the router listens on; 0 picks an ephemeral port.
  uint16_t port = 0;
  int64_t max_connections = 128;
  /// Per-operation send/recv deadline on backend connections. A backend
  /// that stalls past this is treated exactly like a dead one: the request
  /// fails over to a replica.
  int backend_timeout_ms = 5000;
  /// Read deadline on client connections; 0 = none (same as ServerOptions).
  int read_timeout_ms = 0;
  /// Failover attempts beyond the first try, walking the user's ring
  /// preference order with equal-jitter backoff (loadgen's BackoffUs)
  /// between attempts.
  int64_t max_retries = 2;
  int64_t backoff_base_us = 500;
  int64_t backoff_cap_us = 50000;
  /// Health-check cadence: PING liveness + STATS fingerprint per backend.
  int health_period_ms = 200;
  /// Ring points per backend.
  int virtual_nodes = 64;
  /// Deadline for the rolling-reload fingerprint barrier: all serving
  /// backends must converge on one fingerprint within this long or the
  /// stragglers are quarantined.
  int reload_barrier_timeout_ms = 30000;
  /// When true the router owns a MetricsRegistry and answers METRICS with
  /// its own counters followed by every serving backend's exposition,
  /// relabeled with a per-shard label.
  bool enable_metrics = true;
};

struct RouterStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t requests = 0;      ///< Protocol requests parsed (incl. control).
  int64_t parse_errors = 0;
  int64_t retries = 0;       ///< Backend round-trips retried after a fault.
  int64_t failovers = 0;     ///< Requests answered by a non-home shard.
  int64_t upstream_errors = 0;  ///< Requests that exhausted every replica.
  int64_t fanouts = 0;       ///< Catalog requests fanned out across shards.
  int64_t reload_barriers = 0;  ///< Rolling reloads orchestrated.
  int64_t quarantined = 0;   ///< Backends currently fingerprint-diverged.
};

/// The rrre_routed sharding proxy: a thin line-protocol front-end that
/// consistent-hashes users across N rrre_served backends, fans bare-user
/// catalog requests out to every serving shard (contiguous item slices,
/// merged back in item order), health-checks backends via PING, fails
/// requests over to a replica on connection reset / EOF / deadline, and
/// orchestrates rolling RELOADs behind a params-fingerprint barrier so no
/// client connection ever observes two parameter versions.
///
/// Response bytes are relayed (or, for catalog fan-out, reassembled from
/// per-pair relays) verbatim, so a routed response is byte-identical to the
/// same request served by a single direct backend — scoring is
/// batch-composition invariant, which is what makes slicing a catalog
/// across shards safe.
///
/// Retry policy and idempotency: pair/catalog scoring, PING, STATS and
/// METRICS are idempotent, so a request that *may* have reached a backend
/// (partial send progress, or a torn response) is still safe to resend to a
/// replica. RELOAD is not idempotent per wire-attempt; a RELOAD whose
/// delivery is uncertain is never blindly resent — the router re-polls the
/// backend's STATS generation/fingerprint to learn whether it landed
/// (Socket::SendAll's bytes_sent out-param is what makes the distinction
/// observable).
///
/// Failpoints (armed per backend round-trip, see common/failpoint.h):
/// `router.backend.send` (injected failure before any byte leaves — the
/// never-sent path), `router.backend.reset` (connection reset after the
/// request was sent), `router.backend.stall` (backend deadline fires while
/// awaiting the response), `router.backend.torn` (response cut off
/// mid-line; the connection is condemned).
class Router {
 public:
  /// Probes every backend, verifies the fleet serves one parameter version,
  /// binds the listener and starts the accept + health threads.
  static common::Result<std::unique_ptr<Router>> Start(
      const RouterOptions& options);
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Bound port (useful with options.port == 0).
  uint16_t port() const { return listener_.local_port(); }

  /// Graceful drain; idempotent; blocks until everything is joined.
  void Shutdown();

  RouterStats stats() const;

  /// The fingerprint every serving backend agreed on at startup / after the
  /// last reload barrier.
  uint64_t fleet_fingerprint() const { return fleet_fingerprint_.load(); }

  /// Home shard of `user` on the ring (ignores health; tests use this to
  /// pick which backend to kill).
  int HomeShard(int64_t user) const { return ring_.Owner(user); }

  /// True when backend `index` is alive and not quarantined.
  bool BackendServing(int index) const;

 private:
  class ClientConn;
  struct BackendState;

  Router(const RouterOptions& options, ConsistentRing ring,
         common::Socket listener,
         std::unique_ptr<obs::MetricsRegistry> metrics);

  void AcceptLoop();
  void ReapFinishedConnections();
  void HealthLoop();
  /// One health pass: PING + STATS every backend, refresh fleet bounds,
  /// quarantine fingerprint divergers.
  void HealthPass();
  std::string FormatStatsLine() const;

  /// Serving backend indices in fleet order (alive, not quarantined).
  std::vector<int> ServingBackends() const;

  const RouterOptions options_;
  const ConsistentRing ring_;
  common::Socket listener_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* m_requests_ = nullptr;
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_retries_ = nullptr;
  obs::Counter* m_failovers_ = nullptr;
  obs::Counter* m_upstream_errors_ = nullptr;
  obs::Counter* m_fanouts_ = nullptr;
  obs::Counter* m_reload_barriers_ = nullptr;
  obs::Gauge* m_backends_serving_ = nullptr;
  obs::Gauge* m_quarantined_ = nullptr;
  obs::Gauge* m_connections_active_ = nullptr;

  std::vector<std::unique_ptr<BackendState>> backends_;
  /// Corpus bounds the fleet agreed on (refreshed by health passes).
  std::atomic<int64_t> fleet_users_{0};
  std::atomic<int64_t> fleet_items_{0};
  std::atomic<uint64_t> fleet_fingerprint_{0};

  /// The rolling-reload barrier. Scoring dispatch holds it shared; a RELOAD
  /// orchestration holds it exclusive until the fleet has converged on one
  /// fingerprint — that exclusion is the "no connection observes two
  /// parameter versions" invariant.
  mutable std::shared_mutex reload_mu_;

  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> parse_errors_{0};
  std::atomic<int64_t> retries_{0};
  std::atomic<int64_t> failovers_{0};
  std::atomic<int64_t> upstream_errors_{0};
  std::atomic<int64_t> fanouts_{0};
  std::atomic<int64_t> reload_barriers_{0};
  std::atomic<int64_t> connections_accepted_{0};

  mutable std::mutex mu_;  ///< Guards connections_ and shutdown_done_.
  std::vector<std::shared_ptr<ClientConn>> connections_;
  bool shutdown_done_ = false;

  std::thread accept_thread_;
  std::thread health_thread_;
};

}  // namespace rrre::serve

#endif  // RRRE_SERVE_ROUTER_H_
