#ifndef RRRE_SERVE_BATCHER_H_
#define RRRE_SERVE_BATCHER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/histogram.h"
#include "common/status.h"
#include "core/scorer.h"
#include "core/trainer.h"
#include "obs/metrics.h"

namespace rrre::serve {

/// Dynamic micro-batching scheduler in front of the tower-cached BatchScorer.
///
/// Producers (connection threads) enqueue single (user, item) requests with
/// TrySubmit; a dedicated scorer thread collects them into batches — up to
/// `max_batch` expanded pairs, or whatever arrived within `max_delay_us` of
/// the first queued request, whichever comes first — and runs one
/// BatchScorer::Score per batch. Batching across connections is what turns
/// many tiny per-request model calls into a few dense ones.
///
/// Admission control: the request queue is bounded by `queue_capacity`;
/// TrySubmit returns false instead of blocking or growing without bound, and
/// the caller answers the client with an explicit overload error.
///
/// Hot reload: RequestReload loads the checkpoint into a *fresh* trainer on
/// the scorer thread between batches and swaps it in only on success, so a
/// corrupt checkpoint never breaks the serving snapshot and no batch ever
/// mixes parameter versions (asserted via RrreTrainer::params_version()
/// around every Score call). The batch in flight when the reload lands
/// finishes on the old snapshot; later batches see the new one.
///
/// The model (trainer + scorer) is owned by the batcher and touched only by
/// the scorer thread — that single-writer discipline is the whole
/// concurrency story for the neural net.
class MicroBatcher {
 public:
  struct Options {
    int64_t max_batch = 64;        ///< Expanded pairs per batch (>= 1).
    int64_t max_delay_us = 1000;   ///< Linger after the first queued request.
    int64_t queue_capacity = 1024; ///< Admission bound, in queued requests.
    /// LRU bound on the BatchScorer tower caches (profiles per tower);
    /// 0 = unbounded. A long-lived server wants a bound — the caches
    /// otherwise grow with every distinct id ever scored.
    int64_t tower_cache_cap = 0;
    /// Start with the scorer gate closed (tests use this to fill the queue
    /// deterministically); call Resume() to open it.
    bool start_paused = false;
    /// When non-empty, serve store-backed: the constructor takes a
    /// pre-mapped TowerStore for the initial snapshot, and every reload
    /// re-maps this path and verifies it against the *new* checkpoint's
    /// params fingerprint (MapTowerStoreForCheckpoint) — store and
    /// parameters swap together or not at all. A reload pointing at a
    /// checkpoint whose store was not republished fails and keeps the old
    /// snapshot *and* the old store serving.
    std::string store_path;
    /// When non-empty, the checkpoint prefix backing the initial snapshot.
    /// Used to compute the params *fingerprint* surfaced in STATS — the
    /// durable, cross-process analogue of params_version() (which counts
    /// per-process mutations and is meaningless across a fleet). The
    /// router's rolling-reload barrier compares fingerprints across shards
    /// to prove they serve one parameter version; reloads recompute it from
    /// the reloaded prefix.
    std::string model_prefix;
    /// When set, the batcher mirrors its accounting into this registry
    /// (rrre_batcher_* counters, queue-depth gauge, batch histograms) for
    /// the METRICS exposition. Null disables the mirroring entirely — the
    /// configuration the serving bench compares against. Not owned; must
    /// outlive the batcher.
    obs::MetricsRegistry* metrics = nullptr;
  };

  struct ScoredPair {
    int64_t user = 0;
    int64_t item = 0;
    double rating = 0.0;
    double reliability = 0.0;
  };

  struct Stats {
    int64_t submitted = 0;     ///< Requests admitted to the queue.
    int64_t rejected = 0;      ///< Requests refused by admission control.
    int64_t batches = 0;       ///< Score calls executed.
    int64_t pairs_scored = 0;  ///< Expanded pairs across all batches.
    int64_t reloads = 0;       ///< Successful checkpoint swaps.
    common::Histogram batch_pairs;       ///< Batch size distribution (pairs).
    common::Histogram batch_latency_us;  ///< Per-batch Score latency.
  };

  /// One scored or failed request. On success `results` holds one entry for
  /// a pair request and `num_items` entries (items 0..n-1 in order) for a
  /// catalog request. Invoked on the scorer thread; must not block.
  using DoneFn = std::function<void(const common::Status&,
                                    const std::vector<ScoredPair>&)>;
  /// Reload outcome; `generation` is the batcher's snapshot counter after a
  /// successful swap (monotone across reloads, starts at 0).
  using ReloadDoneFn =
      std::function<void(const common::Status&, int64_t generation)>;

  /// Sentinel item id: score the user against the whole catalog.
  static constexpr int64_t kCatalogItem = -1;

  /// `trainer` must be fitted (or loaded). The scorer thread starts
  /// immediately unless options.start_paused. `store` is the pre-mapped
  /// tower store for the initial snapshot — required (and validated against
  /// the trainer) iff options.store_path is non-empty; map it with
  /// core::MapTowerStoreForCheckpoint so parameter identity is verified.
  MicroBatcher(std::unique_ptr<core::RrreTrainer> trainer, Options options,
               std::shared_ptr<const core::TowerStore> store = nullptr);
  ~MicroBatcher();

  MicroBatcher(const MicroBatcher&) = delete;
  MicroBatcher& operator=(const MicroBatcher&) = delete;

  /// Enqueues one request. Returns false when the queue is at capacity or
  /// the batcher is stopping — never blocks. `done` runs exactly once iff
  /// the request was admitted.
  bool TrySubmit(int64_t user, int64_t item, DoneFn done);

  /// Asynchronously swaps the serving snapshot to `prefix`. Processed on the
  /// scorer thread before the next batch; `done` always runs exactly once.
  void RequestReload(std::string prefix, ReloadDoneFn done);

  /// Gates batch execution (admission stays open). Stop() overrides a pause
  /// so shutdown always drains.
  void Pause();
  void Resume();

  /// Blocks until the queue, pending reloads and the in-flight batch are all
  /// done. Only meaningful while running (not paused).
  void Drain();

  /// Drains the queue, then joins the scorer thread. Idempotent. Further
  /// TrySubmit calls return false.
  void Stop();

  Stats stats() const;

  /// Corpus bounds of the current snapshot — what admission validates ids
  /// against. Updated by reloads.
  int64_t num_users() const { return num_users_.load(); }
  int64_t num_items() const { return num_items_.load(); }
  /// Snapshot counter: 0 at start, +1 per successful reload.
  int64_t generation() const { return generation_.load(); }
  /// params_version() of the current snapshot's trainer.
  int64_t params_version() const { return params_version_.load(); }
  /// CheckpointParamsFingerprint of the serving snapshot's checkpoint — a
  /// cross-process parameter identity. 0 when unknown (no
  /// Options::model_prefix configured, or fingerprinting failed).
  uint64_t params_fingerprint() const { return params_fingerprint_.load(); }
  /// True when serving from a materialized tower store.
  bool store_backed() const { return !options_.store_path.empty(); }

 private:
  struct WorkItem {
    int64_t user;
    int64_t item;  ///< kCatalogItem = whole catalog.
    DoneFn done;
  };
  struct ReloadRequest {
    std::string prefix;
    ReloadDoneFn done;
  };

  void ScorerLoop();
  /// Executes one batch outside the lock; invokes callbacks.
  void ExecuteBatch(std::vector<WorkItem> batch);
  void DoReload(ReloadRequest request);
  /// Builds a scorer over the current trainer with the configured cache cap.
  std::unique_ptr<core::BatchScorer> MakeScorer();
  /// Mirrors tower-cache hit/miss/eviction counters into the registry
  /// (scorer thread only — reads the scorer's cumulative stats and pushes
  /// the delta since the last mirror).
  void MirrorCacheStats();

  const Options options_;
  std::unique_ptr<core::RrreTrainer> trainer_;
  /// Current snapshot's mapped tower store (null when live-tower serving).
  /// Swapped together with trainer_ by DoReload; shared so a draining scorer
  /// can outlive a swap.
  std::shared_ptr<const core::TowerStore> store_;
  std::unique_ptr<core::BatchScorer> scorer_;

  /// Registry handles, resolved once in the constructor; all null when
  /// options_.metrics is null (the hot path then pays one branch each).
  obs::Counter* m_submitted_ = nullptr;
  obs::Counter* m_rejected_ = nullptr;
  obs::Counter* m_batches_ = nullptr;
  obs::Counter* m_pairs_scored_ = nullptr;
  obs::Counter* m_reloads_ = nullptr;
  obs::Gauge* m_queue_depth_ = nullptr;
  obs::Gauge* m_generation_ = nullptr;
  obs::HistogramMetric* m_batch_pairs_ = nullptr;
  obs::HistogramMetric* m_batch_latency_us_ = nullptr;
  obs::Counter* m_user_cache_hits_ = nullptr;
  obs::Counter* m_user_cache_misses_ = nullptr;
  obs::Counter* m_user_cache_evictions_ = nullptr;
  obs::Counter* m_item_cache_hits_ = nullptr;
  obs::Counter* m_item_cache_misses_ = nullptr;
  obs::Counter* m_item_cache_evictions_ = nullptr;
  /// Last-mirrored cumulative cache stats (scorer thread only); reset when a
  /// reload replaces the scorer.
  core::BatchScorer::CacheStats mirrored_user_stats_;
  core::BatchScorer::CacheStats mirrored_item_stats_;

  std::atomic<int64_t> num_users_{0};
  std::atomic<int64_t> num_items_{0};
  std::atomic<int64_t> generation_{0};
  std::atomic<int64_t> params_version_{0};
  std::atomic<uint64_t> params_fingerprint_{0};

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  ///< Wakes the scorer thread.
  std::condition_variable done_cv_;  ///< Wakes Drain/Stop waiters.
  std::deque<WorkItem> queue_;
  std::deque<ReloadRequest> reloads_;
  bool paused_ = false;
  bool stopping_ = false;
  bool executing_ = false;  ///< A batch or reload is running unlocked.
  Stats stats_;

  std::thread scorer_thread_;
};

}  // namespace rrre::serve

#endif  // RRRE_SERVE_BATCHER_H_
