#ifndef RRRE_SERVE_SERVER_H_
#define RRRE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/config.h"
#include "obs/metrics.h"
#include "serve/batcher.h"

namespace rrre::serve {

struct ServerOptions {
  /// Architecture config matching the checkpoint (the checkpoint stores
  /// parameters, not the RrreConfig).
  core::RrreConfig config;
  /// Checkpoint prefix loaded at startup and re-loaded on hot reload.
  std::string model_prefix;
  /// When non-empty, serve store-backed from this materialized tower store
  /// (mapped read-only at startup and re-mapped + fingerprint-verified on
  /// every reload — see MicroBatcher::Options::store_path). Startup fails if
  /// the store is missing, corrupt, or stale for the checkpoint.
  std::string store_path;
  /// TCP port to listen on; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;
  MicroBatcher::Options batcher;
  /// Connections beyond this are answered with "!ERR busy" and closed.
  int64_t max_connections = 256;
  /// Receive/send deadline on accepted connections in milliseconds; 0 = no
  /// deadline. With a deadline, a client that connects and then goes silent
  /// is disconnected instead of pinning a connection slot (and a graceful
  /// drain) forever, and a client that stops reading cannot stall the
  /// writer past the deadline either.
  int read_timeout_ms = 0;
  /// When true the server owns a MetricsRegistry, instruments itself and the
  /// batcher into it, and answers the METRICS verb with its exposition.
  /// False turns all metric writes into dead branches (the baseline the
  /// serving bench measures overhead against); METRICS then answers
  /// "!ERR metrics". STATS is unaffected either way.
  bool enable_metrics = true;
};

struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t connections_rejected = 0;
  int64_t requests = 0;      ///< Protocol requests parsed (incl. control).
  int64_t parse_errors = 0;
  int64_t range_errors = 0;
  int64_t overloads = 0;     ///< Requests refused by admission control.
  int64_t read_timeouts = 0; ///< Connections dropped by the read deadline.
  MicroBatcher::Stats batcher;
};

/// The long-lived rrre_served server: accepts concurrent line-protocol
/// connections (see serve/protocol.h), funnels score requests into the
/// MicroBatcher, and writes responses back in request order per connection.
///
/// Connection state machine: a reader thread parses lines and either answers
/// immediately (control, parse/range/overload errors) or registers an
/// ordered pending slot fulfilled later by the batcher; a writer thread
/// flushes slots strictly in request order, so pipelined clients get every
/// response, in order, exactly once.
///
/// Shutdown() drains gracefully: the listener stops, every connection's read
/// side is half-closed (clients see EOF for new requests), all admitted
/// requests still get their responses, then threads are joined.
class Server {
 public:
  /// Loads the checkpoint, binds the listener and starts the accept loop.
  static common::Result<std::unique_ptr<Server>> Start(
      const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound port (useful with options.port == 0).
  uint16_t port() const { return listener_.local_port(); }

  /// Asynchronous hot reload of options.model_prefix (the SIGHUP path).
  /// The outcome is logged; pass `done` to observe it.
  void Reload(MicroBatcher::ReloadDoneFn done = nullptr);

  /// Graceful drain; idempotent; blocks until everything is joined.
  void Shutdown();

  ServerStats stats() const;

  /// The METRICS exposition text (empty when metrics are disabled). The
  /// scrape is read-only: it never moves a metric, so back-to-back calls
  /// with no intervening traffic return byte-identical text.
  std::string RenderMetricsText() const;

  /// The scheduler, exposed for tests (Pause/Resume/Drain) and stats.
  MicroBatcher& batcher() { return *batcher_; }

 private:
  class Connection;

  Server(const ServerOptions& options,
         std::unique_ptr<obs::MetricsRegistry> metrics,
         std::unique_ptr<MicroBatcher> batcher, common::Socket listener);

  void AcceptLoop();
  /// Joins and erases finished connections (accept-loop thread only).
  void ReapFinishedConnections();
  std::string FormatStatsLine() const;
  std::string FormatMetricsResponse() const;

  ServerOptions options_;
  /// Owns the batcher's registry too (batcher options point into it); null
  /// when options_.enable_metrics is false. Declared before batcher_ so the
  /// registry outlives every handle.
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  obs::Counter* m_requests_ = nullptr;        ///< Score requests only.
  obs::Counter* m_parse_errors_ = nullptr;
  obs::Counter* m_range_errors_ = nullptr;
  obs::Counter* m_overloads_ = nullptr;
  obs::Counter* m_connections_accepted_ = nullptr;
  obs::Counter* m_connections_rejected_ = nullptr;
  obs::Counter* m_read_timeouts_ = nullptr;
  obs::Gauge* m_connections_active_ = nullptr;
  std::unique_ptr<MicroBatcher> batcher_;
  common::Socket listener_;

  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> parse_errors_{0};
  std::atomic<int64_t> range_errors_{0};
  std::atomic<int64_t> overloads_{0};
  std::atomic<int64_t> read_timeouts_{0};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};

  mutable std::mutex mu_;  ///< Guards connections_ and shutdown_done_.
  std::vector<std::shared_ptr<Connection>> connections_;
  bool shutdown_done_ = false;

  std::thread accept_thread_;
};

}  // namespace rrre::serve

#endif  // RRRE_SERVE_SERVER_H_
