#ifndef RRRE_SERVE_SERVER_H_
#define RRRE_SERVE_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/socket.h"
#include "common/status.h"
#include "core/config.h"
#include "serve/batcher.h"

namespace rrre::serve {

struct ServerOptions {
  /// Architecture config matching the checkpoint (the checkpoint stores
  /// parameters, not the RrreConfig).
  core::RrreConfig config;
  /// Checkpoint prefix loaded at startup and re-loaded on hot reload.
  std::string model_prefix;
  /// TCP port to listen on; 0 picks an ephemeral port (see Server::port()).
  uint16_t port = 0;
  MicroBatcher::Options batcher;
  /// Connections beyond this are answered with "!ERR busy" and closed.
  int64_t max_connections = 256;
};

struct ServerStats {
  int64_t connections_accepted = 0;
  int64_t connections_active = 0;
  int64_t connections_rejected = 0;
  int64_t requests = 0;      ///< Protocol requests parsed (incl. control).
  int64_t parse_errors = 0;
  int64_t range_errors = 0;
  int64_t overloads = 0;     ///< Requests refused by admission control.
  MicroBatcher::Stats batcher;
};

/// The long-lived rrre_served server: accepts concurrent line-protocol
/// connections (see serve/protocol.h), funnels score requests into the
/// MicroBatcher, and writes responses back in request order per connection.
///
/// Connection state machine: a reader thread parses lines and either answers
/// immediately (control, parse/range/overload errors) or registers an
/// ordered pending slot fulfilled later by the batcher; a writer thread
/// flushes slots strictly in request order, so pipelined clients get every
/// response, in order, exactly once.
///
/// Shutdown() drains gracefully: the listener stops, every connection's read
/// side is half-closed (clients see EOF for new requests), all admitted
/// requests still get their responses, then threads are joined.
class Server {
 public:
  /// Loads the checkpoint, binds the listener and starts the accept loop.
  static common::Result<std::unique_ptr<Server>> Start(
      const ServerOptions& options);
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Bound port (useful with options.port == 0).
  uint16_t port() const { return listener_.local_port(); }

  /// Asynchronous hot reload of options.model_prefix (the SIGHUP path).
  /// The outcome is logged; pass `done` to observe it.
  void Reload(MicroBatcher::ReloadDoneFn done = nullptr);

  /// Graceful drain; idempotent; blocks until everything is joined.
  void Shutdown();

  ServerStats stats() const;

  /// The scheduler, exposed for tests (Pause/Resume/Drain) and stats.
  MicroBatcher& batcher() { return *batcher_; }

 private:
  class Connection;

  Server(const ServerOptions& options, std::unique_ptr<MicroBatcher> batcher,
         common::Socket listener);

  void AcceptLoop();
  /// Joins and erases finished connections (accept-loop thread only).
  void ReapFinishedConnections();
  std::string FormatStatsLine() const;

  ServerOptions options_;
  std::unique_ptr<MicroBatcher> batcher_;
  common::Socket listener_;

  std::atomic<bool> stopping_{false};
  std::atomic<int64_t> requests_{0};
  std::atomic<int64_t> parse_errors_{0};
  std::atomic<int64_t> range_errors_{0};
  std::atomic<int64_t> overloads_{0};
  std::atomic<int64_t> connections_accepted_{0};
  std::atomic<int64_t> connections_rejected_{0};

  mutable std::mutex mu_;  ///< Guards connections_ and shutdown_done_.
  std::vector<std::shared_ptr<Connection>> connections_;
  bool shutdown_done_ = false;

  std::thread accept_thread_;
};

}  // namespace rrre::serve

#endif  // RRRE_SERVE_SERVER_H_
