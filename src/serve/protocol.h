#ifndef RRRE_SERVE_PROTOCOL_H_
#define RRRE_SERVE_PROTOCOL_H_

#include <cstdint>
#include <string>
#include <string_view>

namespace rrre::serve {

/// The rrre_served line protocol (one request per '\n'-terminated line,
/// fields tab-separated; CRLF accepted):
///
///   request   := pair | catalog | control | comment | blank
///   pair      := INT '\t' INT        -- user, item
///   catalog   := INT                 -- user, scored against every item
///   control   := "PING" | "STATS" | "METRICS" | "RELOAD" | "QUIT"
///   comment   := '#' ...             -- ignored, no response
///
/// Every pair/catalog/control request gets exactly one response, written in
/// request order per connection (pipelining is allowed and encouraged):
///
///   pair    -> "user \t item \t rating \t reliability"   (%.17g floats,
///              byte-identical to the offline rrre_serve TSV rows)
///   catalog -> "#catalog \t user \t count" followed by `count` pair lines
///   PING    -> "#pong"
///   STATS   -> "#stats \t key=value ..."  (includes users=, items=,
///              version=)
///   METRICS -> "#metrics \t lines=N" followed by N lines of Prometheus-style
///              text exposition (counters, gauges, histogram summaries); the
///              scrape itself does not move any exposed metric, so two
///              scrapes with no intervening traffic are byte-identical
///   RELOAD  -> "#reloaded \t version=N" after the checkpoint swap
///   QUIT    -> "#bye", then the server closes the connection
///
/// Errors are one line: "!ERR \t code \t message" with codes `parse`,
/// `range`, `overload`, `reload`, `shutdown`, `busy`. An overloaded server
/// answers `!ERR overload` immediately instead of queueing unboundedly.
struct Request {
  enum class Type {
    kBlank,    ///< Empty line or comment — no response.
    kPair,     ///< Score (user, item).
    kCatalog,  ///< Score user against the full item catalog.
    kPing,
    kStats,
    kMetrics,
    kReload,
    kQuit,
    kInvalid,  ///< Syntax error; `error` says why.
  };
  Type type = Type::kInvalid;
  int64_t user = -1;
  int64_t item = -1;
  std::string error;
};

/// Parses one protocol line (without its terminator). Range validation is
/// the server's job — this only checks syntax.
Request ParseRequest(std::string_view line);

/// "user \t item \t rating \t reliability \n" with %.17g floats — the exact
/// row format of offline rrre_serve output, so online and offline scores can
/// be compared byte-for-byte.
std::string FormatScoreLine(int64_t user, int64_t item, double rating,
                            double reliability);

std::string FormatCatalogHeader(int64_t user, int64_t count);
/// "#metrics \t lines=N"; the N exposition lines follow verbatim.
std::string FormatMetricsHeader(int64_t lines);
std::string FormatError(std::string_view code, std::string_view message);
std::string FormatPong();
std::string FormatBye();
std::string FormatReloaded(int64_t version);

/// True when `line` (sans terminator) is an error response.
bool IsErrorLine(std::string_view line);
/// True for "!ERR \t overload \t ..." specifically.
bool IsOverloadLine(std::string_view line);

}  // namespace rrre::serve

#endif  // RRRE_SERVE_PROTOCOL_H_
