#ifndef RRRE_SERVE_LOADGEN_H_
#define RRRE_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/status.h"

namespace rrre::serve {

/// Closed-loop load generator for rrre_served, shared by tools/rrre_loadgen
/// and bench_serving: N concurrent connections each issue pair requests
/// (uniformly random ids) and wait for the response, optionally paced to a
/// target aggregate QPS.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int64_t connections = 4;
  /// Total requests across all connections.
  int64_t total_requests = 1000;
  /// Aggregate target rate; 0 = as fast as the closed loop allows.
  double target_qps = 0.0;
  uint64_t seed = 42;
  /// Id ranges to draw from. 0 = discover from the server via STATS.
  int64_t num_users = 0;
  int64_t num_items = 0;
};

struct LoadGenReport {
  int64_t sent = 0;
  int64_t scored = 0;      ///< Score-line responses.
  int64_t overloaded = 0;  ///< "!ERR overload" responses.
  int64_t errors = 0;      ///< Other error responses.
  double seconds = 0.0;    ///< Wall clock over the whole run.
  double qps = 0.0;        ///< Responses per second.
  /// Per-request round-trip latency, merged across connections.
  common::Histogram latency_us;
};

/// Runs the load and blocks until every connection finished. Fails if the
/// server is unreachable or a connection breaks mid-run.
common::Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

}  // namespace rrre::serve

#endif  // RRRE_SERVE_LOADGEN_H_
