#ifndef RRRE_SERVE_LOADGEN_H_
#define RRRE_SERVE_LOADGEN_H_

#include <cstdint>
#include <string>

#include "common/histogram.h"
#include "common/rng.h"
#include "common/status.h"

namespace rrre::serve {

/// Closed-loop load generator for rrre_served, shared by tools/rrre_loadgen
/// and bench_serving: N concurrent connections each issue pair requests
/// (uniformly random ids) and wait for the response, optionally paced to a
/// target aggregate QPS.
struct LoadGenOptions {
  std::string host = "127.0.0.1";
  uint16_t port = 0;
  int64_t connections = 4;
  /// Total requests across all connections.
  int64_t total_requests = 1000;
  /// Aggregate target rate; 0 = as fast as the closed loop allows.
  double target_qps = 0.0;
  uint64_t seed = 42;
  /// Id ranges to draw from. 0 = discover from the server via STATS.
  int64_t num_users = 0;
  int64_t num_items = 0;
  /// Retries per request on "!ERR overload", with exponential backoff +
  /// jitter between attempts (see BackoffUs). 0 = report overloads as-is,
  /// preserving the closed-loop semantics bench_serving measures.
  int64_t max_retries = 0;
  /// Backoff base: attempt k waits roughly base * 2^k microseconds (capped,
  /// jittered) before the retry.
  int64_t backoff_base_us = 1000;
  int64_t backoff_cap_us = 100000;
};

/// Counter contract: every request settles exactly once — as `scored`,
/// `overloaded` (an "!ERR overload" answer *after* the retry budget is
/// spent; never folded into `errors`), or `errors` (any other error
/// response). `sent` counts wire attempts, so the books always balance:
///   sent == scored + overloaded + errors + retried.
/// test_failpoints asserts this accounting under deterministic overload.
struct LoadGenReport {
  int64_t sent = 0;        ///< Wire attempts (first tries + retries).
  int64_t scored = 0;      ///< Score-line responses.
  int64_t overloaded = 0;  ///< "!ERR overload" responses (post-retry).
  int64_t errors = 0;      ///< Other error responses.
  int64_t retried = 0;     ///< Re-sends triggered by overload responses.
  double seconds = 0.0;    ///< Wall clock over the whole run.
  double qps = 0.0;        ///< Responses per second.
  /// Per-request round-trip latency, merged across connections.
  common::Histogram latency_us;
};

/// Runs the load and blocks until every connection finished. Fails if the
/// server is unreachable or a connection breaks mid-run.
common::Result<LoadGenReport> RunLoadGen(const LoadGenOptions& options);

/// Microseconds to wait before retry `attempt` (0-based): equal-jitter
/// exponential backoff. The ceiling doubles per attempt from `base_us` up to
/// `cap_us`; the wait is ceiling/2 plus a uniform draw over the other half,
/// so concurrent clients hitting the same overloaded server decorrelate
/// instead of retrying in lockstep.
int64_t BackoffUs(int64_t attempt, int64_t base_us, int64_t cap_us,
                  common::Rng& rng);

}  // namespace rrre::serve

#endif  // RRRE_SERVE_LOADGEN_H_
