#ifndef RRRE_DATA_ADVERSARY_H_
#define RRRE_DATA_ADVERSARY_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/profiles.h"

namespace rrre::data {

/// Escalating evasion tiers of the adversarial fraud arena. Each tier
/// removes one of the signals the paper's detectors (and the behavioral
/// baselines) rely on, so a model trained against tier t faces a genuinely
/// harder distribution at tier t+1.
enum class AdversaryTier : int {
  /// The static campaigns of the one-shot generator: spam-register text with
  /// a campaign-shared template phrase, a burst window, extreme ratings.
  kStatic = 0,
  /// Paraphrased spam: campaign text recombined out of the *benign*
  /// wordbanks (no spam register, no template) — the textual-signal killer.
  /// Rating, burst and authorship signals remain.
  kParaphrase = 1,
  /// Rating camouflage + slow-burn sockpuppet rings (FairJudge's unfair-user
  /// attack model): fake ratings sit near the item's benign mean with only a
  /// small push in the campaign direction, campaigns are executed by fixed
  /// sockpuppet rings, and their reviews drip across the whole partition
  /// window instead of bursting. Only the authorship-graph signal remains.
  kCamouflage = 2,
};

/// One phase of the tier schedule: from `start_day` (inclusive) the arena
/// emits campaigns at `tier`, until the next phase begins.
struct TierPhase {
  int64_t start_day = 0;
  AdversaryTier tier = AdversaryTier::kStatic;
};

struct AdversaryConfig {
  /// Whole-horizon corpus shape; profile.horizon_days is the arena horizon
  /// and profile.num_reviews the total volume across all partitions.
  DatasetProfile profile;
  /// Escalation schedule, ascending by start_day; the first phase must start
  /// at day 0. The effective tier of a partition is the tier of its first
  /// day, so waves begin on partition boundaries.
  std::vector<TierPhase> schedule = {{0, AdversaryTier::kStatic}};
  /// Days per streamed partition; the horizon is split into
  /// ceil(horizon_days / days_per_partition) partitions.
  int64_t days_per_partition = 30;
  uint64_t seed = 42;
  /// Reviews in each partition's held-out eval slice; 0 derives
  /// max(32, partition_volume / 5). Eval slices carry *true* process labels
  /// (no filtering-oracle noise) — detection lag is measured against ground
  /// truth, not against the noisy oracle the training labels simulate.
  int64_t eval_reviews_per_partition = 0;
  /// Sockpuppet ring size at tier 2 (the fraudster population is split into
  /// ceil(num_fraudsters / ring_size) fixed rings).
  int64_t ring_size = 4;
};

/// A drifting-fraud world that emits time-sliced day partitions of reviews.
///
/// The latent world (item qualities/categories/factors, user biases and
/// behavioral types, the fraudster population and its sockpuppet rings,
/// popularity weights) is drawn once at construction from `seed`. Every
/// partition and eval slice is then generated from a keyed, non-advancing
/// `Rng::Fork` of that frozen master state: partition k is a pure function
/// of (profile, schedule, seed, k). Re-generating it — in any order, from
/// any process, after a kill-and-restart, under any thread-pool size —
/// yields bitwise-identical reviews, which is what lets the streaming
/// driver's kill-then-resume retrain match an uninterrupted run byte for
/// byte.
class AdversaryModel {
 public:
  explicit AdversaryModel(AdversaryConfig config);

  int64_t num_partitions() const { return num_partitions_; }
  int64_t days_per_partition() const { return config_.days_per_partition; }
  int64_t num_users() const { return config_.profile.num_users; }
  int64_t num_items() const { return config_.profile.num_items; }
  const AdversaryConfig& config() const { return config_; }

  /// Tier in force on an absolute day of the horizon.
  AdversaryTier TierOnDay(int64_t day) const;
  /// Tier of partition k — the tier of its first day.
  AdversaryTier TierOfPartition(int64_t k) const;

  /// Training reviews of partition k, timestamped within
  /// [k*days_per_partition, min(horizon, (k+1)*days_per_partition)).
  /// Labels carry the profile's filtering-oracle noise. Indexed.
  ReviewDataset Partition(int64_t k) const;

  /// Held-out labeled slice for partition k, drawn from the same processes
  /// on an independent keyed stream (never overlaps Partition(k)'s draws)
  /// with noise-free labels. Indexed.
  ReviewDataset EvalSlice(int64_t k) const;

  /// Partitions 0..k concatenated in partition order — the cumulative corpus
  /// a streaming retrain at partition k trains on. Indexed.
  ReviewDataset CumulativeThrough(int64_t k) const;

  /// Training reviews in partition k (before label noise, campaign reviews
  /// included). Exposed so tests and benches can size work without
  /// generating.
  int64_t PartitionVolume(int64_t k) const;

  /// Latent-state accessors for tests and diagnostics.
  const std::vector<bool>& is_fraudster() const { return is_fraudster_; }
  const std::vector<std::vector<int64_t>>& rings() const { return rings_; }
  /// Expected benign-process mean rating of an item (what tier-2 camouflage
  /// ratings hug).
  double ItemBenignMean(int64_t item) const;

 private:
  /// Generates `n_total` reviews into the window [day0, day1) at `tier`.
  /// `oracle_noise` selects training labels (noisy) vs eval labels (true).
  ReviewDataset GenerateSlice(common::Rng& rng, int64_t day0, int64_t day1,
                              int64_t n_total, AdversaryTier tier,
                              bool oracle_noise) const;

  AdversaryConfig config_;
  int64_t num_partitions_ = 0;
  double campaign_fraction_ = 0.0;

  // Latent world, fixed at construction.
  std::vector<int> item_category_;
  std::vector<double> item_quality_;
  std::vector<std::vector<double>> item_factors_;
  std::vector<double> user_bias_;
  std::vector<std::vector<double>> user_factors_;
  std::vector<bool> is_hasty_;
  std::vector<bool> is_contrarian_;
  /// Position of a hasty user's binge window within any partition, as a
  /// fraction of the window (per-user, fixed across partitions).
  std::vector<double> hasty_window_frac_;
  std::vector<bool> is_fraudster_;
  std::vector<int64_t> fraudsters_;
  std::vector<std::vector<int64_t>> rings_;
  std::vector<double> item_pop_;
  std::vector<double> benign_author_weights_;

  /// Master state after the world build; partitions fork from it with
  /// Fork(stream) which never advances it.
  common::Rng master_;
};

}  // namespace rrre::data

#endif  // RRRE_DATA_ADVERSARY_H_
