#include "data/review_text.h"

#include <algorithm>
#include <cmath>
#include <string_view>

#include "data/wordbanks.h"

namespace rrre::data {

using common::Rng;

namespace {

template <typename Pool>
std::string_view Pick(const Pool& pool, Rng& rng) {
  return pool[rng.UniformInt(static_cast<uint64_t>(pool.size()))];
}

}  // namespace

std::vector<double> PowerLawWeights(int64_t n, double skew, Rng& rng) {
  std::vector<int64_t> ranks(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) ranks[static_cast<size_t>(i)] = i;
  rng.Shuffle(ranks);
  std::vector<double> weights(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) {
    weights[static_cast<size_t>(i)] =
        std::pow(static_cast<double>(ranks[static_cast<size_t>(i)]) + 1.0,
                 -skew);
  }
  return weights;
}

float ClampRating(double r) {
  return static_cast<float>(std::clamp(std::round(r), 1.0, 5.0));
}

std::string BenignText(float rating, int category, Rng& rng) {
  const int64_t len = 8 + static_cast<int64_t>(rng.UniformInt(uint64_t{22}));
  std::string out;
  for (int64_t t = 0; t < len; ++t) {
    const double roll = rng.Uniform();
    std::string_view tok;
    if (roll < 0.40) {
      tok = Pick(wordbanks::Function(), rng);
    } else if (roll < 0.65) {
      tok = Pick(wordbanks::Aspects(category), rng);
    } else {
      // Sentiment word matching the rating, with some hedging noise.
      const double noise = rng.Uniform();
      if (rating >= 4.0f) {
        tok = noise < 0.85 ? Pick(wordbanks::Positive(), rng)
                           : Pick(wordbanks::Neutral(), rng);
      } else if (rating <= 2.0f) {
        tok = noise < 0.85 ? Pick(wordbanks::Negative(), rng)
                           : Pick(wordbanks::Neutral(), rng);
      } else {
        if (noise < 0.6) {
          tok = Pick(wordbanks::Neutral(), rng);
        } else if (noise < 0.8) {
          tok = Pick(wordbanks::Positive(), rng);
        } else {
          tok = Pick(wordbanks::Negative(), rng);
        }
      }
    }
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

std::string HastyText(float rating, int category, Rng& rng) {
  const int64_t len = 3 + static_cast<int64_t>(rng.UniformInt(uint64_t{4}));
  std::string out;
  for (int64_t t = 0; t < len; ++t) {
    const double roll = rng.Uniform();
    std::string_view tok;
    if (roll < 0.4) {
      tok = Pick(wordbanks::Function(), rng);
    } else if (roll < 0.6) {
      tok = Pick(wordbanks::Aspects(category), rng);
    } else if (rating >= 4.0f) {
      tok = Pick(wordbanks::Positive(), rng);
    } else if (rating <= 2.0f) {
      tok = Pick(wordbanks::Negative(), rng);
    } else {
      tok = Pick(wordbanks::Neutral(), rng);
    }
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

std::string SpamText(bool promote, int category, size_t template_id,
                     Rng& rng) {
  const int64_t len = 8 + static_cast<int64_t>(rng.UniformInt(uint64_t{14}));
  std::string out;
  for (int64_t t = 0; t < len; ++t) {
    const double roll = rng.Uniform();
    std::string_view tok;
    if (roll < 0.50) {
      tok = promote ? Pick(wordbanks::SpamPromote(), rng)
                    : Pick(wordbanks::SpamDemote(), rng);
    } else if (roll < 0.80) {
      tok = Pick(wordbanks::Function(), rng);
    } else if (roll < 0.92) {
      tok = Pick(wordbanks::Aspects(category), rng);
    } else {
      // Sentiment-consistent camouflage words.
      tok = promote ? Pick(wordbanks::Positive(), rng)
                    : Pick(wordbanks::Negative(), rng);
    }
    if (!out.empty()) out += ' ';
    out += tok;
  }
  if (rng.Uniform() < 0.5) {
    const auto& templates = wordbanks::SpamTemplates();
    const auto& phrase = templates[template_id % templates.size()];
    for (std::string_view tok : phrase) {
      out += ' ';
      out += tok;
    }
  }
  return out;
}

std::string ParaphrasedSpamText(bool promote, int category, Rng& rng) {
  const int64_t len = 8 + static_cast<int64_t>(rng.UniformInt(uint64_t{18}));
  std::string out;
  for (int64_t t = 0; t < len; ++t) {
    const double roll = rng.Uniform();
    std::string_view tok;
    if (roll < 0.42) {
      tok = Pick(wordbanks::Function(), rng);
    } else if (roll < 0.68) {
      tok = Pick(wordbanks::Aspects(category), rng);
    } else {
      // The sentiment of an honest rating-consistent review, hedged exactly
      // like a benign author would hedge.
      const double noise = rng.Uniform();
      if (promote) {
        tok = noise < 0.85 ? Pick(wordbanks::Positive(), rng)
                           : Pick(wordbanks::Neutral(), rng);
      } else {
        tok = noise < 0.85 ? Pick(wordbanks::Negative(), rng)
                           : Pick(wordbanks::Neutral(), rng);
      }
    }
    if (!out.empty()) out += ' ';
    out += tok;
  }
  return out;
}

}  // namespace rrre::data
