#include "data/adversary.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "data/review_text.h"
#include "data/wordbanks.h"

namespace rrre::data {

using common::Rng;

namespace {

constexpr int kLatentDim = 4;

/// Keyed stream ids for the per-partition forks. Partition k trains from
/// stream 2k, evaluates from stream 2k+1 — disjoint by construction.
uint64_t TrainStream(int64_t k) { return static_cast<uint64_t>(2 * k); }
uint64_t EvalStream(int64_t k) { return static_cast<uint64_t>(2 * k + 1); }

}  // namespace

AdversaryModel::AdversaryModel(AdversaryConfig config)
    : config_(std::move(config)), master_(config_.seed) {
  const DatasetProfile& p = config_.profile;
  RRRE_CHECK_GT(p.num_reviews, 0);
  RRRE_CHECK_GT(p.num_users, 0);
  RRRE_CHECK_GT(p.num_items, 0);
  RRRE_CHECK_GE(p.fake_fraction, 0.0);
  RRRE_CHECK_LT(p.fake_fraction, 1.0);
  RRRE_CHECK_GT(config_.days_per_partition, 0);
  RRRE_CHECK_GT(p.horizon_days, 0);
  RRRE_CHECK(!config_.schedule.empty());
  RRRE_CHECK_EQ(config_.schedule.front().start_day, 0)
      << "the tier schedule must cover day 0";
  for (size_t i = 1; i < config_.schedule.size(); ++i) {
    RRRE_CHECK_GT(config_.schedule[i].start_day,
                  config_.schedule[i - 1].start_day)
        << "tier phases must ascend by start_day";
  }
  num_partitions_ = (p.horizon_days + config_.days_per_partition - 1) /
                    config_.days_per_partition;

  const int64_t num_users = p.num_users;
  const int64_t num_items = p.num_items;

  // --- Latent world: same processes as the one-shot generator --------------
  Rng rng = master_;  // World draws advance a copy; master_ stays at seed
                      // state so keyed forks are stable. The copy's final
                      // state is folded back below.
  item_category_.resize(static_cast<size_t>(num_items));
  item_quality_.resize(static_cast<size_t>(num_items));
  item_factors_.resize(static_cast<size_t>(num_items));
  const int num_cats = std::min(p.num_categories, wordbanks::NumCategories());
  for (int64_t i = 0; i < num_items; ++i) {
    item_category_[static_cast<size_t>(i)] =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_cats)));
    item_quality_[static_cast<size_t>(i)] =
        std::clamp(rng.Normal(0.0, 0.8), -1.6, 1.6);
    auto& f = item_factors_[static_cast<size_t>(i)];
    f.resize(kLatentDim);
    for (double& v : f) v = rng.Normal();
  }

  user_bias_.resize(static_cast<size_t>(num_users));
  user_factors_.resize(static_cast<size_t>(num_users));
  is_hasty_.assign(static_cast<size_t>(num_users), false);
  is_contrarian_.assign(static_cast<size_t>(num_users), false);
  hasty_window_frac_.assign(static_cast<size_t>(num_users), 0.0);
  for (int64_t u = 0; u < num_users; ++u) {
    user_bias_[static_cast<size_t>(u)] = rng.Normal(0.0, 0.25);
    auto& f = user_factors_[static_cast<size_t>(u)];
    f.resize(kLatentDim);
    for (double& v : f) v = rng.Normal();
    const double roll = rng.Uniform();
    if (roll < p.hasty_user_fraction) {
      is_hasty_[static_cast<size_t>(u)] = true;
      hasty_window_frac_[static_cast<size_t>(u)] = rng.Uniform();
    } else if (roll < p.hasty_user_fraction + p.contrarian_user_fraction) {
      is_contrarian_[static_cast<size_t>(u)] = true;
    }
  }

  const int64_t num_fraudsters = std::max<int64_t>(
      1, static_cast<int64_t>(p.fraud_user_fraction * num_users));
  is_fraudster_.assign(static_cast<size_t>(num_users), false);
  auto fraud_picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(num_users), static_cast<size_t>(num_fraudsters));
  fraudsters_.reserve(fraud_picks.size());
  for (size_t pick : fraud_picks) {
    is_fraudster_[pick] = true;
    fraudsters_.push_back(static_cast<int64_t>(pick));
  }

  // Sockpuppet rings: the fraudster population split into fixed cells. A
  // tier-2 campaign is executed by exactly one ring, so its authorship graph
  // is concentrated — the one signal camouflage cannot wash out.
  const int64_t ring_size = std::max<int64_t>(1, config_.ring_size);
  for (size_t start = 0; start < fraudsters_.size();
       start += static_cast<size_t>(ring_size)) {
    const size_t end = std::min(fraudsters_.size(),
                                start + static_cast<size_t>(ring_size));
    rings_.emplace_back(fraudsters_.begin() + static_cast<int64_t>(start),
                        fraudsters_.begin() + static_cast<int64_t>(end));
  }

  item_pop_ = PowerLawWeights(num_items, p.item_popularity_skew, rng);
  const std::vector<double> user_act =
      PowerLawWeights(num_users, p.user_activity_skew, rng);
  benign_author_weights_ = user_act;
  for (int64_t u = 0; u < num_users; ++u) {
    if (is_fraudster_[static_cast<size_t>(u)]) {
      benign_author_weights_[static_cast<size_t>(u)] *= p.camouflage_rate;
    }
  }

  const double denom = 1.0 - p.filter_miss_rate - p.filter_false_positive_rate;
  RRRE_CHECK_GT(denom, 0.0);
  campaign_fraction_ = std::clamp(
      (p.fake_fraction - p.filter_false_positive_rate) / denom, 0.0, 0.9);

  // Freeze the post-world state as the fork parent: every partition stream
  // depends on the complete world build, and nothing ever advances it again.
  master_ = rng;
}

AdversaryTier AdversaryModel::TierOnDay(int64_t day) const {
  AdversaryTier tier = config_.schedule.front().tier;
  for (const TierPhase& phase : config_.schedule) {
    if (phase.start_day > day) break;
    tier = phase.tier;
  }
  return tier;
}

AdversaryTier AdversaryModel::TierOfPartition(int64_t k) const {
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, num_partitions_);
  return TierOnDay(k * config_.days_per_partition);
}

int64_t AdversaryModel::PartitionVolume(int64_t k) const {
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, num_partitions_);
  const int64_t base = config_.profile.num_reviews / num_partitions_;
  const int64_t rem = config_.profile.num_reviews % num_partitions_;
  return base + (k < rem ? 1 : 0);
}

double AdversaryModel::ItemBenignMean(int64_t item) const {
  // User bias and the factor dot product are zero-mean across the
  // population, so the expected benign-process rating of an item reduces to
  // the quality term of the generator's mean formula.
  return 3.25 + 0.9 * item_quality_[static_cast<size_t>(item)];
}

ReviewDataset AdversaryModel::Partition(int64_t k) const {
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, num_partitions_);
  Rng rng = master_.Fork(TrainStream(k));
  const int64_t day0 = k * config_.days_per_partition;
  const int64_t day1 =
      std::min(config_.profile.horizon_days, day0 + config_.days_per_partition);
  return GenerateSlice(rng, day0, day1, PartitionVolume(k), TierOfPartition(k),
                       /*oracle_noise=*/true);
}

ReviewDataset AdversaryModel::EvalSlice(int64_t k) const {
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, num_partitions_);
  Rng rng = master_.Fork(EvalStream(k));
  const int64_t day0 = k * config_.days_per_partition;
  const int64_t day1 =
      std::min(config_.profile.horizon_days, day0 + config_.days_per_partition);
  int64_t n = config_.eval_reviews_per_partition;
  if (n <= 0) n = std::max<int64_t>(32, PartitionVolume(k) / 5);
  return GenerateSlice(rng, day0, day1, n, TierOfPartition(k),
                       /*oracle_noise=*/false);
}

ReviewDataset AdversaryModel::CumulativeThrough(int64_t k) const {
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, num_partitions_);
  ReviewDataset out = Partition(0);
  for (int64_t i = 1; i <= k; ++i) {
    out = ReviewDataset::Merge(out, Partition(i));
  }
  return out;
}

ReviewDataset AdversaryModel::GenerateSlice(Rng& rng, int64_t day0,
                                            int64_t day1, int64_t n_total,
                                            AdversaryTier tier,
                                            bool oracle_noise) const {
  const DatasetProfile& p = config_.profile;
  const int64_t window_days = std::max<int64_t>(1, day1 - day0);
  const double fpr = oracle_noise ? p.filter_false_positive_rate : 0.0;
  const double miss = oracle_noise ? p.filter_miss_rate : 0.0;
  const int64_t n_fake =
      static_cast<int64_t>(campaign_fraction_ * static_cast<double>(n_total));
  const int64_t n_benign = n_total - n_fake;

  ReviewDataset ds(p.num_users, p.num_items);

  // --- Benign reviews (identical process to the one-shot generator, but
  // timestamps confined to this partition's window) ------------------------
  for (int64_t n = 0; n < n_benign; ++n) {
    const int64_t u =
        static_cast<int64_t>(rng.Categorical(benign_author_weights_));
    const int64_t i = static_cast<int64_t>(rng.Categorical(item_pop_));
    double dot = 0.0;
    for (int d = 0; d < kLatentDim; ++d) {
      dot += user_factors_[static_cast<size_t>(u)][static_cast<size_t>(d)] *
             item_factors_[static_cast<size_t>(i)][static_cast<size_t>(d)];
    }
    double mean = 3.25 + user_bias_[static_cast<size_t>(u)] +
                  0.9 * item_quality_[static_cast<size_t>(i)] + 0.35 * dot;
    if (is_contrarian_[static_cast<size_t>(u)]) {
      mean = 6.5 - mean;
    }
    Review r;
    r.user = u;
    r.item = i;
    r.rating = ClampRating(mean + rng.Normal(0.0, 0.7));
    r.label = rng.Bernoulli(fpr) ? ReliabilityLabel::kFake
                                 : ReliabilityLabel::kBenign;
    if (is_hasty_[static_cast<size_t>(u)]) {
      if (rng.Uniform() < 0.5) {
        r.rating = r.rating >= 3.0f ? 5.0f : 1.0f;
      }
      // The binge window sits at the user's fixed fractional position within
      // whatever partition the review lands in.
      const int64_t binge_days = std::min<int64_t>(5, window_days);
      const int64_t start =
          day0 + static_cast<int64_t>(
                     hasty_window_frac_[static_cast<size_t>(u)] *
                     static_cast<double>(window_days - binge_days + 1));
      r.timestamp = std::min(
          day1 - 1,
          start + static_cast<int64_t>(
                      rng.UniformInt(static_cast<uint64_t>(binge_days))));
      r.text = HastyText(r.rating, item_category_[static_cast<size_t>(i)], rng);
    } else {
      r.timestamp = day0 + static_cast<int64_t>(rng.UniformInt(
                               static_cast<uint64_t>(window_days)));
      r.text =
          BenignText(r.rating, item_category_[static_cast<size_t>(i)], rng);
    }
    ds.Add(std::move(r));
  }

  // --- Fraud campaigns at the window's tier --------------------------------
  int64_t fakes_emitted = 0;
  while (fakes_emitted < n_fake) {
    const int64_t target = static_cast<int64_t>(rng.Categorical(item_pop_));
    const double quality = item_quality_[static_cast<size_t>(target)];
    const bool promote = rng.Uniform() < (quality < 0.0 ? 0.85 : 0.15);
    const int64_t burst_days =
        std::min<int64_t>(std::max<int64_t>(1, p.campaign_burst_days),
                          window_days);
    const int64_t burst_start =
        day0 + static_cast<int64_t>(rng.UniformInt(static_cast<uint64_t>(
                   std::max<int64_t>(1, window_days - burst_days))));
    const int64_t campaign_size = std::min<int64_t>(
        n_fake - fakes_emitted,
        rng.UniformInt(p.campaign_size_min, p.campaign_size_max));
    const size_t template_id = static_cast<size_t>(rng.NextUint64() % 1024);
    // Tier 2 campaigns are executed by one sockpuppet ring.
    const std::vector<int64_t>& authors =
        tier == AdversaryTier::kCamouflage
            ? rings_[rng.UniformInt(static_cast<uint64_t>(rings_.size()))]
            : fraudsters_;
    for (int64_t kth = 0; kth < campaign_size; ++kth) {
      const int64_t u =
          authors[rng.UniformInt(static_cast<uint64_t>(authors.size()))];
      Review r;
      r.user = u;
      r.item = target;
      if (tier == AdversaryTier::kCamouflage) {
        // FairJudge-style rating camouflage: hug the item's benign mean with
        // only a small push in the campaign direction.
        r.rating = ClampRating(ItemBenignMean(target) +
                               (promote ? 0.9 : -0.9) + rng.Normal(0.0, 0.35));
      } else {
        const bool extreme = rng.Uniform() < p.fake_extreme_prob;
        r.rating = promote ? (extreme ? 5.0f : 4.0f) : (extreme ? 1.0f : 2.0f);
      }
      r.label = rng.Bernoulli(miss) ? ReliabilityLabel::kBenign
                                    : ReliabilityLabel::kFake;
      if (tier == AdversaryTier::kCamouflage) {
        // Slow burn: the ring drips reviews across the whole window.
        r.timestamp = day0 + static_cast<int64_t>(rng.UniformInt(
                                 static_cast<uint64_t>(window_days)));
      } else {
        r.timestamp =
            burst_start + static_cast<int64_t>(rng.UniformInt(
                              static_cast<uint64_t>(burst_days)));
      }
      const int category = item_category_[static_cast<size_t>(target)];
      if (tier == AdversaryTier::kStatic) {
        r.text = SpamText(promote, category, template_id, rng);
      } else {
        r.text = ParaphrasedSpamText(promote, category, rng);
      }
      ds.Add(std::move(r));
      ++fakes_emitted;
    }
  }

  ds.BuildIndex();
  return ds;
}

}  // namespace rrre::data
