#include "data/dataset.h"

#include <algorithm>
#include <cstdlib>

#include "common/io.h"
#include "common/logging.h"
#include "common/strings.h"

namespace rrre::data {

using common::Result;
using common::Rng;
using common::Status;

ReviewDataset::ReviewDataset(int64_t num_users, int64_t num_items)
    : num_users_(num_users), num_items_(num_items) {
  RRRE_CHECK_GT(num_users, 0);
  RRRE_CHECK_GT(num_items, 0);
}

void ReviewDataset::Add(Review review) {
  RRRE_CHECK_GE(review.user, 0);
  RRRE_CHECK_LT(review.user, num_users_);
  RRRE_CHECK_GE(review.item, 0);
  RRRE_CHECK_LT(review.item, num_items_);
  reviews_.push_back(std::move(review));
  indexed_ = false;
}

const Review& ReviewDataset::review(int64_t idx) const {
  RRRE_CHECK_GE(idx, 0);
  RRRE_CHECK_LT(idx, size());
  return reviews_[static_cast<size_t>(idx)];
}

const std::vector<int64_t>& ReviewDataset::ReviewsByUser(int64_t user) const {
  RRRE_CHECK(indexed_) << "call BuildIndex() first";
  RRRE_CHECK_GE(user, 0);
  RRRE_CHECK_LT(user, num_users_);
  return by_user_[static_cast<size_t>(user)];
}

const std::vector<int64_t>& ReviewDataset::ReviewsByItem(int64_t item) const {
  RRRE_CHECK(indexed_) << "call BuildIndex() first";
  RRRE_CHECK_GE(item, 0);
  RRRE_CHECK_LT(item, num_items_);
  return by_item_[static_cast<size_t>(item)];
}

void ReviewDataset::BuildIndex() {
  by_user_.assign(static_cast<size_t>(num_users_), {});
  by_item_.assign(static_cast<size_t>(num_items_), {});
  for (int64_t idx = 0; idx < size(); ++idx) {
    const Review& r = reviews_[static_cast<size_t>(idx)];
    by_user_[static_cast<size_t>(r.user)].push_back(idx);
    by_item_[static_cast<size_t>(r.item)].push_back(idx);
  }
  auto by_time = [this](int64_t a, int64_t b) {
    const Review& ra = reviews_[static_cast<size_t>(a)];
    const Review& rb = reviews_[static_cast<size_t>(b)];
    if (ra.timestamp != rb.timestamp) return ra.timestamp < rb.timestamp;
    return a < b;
  };
  for (auto& v : by_user_) std::sort(v.begin(), v.end(), by_time);
  for (auto& v : by_item_) std::sort(v.begin(), v.end(), by_time);
  indexed_ = true;
}

namespace {

int64_t MedianOfNonEmpty(const std::vector<std::vector<int64_t>>& index) {
  std::vector<int64_t> degrees;
  for (const auto& v : index) {
    if (!v.empty()) degrees.push_back(static_cast<int64_t>(v.size()));
  }
  if (degrees.empty()) return 0;
  std::sort(degrees.begin(), degrees.end());
  return degrees[degrees.size() / 2];
}

int64_t MaxDegree(const std::vector<std::vector<int64_t>>& index) {
  int64_t m = 0;
  for (const auto& v : index) {
    m = std::max(m, static_cast<int64_t>(v.size()));
  }
  return m;
}

}  // namespace

DatasetStats ReviewDataset::Stats() const {
  RRRE_CHECK(indexed_) << "call BuildIndex() first";
  DatasetStats s;
  s.num_reviews = size();
  s.num_users = num_users_;
  s.num_items = num_items_;
  int64_t fake = 0;
  for (const Review& r : reviews_) {
    if (!r.is_benign()) ++fake;
  }
  s.fake_fraction =
      size() == 0 ? 0.0 : static_cast<double>(fake) / static_cast<double>(size());
  s.max_user_degree = MaxDegree(by_user_);
  s.median_user_degree = MedianOfNonEmpty(by_user_);
  s.max_item_degree = MaxDegree(by_item_);
  s.median_item_degree = MedianOfNonEmpty(by_item_);
  return s;
}

std::vector<double> ReviewDataset::ItemMeanRatings() const {
  std::vector<double> sums(static_cast<size_t>(num_items_), 0.0);
  std::vector<int64_t> counts(static_cast<size_t>(num_items_), 0);
  double global_sum = 0.0;
  for (const Review& r : reviews_) {
    sums[static_cast<size_t>(r.item)] += r.rating;
    counts[static_cast<size_t>(r.item)] += 1;
    global_sum += r.rating;
  }
  const double global_mean =
      size() == 0 ? 3.0 : global_sum / static_cast<double>(size());
  std::vector<double> means(static_cast<size_t>(num_items_), global_mean);
  for (int64_t i = 0; i < num_items_; ++i) {
    if (counts[static_cast<size_t>(i)] > 0) {
      means[static_cast<size_t>(i)] =
          sums[static_cast<size_t>(i)] / counts[static_cast<size_t>(i)];
    }
  }
  return means;
}

std::pair<ReviewDataset, ReviewDataset> ReviewDataset::Split(
    double train_fraction, Rng& rng) const {
  RRRE_CHECK_GT(train_fraction, 0.0);
  RRRE_CHECK_LT(train_fraction, 1.0);
  const int64_t n = size();
  std::vector<int64_t> order(static_cast<size_t>(n));
  for (int64_t i = 0; i < n; ++i) order[static_cast<size_t>(i)] = i;
  rng.Shuffle(order);

  const int64_t train_target =
      std::max<int64_t>(1, static_cast<int64_t>(train_fraction * n));
  std::vector<bool> in_train(static_cast<size_t>(n), false);
  for (int64_t i = 0; i < train_target; ++i) {
    in_train[static_cast<size_t>(order[static_cast<size_t>(i)])] = true;
  }

  // Best effort: the first review (by shuffled order) of any user or item
  // that ended up fully in test is pulled into train.
  std::vector<bool> user_covered(static_cast<size_t>(num_users_), false);
  std::vector<bool> item_covered(static_cast<size_t>(num_items_), false);
  for (int64_t i = 0; i < n; ++i) {
    if (!in_train[static_cast<size_t>(i)]) continue;
    user_covered[static_cast<size_t>(reviews_[static_cast<size_t>(i)].user)] =
        true;
    item_covered[static_cast<size_t>(reviews_[static_cast<size_t>(i)].item)] =
        true;
  }
  for (int64_t i = 0; i < n; ++i) {
    const Review& r = reviews_[static_cast<size_t>(i)];
    if (!user_covered[static_cast<size_t>(r.user)] ||
        !item_covered[static_cast<size_t>(r.item)]) {
      in_train[static_cast<size_t>(i)] = true;
      user_covered[static_cast<size_t>(r.user)] = true;
      item_covered[static_cast<size_t>(r.item)] = true;
    }
  }

  ReviewDataset train(num_users_, num_items_);
  ReviewDataset test(num_users_, num_items_);
  for (int64_t i = 0; i < n; ++i) {
    if (in_train[static_cast<size_t>(i)]) {
      train.Add(reviews_[static_cast<size_t>(i)]);
    } else {
      test.Add(reviews_[static_cast<size_t>(i)]);
    }
  }
  train.BuildIndex();
  test.BuildIndex();
  return {std::move(train), std::move(test)};
}

ReviewDataset ReviewDataset::Merge(const ReviewDataset& a,
                                   const ReviewDataset& b) {
  RRRE_CHECK_EQ(a.num_users(), b.num_users());
  RRRE_CHECK_EQ(a.num_items(), b.num_items());
  ReviewDataset out(a.num_users(), a.num_items());
  for (const Review& r : a.reviews()) out.Add(r);
  for (const Review& r : b.reviews()) out.Add(r);
  out.BuildIndex();
  return out;
}

Status ReviewDataset::SaveTsv(const std::string& path) const {
  std::vector<std::vector<std::string>> rows;
  rows.reserve(static_cast<size_t>(size()) + 1);
  rows.push_back({"# num_users", std::to_string(num_users_), "num_items",
                  std::to_string(num_items_)});
  for (const Review& r : reviews_) {
    rows.push_back({std::to_string(r.user), std::to_string(r.item),
                    common::StrFormat("%.1f", r.rating),
                    std::to_string(static_cast<int>(r.label)),
                    std::to_string(r.timestamp),
                    common::EscapeTsvField(r.text)});
  }
  return common::WriteTsv(path, rows);
}

Result<ReviewDataset> ReviewDataset::LoadTsv(const std::string& path) {
  auto rows_or = common::ReadTsv(path);
  if (!rows_or.ok()) return rows_or.status();
  const auto& rows = rows_or.value();
  if (rows.empty() || rows[0].size() != 4 || rows[0][0] != "# num_users") {
    return Status::InvalidArgument("missing dataset header in " + path);
  }
  const int64_t num_users = std::atoll(rows[0][1].c_str());
  const int64_t num_items = std::atoll(rows[0][3].c_str());
  if (num_users <= 0 || num_items <= 0) {
    return Status::InvalidArgument("bad dataset universe in " + path);
  }
  ReviewDataset ds(num_users, num_items);
  for (size_t i = 1; i < rows.size(); ++i) {
    const auto& row = rows[i];
    if (row.size() != 6) {
      return Status::InvalidArgument(common::StrFormat(
          "row %zu of %s has %zu fields, want 6", i, path.c_str(), row.size()));
    }
    Review r;
    r.user = std::atoll(row[0].c_str());
    r.item = std::atoll(row[1].c_str());
    r.rating = static_cast<float>(std::atof(row[2].c_str()));
    r.label = row[3] == "1" ? ReliabilityLabel::kBenign
                            : ReliabilityLabel::kFake;
    r.timestamp = std::atoll(row[4].c_str());
    r.text = row[5];
    if (r.user < 0 || r.user >= num_users || r.item < 0 ||
        r.item >= num_items) {
      return Status::InvalidArgument(
          common::StrFormat("row %zu of %s outside universe", i, path.c_str()));
    }
    ds.Add(std::move(r));
  }
  ds.BuildIndex();
  return ds;
}

}  // namespace rrre::data
