#include "data/profiles.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace rrre::data {

using common::Result;
using common::Status;

namespace {

int64_t ScaleCount(int64_t base, double scale) {
  return std::max<int64_t>(1, static_cast<int64_t>(base * scale));
}

int64_t ScaleItems(int64_t base, double scale) {
  // Items scale with sqrt so per-item degree grows with the corpus, like the
  // real collections.
  return std::max<int64_t>(1, static_cast<int64_t>(base * std::sqrt(scale)));
}

}  // namespace

// Base counts are ~1/10 of Table II for YelpChi/Musics/CDs and deeper cuts
// for the two largest Yelp corpora, preserving the orderings the paper's
// analysis relies on: YelpZip > YelpNYC > YelpChi in size; Yelp item degree
// >> user degree; Amazon item degree < 3; Amazon fake fraction ~2x Yelp's.

DatasetProfile YelpChiProfile(double scale) {
  DatasetProfile p;
  p.name = "yelpchi";
  p.num_reviews = ScaleCount(6000, scale);
  p.num_users = ScaleCount(3400, scale);
  p.num_items = ScaleItems(201, scale);
  p.fake_fraction = 0.1323;
  p.fraud_user_fraction = 0.30;  // Singleton-heavy spam (hard for graphs).
  p.item_popularity_skew = 0.8;
  p.user_activity_skew = 1.2;
  return p;
}

DatasetProfile YelpNycProfile(double scale) {
  DatasetProfile p;
  p.name = "yelpnyc";
  p.num_reviews = ScaleCount(9000, scale);
  p.num_users = ScaleCount(4100, scale);
  p.num_items = ScaleItems(400, scale);
  p.fake_fraction = 0.1027;
  p.fraud_user_fraction = 0.25;  // Singleton-heavy spam (hard for graphs).
  p.item_popularity_skew = 0.9;
  p.user_activity_skew = 1.2;
  return p;
}

DatasetProfile YelpZipProfile(double scale) {
  DatasetProfile p;
  p.name = "yelpzip";
  p.num_reviews = ScaleCount(12000, scale);
  p.num_users = ScaleCount(5200, scale);
  p.num_items = ScaleItems(800, scale);
  p.fake_fraction = 0.1322;
  p.fraud_user_fraction = 0.30;  // Singleton-heavy spam (hard for graphs).
  p.item_popularity_skew = 0.9;
  p.user_activity_skew = 1.2;
  return p;
}

DatasetProfile MusicsProfile(double scale) {
  DatasetProfile p;
  p.name = "musics";
  p.num_reviews = ScaleCount(5600, scale);
  p.num_users = ScaleCount(1300, scale);
  p.num_items = ScaleItems(1970, scale);
  p.fake_fraction = 0.2493;
  p.fraud_user_fraction = 0.22;
  // Amazon: low item degree, users vote-gated to active ones; campaigns are
  // small per item, carried by repeat offenders.
  p.item_popularity_skew = 0.4;
  p.user_activity_skew = 0.8;
  p.campaign_size_min = 2;
  p.campaign_size_max = 4;
  return p;
}

DatasetProfile CdsProfile(double scale) {
  DatasetProfile p;
  p.name = "cds";
  p.num_reviews = ScaleCount(4400, scale);
  p.num_users = ScaleCount(2100, scale);
  p.num_items = ScaleItems(2350, scale);
  p.fake_fraction = 0.2239;
  p.fraud_user_fraction = 0.20;
  // Amazon: low item degree, users vote-gated to active ones; campaigns are
  // small per item, carried by repeat offenders.
  p.item_popularity_skew = 0.4;
  p.user_activity_skew = 0.8;
  p.campaign_size_min = 2;
  p.campaign_size_max = 4;
  return p;
}

Result<DatasetProfile> ProfileByName(const std::string& name, double scale) {
  const std::string n = common::ToLower(name);
  if (n == "yelpchi") return YelpChiProfile(scale);
  if (n == "yelpnyc") return YelpNycProfile(scale);
  if (n == "yelpzip") return YelpZipProfile(scale);
  if (n == "musics") return MusicsProfile(scale);
  if (n == "cds") return CdsProfile(scale);
  return Status::InvalidArgument(
      "unknown dataset profile: " + name +
      " (expected yelpchi|yelpnyc|yelpzip|musics|cds)");
}

}  // namespace rrre::data
