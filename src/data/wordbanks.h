#ifndef RRRE_DATA_WORDBANKS_H_
#define RRRE_DATA_WORDBANKS_H_

#include <string_view>
#include <vector>

namespace rrre::data {

/// Word pools used by the synthetic review-text generator. The pools are
/// designed so that (a) benign review sentiment correlates with the rating,
/// (b) spam text has its own recognizable register (generic superlatives and
/// call-to-action phrases, few concrete aspects), and (c) each item category
/// has distinctive aspect vocabulary — the three textual signals the paper's
/// models exploit.
namespace wordbanks {

/// Positive sentiment words used in 4-5 star benign reviews.
const std::vector<std::string_view>& Positive();

/// Negative sentiment words used in 1-2 star benign reviews.
const std::vector<std::string_view>& Negative();

/// Neutral/hedging words mixed into 3-star and all benign reviews.
const std::vector<std::string_view>& Neutral();

/// Function words sprinkled everywhere.
const std::vector<std::string_view>& Function();

/// Aspect nouns for a category; `category` indexes a fixed set of pools.
const std::vector<std::string_view>& Aspects(int category);
int NumCategories();

/// Generic superlatives characteristic of promotional spam.
const std::vector<std::string_view>& SpamPromote();

/// Generic smear words characteristic of demotion spam.
const std::vector<std::string_view>& SpamDemote();

/// Call-to-action / template phrases (multi-word, pre-tokenized) that spam
/// campaigns reuse verbatim.
const std::vector<std::vector<std::string_view>>& SpamTemplates();

}  // namespace wordbanks
}  // namespace rrre::data

#endif  // RRRE_DATA_WORDBANKS_H_
