#include "data/sampling.h"

#include <algorithm>

#include "common/logging.h"

namespace rrre::data {

std::vector<int64_t> SampleHistory(const std::vector<int64_t>& history,
                                   int64_t m, SamplingStrategy strategy,
                                   common::Rng& rng, int64_t exclude) {
  RRRE_CHECK_GT(m, 0);
  std::vector<int64_t> pool;
  pool.reserve(history.size());
  for (int64_t idx : history) {
    if (idx != exclude) pool.push_back(idx);
  }

  std::vector<int64_t> out;
  out.reserve(static_cast<size_t>(m));
  if (static_cast<int64_t>(pool.size()) <= m) {
    out = pool;
  } else if (strategy == SamplingStrategy::kLatest) {
    // History is ascending by time: take the last m.
    out.assign(pool.end() - m, pool.end());
  } else {
    auto picks = rng.SampleWithoutReplacement(pool.size(),
                                              static_cast<size_t>(m));
    std::sort(picks.begin(), picks.end());  // Preserve temporal order.
    for (size_t p : picks) out.push_back(pool[p]);
  }
  out.resize(static_cast<size_t>(m), -1);
  return out;
}

}  // namespace rrre::data
