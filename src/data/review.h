#ifndef RRRE_DATA_REVIEW_H_
#define RRRE_DATA_REVIEW_H_

#include <cstdint>
#include <string>

namespace rrre::data {

/// Ground-truth reliability label of a review (the paper's l_ui).
enum class ReliabilityLabel : int { kFake = 0, kBenign = 1 };

/// One review tuple t^ui = {u, i, r_ui, l_ui, w_ui} plus a timestamp used by
/// the time-based history sampling of Sec. III-D.
struct Review {
  int64_t user = -1;            ///< Dense user index in [0, num_users).
  int64_t item = -1;            ///< Dense item index in [0, num_items).
  float rating = 0.0f;          ///< Star rating in [1, 5].
  ReliabilityLabel label = ReliabilityLabel::kBenign;
  int64_t timestamp = 0;        ///< Days since the corpus epoch.
  std::string text;             ///< Raw review content w_ui.

  bool is_benign() const { return label == ReliabilityLabel::kBenign; }
};

/// Summary statistics in the shape of the paper's Table II.
struct DatasetStats {
  int64_t num_reviews = 0;
  int64_t num_users = 0;
  int64_t num_items = 0;
  double fake_fraction = 0.0;
  int64_t max_user_degree = 0;     ///< max |W^u|
  int64_t median_user_degree = 0;  ///< median |W^u| over users with >=1 review
  int64_t max_item_degree = 0;     ///< max |W^i|
  int64_t median_item_degree = 0;  ///< median |W^i| over items with >=1 review
};

}  // namespace rrre::data

#endif  // RRRE_DATA_REVIEW_H_
