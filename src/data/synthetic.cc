#include "data/synthetic.h"

#include <algorithm>
#include <cmath>
#include <string>

#include "common/logging.h"
#include "data/review_text.h"
#include "data/wordbanks.h"

namespace rrre::data {

using common::Rng;

namespace {

constexpr int kLatentDim = 4;

}  // namespace

ReviewDataset GenerateSyntheticDataset(const DatasetProfile& profile,
                                       Rng& rng, SyntheticWorld* world) {
  RRRE_CHECK_GT(profile.num_reviews, 0);
  RRRE_CHECK_GT(profile.num_users, 0);
  RRRE_CHECK_GT(profile.num_items, 0);
  RRRE_CHECK_GE(profile.fake_fraction, 0.0);
  RRRE_CHECK_LT(profile.fake_fraction, 1.0);
  const int64_t num_users = profile.num_users;
  const int64_t num_items = profile.num_items;

  // --- Latent state -------------------------------------------------------
  std::vector<int> item_category(static_cast<size_t>(num_items));
  std::vector<double> item_quality(static_cast<size_t>(num_items));
  std::vector<std::vector<double>> item_factors(static_cast<size_t>(num_items));
  const int num_cats =
      std::min(profile.num_categories, wordbanks::NumCategories());
  for (int64_t i = 0; i < num_items; ++i) {
    item_category[static_cast<size_t>(i)] =
        static_cast<int>(rng.UniformInt(static_cast<uint64_t>(num_cats)));
    item_quality[static_cast<size_t>(i)] =
        std::clamp(rng.Normal(0.0, 0.8), -1.6, 1.6);
    auto& f = item_factors[static_cast<size_t>(i)];
    f.resize(kLatentDim);
    for (double& v : f) v = rng.Normal();
  }

  std::vector<double> user_bias(static_cast<size_t>(num_users));
  std::vector<std::vector<double>> user_factors(static_cast<size_t>(num_users));
  // Benign behavioral noise: hasty users (short text, extreme ratings, a
  // narrow active window) and contrarians (honest ratings that oppose item
  // quality). Both generate the behavioral footprints detectors associate
  // with fraud, on benign-labeled reviews.
  std::vector<bool> is_hasty(static_cast<size_t>(num_users), false);
  std::vector<bool> is_contrarian(static_cast<size_t>(num_users), false);
  std::vector<int64_t> hasty_window_start(static_cast<size_t>(num_users), 0);
  for (int64_t u = 0; u < num_users; ++u) {
    user_bias[static_cast<size_t>(u)] = rng.Normal(0.0, 0.25);
    auto& f = user_factors[static_cast<size_t>(u)];
    f.resize(kLatentDim);
    for (double& v : f) v = rng.Normal();
    const double roll = rng.Uniform();
    if (roll < profile.hasty_user_fraction) {
      is_hasty[static_cast<size_t>(u)] = true;
      hasty_window_start[static_cast<size_t>(u)] = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(
              std::max<int64_t>(1, profile.horizon_days - 30))));
    } else if (roll <
               profile.hasty_user_fraction + profile.contrarian_user_fraction) {
      is_contrarian[static_cast<size_t>(u)] = true;
    }
  }

  // --- Fraudster population ------------------------------------------------
  const int64_t num_fraudsters = std::max<int64_t>(
      1, static_cast<int64_t>(profile.fraud_user_fraction * num_users));
  std::vector<bool> is_fraudster(static_cast<size_t>(num_users), false);
  auto fraud_picks = rng.SampleWithoutReplacement(
      static_cast<size_t>(num_users), static_cast<size_t>(num_fraudsters));
  std::vector<int64_t> fraudsters;
  fraudsters.reserve(fraud_picks.size());
  for (size_t p : fraud_picks) {
    is_fraudster[p] = true;
    fraudsters.push_back(static_cast<int64_t>(p));
  }

  const std::vector<double> item_pop =
      PowerLawWeights(num_items, profile.item_popularity_skew, rng);
  const std::vector<double> user_act =
      PowerLawWeights(num_users, profile.user_activity_skew, rng);

  // Benign authorship: fraudsters camouflage by writing benign-process
  // reviews at camouflage_rate times the ordinary activity level, so their
  // behavioral profiles blend with the benign population.
  std::vector<double> benign_author_weights = user_act;
  for (int64_t u = 0; u < num_users; ++u) {
    if (is_fraudster[static_cast<size_t>(u)]) {
      benign_author_weights[static_cast<size_t>(u)] *= profile.camouflage_rate;
    }
  }

  // Solve for the campaign volume c so the *labeled* fake fraction matches
  // the profile after oracle noise: c*(1-miss) + (1-c)*fpr = fake_fraction.
  const double denom =
      1.0 - profile.filter_miss_rate - profile.filter_false_positive_rate;
  RRRE_CHECK_GT(denom, 0.0);
  const double campaign_fraction = std::clamp(
      (profile.fake_fraction - profile.filter_false_positive_rate) / denom,
      0.0, 0.9);
  const int64_t num_fake =
      static_cast<int64_t>(campaign_fraction * profile.num_reviews);
  const int64_t num_benign = profile.num_reviews - num_fake;

  ReviewDataset ds(num_users, num_items);

  // --- Benign reviews -------------------------------------------------------
  for (int64_t n = 0; n < num_benign; ++n) {
    const int64_t u = static_cast<int64_t>(rng.Categorical(benign_author_weights));
    const int64_t i = static_cast<int64_t>(rng.Categorical(item_pop));
    double dot = 0.0;
    for (int d = 0; d < kLatentDim; ++d) {
      dot += user_factors[static_cast<size_t>(u)][static_cast<size_t>(d)] *
             item_factors[static_cast<size_t>(i)][static_cast<size_t>(d)];
    }
    double mean = 3.25 + user_bias[static_cast<size_t>(u)] +
                  0.9 * item_quality[static_cast<size_t>(i)] + 0.35 * dot;
    if (is_contrarian[static_cast<size_t>(u)]) {
      // Honest taste that opposes consensus: mirror around the global mean.
      mean = 6.5 - mean;
    }
    Review r;
    r.user = u;
    r.item = i;
    r.rating = ClampRating(mean + rng.Normal(0.0, 0.7));
    // The filtering oracle occasionally flags honest reviews.
    r.label = rng.Bernoulli(profile.filter_false_positive_rate)
                  ? ReliabilityLabel::kFake
                  : ReliabilityLabel::kBenign;
    if (is_hasty[static_cast<size_t>(u)]) {
      // Hasty users binge-review inside a narrow window with blunt ratings.
      if (rng.Uniform() < 0.5) {
        r.rating = r.rating >= 3.0f ? 5.0f : 1.0f;
      }
      r.timestamp = hasty_window_start[static_cast<size_t>(u)] +
                    static_cast<int64_t>(rng.UniformInt(uint64_t{30}));
      r.text =
          HastyText(r.rating, item_category[static_cast<size_t>(i)], rng);
    } else {
      r.timestamp = static_cast<int64_t>(
          rng.UniformInt(static_cast<uint64_t>(profile.horizon_days)));
      r.text =
          BenignText(r.rating, item_category[static_cast<size_t>(i)], rng);
    }
    ds.Add(std::move(r));
  }

  // --- Fraud campaigns -------------------------------------------------------
  int64_t campaigns = 0;
  int64_t fakes_emitted = 0;
  while (fakes_emitted < num_fake) {
    const int64_t target = static_cast<int64_t>(rng.Categorical(item_pop));
    const double quality = item_quality[static_cast<size_t>(target)];
    // Spam promotes bad items and demotes good items (Sec. I): direction is
    // tied to quality with some noise.
    const bool promote = rng.Uniform() < (quality < 0.0 ? 0.85 : 0.15);
    const int64_t burst_start = static_cast<int64_t>(rng.UniformInt(
        static_cast<uint64_t>(
            std::max<int64_t>(1, profile.horizon_days -
                                     profile.campaign_burst_days))));
    const int64_t campaign_size = std::min<int64_t>(
        num_fake - fakes_emitted,
        rng.UniformInt(profile.campaign_size_min, profile.campaign_size_max));
    const size_t template_id = static_cast<size_t>(rng.NextUint64() % 1024);
    for (int64_t kth = 0; kth < campaign_size; ++kth) {
      const int64_t u = fraudsters[rng.UniformInt(
          static_cast<uint64_t>(fraudsters.size()))];
      Review r;
      r.user = u;
      r.item = target;
      const bool extreme = rng.Uniform() < profile.fake_extreme_prob;
      r.rating = promote ? (extreme ? 5.0f : 4.0f) : (extreme ? 1.0f : 2.0f);
      // The filtering oracle misses a share of the campaign reviews.
      r.label = rng.Bernoulli(profile.filter_miss_rate)
                    ? ReliabilityLabel::kBenign
                    : ReliabilityLabel::kFake;
      r.timestamp = burst_start + static_cast<int64_t>(rng.UniformInt(
                                      static_cast<uint64_t>(
                                          profile.campaign_burst_days)));
      r.text = SpamText(promote, item_category[static_cast<size_t>(target)],
                        template_id, rng);
      ds.Add(std::move(r));
      ++fakes_emitted;
    }
    ++campaigns;
  }

  ds.BuildIndex();
  if (world != nullptr) {
    world->item_category = std::move(item_category);
    world->item_quality = std::move(item_quality);
    world->is_fraudster = std::move(is_fraudster);
    world->num_campaigns = campaigns;
    world->num_fake_reviews = fakes_emitted;
  }
  return ds;
}

}  // namespace rrre::data
