#ifndef RRRE_DATA_REVIEW_TEXT_H_
#define RRRE_DATA_REVIEW_TEXT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.h"

namespace rrre::data {

/// Text and distribution helpers shared by the one-shot synthetic generator
/// (synthetic.cc) and the streaming adversary arena (adversary.cc). The draw
/// sequences here are load-bearing: GenerateSyntheticDataset's output is
/// golden for every seeded test, so these functions must consume RNG draws
/// in exactly the order the original in-generator statics did.

/// Rank-based power-law weights: weight of the element ranked r (0-based) is
/// (r+1)^-skew; assignment of ranks to ids is a random permutation.
std::vector<double> PowerLawWeights(int64_t n, double skew, common::Rng& rng);

/// Rounds to the nearest star and clamps to the 1..5 scale.
float ClampRating(double r);

/// Benign review text: aspect words of the item's category plus sentiment
/// words consistent with the rating plus function words.
std::string BenignText(float rating, int category, common::Rng& rng);

/// Very short, low-effort benign text written by hasty reviewers.
std::string HastyText(float rating, int category, common::Rng& rng);

/// Spam text: generic superlatives/smears diluted with function words and a
/// campaign-shared template phrase. Length matches benign reviews so text
/// length alone is not a giveaway; the *vocabulary* is the signal.
std::string SpamText(bool promote, int category, size_t template_id,
                     common::Rng& rng);

/// Tier-1 evasion: spam text paraphrased out of the benign wordbanks. The
/// token mixture matches BenignText of a rating-consistent review — no spam
/// register, no shared template phrase — so the textual signal the detectors
/// exploit is gone and only rating/temporal/graph signals remain.
std::string ParaphrasedSpamText(bool promote, int category, common::Rng& rng);

}  // namespace rrre::data

#endif  // RRRE_DATA_REVIEW_TEXT_H_
