#ifndef RRRE_DATA_DATASET_H_
#define RRRE_DATA_DATASET_H_

#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/status.h"
#include "data/review.h"

namespace rrre::data {

/// In-memory review corpus with per-user / per-item indexes. Review indices
/// returned by the index accessors refer to positions in `reviews()`.
class ReviewDataset {
 public:
  ReviewDataset(int64_t num_users, int64_t num_items);

  /// Appends a review; user/item must be within the declared universe.
  void Add(Review review);

  const std::vector<Review>& reviews() const { return reviews_; }
  const Review& review(int64_t idx) const;
  int64_t size() const { return static_cast<int64_t>(reviews_.size()); }
  int64_t num_users() const { return num_users_; }
  int64_t num_items() const { return num_items_; }

  /// Review indices written by a user, ascending by timestamp (stable).
  /// BuildIndex() must have been called after the last Add.
  const std::vector<int64_t>& ReviewsByUser(int64_t user) const;
  /// Review indices written to an item, ascending by timestamp (stable).
  const std::vector<int64_t>& ReviewsByItem(int64_t item) const;

  /// (Re)builds the user/item indexes; call after the last Add.
  void BuildIndex();
  bool indexed() const { return indexed_; }

  /// Table II-style statistics.
  DatasetStats Stats() const;

  /// Mean rating per item over a review subset (all reviews if empty);
  /// items without reviews get the global mean. Used by baselines.
  std::vector<double> ItemMeanRatings() const;

  /// Random train/test split by review. Both halves keep the full user/item
  /// universe. Best-effort guarantee (as in Sec. IV-C) that every user and
  /// item with at least one review keeps one in the training half.
  std::pair<ReviewDataset, ReviewDataset> Split(double train_fraction,
                                                common::Rng& rng) const;

  /// TSV persistence: user, item, rating, label, timestamp, text.
  common::Status SaveTsv(const std::string& path) const;
  static common::Result<ReviewDataset> LoadTsv(const std::string& path);

  /// Concatenates two datasets over the same user/item universe (a's reviews
  /// first). Used by transductive baselines that score a test set within the
  /// combined review graph. The result is indexed.
  static ReviewDataset Merge(const ReviewDataset& a, const ReviewDataset& b);

 private:
  int64_t num_users_;
  int64_t num_items_;
  std::vector<Review> reviews_;
  std::vector<std::vector<int64_t>> by_user_;
  std::vector<std::vector<int64_t>> by_item_;
  bool indexed_ = false;
};

}  // namespace rrre::data

#endif  // RRRE_DATA_DATASET_H_
