#ifndef RRRE_DATA_SAMPLING_H_
#define RRRE_DATA_SAMPLING_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "data/dataset.h"

namespace rrre::data {

/// How a history longer than the input size m is reduced (Sec. III-D).
enum class SamplingStrategy {
  /// Keep the m most recent reviews (the paper's time-based strategy:
  /// "users' preferences change over time and the latest preference is more
  /// useful").
  kLatest,
  /// Uniform random subset — the ablation alternative.
  kRandom,
};

/// Shapes a review history to exactly `m` slots. `history` holds review
/// indices ascending by timestamp (as produced by ReviewDataset indexes).
/// If the history is longer than m it is subsampled per `strategy`; if
/// shorter, the tail is filled with -1 (zero-padding sentinel). An optional
/// `exclude` review index is dropped from the history first (used to avoid
/// the target review leaking into its own history).
///
/// The returned indices are ordered ascending by timestamp.
std::vector<int64_t> SampleHistory(const std::vector<int64_t>& history,
                                   int64_t m, SamplingStrategy strategy,
                                   common::Rng& rng, int64_t exclude = -1);

}  // namespace rrre::data

#endif  // RRRE_DATA_SAMPLING_H_
