#include "data/wordbanks.h"

#include "common/logging.h"

namespace rrre::data::wordbanks {

namespace {

// NOTE: pools are function-local statics of vectors of string_views over
// string literals; the views are trivially destructible and the vectors are
// created on first use.

const std::vector<std::string_view>* MakePositive() {
  return new std::vector<std::string_view>{
      "great",     "friendly",  "delicious", "amazing",   "excellent",
      "wonderful", "fresh",     "cozy",      "lovely",    "tasty",
      "fantastic", "charming",  "attentive", "generous",  "crisp",
      "perfect",   "impressive","warm",      "satisfying","delightful",
      "superb",    "pleasant",  "polite",    "quick",     "clean",
      "flavorful", "authentic", "reasonable","memorable", "inviting"};
}

const std::vector<std::string_view>* MakeNegative() {
  return new std::vector<std::string_view>{
      "terrible",  "rude",      "stale",     "awful",      "bland",
      "dirty",     "slow",      "overpriced","disappointing","cold",
      "greasy",    "noisy",     "cramped",   "soggy",      "burnt",
      "mediocre",  "unfriendly","lazy",      "tasteless",  "messy",
      "horrible",  "watery",    "chewy",     "crowded",    "smelly",
      "broken",    "pricey",    "forgettable","sloppy",    "dreadful"};
}

const std::vector<std::string_view>* MakeNeutral() {
  return new std::vector<std::string_view>{
      "okay",    "average", "decent",   "typical", "standard",
      "fine",    "regular", "ordinary", "usual",   "fair",
      "passable","moderate","plain",    "simple",  "middling"};
}

const std::vector<std::string_view>* MakeFunction() {
  return new std::vector<std::string_view>{
      "the",  "a",    "and",  "was",  "were", "with", "very", "really",
      "had",  "this", "that", "here", "they", "it",   "but",  "for",
      "too",  "again","place","time", "staff","quite","some", "my"};
}

const std::vector<std::vector<std::string_view>>* MakeAspects() {
  return new std::vector<std::vector<std::string_view>>{
      // 0: restaurant
      {"pasta", "burger", "sauce", "dessert", "menu", "kitchen", "waiter",
       "appetizer", "brunch", "portion"},
      // 1: bar
      {"beer", "cocktail", "bartender", "draft", "whiskey", "lounge",
       "happyhour", "stool", "brewery", "pint"},
      // 2: cafe
      {"coffee", "espresso", "latte", "pastry", "croissant", "barista",
       "roast", "muffin", "wifi", "teapot"},
      // 3: music album
      {"album", "vocals", "guitar", "melody", "lyrics", "chorus", "drums",
       "track", "producer", "mix"},
      // 4: cd / boxset
      {"boxset", "remaster", "liner", "disc", "edition", "booklet",
       "recording", "pressing", "artwork", "bonus"},
      // 5: hotel
      {"room", "lobby", "bed", "shower", "checkin", "view", "breakfast",
       "towel", "concierge", "elevator"},
  };
}

const std::vector<std::string_view>* MakeSpamPromote() {
  return new std::vector<std::string_view>{
      "best",      "awesome",   "unbelievable", "must",      "ever",
      "number1",   "top",       "greatest",     "insane",    "epic",
      "flawless",  "ultimate",  "legendary",    "wow",       "incredible",
      "unreal",    "goat",      "elite",        "supreme",   "unmatched",
      "killer",    "stunning",  "magical",      "golden",    "worldclass",
      "peak",      "divine",    "majestic",     "glorious",  "phenomenal"};
}

const std::vector<std::string_view>* MakeSpamDemote() {
  return new std::vector<std::string_view>{
      "worst",    "scam",     "fraud",    "disgusting", "never",
      "avoid",    "ripoff",   "garbage",  "trash",      "zero",
      "fake",     "joke",     "pathetic", "beware",     "nightmare",
      "criminal", "shady",    "con",      "rotten",     "toxic",
      "vile",     "worthless","bogus",    "sham",       "atrocious",
      "abysmal",  "lousy",    "shoddy",   "crooked",    "wretched"};
}

const std::vector<std::vector<std::string_view>>* MakeSpamTemplates() {
  return new std::vector<std::vector<std::string_view>>{
      {"trust", "me", "you", "will", "not", "regret"},
      {"five", "stars", "hands", "down", "period"},
      {"tell", "all", "your", "friends", "right", "now"},
      {"do", "not", "waste", "your", "money", "here"},
      {"i", "cannot", "recommend", "this", "enough"},
      {"stay", "away", "save", "yourself"},
      {"simply", "the", "best", "in", "town", "guaranteed"},
      {"total", "letdown", "do", "not", "believe", "the", "hype"},
  };
}

}  // namespace

const std::vector<std::string_view>& Positive() {
  static const auto* pool = MakePositive();
  return *pool;
}

const std::vector<std::string_view>& Negative() {
  static const auto* pool = MakeNegative();
  return *pool;
}

const std::vector<std::string_view>& Neutral() {
  static const auto* pool = MakeNeutral();
  return *pool;
}

const std::vector<std::string_view>& Function() {
  static const auto* pool = MakeFunction();
  return *pool;
}

const std::vector<std::string_view>& Aspects(int category) {
  static const auto* pools = MakeAspects();
  RRRE_CHECK_GE(category, 0);
  RRRE_CHECK_LT(category, static_cast<int>(pools->size()));
  return (*pools)[static_cast<size_t>(category)];
}

int NumCategories() {
  static const auto* pools = MakeAspects();
  return static_cast<int>(pools->size());
}

const std::vector<std::string_view>& SpamPromote() {
  static const auto* pool = MakeSpamPromote();
  return *pool;
}

const std::vector<std::string_view>& SpamDemote() {
  static const auto* pool = MakeSpamDemote();
  return *pool;
}

const std::vector<std::vector<std::string_view>>& SpamTemplates() {
  static const auto* pool = MakeSpamTemplates();
  return *pool;
}

}  // namespace rrre::data::wordbanks
