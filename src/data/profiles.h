#ifndef RRRE_DATA_PROFILES_H_
#define RRRE_DATA_PROFILES_H_

#include <cstdint>
#include <string>

#include "common/status.h"

namespace rrre::data {

/// Parameters of a synthetic corpus, shaped after one of the paper's five
/// datasets (Table II) but scaled down for a single-core box. `scale`
/// multiplies review/user counts (items scale with sqrt so item degree grows
/// with scale, as in the real collections).
struct DatasetProfile {
  std::string name;
  int64_t num_reviews = 0;
  int64_t num_users = 0;
  int64_t num_items = 0;
  double fake_fraction = 0.13;     ///< Target fraction of fake reviews.
  double fraud_user_fraction = 0.1;///< Fraction of users running campaigns.
  /// Zipf-ish popularity skew for items (higher = heavier head).
  double item_popularity_skew = 0.8;
  /// Zipf-ish activity skew for users.
  double user_activity_skew = 1.2;
  /// Relative rate at which fraudsters author camouflage reviews (benign
  /// process, benign label) so authorship alone does not give labels away.
  double camouflage_rate = 1.0;
  /// Days covered by the corpus.
  int64_t horizon_days = 730;
  /// Length of a fraud campaign burst in days. Wide bursts dilute the
  /// temporal signal behavior-based detectors rely on.
  int64_t campaign_burst_days = 150;
  /// Probability a fake review carries the campaign's extreme rating (the
  /// rest use a moderate 4/2 to blunt the rating-deviation signal).
  double fake_extreme_prob = 0.55;
  /// Fraction of benign users who review hastily: very short text, extreme
  /// ratings, several reviews within a narrow window. Behavioral noise.
  double hasty_user_fraction = 0.08;
  /// Fraction of benign users whose taste opposes item quality. Their honest
  /// ratings deviate strongly from item means — rating-deviation noise.
  double contrarian_user_fraction = 0.10;
  /// Label noise of the filtering oracle that produced the ground truth
  /// (Yelp's filter / the helpfulness-vote rule are imperfect): probability
  /// a benign-process review is labeled fake, and a campaign review is
  /// labeled benign. Caps every detector's achievable metrics, as on the
  /// real corpora.
  double filter_false_positive_rate = 0.05;
  double filter_miss_rate = 0.12;
  /// Fake reviews a campaign plants on its target item (uniform range).
  /// Large on Yelp-like corpora (popular restaurants absorb big campaigns);
  /// small on Amazon-like ones (long-tail items, repeat offenders instead).
  int64_t campaign_size_min = 5;
  int64_t campaign_size_max = 15;
  int num_categories = 6;
};

/// Named profiles: "yelpchi", "yelpnyc", "yelpzip", "musics", "cds".
/// scale = 1.0 produces roughly 1/10 of the paper's review counts.
common::Result<DatasetProfile> ProfileByName(const std::string& name,
                                             double scale = 1.0);

DatasetProfile YelpChiProfile(double scale = 1.0);
DatasetProfile YelpNycProfile(double scale = 1.0);
DatasetProfile YelpZipProfile(double scale = 1.0);
DatasetProfile MusicsProfile(double scale = 1.0);
DatasetProfile CdsProfile(double scale = 1.0);

}  // namespace rrre::data

#endif  // RRRE_DATA_PROFILES_H_
