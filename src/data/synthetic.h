#ifndef RRRE_DATA_SYNTHETIC_H_
#define RRRE_DATA_SYNTHETIC_H_

#include <vector>

#include "common/rng.h"
#include "data/dataset.h"
#include "data/profiles.h"

namespace rrre::data {

/// Latent ground truth behind a generated corpus; exposed so tests and
/// benches can verify the planted structure.
struct SyntheticWorld {
  std::vector<int> item_category;      ///< Category per item.
  std::vector<double> item_quality;    ///< Scalar quality per item.
  std::vector<bool> is_fraudster;      ///< Campaign participation per user.
  int64_t num_campaigns = 0;
  int64_t num_fake_reviews = 0;
};

/// Generates a labeled review corpus with planted fraud campaigns.
///
/// The generator plants exactly the signals the paper's methods rely on:
///  * Benign ratings follow a latent user x item factor model plus item
///    quality, so rating prediction is learnable (PMF and better).
///  * Benign text mixes category aspect words with sentiment words matching
///    the rating — the review-content signal RRRE/DeepCoNN/NARRE read.
///  * Fake reviews belong to promote/demote campaigns: extreme ratings
///    decoupled from item quality (REV2/rating-deviation signal), generic
///    spam vocabulary plus a campaign-shared template phrase (content
///    signal), timestamps inside a short burst window (behavioral signal),
///    and authorship concentrated on a small fraudster population hitting
///    targeted items (graph signal for SpEagle+).
///  * Fraudsters also write occasional camouflage reviews that look and are
///    labeled benign, keeping user identity alone insufficient.
///
/// Deterministic given (profile, rng seed). If `world` is non-null the
/// latent state is stored there.
ReviewDataset GenerateSyntheticDataset(const DatasetProfile& profile,
                                       common::Rng& rng,
                                       SyntheticWorld* world = nullptr);

}  // namespace rrre::data

#endif  // RRRE_DATA_SYNTHETIC_H_
