#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace rrre::tensor {

using internal::TensorImpl;

namespace {

/// Creates a result node whose parents are `parents`; requires_grad is
/// inherited from any parent.
std::shared_ptr<TensorImpl> MakeNode(const Shape& shape,
                                     std::vector<Tensor> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  for (const Tensor& p : parents) {
    RRRE_CHECK(p.defined());
    impl->requires_grad = impl->requires_grad || p.requires_grad();
    impl->parents.push_back(p.impl());
  }
  return impl;
}

/// True when the parent participates in differentiation and needs its grad
/// buffer ready for accumulation.
bool WantsGrad(TensorImpl* node) {
  if (!node->requires_grad) return false;
  node->EnsureGrad();
  return true;
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  RRRE_CHECK(a.shape() == b.shape())
      << ShapeToString(a.shape()) << " vs " << ShapeToString(b.shape());
}

using BinaryForward = float (*)(float, float);

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const size_t n = out->data.size();
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] + pb[i];
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (WantsGrad(ib)) {
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const size_t n = out->data.size();
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] - pb[i];
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
      if (WantsGrad(ib)) {
        for (size_t i = 0; i < n; ++i) ib->grad[i] -= o->grad[i];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const size_t n = out->data.size();
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] * pb[i];
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i] * ib->data[i];
      }
      if (WantsGrad(ib)) {
        for (size_t i = 0; i < n; ++i) ib->grad[i] += o->grad[i] * ia->data[i];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const size_t n = out->data.size();
  const float* pa = a.data();
  const float* pb = b.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] / pb[i];
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i] / ib->data[i];
      }
      if (WantsGrad(ib)) {
        for (size_t i = 0; i < n; ++i) {
          ib->grad[i] -=
              o->grad[i] * ia->data[i] / (ib->data[i] * ib->data[i]);
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddBias(const Tensor& a, const Tensor& bias) {
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t n = bias.dim(0);
  RRRE_CHECK_EQ(a.dim(-1), n);
  auto out = MakeNode(a.shape(), {a, bias});
  const int64_t rows = a.numel() / n;
  const float* pa = a.data();
  const float* pb = bias.data();
  for (int64_t r = 0; r < rows; ++r) {
    for (int64_t j = 0; j < n; ++j) {
      out->data[static_cast<size_t>(r * n + j)] = pa[r * n + j] + pb[j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, ia, ib, rows, n]() {
      if (WantsGrad(ia)) {
        const size_t total = static_cast<size_t>(rows * n);
        for (size_t i = 0; i < total; ++i) ia->grad[i] += o->grad[i];
      }
      if (WantsGrad(ib)) {
        for (int64_t r = 0; r < rows; ++r) {
          for (int64_t j = 0; j < n; ++j) {
            ib->grad[static_cast<size_t>(j)] +=
                o->grad[static_cast<size_t>(r * n + j)];
          }
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = MakeNode(a.shape(), {a});
  const size_t n = out->data.size();
  const float* pa = a.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] + s;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  auto out = MakeNode(a.shape(), {a});
  const size_t n = out->data.size();
  const float* pa = a.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = pa[i] * s;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, s]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) ia->grad[i] += o->grad[i] * s;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

namespace {

/// Shared implementation for unary elementwise ops where the local derivative
/// can be computed from the output value.
template <typename Fwd, typename DerivFromOut>
Tensor UnaryFromOutput(const Tensor& a, Fwd fwd, DerivFromOut deriv) {
  auto out = MakeNode(a.shape(), {a});
  const size_t n = out->data.size();
  const float* pa = a.data();
  for (size_t i = 0; i < n; ++i) out->data[i] = fwd(pa[i]);
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, deriv]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < n; ++i) {
          ia->grad[i] += o->grad[i] * deriv(o->data[i], ia->data[i]);
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace

Tensor Tanh(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::tanh(x); },
      [](float y, float) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryFromOutput(
      a,
      [](float x) {
        // Stable sigmoid for both signs of x.
        if (x >= 0.0f) {
          const float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(x);
        return z / (1.0f + z);
      },
      [](float y, float) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float, float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::exp(x); },
      [](float y, float) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::log(x); },
      [](float, float x) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::sqrt(x); },
      [](float y, float) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return x * x; },
      [](float, float x) { return 2.0f * x; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  RRRE_CHECK_EQ(b.dim(0), k) << "MatMul inner dims: "
                             << ShapeToString(a.shape()) << " x "
                             << ShapeToString(b.shape());
  auto out = MakeNode({m, n}, {a, b});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data.data();
  // i-k-j loop order: streams through B and C rows for cache friendliness.
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t kk = 0; kk < k; ++kk) {
      const float aik = pa[i * k + kk];
      if (aik == 0.0f) continue;
      const float* brow = pb + kk * n;
      float* crow = pc + i * n;
      for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, m, k, n]() {
      // dA = dC * B^T
      if (WantsGrad(ia)) {
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            const float g = o->grad[static_cast<size_t>(i * n + j)];
            if (g == 0.0f) continue;
            const float* brow = ib->data.data() + j;
            float* garow = ia->grad.data() + i * k;
            for (int64_t kk = 0; kk < k; ++kk) {
              garow[kk] += g * brow[kk * n];
            }
          }
        }
      }
      // dB = A^T * dC
      if (WantsGrad(ib)) {
        for (int64_t i = 0; i < m; ++i) {
          const float* arow = ia->data.data() + i * k;
          const float* grow = o->grad.data() + i * n;
          for (int64_t kk = 0; kk < k; ++kk) {
            const float av = arow[kk];
            if (av == 0.0f) continue;
            float* gbrow = ib->grad.data() + kk * n;
            for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
          }
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Transpose(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  auto out = MakeNode({n, m}, {a});
  const float* pa = a.data();
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      out->data[static_cast<size_t>(j * m + i)] = pa[i * n + j];
    }
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, m, n]() {
      if (WantsGrad(ia)) {
        for (int64_t i = 0; i < m; ++i) {
          for (int64_t j = 0; j < n; ++j) {
            ia->grad[static_cast<size_t>(i * n + j)] +=
                o->grad[static_cast<size_t>(j * m + i)];
          }
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Softmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode(a.shape(), {a});
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pa + r * cols;
    float maxv = row[0];
    for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    float* orow = out->data.data() + r * cols;
    for (int64_t j = 0; j < cols; ++j) {
      orow[j] = std::exp(row[j] - maxv);
      denom += orow[j];
    }
    for (int64_t j = 0; j < cols; ++j) orow[j] /= denom;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      if (!WantsGrad(ia)) return;
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = o->data.data() + r * cols;
        const float* gy = o->grad.data() + r * cols;
        float dot = 0.0f;
        for (int64_t j = 0; j < cols; ++j) dot += y[j] * gy[j];
        float* gx = ia->grad.data() + r * cols;
        for (int64_t j = 0; j < cols; ++j) {
          gx[j] += y[j] * (gy[j] - dot);
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor LogSoftmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode(a.shape(), {a});
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    const float* row = pa + r * cols;
    float maxv = row[0];
    for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < cols; ++j) denom += std::exp(row[j] - maxv);
    const float log_denom = std::log(denom) + maxv;
    float* orow = out->data.data() + r * cols;
    for (int64_t j = 0; j < cols; ++j) orow[j] = row[j] - log_denom;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      if (!WantsGrad(ia)) return;
      for (int64_t r = 0; r < rows; ++r) {
        const float* y = o->data.data() + r * cols;
        const float* gy = o->grad.data() + r * cols;
        float gsum = 0.0f;
        for (int64_t j = 0; j < cols; ++j) gsum += gy[j];
        float* gx = ia->grad.data() + r * cols;
        for (int64_t j = 0; j < cols; ++j) {
          gx[j] += gy[j] - std::exp(y[j]) * gsum;
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sum(const Tensor& a) {
  auto out = MakeNode({1}, {a});
  const size_t n = a.impl()->data.size();
  const float* pa = a.data();
  double acc = 0.0;
  for (size_t i = 0; i < n; ++i) acc += pa[i];
  out->data[0] = static_cast<float>(acc);
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (WantsGrad(ia)) {
        const float g = o->grad[0];
        for (size_t i = 0; i < n; ++i) ia->grad[i] += g;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSum(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode({rows, 1}, {a});
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    double acc = 0.0;
    for (int64_t j = 0; j < cols; ++j) acc += pa[r * cols + j];
    out->data[static_cast<size_t>(r)] = static_cast<float>(acc);
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      if (!WantsGrad(ia)) return;
      for (int64_t r = 0; r < rows; ++r) {
        const float g = o->grad[static_cast<size_t>(r)];
        float* grow = ia->grad.data() + r * cols;
        for (int64_t j = 0; j < cols; ++j) grow[j] += g;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  RRRE_CHECK_EQ(NumElements(shape), a.numel())
      << ShapeToString(a.shape()) << " -> " << ShapeToString(shape);
  auto out = MakeNode(shape, {a});
  out->data = a.impl()->data;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia]() {
      if (WantsGrad(ia)) {
        for (size_t i = 0; i < o->grad.size(); ++i) ia->grad[i] += o->grad[i];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(0), rows);
    total_cols += p.dim(1);
  }
  auto out = MakeNode({rows, total_cols}, parts);
  int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.dim(1);
    const float* pp = p.data();
    for (int64_t r = 0; r < rows; ++r) {
      std::copy(pp + r * cols, pp + (r + 1) * cols,
                out->data.data() + r * total_cols + col_offset);
    }
    col_offset += cols;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> widths;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      widths.push_back(p.dim(1));
    }
    out->backward_fn = [o, impls, widths, rows, total_cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t cols = widths[pi];
        if (WantsGrad(impls[pi])) {
          for (int64_t r = 0; r < rows; ++r) {
            const float* src = o->grad.data() + r * total_cols + offset;
            float* dst = impls[pi]->grad.data() + r * cols;
            for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
          }
        }
        offset += cols;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t cols = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(1), cols);
    total_rows += p.dim(0);
  }
  auto out = MakeNode({total_rows, cols}, parts);
  int64_t row_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t rows = p.dim(0);
    std::copy(p.data(), p.data() + rows * cols,
              out->data.data() + row_offset * cols);
    row_offset += rows;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> heights;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      heights.push_back(p.dim(0));
    }
    out->backward_fn = [o, impls, heights, cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t rows = heights[pi];
        if (WantsGrad(impls[pi])) {
          const float* src = o->grad.data() + offset * cols;
          float* dst = impls[pi]->grad.data();
          for (int64_t i = 0; i < rows * cols; ++i) dst[i] += src[i];
        }
        offset += rows;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(0));
  const int64_t cols = a.dim(1);
  auto out = MakeNode({len, cols}, {a});
  std::copy(a.data() + start * cols, a.data() + (start + len) * cols,
            out->data.data());
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, cols]() {
      if (!WantsGrad(ia)) return;
      float* dst = ia->grad.data() + start * cols;
      for (int64_t i = 0; i < len * cols; ++i) dst[i] += o->grad[i];
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(1));
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode({rows, len}, {a});
  const float* pa = a.data();
  for (int64_t r = 0; r < rows; ++r) {
    std::copy(pa + r * cols + start, pa + r * cols + start + len,
              out->data.data() + r * len);
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, rows, cols]() {
      if (!WantsGrad(ia)) return;
      for (int64_t r = 0; r < rows; ++r) {
        const float* src = o->grad.data() + r * len;
        float* dst = ia->grad.data() + r * cols + start;
        for (int64_t j = 0; j < len; ++j) dst[j] += src[j];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Conv1dMaxPool(const Tensor& values, int64_t seq_len,
                     const Tensor& kernel, const Tensor& bias) {
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(kernel.ndim(), 2);
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t d = values.dim(1);
  RRRE_CHECK_GT(seq_len, 0);
  RRRE_CHECK_EQ(values.dim(0) % seq_len, 0)
      << "values rows must be a multiple of seq_len";
  const int64_t b = values.dim(0) / seq_len;
  RRRE_CHECK_EQ(kernel.dim(0) % d, 0)
      << "kernel rows must be a multiple of the embedding dim";
  const int64_t w = kernel.dim(0) / d;
  RRRE_CHECK_LE(w, seq_len) << "window wider than sequence";
  const int64_t f = kernel.dim(1);
  RRRE_CHECK_EQ(bias.dim(0), f);
  const int64_t positions = seq_len - w + 1;

  auto out = MakeNode({b, f}, {values, kernel, bias});
  // argmax[b*f + c] = best window start for that (example, filter).
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(b * f), int64_t{0});
  const float* pv = values.data();
  const float* pk = kernel.data();
  const float* pb = bias.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    float* orow = out->data.data() + bi * f;
    std::vector<float> best(static_cast<size_t>(f),
                            -std::numeric_limits<float>::infinity());
    for (int64_t t = 0; t < positions; ++t) {
      const float* window = pv + (bi * seq_len + t) * d;
      for (int64_t c = 0; c < f; ++c) {
        float acc = pb[c];
        // kernel rows are laid out window-position-major: row (p*d + e).
        for (int64_t p = 0; p < w; ++p) {
          const float* vrow = window + p * d;
          const float* krow = pk + p * d * f;
          for (int64_t e = 0; e < d; ++e) acc += vrow[e] * krow[e * f + c];
        }
        if (acc > best[static_cast<size_t>(c)]) {
          best[static_cast<size_t>(c)] = acc;
          (*argmax)[static_cast<size_t>(bi * f + c)] = t;
        }
      }
    }
    for (int64_t c = 0; c < f; ++c) orow[c] = best[static_cast<size_t>(c)];
  }

  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* ik = kernel.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, iv, ik, ib, argmax, b, f, w, d, seq_len]() {
      const bool gv = WantsGrad(iv);
      const bool gk = WantsGrad(ik);
      const bool gb = WantsGrad(ib);
      if (!gv && !gk && !gb) return;
      for (int64_t bi = 0; bi < b; ++bi) {
        for (int64_t c = 0; c < f; ++c) {
          const float g = o->grad[static_cast<size_t>(bi * f + c)];
          if (g == 0.0f) continue;
          const int64_t t = (*argmax)[static_cast<size_t>(bi * f + c)];
          if (gb) ib->grad[static_cast<size_t>(c)] += g;
          for (int64_t p = 0; p < w; ++p) {
            const int64_t vrow = (bi * seq_len + t + p) * d;
            for (int64_t e = 0; e < d; ++e) {
              const int64_t krow = (p * d + e) * f + c;
              if (gv) {
                iv->grad[static_cast<size_t>(vrow + e)] +=
                    g * ik->data[static_cast<size_t>(krow)];
              }
              if (gk) {
                ik->grad[static_cast<size_t>(krow)] +=
                    g * iv->data[static_cast<size_t>(vrow + e)];
              }
            }
          }
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids) {
  RRRE_CHECK_EQ(table.ndim(), 2);
  RRRE_CHECK(!ids.empty());
  const int64_t v = table.dim(0);
  const int64_t d = table.dim(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  auto out = MakeNode({n, d}, {table});
  const float* pt = table.data();
  for (int64_t i = 0; i < n; ++i) {
    RRRE_CHECK_GE(ids[static_cast<size_t>(i)], 0);
    RRRE_CHECK_LT(ids[static_cast<size_t>(i)], v);
    std::copy(pt + ids[static_cast<size_t>(i)] * d,
              pt + (ids[static_cast<size_t>(i)] + 1) * d,
              out->data.data() + i * d);
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* it = table.impl().get();
    out->backward_fn = [o, it, ids, n, d]() {
      if (!WantsGrad(it)) return;
      for (int64_t i = 0; i < n; ++i) {
        const float* src = o->grad.data() + i * d;
        float* dst = it->grad.data() + ids[static_cast<size_t>(i)] * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor WeightedPool(const Tensor& values, const Tensor& weights) {
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(weights.ndim(), 2);
  const int64_t b = weights.dim(0);
  const int64_t s = weights.dim(1);
  const int64_t k = values.dim(1);
  RRRE_CHECK_EQ(values.dim(0), b * s)
      << "values rows must equal B*s: " << ShapeToString(values.shape())
      << " with weights " << ShapeToString(weights.shape());
  auto out = MakeNode({b, k}, {values, weights});
  const float* pv = values.data();
  const float* pw = weights.data();
  for (int64_t bi = 0; bi < b; ++bi) {
    float* orow = out->data.data() + bi * k;
    for (int64_t j = 0; j < s; ++j) {
      const float w = pw[bi * s + j];
      if (w == 0.0f) continue;
      const float* vrow = pv + (bi * s + j) * k;
      for (int64_t c = 0; c < k; ++c) orow[c] += w * vrow[c];
    }
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* iw = weights.impl().get();
    out->backward_fn = [o, iv, iw, b, s, k]() {
      const bool gv = WantsGrad(iv);
      const bool gw = WantsGrad(iw);
      if (!gv && !gw) return;
      for (int64_t bi = 0; bi < b; ++bi) {
        const float* go = o->grad.data() + bi * k;
        for (int64_t j = 0; j < s; ++j) {
          const int64_t row = bi * s + j;
          if (gv) {
            const float w = iw->data[static_cast<size_t>(bi * s + j)];
            float* gvrow = iv->grad.data() + row * k;
            for (int64_t c = 0; c < k; ++c) gvrow[c] += w * go[c];
          }
          if (gw) {
            const float* vrow = iv->data.data() + row * k;
            float acc = 0.0f;
            for (int64_t c = 0; c < k; ++c) acc += go[c] * vrow[c];
            iw->grad[static_cast<size_t>(bi * s + j)] += acc;
          }
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels,
                              const std::vector<float>& example_weights) {
  RRRE_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0);
  const int64_t c = logits.dim(1);
  RRRE_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  const bool weighted = !example_weights.empty();
  if (weighted) {
    RRRE_CHECK_EQ(static_cast<int64_t>(example_weights.size()), b);
  }

  // Forward: per-row stable log-softmax, gather label log-probability.
  std::vector<float> probs(static_cast<size_t>(b * c));
  const float* pl = logits.data();
  double loss_acc = 0.0;
  double weight_acc = 0.0;
  for (int64_t r = 0; r < b; ++r) {
    RRRE_CHECK_GE(labels[static_cast<size_t>(r)], 0);
    RRRE_CHECK_LT(labels[static_cast<size_t>(r)], c);
    const float* row = pl + r * c;
    float maxv = row[0];
    for (int64_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
    float denom = 0.0f;
    for (int64_t j = 0; j < c; ++j) {
      probs[static_cast<size_t>(r * c + j)] = std::exp(row[j] - maxv);
      denom += probs[static_cast<size_t>(r * c + j)];
    }
    for (int64_t j = 0; j < c; ++j) {
      probs[static_cast<size_t>(r * c + j)] /= denom;
    }
    const float w = weighted ? example_weights[static_cast<size_t>(r)] : 1.0f;
    const float logp =
        row[labels[static_cast<size_t>(r)]] - maxv - std::log(denom);
    loss_acc += -static_cast<double>(w) * logp;
    weight_acc += w;
  }
  const float norm = static_cast<float>(std::max(weight_acc, 1e-12));

  auto out = MakeNode({1}, {logits});
  out->data[0] = static_cast<float>(loss_acc) / norm;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* il = logits.impl().get();
    auto probs_shared = std::make_shared<std::vector<float>>(std::move(probs));
    out->backward_fn = [o, il, probs_shared, labels, example_weights, weighted,
                        b, c, norm]() {
      if (!WantsGrad(il)) return;
      const float g = o->grad[0] / norm;
      const std::vector<float>& p = *probs_shared;
      for (int64_t r = 0; r < b; ++r) {
        const float w =
            weighted ? example_weights[static_cast<size_t>(r)] : 1.0f;
        if (w == 0.0f) continue;
        float* grow = il->grad.data() + r * c;
        const int64_t label = labels[static_cast<size_t>(r)];
        for (int64_t j = 0; j < c; ++j) {
          const float onehot = (j == label) ? 1.0f : 0.0f;
          grow[j] += g * w * (p[static_cast<size_t>(r * c + j)] - onehot);
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace rrre::tensor
