#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/threadpool.h"
#include "obs/trace.h"
#include "tensor/grad_sink.h"

namespace rrre::tensor {

using common::ParallelFor;
using internal::TensorImpl;

namespace {

// Determinism contract of every kernel here: the arithmetic is a function of
// the operand shapes only, never of the thread count. Loops whose iterations
// write disjoint outputs are split freely; reductions are computed over
// fixed-grain chunks whose partials are combined in chunk order, so results
// are bitwise identical whether the chunks run on 1 thread or 16.

/// Elements per chunk for cheap elementwise kernels.
constexpr int64_t kElemGrain = 1 << 14;

/// Rows per chunk for row-partitioned kernels, sized so a chunk carries
/// roughly kElemGrain scalar operations. Depends only on the shape.
int64_t RowGrain(int64_t cost_per_row) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, cost_per_row));
}

/// Creates a result node whose parents are `parents`; requires_grad is
/// inherited from any parent.
std::shared_ptr<TensorImpl> MakeNode(const Shape& shape,
                                     std::vector<Tensor> parents) {
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  for (const Tensor& p : parents) {
    RRRE_CHECK(p.defined());
    impl->requires_grad = impl->requires_grad || p.requires_grad();
    impl->parents.push_back(p.impl());
  }
  return impl;
}

/// Buffer gradient contributions for `node` accumulate into, or nullptr when
/// the node does not participate in differentiation. When a GradSink scope
/// is active on this thread and covers the node (a shared parameter leaf in
/// a data-parallel shard), the sink's private buffer is returned instead of
/// the node's own grad — resolve this on the thread running backward, before
/// fanning chunks out to the pool.
float* GradBuf(TensorImpl* node) {
  if (!node->requires_grad) return nullptr;
  if (float* redirected = GradSink::ActiveFind(node)) return redirected;
  node->EnsureGrad();
  return node->grad.data();
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  RRRE_CHECK(a.shape() == b.shape())
      << ShapeToString(a.shape()) << " vs " << ShapeToString(b.shape());
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + pb[i];
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] += go[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] - pb[i];
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] -= go[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * pb[i];
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      const float* da = ia->data.data();
      const float* db = ib->data.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] * db[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] += go[i] * da[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode(a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] / pb[i];
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      const float* da = ia->data.data();
      const float* db = ib->data.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] / db[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) {
            gb[i] -= go[i] * da[i] / (db[i] * db[i]);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddBias(const Tensor& a, const Tensor& bias) {
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t n = bias.dim(0);
  RRRE_CHECK_EQ(a.dim(-1), n);
  auto out = MakeNode(a.shape(), {a, bias});
  const int64_t rows = a.numel() / n;
  const float* pa = a.data();
  const float* pb = bias.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      for (int64_t j = 0; j < n; ++j) po[r * n + j] = pa[r * n + j] + pb[j];
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, ia, ib, rows, n]() {
      const float* go = o->grad.data();
      if (float* ga = GradBuf(ia)) {
        const int64_t total = rows * n;
        ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
      if (float* gb = GradBuf(ib)) {
        // Bias grad is a cross-row reduction: fixed-grain chunk partials,
        // combined in chunk order.
        const int64_t grain = RowGrain(n);
        const int64_t chunks = (rows + grain - 1) / grain;
        std::vector<std::vector<float>> partials(
            static_cast<size_t>(chunks));
        ParallelFor(0, rows, grain, [&, grain](int64_t lo, int64_t hi) {
          auto& part = partials[static_cast<size_t>(lo / grain)];
          part.assign(static_cast<size_t>(n), 0.0f);
          for (int64_t r = lo; r < hi; ++r) {
            for (int64_t j = 0; j < n; ++j) {
              part[static_cast<size_t>(j)] += go[r * n + j];
            }
          }
        });
        for (const auto& part : partials) {
          for (int64_t j = 0; j < n; ++j) gb[j] += part[static_cast<size_t>(j)];
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = MakeNode(a.shape(), {a});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] + s;
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  auto out = MakeNode(a.shape(), {a});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = pa[i] * s;
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, s]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] * s;
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

namespace {

/// Shared implementation for unary elementwise ops where the local derivative
/// can be computed from the output value.
template <typename Fwd, typename DerivFromOut>
Tensor UnaryFromOutput(const Tensor& a, Fwd fwd, DerivFromOut deriv) {
  auto out = MakeNode(a.shape(), {a});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fwd(pa[i]);
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, deriv]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        const float* yo = o->data.data();
        const float* xa = ia->data.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            ga[i] += go[i] * deriv(yo[i], xa[i]);
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace

Tensor Tanh(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::tanh(x); },
      [](float y, float) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryFromOutput(
      a,
      [](float x) {
        // Stable sigmoid for both signs of x.
        if (x >= 0.0f) {
          const float z = std::exp(-x);
          return 1.0f / (1.0f + z);
        }
        const float z = std::exp(x);
        return z / (1.0f + z);
      },
      [](float y, float) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float, float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::exp(x); },
      [](float y, float) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::log(x); },
      [](float, float x) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return std::sqrt(x); },
      [](float y, float) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryFromOutput(
      a, [](float x) { return x * x; },
      [](float, float x) { return 2.0f * x; });
}

Tensor MatMul(const Tensor& a, const Tensor& b) {
  obs::TraceSpan span("matmul");
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t k = a.dim(1);
  const int64_t n = b.dim(1);
  RRRE_CHECK_EQ(b.dim(0), k) << "MatMul inner dims: "
                             << ShapeToString(a.shape()) << " x "
                             << ShapeToString(b.shape());
  auto out = MakeNode({m, n}, {a, b});
  const float* pa = a.data();
  const float* pb = b.data();
  float* pc = out->data.data();
  // Row-partitioned i-k-j loops: each output row is produced by exactly one
  // chunk with the serial accumulation order, so the forward value does not
  // depend on the thread count.
  ParallelFor(0, m, RowGrain(k * n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float aik = pa[i * k + kk];
        if (aik == 0.0f) continue;
        const float* brow = pb + kk * n;
        float* crow = pc + i * n;
        for (int64_t j = 0; j < n; ++j) crow[j] += aik * brow[j];
      }
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, m, k, n]() {
      const float* go = o->grad.data();
      // dA = dC * B^T, partitioned by rows of A (private per chunk).
      if (float* ga = GradBuf(ia)) {
        const float* db = ib->data.data();
        ParallelFor(0, m, RowGrain(k * n), [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < n; ++j) {
              const float g = go[i * n + j];
              if (g == 0.0f) continue;
              const float* brow = db + j;
              float* garow = ga + i * k;
              for (int64_t kk = 0; kk < k; ++kk) {
                garow[kk] += g * brow[kk * n];
              }
            }
          }
        });
      }
      // dB = A^T * dC, partitioned by rows of B (index kk): each chunk owns
      // its rows of dB outright, and the i-ascending accumulation order per
      // row is fixed — no thread-count dependence.
      if (float* gb = GradBuf(ib)) {
        const float* da = ia->data.data();
        ParallelFor(0, k, RowGrain(m * n), [=](int64_t lo, int64_t hi) {
          for (int64_t kk = lo; kk < hi; ++kk) {
            float* gbrow = gb + kk * n;
            for (int64_t i = 0; i < m; ++i) {
              const float av = da[i * k + kk];
              if (av == 0.0f) continue;
              const float* grow = go + i * n;
              for (int64_t j = 0; j < n; ++j) gbrow[j] += av * grow[j];
            }
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Transpose(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  auto out = MakeNode({n, m}, {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, m, RowGrain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, m, n]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, m, RowGrain(n), [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < n; ++j) ga[i * n + j] += go[j * m + i];
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Softmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode(a.shape(), {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * cols;
      float maxv = row[0];
      for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      float* orow = po + r * cols;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = std::exp(row[j] - maxv);
        denom += orow[j];
      }
      for (int64_t j = 0; j < cols; ++j) orow[j] /= denom;
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      float* ga = GradBuf(ia);
      if (ga == nullptr) return;
      const float* yo = o->data.data();
      const float* go = o->grad.data();
      ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* y = yo + r * cols;
          const float* gy = go + r * cols;
          float dot = 0.0f;
          for (int64_t j = 0; j < cols; ++j) dot += y[j] * gy[j];
          float* gx = ga + r * cols;
          for (int64_t j = 0; j < cols; ++j) {
            gx[j] += y[j] * (gy[j] - dot);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor LogSoftmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode(a.shape(), {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * cols;
      float maxv = row[0];
      for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < cols; ++j) denom += std::exp(row[j] - maxv);
      const float log_denom = std::log(denom) + maxv;
      float* orow = po + r * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] = row[j] - log_denom;
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      float* ga = GradBuf(ia);
      if (ga == nullptr) return;
      const float* yo = o->data.data();
      const float* go = o->grad.data();
      ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* y = yo + r * cols;
          const float* gy = go + r * cols;
          float gsum = 0.0f;
          for (int64_t j = 0; j < cols; ++j) gsum += gy[j];
          float* gx = ga + r * cols;
          for (int64_t j = 0; j < cols; ++j) {
            gx[j] += gy[j] - std::exp(y[j]) * gsum;
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sum(const Tensor& a) {
  auto out = MakeNode({1}, {a});
  const int64_t n = static_cast<int64_t>(a.impl()->data.size());
  const float* pa = a.data();
  // Fixed-grain chunk partials combined in chunk order: for n <= kElemGrain
  // this is the plain serial double accumulation.
  const int64_t chunks = (n + kElemGrain - 1) / kElemGrain;
  std::vector<double> partials(static_cast<size_t>(std::max<int64_t>(chunks, 1)),
                               0.0);
  ParallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += pa[i];
    partials[static_cast<size_t>(lo / kElemGrain)] = acc;
  });
  double total = 0.0;
  for (double p : partials) total += p;
  out->data[0] = static_cast<float>(total);
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (float* ga = GradBuf(ia)) {
        const float g = o->grad[0];
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += g;
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSum(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode({rows, 1}, {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (int64_t j = 0; j < cols; ++j) acc += pa[r * cols + j];
      po[r] = static_cast<float>(acc);
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float g = go[r];
            float* grow = ga + r * cols;
            for (int64_t j = 0; j < cols; ++j) grow[j] += g;
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  RRRE_CHECK_EQ(NumElements(shape), a.numel())
      << ShapeToString(a.shape()) << " -> " << ShapeToString(shape);
  auto out = MakeNode(shape, {a});
  out->data = a.impl()->data;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        const int64_t n = static_cast<int64_t>(o->grad.size());
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(0), rows);
    total_cols += p.dim(1);
  }
  auto out = MakeNode({rows, total_cols}, parts);
  int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.dim(1);
    const float* pp = p.data();
    float* po = out->data.data() + col_offset;
    ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        std::copy(pp + r * cols, pp + (r + 1) * cols, po + r * total_cols);
      }
    });
    col_offset += cols;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> widths;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      widths.push_back(p.dim(1));
    }
    out->backward_fn = [o, impls, widths, rows, total_cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t cols = widths[pi];
        if (float* gp = GradBuf(impls[pi])) {
          const float* go = o->grad.data() + offset;
          ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* src = go + r * total_cols;
              float* dst = gp + r * cols;
              for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
            }
          });
        }
        offset += cols;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t cols = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(1), cols);
    total_rows += p.dim(0);
  }
  auto out = MakeNode({total_rows, cols}, parts);
  int64_t row_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t rows = p.dim(0);
    std::copy(p.data(), p.data() + rows * cols,
              out->data.data() + row_offset * cols);
    row_offset += rows;
  }
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> heights;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      heights.push_back(p.dim(0));
    }
    out->backward_fn = [o, impls, heights, cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t rows = heights[pi];
        if (float* gp = GradBuf(impls[pi])) {
          const float* src = o->grad.data() + offset * cols;
          const int64_t total = rows * cols;
          ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] += src[i];
          });
        }
        offset += rows;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(0));
  const int64_t cols = a.dim(1);
  auto out = MakeNode({len, cols}, {a});
  std::copy(a.data() + start * cols, a.data() + (start + len) * cols,
            out->data.data());
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, cols]() {
      if (float* ga = GradBuf(ia)) {
        float* dst = ga + start * cols;
        const float* go = o->grad.data();
        const int64_t total = len * cols;
        ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) dst[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(1));
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode({rows, len}, {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(len), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      std::copy(pa + r * cols + start, pa + r * cols + start + len,
                po + r * len);
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, rows, cols]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, rows, RowGrain(len), [=](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float* src = go + r * len;
            float* dst = ga + r * cols + start;
            for (int64_t j = 0; j < len; ++j) dst[j] += src[j];
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

namespace {

/// Examples per chunk in Conv1dMaxPool's backward kernel-gradient reduction.
/// Fixed so the chunk partials (and their combination order) do not depend on
/// the thread count.
constexpr int64_t kConvChunk = 16;

}  // namespace

Tensor Conv1dMaxPool(const Tensor& values, int64_t seq_len,
                     const Tensor& kernel, const Tensor& bias) {
  obs::TraceSpan span("conv1d_maxpool");
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(kernel.ndim(), 2);
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t d = values.dim(1);
  RRRE_CHECK_GT(seq_len, 0);
  RRRE_CHECK_EQ(values.dim(0) % seq_len, 0)
      << "values rows must be a multiple of seq_len";
  const int64_t b = values.dim(0) / seq_len;
  RRRE_CHECK_EQ(kernel.dim(0) % d, 0)
      << "kernel rows must be a multiple of the embedding dim";
  const int64_t w = kernel.dim(0) / d;
  RRRE_CHECK_LE(w, seq_len) << "window wider than sequence";
  const int64_t f = kernel.dim(1);
  RRRE_CHECK_EQ(bias.dim(0), f);
  const int64_t positions = seq_len - w + 1;

  auto out = MakeNode({b, f}, {values, kernel, bias});
  // argmax[b*f + c] = best window start for that (example, filter).
  auto argmax = std::make_shared<std::vector<int64_t>>(
      static_cast<size_t>(b * f), int64_t{0});
  const float* pv = values.data();
  const float* pk = kernel.data();
  const float* pb = bias.data();
  float* po = out->data.data();
  int64_t* pam = argmax->data();
  // Examples are independent: partition by bi.
  ParallelFor(0, b, RowGrain(positions * f * w * d),
              [=](int64_t lo, int64_t hi) {
    std::vector<float> best(static_cast<size_t>(f));
    for (int64_t bi = lo; bi < hi; ++bi) {
      float* orow = po + bi * f;
      best.assign(static_cast<size_t>(f),
                  -std::numeric_limits<float>::infinity());
      for (int64_t t = 0; t < positions; ++t) {
        const float* window = pv + (bi * seq_len + t) * d;
        for (int64_t c = 0; c < f; ++c) {
          float acc = pb[c];
          // kernel rows are laid out window-position-major: row (p*d + e).
          for (int64_t p = 0; p < w; ++p) {
            const float* vrow = window + p * d;
            const float* krow = pk + p * d * f;
            for (int64_t e = 0; e < d; ++e) acc += vrow[e] * krow[e * f + c];
          }
          if (acc > best[static_cast<size_t>(c)]) {
            best[static_cast<size_t>(c)] = acc;
            pam[bi * f + c] = t;
          }
        }
      }
      for (int64_t c = 0; c < f; ++c) orow[c] = best[static_cast<size_t>(c)];
    }
  });

  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* ik = kernel.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, iv, ik, ib, argmax, b, f, w, d, seq_len]() {
      float* gv = GradBuf(iv);
      float* gk = GradBuf(ik);
      float* gb = GradBuf(ib);
      if (gv == nullptr && gk == nullptr && gb == nullptr) return;
      const float* go = o->grad.data();
      const float* dk = ik->data.data();
      const float* dv = iv->data.data();
      const int64_t* pam2 = argmax->data();
      // Value grads are private per example; kernel and bias grads are
      // cross-example reductions — accumulate per-chunk partials (fixed
      // kConvChunk examples each) and combine them in chunk order.
      const int64_t ksize = w * d * f;
      const int64_t chunks = (b + kConvChunk - 1) / kConvChunk;
      std::vector<std::vector<float>> k_partials(
          static_cast<size_t>(chunks));
      std::vector<std::vector<float>> b_partials(
          static_cast<size_t>(chunks));
      ParallelFor(0, b, kConvChunk, [&, ksize](int64_t lo, int64_t hi) {
        const size_t chunk = static_cast<size_t>(lo / kConvChunk);
        float* kp = nullptr;
        float* bp = nullptr;
        if (gk != nullptr) {
          k_partials[chunk].assign(static_cast<size_t>(ksize), 0.0f);
          kp = k_partials[chunk].data();
        }
        if (gb != nullptr) {
          b_partials[chunk].assign(static_cast<size_t>(f), 0.0f);
          bp = b_partials[chunk].data();
        }
        for (int64_t bi = lo; bi < hi; ++bi) {
          for (int64_t c = 0; c < f; ++c) {
            const float g = go[bi * f + c];
            if (g == 0.0f) continue;
            const int64_t t = pam2[bi * f + c];
            if (bp != nullptr) bp[c] += g;
            for (int64_t p = 0; p < w; ++p) {
              const int64_t vrow = (bi * seq_len + t + p) * d;
              for (int64_t e = 0; e < d; ++e) {
                const int64_t krow = (p * d + e) * f + c;
                if (gv != nullptr) gv[vrow + e] += g * dk[krow];
                if (kp != nullptr) kp[krow] += g * dv[vrow + e];
              }
            }
          }
        }
      });
      for (int64_t c = 0; c < chunks; ++c) {
        if (gk != nullptr && !k_partials[static_cast<size_t>(c)].empty()) {
          const float* kp = k_partials[static_cast<size_t>(c)].data();
          for (int64_t i = 0; i < ksize; ++i) gk[i] += kp[i];
        }
        if (gb != nullptr && !b_partials[static_cast<size_t>(c)].empty()) {
          const float* bp = b_partials[static_cast<size_t>(c)].data();
          for (int64_t i = 0; i < f; ++i) gb[i] += bp[i];
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids) {
  RRRE_CHECK_EQ(table.ndim(), 2);
  RRRE_CHECK(!ids.empty());
  const int64_t v = table.dim(0);
  const int64_t d = table.dim(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  auto out = MakeNode({n, d}, {table});
  for (int64_t i = 0; i < n; ++i) {
    RRRE_CHECK_GE(ids[static_cast<size_t>(i)], 0);
    RRRE_CHECK_LT(ids[static_cast<size_t>(i)], v);
  }
  const float* pt = table.data();
  const int64_t* pid = ids.data();
  float* po = out->data.data();
  ParallelFor(0, n, RowGrain(d), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      std::copy(pt + pid[i] * d, pt + (pid[i] + 1) * d, po + i * d);
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* it = table.impl().get();
    out->backward_fn = [o, it, ids, n, d]() {
      float* gt = GradBuf(it);
      if (gt == nullptr) return;
      // Serial: duplicate ids scatter-add into the same table row.
      const float* go = o->grad.data();
      for (int64_t i = 0; i < n; ++i) {
        const float* src = go + i * d;
        float* dst = gt + ids[static_cast<size_t>(i)] * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor WeightedPool(const Tensor& values, const Tensor& weights) {
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(weights.ndim(), 2);
  const int64_t b = weights.dim(0);
  const int64_t s = weights.dim(1);
  const int64_t k = values.dim(1);
  RRRE_CHECK_EQ(values.dim(0), b * s)
      << "values rows must equal B*s: " << ShapeToString(values.shape())
      << " with weights " << ShapeToString(weights.shape());
  auto out = MakeNode({b, k}, {values, weights});
  const float* pv = values.data();
  const float* pw = weights.data();
  float* po = out->data.data();
  ParallelFor(0, b, RowGrain(s * k), [=](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      float* orow = po + bi * k;
      for (int64_t j = 0; j < s; ++j) {
        const float w = pw[bi * s + j];
        if (w == 0.0f) continue;
        const float* vrow = pv + (bi * s + j) * k;
        for (int64_t c = 0; c < k; ++c) orow[c] += w * vrow[c];
      }
    }
  });
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* iw = weights.impl().get();
    out->backward_fn = [o, iv, iw, b, s, k]() {
      float* gv = GradBuf(iv);
      float* gw = GradBuf(iw);
      if (gv == nullptr && gw == nullptr) return;
      const float* go = o->grad.data();
      const float* dw = iw->data.data();
      const float* dv = iv->data.data();
      // Rows (bi*s + j) and weight entries are private per example.
      ParallelFor(0, b, RowGrain(s * k), [=](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
          const float* gorow = go + bi * k;
          for (int64_t j = 0; j < s; ++j) {
            const int64_t row = bi * s + j;
            if (gv != nullptr) {
              const float w = dw[bi * s + j];
              float* gvrow = gv + row * k;
              for (int64_t c = 0; c < k; ++c) gvrow[c] += w * gorow[c];
            }
            if (gw != nullptr) {
              const float* vrow = dv + row * k;
              float acc = 0.0f;
              for (int64_t c = 0; c < k; ++c) acc += gorow[c] * vrow[c];
              gw[bi * s + j] += acc;
            }
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels,
                              const std::vector<float>& example_weights) {
  RRRE_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0);
  const int64_t c = logits.dim(1);
  RRRE_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  const bool weighted = !example_weights.empty();
  if (weighted) {
    RRRE_CHECK_EQ(static_cast<int64_t>(example_weights.size()), b);
  }
  for (int64_t r = 0; r < b; ++r) {
    RRRE_CHECK_GE(labels[static_cast<size_t>(r)], 0);
    RRRE_CHECK_LT(labels[static_cast<size_t>(r)], c);
  }

  // Forward: per-row stable log-softmax, gather label log-probability. The
  // (loss, weight) accumulators are reduced over fixed-grain row chunks.
  std::vector<float> probs(static_cast<size_t>(b * c));
  const float* pl = logits.data();
  const int64_t grain = RowGrain(c);
  const int64_t chunks = (b + grain - 1) / grain;
  std::vector<double> loss_partials(static_cast<size_t>(chunks), 0.0);
  std::vector<double> weight_partials(static_cast<size_t>(chunks), 0.0);
  float* pp = probs.data();
  ParallelFor(0, b, grain, [&, grain](int64_t lo, int64_t hi) {
    double loss_acc = 0.0;
    double weight_acc = 0.0;
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pl + r * c;
      float maxv = row[0];
      for (int64_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        pp[r * c + j] = std::exp(row[j] - maxv);
        denom += pp[r * c + j];
      }
      for (int64_t j = 0; j < c; ++j) pp[r * c + j] /= denom;
      const float w = weighted ? example_weights[static_cast<size_t>(r)] : 1.0f;
      const float logp =
          row[labels[static_cast<size_t>(r)]] - maxv - std::log(denom);
      loss_acc += -static_cast<double>(w) * logp;
      weight_acc += w;
    }
    loss_partials[static_cast<size_t>(lo / grain)] = loss_acc;
    weight_partials[static_cast<size_t>(lo / grain)] = weight_acc;
  });
  double loss_acc = 0.0;
  double weight_acc = 0.0;
  for (int64_t i = 0; i < chunks; ++i) {
    loss_acc += loss_partials[static_cast<size_t>(i)];
    weight_acc += weight_partials[static_cast<size_t>(i)];
  }
  const float norm = static_cast<float>(std::max(weight_acc, 1e-12));

  auto out = MakeNode({1}, {logits});
  out->data[0] = static_cast<float>(loss_acc) / norm;
  if (out->requires_grad) {
    TensorImpl* o = out.get();
    TensorImpl* il = logits.impl().get();
    auto probs_shared = std::make_shared<std::vector<float>>(std::move(probs));
    out->backward_fn = [o, il, probs_shared, labels, example_weights, weighted,
                        b, c, norm]() {
      float* gl = GradBuf(il);
      if (gl == nullptr) return;
      const float g = o->grad[0] / norm;
      const float* p = probs_shared->data();
      const float* wts = weighted ? example_weights.data() : nullptr;
      const int64_t* lab = labels.data();
      ParallelFor(0, b, RowGrain(c), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float w = wts != nullptr ? wts[r] : 1.0f;
          if (w == 0.0f) continue;
          float* grow = gl + r * c;
          const int64_t label = lab[r];
          for (int64_t j = 0; j < c; ++j) {
            const float onehot = (j == label) ? 1.0f : 0.0f;
            grow[j] += g * w * (p[r * c + j] - onehot);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace rrre::tensor
