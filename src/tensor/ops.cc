#include "tensor/ops.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <limits>

#include "common/threadpool.h"
#include "obs/trace.h"
#include "tensor/grad_sink.h"
#include "tensor/kernels.h"
#include "tensor/tape.h"

namespace rrre::tensor {

using common::ParallelFor;
using internal::TensorImpl;
using kernels::StableSigmoid;

namespace {

// Determinism contract of every kernel here: the arithmetic is a function of
// the operand shapes only, never of the thread count. Loops whose iterations
// write disjoint outputs are split freely; reductions are computed over
// fixed-grain chunks whose partials are combined in chunk order, so results
// are bitwise identical whether the chunks run on 1 thread or 16. The
// blocked GEMM in kernels.cc honors the same contract per output element
// (ascending k within a cache panel, panels in ascending order).

/// Elements per chunk for cheap elementwise kernels.
constexpr int64_t kElemGrain = 1 << 14;

/// Rows per chunk for row-partitioned kernels, sized so a chunk carries
/// roughly kElemGrain scalar operations. Depends only on the shape.
int64_t RowGrain(int64_t cost_per_row) {
  return std::max<int64_t>(1, kElemGrain / std::max<int64_t>(1, cost_per_row));
}

/// Packs a float op constant into a replay-verified attr word. Bit pattern,
/// not value, so e.g. -0.0f vs 0.0f scales are distinguished.
uint64_t FloatBits(float v) {
  uint32_t bits;
  std::memcpy(&bits, &v, sizeof(bits));
  return bits;
}

/// Creates a result node whose parents are `parents`; requires_grad is
/// inherited from any parent. `op` is a static name used by the tape's
/// op-sequence fingerprint; the node itself is drawn from the active
/// BatchTape's buffer pool when one is in scope. `attr` packs any op
/// constants a backward closure captures (transpose flags, scalar bits,
/// slice offsets) so a compiled replay step can verify the recorded closure
/// still applies. A node served by replay comes back tape_wired with the
/// recorded parents and closure installed — the wiring below is skipped, and
/// so is closure construction at each call site (the `!tape_wired` gates).
std::shared_ptr<TensorImpl> MakeNode(const char* op, const Shape& shape,
                                     std::vector<Tensor> parents,
                                     uint64_t attr = 0) {
  auto impl = BatchTape::NewNode(op, shape, attr, &parents);
  if (impl->tape_wired) return impl;
  for (const Tensor& p : parents) {
    RRRE_CHECK(p.defined());
    impl->requires_grad = impl->requires_grad || p.requires_grad();
    impl->parents.push_back(p.impl());
  }
  return impl;
}

/// Buffer gradient contributions for `node` accumulate into, or nullptr when
/// the node does not participate in differentiation. When a GradSink scope
/// is active on this thread and covers the node (a shared parameter leaf in
/// a data-parallel shard), the sink's private buffer is returned instead of
/// the node's own grad — resolve this on the thread running backward, before
/// fanning chunks out to the pool.
float* GradBuf(TensorImpl* node) {
  if (!node->requires_grad) return nullptr;
  if (float* redirected = GradSink::ActiveFind(node)) return redirected;
  node->EnsureGrad();
  return node->grad.data();
}

void CheckSameShape(const Tensor& a, const Tensor& b) {
  RRRE_CHECK(a.shape() == b.shape())
      << ShapeToString(a.shape()) << " vs " << ShapeToString(b.shape());
}

/// C[m, n] += opA(A)·opB(B) with output rows sharded across the pool. Each
/// chunk owns its rows of C outright and the blocked kernel's per-element
/// arithmetic is independent of the row range it is handed, so the result is
/// bitwise identical across thread counts.
void ShardedGemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
                 const float* a, int64_t lda, const float* b, int64_t ldb,
                 float* c, int64_t ldc) {
  ParallelFor(0, m, RowGrain(k * n), [=](int64_t lo, int64_t hi) {
    // Row i of opA(A) starts at a + i*lda normally; with trans_a the stored
    // matrix is [k, m] and op-row i is stored column i, i.e. offset a + i.
    const float* a_sub = trans_a ? a + lo : a + lo * lda;
    kernels::Gemm(trans_a, trans_b, hi - lo, n, k, a_sub, lda, b, ldb,
                  c + lo * ldc, ldc);
  });
}

inline float ApplyAct(Activation act, float x) {
  switch (act) {
    case Activation::kNone:
      return x;
    case Activation::kTanh:
      return std::tanh(x);
    case Activation::kSigmoid:
      return StableSigmoid(x);
    case Activation::kRelu:
      return x > 0.0f ? x : 0.0f;
  }
  return x;
}

/// Derivative from the output value, matching the eager UnaryFromOutput
/// derivative expressions bit for bit (relu's x > 0 test is equivalent to
/// y > 0 since y = max(x, 0)).
inline float ActDeriv(Activation act, float y) {
  switch (act) {
    case Activation::kNone:
      return 1.0f;
    case Activation::kTanh:
      return 1.0f - y * y;
    case Activation::kSigmoid:
      return y * (1.0f - y);
    case Activation::kRelu:
      return y > 0.0f ? 1.0f : 0.0f;
  }
  return 1.0f;
}

}  // namespace

Tensor Add(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode("add", a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwAdd(hi - lo, pa + lo, pb + lo, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] += go[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sub(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode("sub", a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwSub(hi - lo, pa + lo, pb + lo, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] -= go[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mul(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode("mul", a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwMul(hi - lo, pa + lo, pb + lo, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      const float* da = ia->data.data();
      const float* db = ib->data.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] * db[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) gb[i] += go[i] * da[i];
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Div(const Tensor& a, const Tensor& b) {
  CheckSameShape(a, b);
  auto out = MakeNode("div", a.shape(), {a, b});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  const float* pb = b.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwDiv(hi - lo, pa + lo, pb + lo, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, n]() {
      float* ga = GradBuf(ia);
      float* gb = GradBuf(ib);
      const float* go = o->grad.data();
      const float* da = ia->data.data();
      const float* db = ib->data.data();
      ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
        if (ga != nullptr) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] / db[i];
        }
        if (gb != nullptr) {
          for (int64_t i = lo; i < hi; ++i) {
            gb[i] -= go[i] * da[i] / (db[i] * db[i]);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddBias(const Tensor& a, const Tensor& bias) {
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t n = bias.dim(0);
  RRRE_CHECK_EQ(a.dim(-1), n);
  auto out = MakeNode("add_bias", a.shape(), {a, bias});
  const int64_t rows = a.numel() / n;
  const float* pa = a.data();
  const float* pb = bias.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      kernels::EwAdd(n, pa + r * n, pb, po + r * n);
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, ia, ib, rows, n]() {
      const float* go = o->grad.data();
      if (float* ga = GradBuf(ia)) {
        const int64_t total = rows * n;
        ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
      if (float* gb = GradBuf(ib)) {
        // Bias grad is a cross-row reduction: fixed-grain chunk partials,
        // combined in chunk order.
        const int64_t grain = RowGrain(n);
        const int64_t chunks = (rows + grain - 1) / grain;
        std::vector<std::vector<float>> partials(
            static_cast<size_t>(chunks));
        ParallelFor(0, rows, grain, [&, grain](int64_t lo, int64_t hi) {
          auto& part = partials[static_cast<size_t>(lo / grain)];
          part.assign(static_cast<size_t>(n), 0.0f);
          for (int64_t r = lo; r < hi; ++r) {
            for (int64_t j = 0; j < n; ++j) {
              part[static_cast<size_t>(j)] += go[r * n + j];
            }
          }
        });
        for (const auto& part : partials) {
          for (int64_t j = 0; j < n; ++j) gb[j] += part[static_cast<size_t>(j)];
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor AddScalar(const Tensor& a, float s) {
  auto out = MakeNode("add_scalar", a.shape(), {a}, FloatBits(s));
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwAddScalar(hi - lo, pa + lo, s, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor MulScalar(const Tensor& a, float s) {
  // The backward closure captures s, so its bit pattern is replay-verified:
  // a same-shape trace with a different scale re-records instead of
  // replaying a stale closure.
  auto out = MakeNode("mul_scalar", a.shape(), {a}, FloatBits(s));
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    kernels::EwMulScalar(hi - lo, pa + lo, s, po + lo);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, s]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i] * s;
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Neg(const Tensor& a) { return MulScalar(a, -1.0f); }

namespace {

/// Shared implementation for unary elementwise ops where the local derivative
/// can be computed from the output value.
template <typename Fwd, typename DerivFromOut>
Tensor UnaryFromOutput(const char* op, const Tensor& a, Fwd fwd,
                       DerivFromOut deriv) {
  auto out = MakeNode(op, a.shape(), {a});
  const int64_t n = static_cast<int64_t>(out->data.size());
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) po[i] = fwd(pa[i]);
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n, deriv]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        const float* yo = o->data.data();
        const float* xa = ia->data.data();
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            ga[i] += go[i] * deriv(yo[i], xa[i]);
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace

Tensor Tanh(const Tensor& a) {
  return UnaryFromOutput(
      "tanh", a, [](float x) { return std::tanh(x); },
      [](float y, float) { return 1.0f - y * y; });
}

Tensor Sigmoid(const Tensor& a) {
  return UnaryFromOutput(
      "sigmoid", a, [](float x) { return StableSigmoid(x); },
      [](float y, float) { return y * (1.0f - y); });
}

Tensor Relu(const Tensor& a) {
  return UnaryFromOutput(
      "relu", a, [](float x) { return x > 0.0f ? x : 0.0f; },
      [](float, float x) { return x > 0.0f ? 1.0f : 0.0f; });
}

Tensor Exp(const Tensor& a) {
  return UnaryFromOutput(
      "exp", a, [](float x) { return std::exp(x); },
      [](float y, float) { return y; });
}

Tensor Log(const Tensor& a) {
  return UnaryFromOutput(
      "log", a, [](float x) { return std::log(x); },
      [](float, float x) { return 1.0f / x; });
}

Tensor Sqrt(const Tensor& a) {
  return UnaryFromOutput(
      "sqrt", a, [](float x) { return std::sqrt(x); },
      [](float y, float) { return 0.5f / y; });
}

Tensor Square(const Tensor& a) {
  return UnaryFromOutput(
      "square", a, [](float x) { return x * x; },
      [](float, float x) { return 2.0f * x; });
}

Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a, bool trans_b) {
  obs::TraceSpan span("matmul");
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_EQ(b.ndim(), 2);
  const int64_t m = trans_a ? a.dim(1) : a.dim(0);
  const int64_t k = trans_a ? a.dim(0) : a.dim(1);
  const int64_t n = trans_b ? b.dim(0) : b.dim(1);
  RRRE_CHECK_EQ(trans_b ? b.dim(1) : b.dim(0), k)
      << "MatMul inner dims: " << ShapeToString(a.shape())
      << (trans_a ? "^T" : "") << " x " << ShapeToString(b.shape())
      << (trans_b ? "^T" : "");
  auto out = MakeNode("matmul", {m, n}, {a, b},
                      static_cast<uint64_t>(trans_a ? 1 : 0) |
                          (static_cast<uint64_t>(trans_b ? 1 : 0) << 1));
  const int64_t lda = a.dim(1);
  const int64_t ldb = b.dim(1);
  ShardedGemm(trans_a, trans_b, m, n, k, a.data(), lda, b.data(), ldb,
              out->data.data(), n);
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    TensorImpl* ib = b.impl().get();
    out->backward_fn = [o, ia, ib, m, k, n, lda, ldb, trans_a, trans_b]() {
      const float* go = o->grad.data();
      // Each gradient is itself a GEMM against the stored (untransposed)
      // operand buffers; the dispatch below picks the transpose variant that
      // reads them in place. Both grads accumulate into row-sharded outputs,
      // so the determinism argument is the same as the forward's.
      if (float* ga = GradBuf(ia)) {
        const float* db = ib->data.data();
        if (!trans_a) {
          // dA[m, k] = dC · opB(B)^T.
          ShardedGemm(false, !trans_b, m, k, n, go, n, db, ldb, ga, lda);
        } else if (!trans_b) {
          // A stored [k, m]: dA = B · dC^T.
          ShardedGemm(false, true, k, m, n, db, ldb, go, n, ga, lda);
        } else {
          // A stored [k, m], B stored [n, k]: dA = B^T · dC^T.
          ShardedGemm(true, true, k, m, n, db, ldb, go, n, ga, lda);
        }
      }
      if (float* gb = GradBuf(ib)) {
        const float* da = ia->data.data();
        if (!trans_b) {
          // dB[k, n] = opA(A)^T · dC.
          ShardedGemm(!trans_a, false, k, n, m, da, lda, go, n, gb, ldb);
        } else if (!trans_a) {
          // B stored [n, k]: dB = dC^T · A.
          ShardedGemm(true, false, n, k, m, go, n, da, lda, gb, ldb);
        } else {
          // B stored [n, k], A stored [k, m]: dB = dC^T · A^T.
          ShardedGemm(true, true, n, k, m, go, n, da, lda, gb, ldb);
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Transpose(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t m = a.dim(0);
  const int64_t n = a.dim(1);
  auto out = MakeNode("transpose", {n, m}, {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, m, RowGrain(n), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      for (int64_t j = 0; j < n; ++j) po[j * m + i] = pa[i * n + j];
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, m, n]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, m, RowGrain(n), [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) {
            for (int64_t j = 0; j < n; ++j) ga[i * n + j] += go[j * m + i];
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Softmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode("softmax", a.shape(), {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * cols;
      float maxv = row[0];
      for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      float* orow = po + r * cols;
      for (int64_t j = 0; j < cols; ++j) {
        orow[j] = std::exp(row[j] - maxv);
        denom += orow[j];
      }
      for (int64_t j = 0; j < cols; ++j) orow[j] /= denom;
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      float* ga = GradBuf(ia);
      if (ga == nullptr) return;
      const float* yo = o->data.data();
      const float* go = o->grad.data();
      ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* y = yo + r * cols;
          const float* gy = go + r * cols;
          float dot = 0.0f;
          for (int64_t j = 0; j < cols; ++j) dot += y[j] * gy[j];
          float* gx = ga + r * cols;
          for (int64_t j = 0; j < cols; ++j) {
            gx[j] += y[j] * (gy[j] - dot);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor LogSoftmax(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode("log_softmax", a.shape(), {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pa + r * cols;
      float maxv = row[0];
      for (int64_t j = 1; j < cols; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < cols; ++j) denom += std::exp(row[j] - maxv);
      const float log_denom = std::log(denom) + maxv;
      float* orow = po + r * cols;
      for (int64_t j = 0; j < cols; ++j) orow[j] = row[j] - log_denom;
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      float* ga = GradBuf(ia);
      if (ga == nullptr) return;
      const float* yo = o->data.data();
      const float* go = o->grad.data();
      ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float* y = yo + r * cols;
          const float* gy = go + r * cols;
          float gsum = 0.0f;
          for (int64_t j = 0; j < cols; ++j) gsum += gy[j];
          float* gx = ga + r * cols;
          for (int64_t j = 0; j < cols; ++j) {
            gx[j] += gy[j] - std::exp(y[j]) * gsum;
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Sum(const Tensor& a) {
  auto out = MakeNode("sum", {1}, {a});
  const int64_t n = static_cast<int64_t>(a.impl()->data.size());
  const float* pa = a.data();
  // Fixed-grain chunk partials combined in chunk order: for n <= kElemGrain
  // this is the plain serial double accumulation. Two scrapes of the same
  // buffer — at any thread count — produce bitwise identical sums.
  const int64_t chunks = (n + kElemGrain - 1) / kElemGrain;
  std::vector<double> partials(static_cast<size_t>(std::max<int64_t>(chunks, 1)),
                               0.0);
  ParallelFor(0, n, kElemGrain, [&](int64_t lo, int64_t hi) {
    double acc = 0.0;
    for (int64_t i = lo; i < hi; ++i) acc += pa[i];
    partials[static_cast<size_t>(lo / kElemGrain)] = acc;
  });
  double total = 0.0;
  for (double p : partials) total += p;
  out->data[0] = static_cast<float>(total);
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, n]() {
      if (float* ga = GradBuf(ia)) {
        const float g = o->grad[0];
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += g;
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Mean(const Tensor& a) {
  return MulScalar(Sum(a), 1.0f / static_cast<float>(a.numel()));
}

Tensor RowSum(const Tensor& a) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode("row_sum", {rows, 1}, {a});
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      double acc = 0.0;
      for (int64_t j = 0; j < cols; ++j) acc += pa[r * cols + j];
      po[r] = static_cast<float>(acc);
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, rows, cols]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float g = go[r];
            float* grow = ga + r * cols;
            for (int64_t j = 0; j < cols; ++j) grow[j] += g;
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor Reshape(const Tensor& a, const Shape& shape) {
  RRRE_CHECK_EQ(NumElements(shape), a.numel())
      << ShapeToString(a.shape()) << " -> " << ShapeToString(shape);
  auto out = MakeNode("reshape", shape, {a});
  out->data = a.impl()->data;
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        const int64_t n = static_cast<int64_t>(o->grad.size());
        ParallelFor(0, n, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) ga[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatCols(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t rows = parts[0].dim(0);
  int64_t total_cols = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(0), rows);
    total_cols += p.dim(1);
  }
  auto out = MakeNode("concat_cols", {rows, total_cols}, parts);
  int64_t col_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t cols = p.dim(1);
    const float* pp = p.data();
    float* po = out->data.data() + col_offset;
    ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
      for (int64_t r = lo; r < hi; ++r) {
        std::copy(pp + r * cols, pp + (r + 1) * cols, po + r * total_cols);
      }
    });
    col_offset += cols;
  }
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> widths;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      widths.push_back(p.dim(1));
    }
    out->backward_fn = [o, impls, widths, rows, total_cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t cols = widths[pi];
        if (float* gp = GradBuf(impls[pi])) {
          const float* go = o->grad.data() + offset;
          ParallelFor(0, rows, RowGrain(cols), [=](int64_t lo, int64_t hi) {
            for (int64_t r = lo; r < hi; ++r) {
              const float* src = go + r * total_cols;
              float* dst = gp + r * cols;
              for (int64_t j = 0; j < cols; ++j) dst[j] += src[j];
            }
          });
        }
        offset += cols;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor ConcatRows(const std::vector<Tensor>& parts) {
  RRRE_CHECK(!parts.empty());
  const int64_t cols = parts[0].dim(1);
  int64_t total_rows = 0;
  for (const Tensor& p : parts) {
    RRRE_CHECK_EQ(p.ndim(), 2);
    RRRE_CHECK_EQ(p.dim(1), cols);
    total_rows += p.dim(0);
  }
  auto out = MakeNode("concat_rows", {total_rows, cols}, parts);
  int64_t row_offset = 0;
  for (const Tensor& p : parts) {
    const int64_t rows = p.dim(0);
    std::copy(p.data(), p.data() + rows * cols,
              out->data.data() + row_offset * cols);
    row_offset += rows;
  }
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    std::vector<int64_t> heights;
    for (const Tensor& p : parts) {
      impls.push_back(p.impl().get());
      heights.push_back(p.dim(0));
    }
    out->backward_fn = [o, impls, heights, cols]() {
      int64_t offset = 0;
      for (size_t pi = 0; pi < impls.size(); ++pi) {
        const int64_t rows = heights[pi];
        if (float* gp = GradBuf(impls[pi])) {
          const float* src = o->grad.data() + offset * cols;
          const int64_t total = rows * cols;
          ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
            for (int64_t i = lo; i < hi; ++i) gp[i] += src[i];
          });
        }
        offset += rows;
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceRows(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(0));
  const int64_t cols = a.dim(1);
  auto out = MakeNode("slice_rows", {len, cols}, {a},
                      static_cast<uint64_t>(start));
  std::copy(a.data() + start * cols, a.data() + (start + len) * cols,
            out->data.data());
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, cols]() {
      if (float* ga = GradBuf(ia)) {
        float* dst = ga + start * cols;
        const float* go = o->grad.data();
        const int64_t total = len * cols;
        ParallelFor(0, total, kElemGrain, [=](int64_t lo, int64_t hi) {
          for (int64_t i = lo; i < hi; ++i) dst[i] += go[i];
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor SliceCols(const Tensor& a, int64_t start, int64_t len) {
  RRRE_CHECK_EQ(a.ndim(), 2);
  RRRE_CHECK_GE(start, 0);
  RRRE_CHECK_GT(len, 0);
  RRRE_CHECK_LE(start + len, a.dim(1));
  const int64_t rows = a.dim(0);
  const int64_t cols = a.dim(1);
  auto out = MakeNode("slice_cols", {rows, len}, {a},
                      static_cast<uint64_t>(start));
  const float* pa = a.data();
  float* po = out->data.data();
  ParallelFor(0, rows, RowGrain(len), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      std::copy(pa + r * cols + start, pa + r * cols + start + len,
                po + r * len);
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ia = a.impl().get();
    out->backward_fn = [o, ia, start, len, rows, cols]() {
      if (float* ga = GradBuf(ia)) {
        const float* go = o->grad.data();
        ParallelFor(0, rows, RowGrain(len), [=](int64_t lo, int64_t hi) {
          for (int64_t r = lo; r < hi; ++r) {
            const float* src = go + r * len;
            float* dst = ga + r * cols + start;
            for (int64_t j = 0; j < len; ++j) dst[j] += src[j];
          }
        });
      }
    };
  }
  return Tensor::WrapImpl(out);
}

namespace {

/// Examples per chunk in Conv1dMaxPool's backward kernel-gradient reduction.
/// Fixed so the chunk partials (and their combination order) do not depend on
/// the thread count.
constexpr int64_t kConvChunk = 16;

}  // namespace

Tensor Conv1dMaxPool(const Tensor& values, int64_t seq_len,
                     const Tensor& kernel, const Tensor& bias) {
  obs::TraceSpan span("conv1d_maxpool");
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(kernel.ndim(), 2);
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t d = values.dim(1);
  RRRE_CHECK_GT(seq_len, 0);
  RRRE_CHECK_EQ(values.dim(0) % seq_len, 0)
      << "values rows must be a multiple of seq_len";
  const int64_t b = values.dim(0) / seq_len;
  RRRE_CHECK_EQ(kernel.dim(0) % d, 0)
      << "kernel rows must be a multiple of the embedding dim";
  const int64_t w = kernel.dim(0) / d;
  RRRE_CHECK_LE(w, seq_len) << "window wider than sequence";
  const int64_t f = kernel.dim(1);
  RRRE_CHECK_EQ(bias.dim(0), f);
  const int64_t positions = seq_len - w + 1;

  auto out = MakeNode("conv1d_maxpool", {b, f}, {values, kernel, bias},
                      static_cast<uint64_t>(seq_len));
  // argmax[b*f + c] = best window start for that (example, filter). Stored
  // on the node rather than captured in the closure: a replayed step reuses
  // the recorded closure, which must read the positions this step's forward
  // just wrote.
  out->iscratch.assign(static_cast<size_t>(b * f), int64_t{0});
  const float* pv = values.data();
  const float* pk = kernel.data();
  const float* pb = bias.data();
  float* po = out->data.data();
  int64_t* pam = out->iscratch.data();
  // Examples are independent: partition by bi. A window is w*d contiguous
  // floats of the example's embedding block, so the per-example kernel runs
  // contiguous filter-axis axpys (see kernels.cc); per (t, c) the
  // accumulation still walks the window in ascending (p, e) order.
  ParallelFor(0, b, RowGrain(positions * f * w * d),
              [=](int64_t lo, int64_t hi) {
    std::vector<float> scores(static_cast<size_t>(f));
    for (int64_t bi = lo; bi < hi; ++bi) {
      kernels::Conv1dMaxPoolExample(seq_len, w, d, f, pv + bi * seq_len * d,
                                    pk, pb, po + bi * f, pam + bi * f,
                                    scores.data());
    }
  });

  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* ik = kernel.impl().get();
    TensorImpl* ib = bias.impl().get();
    out->backward_fn = [o, iv, ik, ib, b, f, w, d, seq_len]() {
      float* gv = GradBuf(iv);
      float* gk = GradBuf(ik);
      float* gb = GradBuf(ib);
      if (gv == nullptr && gk == nullptr && gb == nullptr) return;
      const float* go = o->grad.data();
      const float* dk = ik->data.data();
      const float* dv = iv->data.data();
      const int64_t* pam2 = o->iscratch.data();
      const int64_t wd = w * d;
      // Transposed kernel [f, w*d]: row c is filter c's window weights in
      // ascending q = p*d + e order, so the value-gradient inner loop is a
      // contiguous axpy over the argmax window while keeping the exact
      // accumulation order of the reference (ascending q per (bi, c)).
      std::vector<float> kt;
      if (gv != nullptr) {
        kt.resize(static_cast<size_t>(f * wd));
        for (int64_t q = 0; q < wd; ++q) {
          for (int64_t c = 0; c < f; ++c) {
            kt[static_cast<size_t>(c * wd + q)] = dk[q * f + c];
          }
        }
      }
      const float* ktp = kt.data();
      // Value grads are private per example; kernel and bias grads are
      // cross-example reductions — accumulate per-chunk partials (fixed
      // kConvChunk examples each) and combine them in chunk order.
      const int64_t ksize = wd * f;
      const int64_t chunks = (b + kConvChunk - 1) / kConvChunk;
      std::vector<std::vector<float>> k_partials(
          static_cast<size_t>(chunks));
      std::vector<std::vector<float>> b_partials(
          static_cast<size_t>(chunks));
      ParallelFor(0, b, kConvChunk, [&, ksize, wd](int64_t lo, int64_t hi) {
        const size_t chunk = static_cast<size_t>(lo / kConvChunk);
        float* kp = nullptr;
        float* bp = nullptr;
        if (gk != nullptr) {
          k_partials[chunk].assign(static_cast<size_t>(ksize), 0.0f);
          kp = k_partials[chunk].data();
        }
        if (gb != nullptr) {
          b_partials[chunk].assign(static_cast<size_t>(f), 0.0f);
          bp = b_partials[chunk].data();
        }
        for (int64_t bi = lo; bi < hi; ++bi) {
          const float* grow = go + bi * f;
          const int64_t* trow = pam2 + bi * f;
          // Bias + value grads, filter-major like the reference: per (bi, c)
          // with a nonzero incoming grad, one contiguous axpy over the
          // argmax window.
          for (int64_t c = 0; c < f; ++c) {
            const float g = grow[c];
            if (g == 0.0f) continue;
            if (bp != nullptr) bp[c] += g;
            if (gv != nullptr) {
              float* win = gv + (bi * seq_len + trow[c]) * d;
              const float* krow = ktp + c * wd;
              for (int64_t q = 0; q < wd; ++q) win[q] += g * krow[q];
            }
          }
          // Kernel grads, q-outer/c-inner so the inner loop writes the
          // partial's contiguous row q*f. Each (q, c) gets at most one
          // contribution per example, so the regrouping relative to the
          // filter-major reference changes nothing bitwise.
          if (kp != nullptr) {
            const float* dvb = dv + bi * seq_len * d;
            for (int64_t q = 0; q < wd; ++q) {
              float* kprow = kp + q * f;
              for (int64_t c = 0; c < f; ++c) {
                const float g = grow[c];
                if (g == 0.0f) continue;
                kprow[c] += g * dvb[trow[c] * d + q];
              }
            }
          }
        }
      });
      for (int64_t c = 0; c < chunks; ++c) {
        if (gk != nullptr && !k_partials[static_cast<size_t>(c)].empty()) {
          const float* kp = k_partials[static_cast<size_t>(c)].data();
          for (int64_t i = 0; i < ksize; ++i) gk[i] += kp[i];
        }
        if (gb != nullptr && !b_partials[static_cast<size_t>(c)].empty()) {
          const float* bp = b_partials[static_cast<size_t>(c)].data();
          for (int64_t i = 0; i < f; ++i) gb[i] += bp[i];
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids) {
  RRRE_CHECK_EQ(table.ndim(), 2);
  RRRE_CHECK(!ids.empty());
  const int64_t v = table.dim(0);
  const int64_t d = table.dim(1);
  const int64_t n = static_cast<int64_t>(ids.size());
  auto out = MakeNode("embedding_lookup", {n, d}, {table});
  for (int64_t i = 0; i < n; ++i) {
    RRRE_CHECK_GE(ids[static_cast<size_t>(i)], 0);
    RRRE_CHECK_LT(ids[static_cast<size_t>(i)], v);
  }
  // Ids are stashed on the node: each step's batch looks up different rows,
  // and a replayed step's recorded closure must scatter into the rows this
  // step's forward actually read.
  out->iscratch.assign(ids.begin(), ids.end());
  const float* pt = table.data();
  const int64_t* pid = ids.data();
  float* po = out->data.data();
  ParallelFor(0, n, RowGrain(d), [=](int64_t lo, int64_t hi) {
    for (int64_t i = lo; i < hi; ++i) {
      std::copy(pt + pid[i] * d, pt + (pid[i] + 1) * d, po + i * d);
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* it = table.impl().get();
    out->backward_fn = [o, it, n, d]() {
      float* gt = GradBuf(it);
      if (gt == nullptr) return;
      // Serial: duplicate ids scatter-add into the same table row.
      const float* go = o->grad.data();
      const int64_t* pid = o->iscratch.data();
      for (int64_t i = 0; i < n; ++i) {
        const float* src = go + i * d;
        float* dst = gt + pid[i] * d;
        for (int64_t j = 0; j < d; ++j) dst[j] += src[j];
      }
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor WeightedPool(const Tensor& values, const Tensor& weights) {
  RRRE_CHECK_EQ(values.ndim(), 2);
  RRRE_CHECK_EQ(weights.ndim(), 2);
  const int64_t b = weights.dim(0);
  const int64_t s = weights.dim(1);
  const int64_t k = values.dim(1);
  RRRE_CHECK_EQ(values.dim(0), b * s)
      << "values rows must equal B*s: " << ShapeToString(values.shape())
      << " with weights " << ShapeToString(weights.shape());
  auto out = MakeNode("weighted_pool", {b, k}, {values, weights});
  const float* pv = values.data();
  const float* pw = weights.data();
  float* po = out->data.data();
  ParallelFor(0, b, RowGrain(s * k), [=](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      float* orow = po + bi * k;
      for (int64_t j = 0; j < s; ++j) {
        const float w = pw[bi * s + j];
        if (w == 0.0f) continue;
        const float* vrow = pv + (bi * s + j) * k;
        kernels::EwAxpy(k, w, vrow, orow);
      }
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* iv = values.impl().get();
    TensorImpl* iw = weights.impl().get();
    out->backward_fn = [o, iv, iw, b, s, k]() {
      float* gv = GradBuf(iv);
      float* gw = GradBuf(iw);
      if (gv == nullptr && gw == nullptr) return;
      const float* go = o->grad.data();
      const float* dw = iw->data.data();
      const float* dv = iv->data.data();
      // Rows (bi*s + j) and weight entries are private per example.
      ParallelFor(0, b, RowGrain(s * k), [=](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
          const float* gorow = go + bi * k;
          for (int64_t j = 0; j < s; ++j) {
            const int64_t row = bi * s + j;
            if (gv != nullptr) {
              const float w = dw[bi * s + j];
              float* gvrow = gv + row * k;
              for (int64_t c = 0; c < k; ++c) gvrow[c] += w * gorow[c];
            }
            if (gw != nullptr) {
              const float* vrow = dv + row * k;
              float acc = 0.0f;
              for (int64_t c = 0; c < k; ++c) acc += gorow[c] * vrow[c];
              gw[bi * s + j] += acc;
            }
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels,
                              const std::vector<float>& example_weights) {
  RRRE_CHECK_EQ(logits.ndim(), 2);
  const int64_t b = logits.dim(0);
  const int64_t c = logits.dim(1);
  RRRE_CHECK_EQ(static_cast<int64_t>(labels.size()), b);
  const bool weighted = !example_weights.empty();
  if (weighted) {
    RRRE_CHECK_EQ(static_cast<int64_t>(example_weights.size()), b);
  }
  for (int64_t r = 0; r < b; ++r) {
    RRRE_CHECK_GE(labels[static_cast<size_t>(r)], 0);
    RRRE_CHECK_LT(labels[static_cast<size_t>(r)], c);
  }

  // The node is created up front so the forward writes the backward stash
  // straight onto it: scratch = [probs (b*c) | example weights (b) | norm],
  // iscratch = labels. A replayed step reuses the recorded closure, which
  // reads this stash at closure run time — nothing per-step is captured.
  auto out = MakeNode("cross_entropy", {1}, {logits});
  out->scratch.resize(static_cast<size_t>(b * c + b + 1));
  out->iscratch.assign(labels.begin(), labels.end());

  // Forward: per-row stable log-softmax, gather label log-probability. The
  // (loss, weight) accumulators are reduced over fixed-grain row chunks.
  const float* pl = logits.data();
  const int64_t grain = RowGrain(c);
  const int64_t chunks = (b + grain - 1) / grain;
  std::vector<double> loss_partials(static_cast<size_t>(chunks), 0.0);
  std::vector<double> weight_partials(static_cast<size_t>(chunks), 0.0);
  float* pp = out->scratch.data();
  ParallelFor(0, b, grain, [&, grain](int64_t lo, int64_t hi) {
    double loss_acc = 0.0;
    double weight_acc = 0.0;
    for (int64_t r = lo; r < hi; ++r) {
      const float* row = pl + r * c;
      float maxv = row[0];
      for (int64_t j = 1; j < c; ++j) maxv = std::max(maxv, row[j]);
      float denom = 0.0f;
      for (int64_t j = 0; j < c; ++j) {
        pp[r * c + j] = std::exp(row[j] - maxv);
        denom += pp[r * c + j];
      }
      for (int64_t j = 0; j < c; ++j) pp[r * c + j] /= denom;
      const float w = weighted ? example_weights[static_cast<size_t>(r)] : 1.0f;
      const float logp =
          row[labels[static_cast<size_t>(r)]] - maxv - std::log(denom);
      loss_acc += -static_cast<double>(w) * logp;
      weight_acc += w;
    }
    loss_partials[static_cast<size_t>(lo / grain)] = loss_acc;
    weight_partials[static_cast<size_t>(lo / grain)] = weight_acc;
  });
  double loss_acc = 0.0;
  double weight_acc = 0.0;
  for (int64_t i = 0; i < chunks; ++i) {
    loss_acc += loss_partials[static_cast<size_t>(i)];
    weight_acc += weight_partials[static_cast<size_t>(i)];
  }
  const float norm = static_cast<float>(std::max(weight_acc, 1e-12));

  // Unweighted batches stash 1.0f per example; w == 1.0f multiplies
  // bit-exactly like the old unweighted branch.
  float* stash_w = out->scratch.data() + b * c;
  for (int64_t r = 0; r < b; ++r) {
    stash_w[r] = weighted ? example_weights[static_cast<size_t>(r)] : 1.0f;
  }
  out->scratch[static_cast<size_t>(b * c + b)] = norm;
  out->data[0] = static_cast<float>(loss_acc) / norm;
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* il = logits.impl().get();
    out->backward_fn = [o, il, b, c]() {
      float* gl = GradBuf(il);
      if (gl == nullptr) return;
      const float* p = o->scratch.data();
      const float* wts = p + b * c;
      const float norm = p[b * c + b];
      const int64_t* lab = o->iscratch.data();
      const float g = o->grad[0] / norm;
      ParallelFor(0, b, RowGrain(c), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float w = wts[r];
          if (w == 0.0f) continue;
          float* grow = gl + r * c;
          const int64_t label = lab[r];
          for (int64_t j = 0; j < c; ++j) {
            const float onehot = (j == label) ? 1.0f : 0.0f;
            grow[j] += g * w * (p[r * c + j] - onehot);
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

// -- Fused ops ----------------------------------------------------------------
//
// Bitwise contract with the eager chains (checked by tests/test_kernels.cc):
// every float written here — forward values, gradient contributions, and the
// order contributions land in shared buffers — reproduces the exact sequence
// of rounded operations the eager node-by-node graph performs. Intermediate
// values the eager graph would store in a node (e.g. g_o = gh*tc) are
// recomputed as the same single rounded product before the next multiply.

Tensor AddNBiasAct(const std::vector<Tensor>& parts, const Tensor& bias,
                   Activation act) {
  RRRE_CHECK(!parts.empty());
  RRRE_CHECK_EQ(bias.ndim(), 1);
  const int64_t n = bias.dim(0);
  for (const Tensor& p : parts) CheckSameShape(p, parts[0]);
  RRRE_CHECK_EQ(parts[0].dim(-1), n);
  std::vector<Tensor> node_parents = parts;
  node_parents.push_back(bias);
  auto out = MakeNode("addn_bias_act", parts[0].shape(), node_parents,
                      static_cast<uint64_t>(act));
  const int64_t total = parts[0].numel();
  const int64_t rows = total / n;
  std::vector<const float*> part_data;
  part_data.reserve(parts.size());
  for (const Tensor& p : parts) part_data.push_back(p.data());
  const float* pb = bias.data();
  float* po = out->data.data();
  const size_t np = part_data.size();
  const float* const* ppd = part_data.data();
  ParallelFor(0, rows, RowGrain(n * static_cast<int64_t>(np)),
              [&](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      for (int64_t j = 0; j < n; ++j) {
        const int64_t i = r * n + j;
        // Left-to-right partial sums: each += is a separate rounding, same
        // as the eager Add(Add(p0, p1), p2) nesting, then the bias add.
        float acc = ppd[0][i];
        for (size_t q = 1; q < np; ++q) acc += ppd[q][i];
        acc += pb[j];
        po[i] = ApplyAct(act, acc);
      }
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    std::vector<TensorImpl*> impls;
    for (const Tensor& p : parts) impls.push_back(p.impl().get());
    TensorImpl* ibias = bias.impl().get();
    out->backward_fn = [o, impls, ibias, rows, n, act]() {
      const float* go = o->grad.data();
      const float* yo = o->data.data();
      const int64_t total = rows * n;
      std::vector<float*> gps;
      gps.reserve(impls.size());
      for (TensorImpl* impl : impls) gps.push_back(GradBuf(impl));
      float* const* gpp = gps.data();
      const size_t np = gps.size();
      ParallelFor(0, total, kElemGrain, [&](int64_t lo, int64_t hi) {
        for (size_t q = 0; q < np; ++q) {
          float* gp = gpp[q];
          if (gp == nullptr) continue;
          // go[i] * deriv(y) is the single rounded product the eager act
          // node would store; the identity add chain then copies it.
          for (int64_t i = lo; i < hi; ++i) {
            gp[i] += go[i] * ActDeriv(act, yo[i]);
          }
        }
      });
      if (float* gb = GradBuf(ibias)) {
        const int64_t grain = RowGrain(n);
        const int64_t chunks = (rows + grain - 1) / grain;
        std::vector<std::vector<float>> partials(
            static_cast<size_t>(chunks));
        ParallelFor(0, rows, grain, [&, grain](int64_t lo, int64_t hi) {
          auto& part = partials[static_cast<size_t>(lo / grain)];
          part.assign(static_cast<size_t>(n), 0.0f);
          for (int64_t r = lo; r < hi; ++r) {
            for (int64_t j = 0; j < n; ++j) {
              part[static_cast<size_t>(j)] +=
                  go[r * n + j] * ActDeriv(act, yo[r * n + j]);
            }
          }
        });
        for (const auto& part : partials) {
          for (int64_t j = 0; j < n; ++j) gb[j] += part[static_cast<size_t>(j)];
        }
      }
    };
  }
  return Tensor::WrapImpl(out);
}

LstmStepOut LstmPointwise(const Tensor& pre, const Tensor& c_prev) {
  RRRE_CHECK_EQ(pre.ndim(), 2);
  RRRE_CHECK_EQ(c_prev.ndim(), 2);
  const int64_t bsz = pre.dim(0);
  const int64_t hs = c_prev.dim(1);
  RRRE_CHECK_EQ(pre.dim(1), 4 * hs);
  RRRE_CHECK_EQ(c_prev.dim(0), bsz);
  const int64_t bh = bsz * hs;

  // Two nodes: c feeds the next step, h feeds the rest of the model. The
  // gate activations and tanh(c) are stashed on the c node's scratch
  // ([i | f | g | o | tanh(c)] blocks of B*H) for both backward closures.
  auto c_node = MakeNode("lstm_c", {bsz, hs}, {pre, c_prev});
  c_node->scratch.assign(static_cast<size_t>(5 * bh), 0.0f);
  const float* pp = pre.data();
  const float* pcp = c_prev.data();
  float* pc = c_node->data.data();
  float* stash = c_node->scratch.data();
  ParallelFor(0, bsz, RowGrain(4 * hs), [=](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      const float* prow = pp + bi * 4 * hs;
      for (int64_t j = 0; j < hs; ++j) {
        const int64_t idx = bi * hs + j;
        const float iv = StableSigmoid(prow[j]);
        const float fv = StableSigmoid(prow[hs + j]);
        const float gv = std::tanh(prow[2 * hs + j]);
        const float ov = StableSigmoid(prow[3 * hs + j]);
        // c = (f*c_prev) + (i*g), two rounded products then one add —
        // exactly the eager Add(Mul(f, c), Mul(i, g)).
        const float t1 = fv * pcp[idx];
        const float t2 = iv * gv;
        const float cv = t1 + t2;
        pc[idx] = cv;
        stash[idx] = iv;
        stash[bh + idx] = fv;
        stash[2 * bh + idx] = gv;
        stash[3 * bh + idx] = ov;
        stash[4 * bh + idx] = std::tanh(cv);
      }
    }
  });

  auto h_node =
      MakeNode("lstm_h", {bsz, hs}, {pre, Tensor::WrapImpl(c_node)});
  float* ph = h_node->data.data();
  ParallelFor(0, bh, kElemGrain, [=](int64_t lo, int64_t hi) {
    for (int64_t idx = lo; idx < hi; ++idx) {
      ph[idx] = stash[3 * bh + idx] * stash[4 * bh + idx];
    }
  });

  if (h_node->requires_grad && !h_node->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* hn = h_node.get();
    TensorImpl* cn = c_node.get();
    TensorImpl* ipre = pre.impl().get();
    h_node->backward_fn = [hn, cn, ipre, bsz, hs, bh]() {
      const float* gh = hn->grad.data();
      const float* st = cn->scratch.data();
      float* gpre = GradBuf(ipre);
      float* gc = GradBuf(cn);
      ParallelFor(0, bsz, RowGrain(hs), [=](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
          for (int64_t j = 0; j < hs; ++j) {
            const int64_t idx = bi * hs + j;
            const float g = gh[idx];
            const float ov = st[3 * bh + idx];
            const float tc = st[4 * bh + idx];
            if (gpre != nullptr) {
              // (gh*tc) is the eager Mul node's stored g_o; then the
              // sigmoid derivative from the output value.
              gpre[bi * 4 * hs + 3 * hs + j] +=
                  (g * tc) * (ov * (1.0f - ov));
            }
            // (gh*o) is the stored g_tanh(c); then the tanh derivative.
            if (gc != nullptr) gc[idx] += (g * ov) * (1.0f - tc * tc);
          }
        }
      });
    };
  }
  if (c_node->requires_grad && !c_node->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* cn = c_node.get();
    TensorImpl* ipre = pre.impl().get();
    TensorImpl* icp = c_prev.impl().get();
    c_node->backward_fn = [cn, ipre, icp, bsz, hs, bh]() {
      // By topological order both consumers (this step's h, next step's c)
      // have already deposited into cn->grad.
      const float* gc = cn->grad.data();
      const float* st = cn->scratch.data();
      const float* pcp = icp->data.data();
      float* gpre = GradBuf(ipre);
      float* gcp = GradBuf(icp);
      ParallelFor(0, bsz, RowGrain(hs), [=](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
          for (int64_t j = 0; j < hs; ++j) {
            const int64_t idx = bi * hs + j;
            const float g = gc[idx];
            const float iv = st[idx];
            const float fv = st[bh + idx];
            const float gv = st[2 * bh + idx];
            if (gpre != nullptr) {
              float* prow = gpre + bi * 4 * hs;
              prow[j] += (g * gv) * (iv * (1.0f - iv));
              prow[hs + j] += (g * pcp[idx]) * (fv * (1.0f - fv));
              prow[2 * hs + j] += (g * iv) * (1.0f - gv * gv);
            }
            if (gcp != nullptr) gcp[idx] += g * fv;
          }
        }
      });
    };
  }
  return {Tensor::WrapImpl(h_node), Tensor::WrapImpl(c_node)};
}

Tensor GruPointwise(const Tensor& gi, const Tensor& gh, const Tensor& h_prev) {
  RRRE_CHECK_EQ(gi.ndim(), 2);
  RRRE_CHECK_EQ(gh.ndim(), 2);
  RRRE_CHECK_EQ(h_prev.ndim(), 2);
  const int64_t bsz = gi.dim(0);
  const int64_t hs = h_prev.dim(1);
  RRRE_CHECK_EQ(gi.dim(1), 3 * hs);
  RRRE_CHECK_EQ(gh.dim(0), bsz);
  RRRE_CHECK_EQ(gh.dim(1), 3 * hs);
  RRRE_CHECK_EQ(h_prev.dim(0), bsz);
  const int64_t bh = bsz * hs;

  auto out = MakeNode("gru_pointwise", {bsz, hs}, {gi, gh, h_prev});
  // Stash [r | z | n] blocks of B*H for backward.
  out->scratch.assign(static_cast<size_t>(3 * bh), 0.0f);
  const float* pgi = gi.data();
  const float* pgh = gh.data();
  const float* php = h_prev.data();
  float* po = out->data.data();
  float* stash = out->scratch.data();
  ParallelFor(0, bsz, RowGrain(3 * hs), [=](int64_t lo, int64_t hi) {
    for (int64_t bi = lo; bi < hi; ++bi) {
      const float* girow = pgi + bi * 3 * hs;
      const float* ghrow = pgh + bi * 3 * hs;
      for (int64_t j = 0; j < hs; ++j) {
        const int64_t idx = bi * hs + j;
        const float rv = StableSigmoid(girow[j] + ghrow[j]);
        const float zv = StableSigmoid(girow[hs + j] + ghrow[hs + j]);
        // pre_n = gi_n + (r * gh_n): one rounded product then one add,
        // matching the eager Add(gi_n, Mul(r, gh_n)).
        const float nv =
            std::tanh(girow[2 * hs + j] + rv * ghrow[2 * hs + j]);
        const float om = 1.0f - zv;
        const float t1 = om * nv;
        const float t2 = zv * php[idx];
        po[idx] = t1 + t2;
        stash[idx] = rv;
        stash[bh + idx] = zv;
        stash[2 * bh + idx] = nv;
      }
    }
  });

  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* igi = gi.impl().get();
    TensorImpl* igh = gh.impl().get();
    TensorImpl* ihp = h_prev.impl().get();
    out->backward_fn = [o, igi, igh, ihp, bsz, hs, bh]() {
      const float* go = o->grad.data();
      const float* st = o->scratch.data();
      const float* php = ihp->data.data();
      const float* pgh = igh->data.data();
      float* ggi = GradBuf(igi);
      float* ggh = GradBuf(igh);
      float* ghp = GradBuf(ihp);
      ParallelFor(0, bsz, RowGrain(hs), [=](int64_t lo, int64_t hi) {
        for (int64_t bi = lo; bi < hi; ++bi) {
          for (int64_t j = 0; j < hs; ++j) {
            const int64_t idx = bi * hs + j;
            const float g = go[idx];
            const float rv = st[idx];
            const float zv = st[bh + idx];
            const float nv = st[2 * bh + idx];
            // g_z accumulates (go*h_prev) from Mul(z, h) first, then
            // subtracts (go*n) from the 1-z node — same order as the eager
            // reverse-topological walk.
            const float gz = (g * php[idx]) - (g * nv);
            const float gaddz = gz * (zv * (1.0f - zv));
            // g_n = go * (1 - z); the eager om value is the identical
            // float subtraction.
            const float gaddn = (g * (1.0f - zv)) * (1.0f - nv * nv);
            const float ghn = pgh[bi * 3 * hs + 2 * hs + j];
            const float gaddr =
                (gaddn * ghn) * (rv * (1.0f - rv));
            if (ggi != nullptr) {
              float* row = ggi + bi * 3 * hs;
              row[j] += gaddr;
              row[hs + j] += gaddz;
              row[2 * hs + j] += gaddn;
            }
            if (ggh != nullptr) {
              float* row = ggh + bi * 3 * hs;
              row[j] += gaddr;
              row[hs + j] += gaddz;
              row[2 * hs + j] += gaddn * rv;
            }
            if (ghp != nullptr) ghp[idx] += g * zv;
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

Tensor FmPairwise(const Tensor& xv, const Tensor& x2v2) {
  CheckSameShape(xv, x2v2);
  RRRE_CHECK_EQ(xv.ndim(), 2);
  const int64_t b = xv.dim(0);
  const int64_t f = xv.dim(1);
  auto out = MakeNode("fm_pair", {b, 1}, {xv, x2v2});
  const float* pxv = xv.data();
  const float* px2 = x2v2.data();
  float* po = out->data.data();
  ParallelFor(0, b, RowGrain(f), [=](int64_t lo, int64_t hi) {
    for (int64_t r = lo; r < hi; ++r) {
      // Per element: float square, float subtract, double-accumulated row
      // sum — the same roundings as the eager Square/Sub/RowSum chain —
      // then the 0.5 scale.
      double acc = 0.0;
      for (int64_t j = 0; j < f; ++j) {
        const float s = pxv[r * f + j] * pxv[r * f + j];
        acc += s - px2[r * f + j];
      }
      po[r] = static_cast<float>(acc) * 0.5f;
    }
  });
  if (out->requires_grad && !out->tape_wired) {
    BatchTape::NoteClosureAlloc();
    TensorImpl* o = out.get();
    TensorImpl* ixv = xv.impl().get();
    TensorImpl* ix2 = x2v2.impl().get();
    out->backward_fn = [o, ixv, ix2, b, f]() {
      const float* go = o->grad.data();
      const float* pxv = ixv->data.data();
      float* gxv = GradBuf(ixv);
      float* gx2 = GradBuf(ix2);
      if (gxv == nullptr && gx2 == nullptr) return;
      ParallelFor(0, b, RowGrain(f), [=](int64_t lo, int64_t hi) {
        for (int64_t r = lo; r < hi; ++r) {
          const float g2 = go[r] * 0.5f;
          for (int64_t j = 0; j < f; ++j) {
            const int64_t i = r * f + j;
            if (gxv != nullptr) gxv[i] += g2 * (2.0f * pxv[i]);
            if (gx2 != nullptr) gx2[i] -= g2;
          }
        }
      });
    };
  }
  return Tensor::WrapImpl(out);
}

}  // namespace rrre::tensor
