#include "tensor/kernels.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#if defined(__AVX2__) && defined(__FMA__)
#include <immintrin.h>
#endif

// This translation unit is compiled with the widest vector ISA the build
// targets (see src/tensor/CMakeLists.txt); everything here is straight-line
// compute with no locks, no allocation on the steady state, and no calls
// back into the graph layer.
//
// Every multiply-accumulate below is an explicit std::fma. This is not a
// style choice: the serving layer asserts that a row scores bitwise
// identically whether it arrives in a micro-batch of 3 or a reference batch
// of 120, which means the per-element arithmetic must not depend on which
// MR-tail instantiation (or small-n fallback) a row lands in. Leaving the
// contraction decision to the compiler lets different instantiations round
// differently; a correctly-rounded fma is the same operation everywhere
// (hardware vfmadd with -mfma, correctly-rounded libm otherwise).

namespace rrre::tensor::kernels {

namespace {

/// Packs the [kb, nc] panel of op(B) starting at (k0, j0) into tile-major
/// layout: tile t holds columns [t*kNr, t*kNr + kNr) of the panel with rows
/// contiguous —
///   bp[(t * kb + kk) * kNr + jj] = op(B)(k0 + kk, j0 + t*kNr + jj)
/// — zero-padded on the right so the micro-kernel always runs fixed kNr-wide
/// inner loops. Packing order depends only on the panel coordinates, never
/// on which output rows the caller owns.
void PackB(bool trans_b, const float* b, int64_t ldb, int64_t k0, int64_t kb,
           int64_t j0, int64_t nc, float* bp) {
  const int64_t tiles = (nc + kNr - 1) / kNr;
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t jbase = j0 + t * kNr;
    const int64_t jb = std::min<int64_t>(kNr, j0 + nc - jbase);
    float* dst = bp + t * kb * kNr;
    for (int64_t kk = 0; kk < kb; ++kk) {
      if (!trans_b) {
        const float* src = b + (k0 + kk) * ldb + jbase;
        for (int64_t jj = 0; jj < jb; ++jj) dst[jj] = src[jj];
      } else {
        // op(B) = B^T with B stored [n, k]: transpose while packing.
        for (int64_t jj = 0; jj < jb; ++jj) {
          dst[jj] = b[(jbase + jj) * ldb + k0 + kk];
        }
      }
      for (int64_t jj = jb; jj < kNr; ++jj) dst[jj] = 0.0f;
      dst += kNr;
    }
  }
}

/// MR x kNr register micro-tile: C held in accumulators across the whole
/// k panel and stored once (the register-blocking win over a loop that
/// reloads the C row every k step). Per element the accumulation runs in
/// ascending k; only the first nb columns are stored back, so the zero
/// padding in the packed panel never reaches C.
///
/// `a` points at op(A)(panel row 0, tile row 0): for ATrans the stored
/// matrix is [k, m] and consecutive tile rows are consecutive floats; for
/// the normal case they are lda apart.
template <int MR, bool ATrans>
void MicroKernel(int64_t kb, const float* RRRE_RESTRICT a, int64_t lda,
                 const float* RRRE_RESTRICT bp, float* RRRE_RESTRICT c,
                 int64_t ldc, int64_t nb) {
#if defined(__AVX2__) && defined(__FMA__)
  // Explicit 8-lane FMA: the auto-vectorizer SLP-splits the fully-unrolled
  // accumulator array into 128-bit halves and spills them to the stack,
  // costing ~4x. _mm256_fmadd_ps is the same correctly-rounded fma per lane
  // as std::fma, and the per-element accumulation order is still ascending
  // kk, so this path is bitwise identical to the scalar fallback below.
  static_assert(kNr == 16, "micro-kernel assumes two 8-lane accumulators");
  __m256 acc[MR][2];
  for (int r = 0; r < MR; ++r) {
    acc[r][0] = _mm256_setzero_ps();
    acc[r][1] = _mm256_setzero_ps();
  }
  for (int64_t kk = 0; kk < kb; ++kk) {
    const float* brow = bp + kk * kNr;
    const __m256 b0 = _mm256_loadu_ps(brow);
    const __m256 b1 = _mm256_loadu_ps(brow + 8);
    for (int r = 0; r < MR; ++r) {
      const __m256 av =
          _mm256_set1_ps(ATrans ? a[kk * lda + r] : a[r * lda + kk]);
      acc[r][0] = _mm256_fmadd_ps(av, b0, acc[r][0]);
      acc[r][1] = _mm256_fmadd_ps(av, b1, acc[r][1]);
    }
  }
  for (int r = 0; r < MR; ++r) {
    alignas(32) float arow[kNr];
    _mm256_store_ps(arow, acc[r][0]);
    _mm256_store_ps(arow + 8, acc[r][1]);
    float* crow = c + r * ldc;
    for (int64_t j = 0; j < nb; ++j) crow[j] += arow[j];
  }
#else
  float acc[MR][kNr] = {};
  for (int64_t kk = 0; kk < kb; ++kk) {
    const float* brow = bp + kk * kNr;
    for (int r = 0; r < MR; ++r) {
      const float av = ATrans ? a[kk * lda + r] : a[r * lda + kk];
      float* arow = acc[r];
      for (int64_t j = 0; j < kNr; ++j) {
        arow[j] = std::fma(av, brow[j], arow[j]);
      }
    }
  }
  for (int r = 0; r < MR; ++r) {
    float* crow = c + r * ldc;
    const float* arow = acc[r];
    for (int64_t j = 0; j < nb; ++j) crow[j] += arow[j];
  }
#endif
}

/// Runs the packed panel against all m rows: full kMr tiles first, then one
/// tail tile of 1..3 rows. The per-row arithmetic is identical regardless of
/// which tile a row lands in, so row-sharded callers stay bitwise stable.
template <bool ATrans>
void GemmPanel(int64_t m, int64_t kb, const float* a, int64_t lda,
               const float* bp, int64_t tiles, int64_t nc, float* c,
               int64_t ldc) {
  for (int64_t t = 0; t < tiles; ++t) {
    const int64_t nb = std::min<int64_t>(kNr, nc - t * kNr);
    const float* bpt = bp + t * kb * kNr;
    float* ct = c + t * kNr;
    int64_t i = 0;
    for (; i + kMr <= m; i += kMr) {
      const float* ai = ATrans ? a + i : a + i * lda;
      MicroKernel<kMr, ATrans>(kb, ai, lda, bpt, ct + i * ldc, ldc, nb);
    }
    const float* ai = ATrans ? a + i : a + i * lda;
    switch (m - i) {
      case 3:
        MicroKernel<3, ATrans>(kb, ai, lda, bpt, ct + i * ldc, ldc, nb);
        break;
      case 2:
        MicroKernel<2, ATrans>(kb, ai, lda, bpt, ct + i * ldc, ldc, nb);
        break;
      case 1:
        MicroKernel<1, ATrans>(kb, ai, lda, bpt, ct + i * ldc, ldc, nb);
        break;
      default:
        break;
    }
  }
}

/// Narrow outputs (n < kSmallN, e.g. the attention score and FM linear
/// heads) skip packing: the padded micro-kernel would spend most of its
/// lanes on zeros. Plain loop nests, still ascending-k per element.
template <bool ATrans, bool BTrans>
void GemmSmallN(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
                const float* b, int64_t ldb, float* c, int64_t ldc) {
  for (int64_t i = 0; i < m; ++i) {
    float* crow = c + i * ldc;
    if (!BTrans) {
      for (int64_t kk = 0; kk < k; ++kk) {
        const float av = ATrans ? a[kk * lda + i] : a[i * lda + kk];
        const float* brow = b + kk * ldb;
        for (int64_t j = 0; j < n; ++j) {
          crow[j] = std::fma(av, brow[j], crow[j]);
        }
      }
    } else {
      for (int64_t j = 0; j < n; ++j) {
        const float* brow = b + j * ldb;
        float acc = 0.0f;
        for (int64_t kk = 0; kk < k; ++kk) {
          acc = std::fma(ATrans ? a[kk * lda + i] : a[i * lda + kk], brow[kk],
                         acc);
        }
        crow[j] += acc;
      }
    }
  }
}

template <bool ATrans, bool BTrans>
void GemmImpl(int64_t m, int64_t n, int64_t k, const float* a, int64_t lda,
              const float* b, int64_t ldb, float* c, int64_t ldc) {
  if (m <= 0 || n <= 0 || k <= 0) return;
  if (n < kSmallN) {
    GemmSmallN<ATrans, BTrans>(m, n, k, a, lda, b, ldb, c, ldc);
    return;
  }
  // Packing scratch is thread-local so concurrent row-sharded callers never
  // share it; it grows to the largest panel once and is reused after that.
  thread_local std::vector<float> pack;
  for (int64_t j0 = 0; j0 < n; j0 += kNc) {
    const int64_t nc = std::min(kNc, n - j0);
    const int64_t tiles = (nc + kNr - 1) / kNr;
    for (int64_t k0 = 0; k0 < k; k0 += kKc) {
      const int64_t kb = std::min(kKc, k - k0);
      pack.resize(static_cast<size_t>(tiles * kb * kNr));
      PackB(BTrans, b, ldb, k0, kb, j0, nc, pack.data());
      const float* a_sub = ATrans ? a + k0 * lda : a + k0;
      GemmPanel<ATrans>(m, kb, a_sub, lda, pack.data(), tiles, nc, c + j0,
                        ldc);
    }
  }
}

}  // namespace

void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
          int64_t ldc) {
  if (!trans_a && !trans_b) {
    GemmImpl<false, false>(m, n, k, a, lda, b, ldb, c, ldc);
  } else if (!trans_a && trans_b) {
    GemmImpl<false, true>(m, n, k, a, lda, b, ldb, c, ldc);
  } else if (trans_a && !trans_b) {
    GemmImpl<true, false>(m, n, k, a, lda, b, ldb, c, ldc);
  } else {
    GemmImpl<true, true>(m, n, k, a, lda, b, ldb, c, ldc);
  }
}

void Conv1dMaxPoolExample(int64_t seq_len, int64_t w, int64_t d, int64_t f,
                          const float* values_ex, const float* kernel,
                          const float* bias, float* out_row,
                          int64_t* argmax_row, float* score_scratch) {
  const int64_t positions = seq_len - w + 1;
  const int64_t wd = w * d;
  for (int64_t c = 0; c < f; ++c) {
    out_row[c] = -std::numeric_limits<float>::infinity();
    argmax_row[c] = 0;
  }
  for (int64_t t = 0; t < positions; ++t) {
    const float* win = values_ex + t * d;  // w*d contiguous floats.
    for (int64_t c = 0; c < f; ++c) score_scratch[c] = bias[c];
    // Filter axis innermost: contiguous axpy rows of the kernel, and per
    // (t, c) the accumulation order is ascending q = p*d + e — the same
    // window-position-major order as the serial reference.
    for (int64_t q = 0; q < wd; ++q) {
      const float v = win[q];
      const float* RRRE_RESTRICT krow = kernel + q * f;
      float* RRRE_RESTRICT sc = score_scratch;
      for (int64_t c = 0; c < f; ++c) sc[c] = std::fma(v, krow[c], sc[c]);
    }
    for (int64_t c = 0; c < f; ++c) {
      if (score_scratch[c] > out_row[c]) {
        out_row[c] = score_scratch[c];
        argmax_row[c] = t;
      }
    }
  }
}

}  // namespace rrre::tensor::kernels
