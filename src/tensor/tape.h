#ifndef RRRE_TENSOR_TAPE_H_
#define RRRE_TENSOR_TAPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace rrre::tensor {

/// Arena + compiled replay cache for the per-batch autograd graph.
///
/// The training graph is static: every batch traces the same op sequence over
/// the same shapes (modulo the smaller tail batch), so the graph nodes —
/// value buffer, grad buffer, parents vector, backward closure slot — can be
/// built once and reused every step instead of being malloc'd and freed
/// thousands of times per epoch. A BatchTape does exactly that: while a
/// `BatchTape::Scope` is active on the current thread, every node the ops
/// layer creates is drawn from the tape, and `BeginStep()` recycles the
/// previous step's nodes once user code has dropped its handles.
///
/// On top of the arena sits the replay cache (the linearize -> execute
/// pipeline). `BeginStep(key)` names the step's expected trace — callers use
/// the batch/shard example count, so the full batch and the tail batch
/// compile separately. The first step with a new key *records*: nodes are
/// retained as a Graph in creation order together with their (op, shape,
/// attr) sequence, the ops layer installs parents and backward closures as
/// usual, and every `Tensor::Backward()` stores its topological order as a
/// schedule bound to (root node, node cursor). If at the next `BeginStep()`
/// every node of the recording is referenced only by the tape (user code
/// dropped all handles), the graph is sealed. Subsequent steps with the same
/// key *replay*: `NewNode` verifies op, shape, attr and parent identity
/// against the recorded sequence and serves the recorded node (value buffer
/// zeroed, closure and parents intact — the ops layer skips rebuilding
/// them), and `Backward()` executes the stored schedule directly — zero
/// topo-DFS visits and zero closure allocations in steady state, counted by
/// `Stats`. Any divergence (different op, shape, attr, parents, or a step
/// that ends early) demotes the graph back to the plain arena mid-step and
/// re-records on the key's next occurrence, so a replayed run can never
/// silently execute the wrong schedule.
///
/// Replay is bitwise identical to the rebuild-every-step arena and to the
/// eager path: closures are written to capture only node pointers and
/// shape-derived constants (per-step payloads live in the node's scratch /
/// iscratch stash), so the recorded closure performs exactly the arithmetic
/// a freshly built one would.
///
/// Usage (one tape per training shard; a tape is single-threaded):
///
///   tape.BeginStep(batch_examples);  // recycle or arm replay
///   BatchTape::Scope scope(&tape);   // route node creation through the tape
///   ... forward + Backward() ...     // normal eager autograd
///
/// Nodes are recycled only when the tape holds the last reference
/// (use_count == 1), so anything user code keeps alive across steps — e.g.
/// a Detach()'d prediction — simply stays out of the pool until released
/// (and blocks that step's graph from sealing, falling back to the plain
/// arena). Parameters and other long-lived leaves are created outside any
/// Scope and are never touched by the tape.
///
/// The tape also fingerprints each step's op sequence (op name + element
/// count per node, in creation order). A static training graph should
/// produce at most two distinct fingerprints per epoch — the full batch and
/// the tail batch — which the tests assert; a drifting fingerprint count
/// means the "trace once, reuse every batch" premise broke.
class BatchTape {
 public:
  struct Stats {
    /// BeginStep() calls.
    int64_t steps = 0;
    /// Graph nodes served while a Scope was active.
    int64_t nodes = 0;
    /// Nodes that needed a fresh value-buffer allocation (pool miss).
    int64_t buffer_allocs = 0;
    /// Nodes served without allocating (pool hit or replay).
    int64_t buffer_reuses = 0;
    /// Distinct op-sequence fingerprints seen across all steps, including
    /// the still-open step (finalized lazily, so a read immediately after
    /// the run's tail batch counts it).
    int64_t distinct_sequences = 0;
    /// Nodes visited by Tensor::Backward()'s topological DFS under this
    /// tape. Replayed backwards skip the DFS entirely, so in steady state
    /// this stops growing.
    int64_t dfs_node_visits = 0;
    /// Backward std::function closures allocated by the ops layer under
    /// this tape. Replayed nodes keep their recorded closures, so in steady
    /// state this stops growing.
    int64_t closure_allocs = 0;
    /// Steps served from a sealed graph (replay mode).
    int64_t replay_steps = 0;
    /// Backward() calls executed from a stored schedule.
    int64_t replay_backwards = 0;
    /// Replay steps that diverged from their recording and fell back to the
    /// plain arena mid-step (the graph re-records on the key's next use).
    int64_t replay_fallbacks = 0;
  };

  /// RAII: routes node creation on the current thread through `tape`.
  /// Scopes nest; the previous tape (or none) is restored on destruction.
  class Scope {
   public:
    explicit Scope(BatchTape* tape);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BatchTape* previous_;
  };

  BatchTape() = default;
  BatchTape(const BatchTape&) = delete;
  BatchTape& operator=(const BatchTape&) = delete;

  /// Starts a new step: finalizes the previous step's op-sequence
  /// fingerprint, seals or demotes a finished recording, sweeps transient
  /// nodes back into the buffer pool, and arms replay when `key` names a
  /// sealed graph. `key` identifies the expected trace — callers pass the
  /// step's example count so distinct batch shapes compile separately. Call
  /// before entering the step's Scope, from the thread that owns the tape.
  void BeginStep(uint64_t key);
  void BeginStep() { BeginStep(0); }

  /// Drops every retained node, pooled buffer and compiled graph — replay
  /// caches never survive a Clear(). Fingerprint history and counters are
  /// kept.
  void Clear();

  Stats stats() const;

  /// Compiled-schedule replay on/off (default on). Off reproduces the
  /// rebuild-every-step arena: nodes are swept and closures rebuilt each
  /// step. Takes effect at the next BeginStep(); existing graphs are
  /// dropped. The escape hatch behind --tape_replay.
  void SetReplayEnabled(bool enabled);
  bool replay_enabled() const { return replay_enabled_; }

  /// The tape active on the current thread, or nullptr.
  static BatchTape* Active();

  /// Graph-node factory used by the ops layer: serves from the active tape
  /// when one is set, otherwise allocates a fresh node. The returned node
  /// has `shape` set, data zeroed to the shape's element count and no
  /// backward_fn — unless it was served by replay, in which case parents
  /// and backward_fn from the recording step are intact and `tape_wired` is
  /// true (the ops layer must then skip rebuilding them). `op` is a static
  /// string naming the operation; `attr` packs any op constants a closure
  /// captures that are not derivable from shapes (transpose flags, scalar
  /// bits, slice offsets) so replay can verify them; `parents` (optional)
  /// is verified against the recorded node's parent identity.
  static std::shared_ptr<internal::TensorImpl> NewNode(
      const char* op, const Shape& shape, uint64_t attr = 0,
      const std::vector<Tensor>* parents = nullptr);

  /// Counts one backward-closure allocation against the active tape (no-op
  /// without one). Called by the ops layer next to every
  /// `backward_fn = ...` assignment.
  static void NoteClosureAlloc();

  /// Executes the stored schedule for `root` if this tape is replaying and
  /// the recording holds a matching (root, cursor) schedule: zeroes the
  /// scheduled nodes' grads (honoring GradSink coverage), seeds the root
  /// and runs the recorded closures in reverse topological order. Returns
  /// false when no schedule applies — the caller falls back to the DFS.
  bool ReplayBackward(internal::TensorImpl* root);

  /// Records an eager backward pass executed under this tape: counts the
  /// DFS visits and, while recording a graph, stores `topo` as a schedule
  /// bound to (root, current node cursor) for future replay.
  void RecordBackward(internal::TensorImpl* root,
                      const std::vector<internal::TensorImpl*>& topo);

 private:
  /// One recorded trace: (op, attr, shape) per node in creation order.
  struct SeqEntry {
    const char* op;
    uint64_t attr;
    Shape shape;
  };
  /// One linearized backward pass: the post-order DFS result of the
  /// recording step's Backward() at node cursor `cursor`. Raw pointers are
  /// safe: graph nodes are owned by `nodes`, and out-of-graph leaves
  /// (parameters) are kept alive transitively by the graph nodes' parents.
  struct BackSchedule {
    internal::TensorImpl* root;
    size_t cursor;
    std::vector<internal::TensorImpl*> topo;
  };
  struct Graph {
    uint64_t key = 0;
    std::vector<std::shared_ptr<internal::TensorImpl>> nodes;
    std::vector<SeqEntry> seq;
    std::vector<BackSchedule> schedules;
    bool sealed = false;
  };

  std::shared_ptr<internal::TensorImpl> Acquire(
      const char* op, const Shape& shape, uint64_t attr,
      const std::vector<Tensor>* parents);
  /// Replay fast path: verifies the next sequence entry and serves its
  /// recorded node, or returns nullptr on divergence.
  std::shared_ptr<internal::TensorImpl> TryServeReplay(
      const char* op, const Shape& shape, uint64_t attr,
      const std::vector<Tensor>* parents);
  /// Folds the open step's fingerprint into the distinct-sequence set.
  void FinalizeStepFingerprint();
  /// Seals the just-finished recording if every node is tape-only, else
  /// demotes it to the plain arena.
  void FinalizeGraphRecording();
  /// Spills the current graph's nodes into retained_ (normal sweep
  /// handling) and erases it; the key re-records on next use.
  void DemoteCurrentGraph();
  /// Recycles dead transient nodes into the pool; survivors are kept in
  /// creation order so a later drop still collapses in one pass.
  void SweepRetained();
  void Recycle(std::shared_ptr<internal::TensorImpl> node);

  /// Buffers not in use, keyed by value-buffer capacity (best-fit lookup).
  std::multimap<size_t, std::shared_ptr<internal::TensorImpl>> pool_;
  /// Transient nodes handed out since the last sweep, in creation order.
  std::vector<std::shared_ptr<internal::TensorImpl>> retained_;
  /// Sweep survivors (nodes user code still references), in creation order.
  std::vector<std::shared_ptr<internal::TensorImpl>> held_;
  /// Sealed (and one in-recording) graphs by step key.
  std::unordered_map<uint64_t, Graph> graphs_;
  Graph* current_ = nullptr;
  /// Next sequence slot while replaying; node count is the recording-side
  /// cursor.
  size_t cursor_ = 0;
  bool replaying_ = false;
  bool recording_graph_ = false;
  bool replay_enabled_ = true;
  std::unordered_set<uint64_t> sequence_hashes_;
  uint64_t step_hash_ = 0;
  bool step_open_ = false;
  Stats stats_;
};

/// Global switch for the fused-op paths in src/nn (AddNBiasAct,
/// LstmPointwise, GruPointwise, FmPairwise). Off by default so unit tests
/// exercise the eager reference graphs; RrreTrainer and the neural baselines
/// set it from their `use_tape` config. Fused and eager graphs are built to
/// produce bitwise identical values and gradients — the flag trades graph
/// shape (node count, fusion) only.
bool FusionEnabled();
void SetFusionEnabled(bool enabled);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_TAPE_H_
