#ifndef RRRE_TENSOR_TAPE_H_
#define RRRE_TENSOR_TAPE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <unordered_set>
#include <vector>

#include "tensor/shape.h"
#include "tensor/tensor.h"

namespace rrre::tensor {

/// Arena for the per-batch autograd graph.
///
/// The training graph is static: every batch traces the same op sequence over
/// the same shapes (modulo the smaller tail batch), so the graph nodes —
/// value buffer, grad buffer, parents vector, backward closure slot — can be
/// built once and reused every step instead of being malloc'd and freed
/// thousands of times per epoch. A BatchTape does exactly that, with no
/// compile step: while a `BatchTape::Scope` is active on the current thread,
/// every node the ops layer creates is drawn from the tape's buffer pool and
/// retained; `BeginStep()` sweeps the previous step's nodes back into the
/// pool once user code has dropped its handles. After the first step the
/// steady state performs zero value/grad buffer allocations (asserted by the
/// counter-based `Stats`; the small per-node std::function closure
/// allocations remain — they are not buffer-sized).
///
/// Usage (one tape per training shard; a tape is single-threaded):
///
///   tape.BeginStep();                // recycle last step's graph
///   BatchTape::Scope scope(&tape);   // route node creation through the tape
///   ... forward + Backward() ...     // normal eager autograd
///
/// Nodes are recycled only when the tape holds the last reference
/// (use_count == 1), so anything user code keeps alive across steps — e.g.
/// a Detach()'d prediction — simply stays out of the pool until released.
/// Parameters and other long-lived leaves are created outside any Scope and
/// are never touched by the tape.
///
/// The tape also fingerprints each step's op sequence (op name + element
/// count per node, in creation order). A static training graph should
/// produce at most two distinct fingerprints per epoch — the full batch and
/// the tail batch — which the tests assert; a drifting fingerprint count
/// means the "trace once, reuse every batch" premise broke.
class BatchTape {
 public:
  struct Stats {
    /// BeginStep() calls.
    int64_t steps = 0;
    /// Graph nodes served while a Scope was active.
    int64_t nodes = 0;
    /// Nodes that needed a fresh value-buffer allocation (pool miss).
    int64_t buffer_allocs = 0;
    /// Nodes served from the pool without allocating (pool hit).
    int64_t buffer_reuses = 0;
    /// Distinct op-sequence fingerprints seen across all steps.
    int64_t distinct_sequences = 0;
  };

  /// RAII: routes node creation on the current thread through `tape`.
  /// Scopes nest; the previous tape (or none) is restored on destruction.
  class Scope {
   public:
    explicit Scope(BatchTape* tape);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    BatchTape* previous_;
  };

  BatchTape() = default;
  BatchTape(const BatchTape&) = delete;
  BatchTape& operator=(const BatchTape&) = delete;

  /// Starts a new step: finalizes the previous step's op-sequence
  /// fingerprint and sweeps nodes the previous step retained back into the
  /// buffer pool (those no longer referenced outside the tape). Call before
  /// entering the step's Scope, from the thread that owns the tape.
  void BeginStep();

  /// Drops every retained node and pooled buffer. Fingerprint history and
  /// counters are kept.
  void Clear();

  Stats stats() const { return stats_; }

  /// The tape active on the current thread, or nullptr.
  static BatchTape* Active();

  /// Graph-node factory used by the ops layer: serves from the active tape
  /// when one is set, otherwise allocates a fresh node. The returned node has
  /// `shape` set, data zeroed to the shape's element count, no parents, no
  /// backward_fn, requires_grad false. `op` is a static string naming the
  /// operation (used only for the sequence fingerprint).
  static std::shared_ptr<internal::TensorImpl> NewNode(const char* op,
                                                       const Shape& shape);

 private:
  std::shared_ptr<internal::TensorImpl> Acquire(const char* op,
                                                const Shape& shape);

  /// Buffers not in use, keyed by value-buffer capacity (best-fit lookup).
  std::multimap<size_t, std::shared_ptr<internal::TensorImpl>> pool_;
  /// Nodes handed out since the last sweep, in creation order.
  std::vector<std::shared_ptr<internal::TensorImpl>> retained_;
  std::unordered_set<uint64_t> sequence_hashes_;
  uint64_t step_hash_ = 0;
  bool step_open_ = false;
  Stats stats_;
};

/// Global switch for the fused-op paths in src/nn (AddNBiasAct,
/// LstmPointwise, GruPointwise, FmPairwise). Off by default so unit tests
/// exercise the eager reference graphs; RrreTrainer and the neural baselines
/// set it from their `use_tape` config. Fused and eager graphs are built to
/// produce bitwise identical values and gradients — the flag trades graph
/// shape (node count, fusion) only.
bool FusionEnabled();
void SetFusionEnabled(bool enabled);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_TAPE_H_
