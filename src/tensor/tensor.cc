#include "tensor/tensor.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

#include "tensor/grad_sink.h"
#include "tensor/tape.h"

namespace rrre::tensor {

using internal::TensorImpl;

namespace {

std::shared_ptr<TensorImpl> MakeImpl(const Shape& shape, bool requires_grad) {
  // Routed through the tape so factory tensors created inside a training
  // step (Full constants, dropout masks, ...) recycle like any other node.
  // The requires_grad bit rides in attr so a replayed step verifies it.
  auto impl = BatchTape::NewNode("leaf", shape, requires_grad ? 1u : 0u);
  impl->requires_grad = requires_grad;
  return impl;
}

}  // namespace

Tensor Tensor::Zeros(const Shape& shape, bool requires_grad) {
  return Tensor(MakeImpl(shape, requires_grad));
}

Tensor Tensor::Full(const Shape& shape, float value, bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (float& v : impl->data) v = value;
  return Tensor(std::move(impl));
}

Tensor Tensor::FromVector(const Shape& shape, std::vector<float> values,
                          bool requires_grad) {
  RRRE_CHECK(IsValidShape(shape)) << ShapeToString(shape);
  RRRE_CHECK_EQ(static_cast<int64_t>(values.size()), NumElements(shape));
  if (BatchTape::Active() != nullptr) {
    // Per-step value leaves (loss targets, history masks, Detach() copies)
    // must come from the tape like every other node: a compiled replay step
    // verifies the full trace, and a node the tape has never seen would
    // break parent identity on every step and disable replay for good.
    auto impl =
        BatchTape::NewNode("from_vector", shape, requires_grad ? 1u : 0u);
    std::copy(values.begin(), values.end(), impl->data.begin());
    impl->requires_grad = requires_grad;
    return Tensor(std::move(impl));
  }
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data = std::move(values);
  impl->requires_grad = requires_grad;
  return Tensor(std::move(impl));
}

Tensor Tensor::Scalar(float value, bool requires_grad) {
  return Full({1}, value, requires_grad);
}

Tensor Tensor::Randn(const Shape& shape, common::Rng& rng, float stddev,
                     bool requires_grad) {
  auto impl = MakeImpl(shape, requires_grad);
  for (float& v : impl->data) {
    v = static_cast<float>(rng.Normal(0.0, stddev));
  }
  return Tensor(std::move(impl));
}

Tensor Tensor::XavierUniform(const Shape& shape, common::Rng& rng,
                             bool requires_grad) {
  RRRE_CHECK_GE(shape.size(), 2u)
      << "Xavier init needs at least 2 dims, got " << ShapeToString(shape);
  const double fan_in = static_cast<double>(shape[shape.size() - 2]);
  const double fan_out = static_cast<double>(shape[shape.size() - 1]);
  const double bound = std::sqrt(6.0 / (fan_in + fan_out));
  auto impl = MakeImpl(shape, requires_grad);
  for (float& v : impl->data) {
    v = static_cast<float>(rng.Uniform(-bound, bound));
  }
  return Tensor(std::move(impl));
}

const Shape& Tensor::shape() const {
  RRRE_CHECK(defined());
  return impl_->shape;
}

int64_t Tensor::dim(int64_t axis) const {
  const Shape& s = shape();
  if (axis < 0) axis += static_cast<int64_t>(s.size());
  RRRE_CHECK_GE(axis, 0);
  RRRE_CHECK_LT(axis, static_cast<int64_t>(s.size()));
  return s[static_cast<size_t>(axis)];
}

bool Tensor::requires_grad() const {
  RRRE_CHECK(defined());
  return impl_->requires_grad;
}

float* Tensor::data() {
  RRRE_CHECK(defined());
  return impl_->data.data();
}

const float* Tensor::data() const {
  RRRE_CHECK(defined());
  return impl_->data.data();
}

float& Tensor::at(int64_t i) {
  RRRE_CHECK_GE(i, 0);
  RRRE_CHECK_LT(i, numel());
  return impl_->data[static_cast<size_t>(i)];
}

float Tensor::at(int64_t i) const {
  RRRE_CHECK_GE(i, 0);
  RRRE_CHECK_LT(i, numel());
  return impl_->data[static_cast<size_t>(i)];
}

float& Tensor::at(int64_t i, int64_t j) {
  RRRE_CHECK_EQ(ndim(), 2);
  RRRE_CHECK_GE(i, 0);
  RRRE_CHECK_LT(i, dim(0));
  RRRE_CHECK_GE(j, 0);
  RRRE_CHECK_LT(j, dim(1));
  return impl_->data[static_cast<size_t>(i * dim(1) + j)];
}

float Tensor::at(int64_t i, int64_t j) const {
  return const_cast<Tensor*>(this)->at(i, j);
}

float& Tensor::at(int64_t i, int64_t j, int64_t k) {
  RRRE_CHECK_EQ(ndim(), 3);
  RRRE_CHECK_GE(i, 0);
  RRRE_CHECK_LT(i, dim(0));
  RRRE_CHECK_GE(j, 0);
  RRRE_CHECK_LT(j, dim(1));
  RRRE_CHECK_GE(k, 0);
  RRRE_CHECK_LT(k, dim(2));
  return impl_->data[static_cast<size_t>((i * dim(1) + j) * dim(2) + k)];
}

float Tensor::at(int64_t i, int64_t j, int64_t k) const {
  return const_cast<Tensor*>(this)->at(i, j, k);
}

float Tensor::item() const {
  RRRE_CHECK_EQ(numel(), 1);
  return impl_->data[0];
}

std::vector<float> Tensor::ToVector() const {
  RRRE_CHECK(defined());
  return impl_->data;
}

const std::vector<float>& Tensor::grad() const {
  RRRE_CHECK(defined());
  RRRE_CHECK(impl_->requires_grad) << "tensor does not require grad";
  const_cast<TensorImpl*>(impl_.get())->EnsureGrad();
  return impl_->grad;
}

std::vector<float>& Tensor::mutable_grad() {
  RRRE_CHECK(defined());
  RRRE_CHECK(impl_->requires_grad) << "tensor does not require grad";
  impl_->EnsureGrad();
  return impl_->grad;
}

void Tensor::ZeroGrad() {
  RRRE_CHECK(defined());
  impl_->grad.assign(impl_->data.size(), 0.0f);
}

void Tensor::Backward() {
  RRRE_CHECK(defined());
  RRRE_CHECK_EQ(numel(), 1) << "Backward() requires a scalar output";
  RRRE_CHECK(impl_->requires_grad)
      << "Backward() on a tensor with requires_grad == false";

  // A compiled tape step executes the recorded schedule directly — no DFS,
  // no closure rebuilds. Falls through to the eager pass when no schedule
  // matches this (root, trace position).
  BatchTape* tape = BatchTape::Active();
  if (tape != nullptr && tape->ReplayBackward(impl_.get())) return;

  // Topological order via iterative post-order DFS.
  std::vector<TensorImpl*> topo;
  std::unordered_set<TensorImpl*> visited;
  struct Frame {
    TensorImpl* node;
    size_t next_parent;
  };
  std::vector<Frame> stack;
  stack.push_back({impl_.get(), 0});
  visited.insert(impl_.get());
  while (!stack.empty()) {
    Frame& f = stack.back();
    if (f.next_parent < f.node->parents.size()) {
      TensorImpl* parent = f.node->parents[f.next_parent++].get();
      if (parent->requires_grad && visited.insert(parent).second) {
        stack.push_back({parent, 0});
      }
    } else {
      topo.push_back(f.node);
      stack.pop_back();
    }
  }

  // Count the DFS against the tape and, on a recording step, store the
  // linearized order as the replay schedule for this (root, position).
  if (tape != nullptr) tape->RecordBackward(impl_.get(), topo);

  // Zero gradients of every node in this graph, then seed the output. Leaves
  // covered by an active GradSink are skipped: their contributions go to the
  // sink's (already zeroed) private buffer, and their real grads may be
  // concurrently owned by another shard's merge.
  for (TensorImpl* node : topo) {
    if (GradSink::ActiveCovers(node)) continue;
    node->grad.assign(node->data.size(), 0.0f);
  }
  impl_->grad[0] = 1.0f;

  // topo is post-order (output last); walk it backwards.
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    if ((*it)->backward_fn) (*it)->backward_fn();
  }
}

Tensor Tensor::Detach() const {
  RRRE_CHECK(defined());
  return FromVector(impl_->shape, impl_->data, /*requires_grad=*/false);
}

Tensor Tensor::WrapImpl(std::shared_ptr<TensorImpl> impl) {
  return Tensor(std::move(impl));
}

}  // namespace rrre::tensor
