#include "tensor/serialize.h"

#include <cstring>
#include <fstream>

namespace rrre::tensor {

using common::Result;
using common::Status;

namespace {

constexpr char kMagic[8] = {'R', 'R', 'R', 'E', 'T', 'N', 'S', '1'};

template <typename T>
void WritePod(std::ostream& out, T value) {
  out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

}  // namespace

Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) return Status::IoError("cannot open for writing: " + path);
  out.write(kMagic, sizeof(kMagic));
  WritePod<uint32_t>(out, static_cast<uint32_t>(tensors.size()));
  for (const auto& [name, t] : tensors) {
    if (!t.defined()) {
      return Status::InvalidArgument("undefined tensor: " + name);
    }
    WritePod<uint32_t>(out, static_cast<uint32_t>(name.size()));
    out.write(name.data(), static_cast<std::streamsize>(name.size()));
    WritePod<uint32_t>(out, static_cast<uint32_t>(t.ndim()));
    for (int64_t d : t.shape()) WritePod<int64_t>(out, d);
    out.write(reinterpret_cast<const char*>(t.data()),
              static_cast<std::streamsize>(t.numel() * sizeof(float)));
  }
  out.flush();
  if (!out) return Status::IoError("write failed: " + path);
  return Status::Ok();
}

Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in || std::memcmp(magic, kMagic, sizeof(kMagic)) != 0) {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  uint32_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  std::map<std::string, Tensor> out;
  for (uint32_t e = 0; e < count; ++e) {
    uint32_t name_len = 0;
    if (!ReadPod(in, &name_len)) {
      return Status::IoError("truncated checkpoint entry header: " + path);
    }
    std::string name(name_len, '\0');
    in.read(name.data(), name_len);
    uint32_t rank = 0;
    if (!in || !ReadPod(in, &rank) || rank == 0 || rank > 8) {
      return Status::InvalidArgument("bad tensor rank in " + path);
    }
    Shape shape(rank);
    for (uint32_t d = 0; d < rank; ++d) {
      if (!ReadPod(in, &shape[d]) || shape[d] <= 0) {
        return Status::InvalidArgument("bad tensor dim in " + path);
      }
    }
    const int64_t numel = NumElements(shape);
    std::vector<float> data(static_cast<size_t>(numel));
    in.read(reinterpret_cast<char*>(data.data()),
            static_cast<std::streamsize>(numel * sizeof(float)));
    if (!in) return Status::IoError("truncated tensor payload: " + path);
    out.emplace(std::move(name), Tensor::FromVector(shape, std::move(data)));
  }
  return out;
}

}  // namespace rrre::tensor
