#include "tensor/serialize.h"

#include <array>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <utility>

#include "common/io.h"

namespace rrre::tensor {

using common::Result;
using common::Status;

namespace {

constexpr char kMagicV1[8] = {'R', 'R', 'R', 'E', 'T', 'N', 'S', '1'};
constexpr char kMagicV2[8] = {'R', 'R', 'R', 'E', 'T', 'N', 'S', '2'};

std::array<uint32_t, 256> BuildCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xedb88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

template <typename T>
bool ReadPod(std::istream& in, T* value) {
  in.read(reinterpret_cast<char*>(value), sizeof(T));
  return static_cast<bool>(in);
}

/// Reads and validates one tensor entry. `version` selects whether a CRC
/// field is expected. On success the entry is inserted into `out`.
Status ReadEntry(std::istream& in, const std::string& path, uint32_t version,
                 std::map<std::string, Tensor>* out) {
  uint32_t name_len = 0;
  if (!ReadPod(in, &name_len)) {
    return Status::IoError("truncated checkpoint entry header: " + path);
  }
  if (name_len == 0 || name_len > kMaxTensorNameLen) {
    return Status::InvalidArgument("bad tensor name length (" +
                                   std::to_string(name_len) + ") in " + path);
  }
  std::string name(name_len, '\0');
  in.read(name.data(), name_len);
  if (!in) return Status::IoError("truncated tensor name in " + path);
  uint32_t rank = 0;
  if (!ReadPod(in, &rank)) {
    return Status::IoError("truncated checkpoint entry header: " + path);
  }
  if (rank == 0 || rank > 8) {
    return Status::InvalidArgument("bad tensor rank (" + std::to_string(rank) +
                                   ") for \"" + name + "\" in " + path);
  }
  Shape shape(rank);
  int64_t numel = 1;
  for (uint32_t d = 0; d < rank; ++d) {
    if (!ReadPod(in, &shape[d])) {
      return Status::IoError("truncated tensor dims in " + path);
    }
    if (shape[d] <= 0) {
      return Status::InvalidArgument(
          "bad tensor dim (" + std::to_string(shape[d]) + ") for \"" + name +
          "\" in " + path);
    }
    // Overflow-safe product: reject before multiplying past the bound.
    if (shape[d] > kMaxTensorElements / numel) {
      return Status::InvalidArgument("tensor \"" + name + "\" in " + path +
                                     " exceeds the element bound (dims "
                                     "overflow or oversized payload)");
    }
    numel *= shape[d];
  }
  uint32_t stored_crc = 0;
  if (version >= 2 && !ReadPod(in, &stored_crc)) {
    return Status::IoError("truncated tensor checksum in " + path);
  }
  std::vector<float> data(static_cast<size_t>(numel));
  in.read(reinterpret_cast<char*>(data.data()),
          static_cast<std::streamsize>(numel * sizeof(float)));
  if (!in) {
    return Status::IoError("truncated payload for tensor \"" + name +
                           "\" in " + path);
  }
  if (version >= 2) {
    const uint32_t actual =
        Crc32(data.data(), data.size() * sizeof(float));
    if (actual != stored_crc) {
      return Status::InvalidArgument(
          "checksum mismatch for tensor \"" + name + "\" in " + path +
          " (checkpoint is corrupt)");
    }
  }
  auto [it, inserted] =
      out->emplace(std::move(name), Tensor::FromVector(shape, std::move(data)));
  if (!inserted) {
    return Status::InvalidArgument("duplicate tensor name \"" + it->first +
                                   "\" in " + path);
  }
  return Status::Ok();
}

}  // namespace

uint32_t Crc32(const void* data, size_t len, uint32_t seed) {
  static const std::array<uint32_t, 256> table = BuildCrcTable();
  uint32_t crc = ~seed;
  const auto* bytes = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < len; ++i) {
    crc = table[(crc ^ bytes[i]) & 0xffu] ^ (crc >> 8);
  }
  return ~crc;
}

Status SaveTensors(const std::string& path,
                   const std::map<std::string, Tensor>& tensors) {
  if (tensors.size() > kMaxCheckpointEntries) {
    return Status::InvalidArgument("too many tensors for one checkpoint: " +
                                   std::to_string(tensors.size()));
  }
  for (const auto& [name, t] : tensors) {
    if (!t.defined()) {
      return Status::InvalidArgument("undefined tensor: " + name);
    }
    if (name.empty() || name.size() > kMaxTensorNameLen) {
      return Status::InvalidArgument("bad tensor name: \"" + name + "\"");
    }
  }
  // AtomicFileWriter gives the crash-safety argument: bytes go to a temp
  // file, are fsynced, renamed into place, and the parent directory is
  // fsynced — so readers never observe a partial checkpoint and a power loss
  // after Commit() cannot surface a zero-length "valid" file.
  common::AtomicFileWriter out;
  RRRE_RETURN_IF_ERROR(out.Open(path, "ckpt"));
  auto append_pod = [&out](const auto& value) {
    return out.Append(&value, sizeof(value));
  };
  RRRE_RETURN_IF_ERROR(out.Append(kMagicV2, sizeof(kMagicV2)));
  RRRE_RETURN_IF_ERROR(append_pod(static_cast<uint32_t>(tensors.size())));
  for (const auto& [name, t] : tensors) {
    RRRE_RETURN_IF_ERROR(append_pod(static_cast<uint32_t>(name.size())));
    RRRE_RETURN_IF_ERROR(out.Append(name.data(), name.size()));
    RRRE_RETURN_IF_ERROR(append_pod(static_cast<uint32_t>(t.ndim())));
    for (int64_t d : t.shape()) RRRE_RETURN_IF_ERROR(append_pod(d));
    RRRE_RETURN_IF_ERROR(append_pod(
        Crc32(t.data(), static_cast<size_t>(t.numel()) * sizeof(float))));
    RRRE_RETURN_IF_ERROR(
        out.Append(t.data(), static_cast<size_t>(t.numel()) * sizeof(float)));
  }
  return out.Commit();
}

Result<std::map<std::string, Tensor>> LoadTensors(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IoError("cannot open for reading: " + path);
  char magic[8];
  in.read(magic, sizeof(magic));
  if (!in) return Status::IoError("truncated checkpoint header: " + path);
  uint32_t version = 0;
  if (std::memcmp(magic, kMagicV2, sizeof(kMagicV2)) == 0) {
    version = 2;
  } else if (std::memcmp(magic, kMagicV1, sizeof(kMagicV1)) == 0) {
    version = 1;
  } else {
    return Status::InvalidArgument("bad checkpoint magic in " + path);
  }
  uint32_t count = 0;
  if (!ReadPod(in, &count)) {
    return Status::IoError("truncated checkpoint: " + path);
  }
  if (count > kMaxCheckpointEntries) {
    return Status::InvalidArgument("implausible entry count (" +
                                   std::to_string(count) + ") in " + path);
  }
  std::map<std::string, Tensor> out;
  for (uint32_t e = 0; e < count; ++e) {
    RRRE_RETURN_IF_ERROR(ReadEntry(in, path, version, &out));
  }
  // Exactly `count` entries must account for every byte in the file.
  in.peek();
  if (!in.eof()) {
    return Status::InvalidArgument("trailing garbage after last tensor in " +
                                   path);
  }
  return out;
}

}  // namespace rrre::tensor
