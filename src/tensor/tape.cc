#include "tensor/tape.h"

#include <algorithm>
#include <atomic>
#include <cstring>

#include "common/logging.h"
#include "tensor/grad_sink.h"

namespace rrre::tensor {

using internal::TensorImpl;

namespace {

thread_local BatchTape* g_active_tape = nullptr;

std::atomic<bool> g_fusion_enabled{false};

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

/// Compiled graphs kept per tape. Training uses two keys (full batch + tail
/// batch); the cap only guards against a caller feeding an unbounded key
/// stream, which would otherwise pin every traced graph's buffers forever.
constexpr size_t kMaxGraphs = 8;

uint64_t Fnv1a(uint64_t h, const void* bytes, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

BatchTape::Scope::Scope(BatchTape* tape) : previous_(g_active_tape) {
  g_active_tape = tape;
}

BatchTape::Scope::~Scope() { g_active_tape = previous_; }

BatchTape* BatchTape::Active() { return g_active_tape; }

std::shared_ptr<TensorImpl> BatchTape::NewNode(
    const char* op, const Shape& shape, uint64_t attr,
    const std::vector<Tensor>* parents) {
  RRRE_CHECK(IsValidShape(shape)) << ShapeToString(shape);
  BatchTape* tape = g_active_tape;
  if (tape != nullptr) return tape->Acquire(op, shape, attr, parents);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  return impl;
}

void BatchTape::NoteClosureAlloc() {
  if (g_active_tape != nullptr) ++g_active_tape->stats_.closure_allocs;
}

std::shared_ptr<TensorImpl> BatchTape::Acquire(
    const char* op, const Shape& shape, uint64_t attr,
    const std::vector<Tensor>* parents) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  ++stats_.nodes;
  if (!step_open_) {
    step_open_ = true;
    step_hash_ = kFnvOffset;
  }
  // Replayed steps fold the fingerprint too, keeping distinct_sequences a
  // property of the traced op stream rather than of the execution mode.
  step_hash_ = Fnv1a(step_hash_, op, std::strlen(op));
  step_hash_ = Fnv1a(step_hash_, &n, sizeof(n));

  if (replaying_) {
    if (auto node = TryServeReplay(op, shape, attr, parents)) {
      ++stats_.buffer_reuses;
      return node;
    }
    // TryServeReplay demoted the graph; fall through to the plain arena for
    // the rest of the step.
  }

  // Best fit: the smallest pooled buffer whose capacity covers n, so
  // data.assign below never reallocates.
  auto it = pool_.lower_bound(n);
  std::shared_ptr<TensorImpl> impl;
  if (it != pool_.end()) {
    impl = std::move(it->second);
    pool_.erase(it);
    ++stats_.buffer_reuses;
  } else {
    impl = std::make_shared<TensorImpl>();
    ++stats_.buffer_allocs;
  }
  impl->shape = shape;
  impl->data.assign(n, 0.0f);
  impl->requires_grad = false;
  if (recording_graph_) {
    // Recorded nodes are owned by the graph, not retained_: they survive the
    // end-of-step sweep so their closures and parents can be replayed. If
    // the recording cannot be sealed they are demoted into retained_ and
    // swept like any transient node.
    current_->nodes.push_back(impl);
    current_->seq.push_back(SeqEntry{op, attr, shape});
  } else {
    retained_.push_back(impl);
  }
  return impl;
}

std::shared_ptr<TensorImpl> BatchTape::TryServeReplay(
    const char* op, const Shape& shape, uint64_t attr,
    const std::vector<Tensor>* parents) {
  Graph& g = *current_;
  // Divergence — a longer trace, a different op/attr/shape, or different
  // parent identity — means the recorded closures would compute the wrong
  // thing; demote and re-record rather than ever replaying a stale schedule.
  if (cursor_ >= g.seq.size()) {
    ++stats_.replay_fallbacks;
    DemoteCurrentGraph();
    return nullptr;
  }
  const SeqEntry& expected = g.seq[cursor_];
  if (std::strcmp(expected.op, op) != 0 || expected.attr != attr ||
      expected.shape != shape) {
    ++stats_.replay_fallbacks;
    DemoteCurrentGraph();
    return nullptr;
  }
  const std::shared_ptr<TensorImpl>& node = g.nodes[cursor_];
  if (parents != nullptr) {
    if (node->parents.size() != parents->size()) {
      ++stats_.replay_fallbacks;
      DemoteCurrentGraph();
      return nullptr;
    }
    for (size_t i = 0; i < parents->size(); ++i) {
      if (node->parents[i].get() != (*parents)[i].impl().get()) {
        ++stats_.replay_fallbacks;
        DemoteCurrentGraph();
        return nullptr;
      }
    }
  }
  // Forward kernels accumulate into their output (C += A·B), exactly as they
  // would into a freshly zeroed pool buffer.
  node->data.assign(node->data.size(), 0.0f);
  ++cursor_;
  return node;
}

void BatchTape::BeginStep(uint64_t key) {
  ++stats_.steps;
  FinalizeStepFingerprint();
  if (replaying_) {
    if (current_ != nullptr && cursor_ != current_->seq.size()) {
      // The step ended before serving the whole recording: the unserved tail
      // holds stale values and the stored schedules may not match the
      // shorter trace. Re-record on the key's next use.
      ++stats_.replay_fallbacks;
      DemoteCurrentGraph();
    } else {
      replaying_ = false;
      current_ = nullptr;
    }
  }
  if (recording_graph_) FinalizeGraphRecording();
  SweepRetained();
  cursor_ = 0;
  if (replay_enabled_) {
    auto it = graphs_.find(key);
    if (it != graphs_.end() && it->second.sealed) {
      current_ = &it->second;
      replaying_ = true;
      ++stats_.replay_steps;
    } else if (it == graphs_.end() && graphs_.size() < kMaxGraphs) {
      Graph fresh;
      fresh.key = key;
      current_ = &graphs_.emplace(key, std::move(fresh)).first->second;
      recording_graph_ = true;
    }
  }
}

void BatchTape::FinalizeStepFingerprint() {
  if (!step_open_) return;
  if (sequence_hashes_.insert(step_hash_).second) {
    ++stats_.distinct_sequences;
  }
  step_open_ = false;
}

void BatchTape::FinalizeGraphRecording() {
  recording_graph_ = false;
  Graph* g = current_;
  if (g == nullptr) return;
  if (g->nodes.empty()) {
    // Nothing was traced under this key (an idle step); keep no entry.
    graphs_.erase(g->key);
    current_ = nullptr;
    return;
  }
  // A node's expected reference count is the graph's own handle plus one per
  // child that lists it as a parent. Anything above that is a handle user
  // code still holds across the step boundary — replaying would overwrite a
  // value the user can observe, so the graph is demoted instead of sealed.
  std::unordered_set<TensorImpl*> members;
  members.reserve(g->nodes.size());
  for (const auto& node : g->nodes) members.insert(node.get());
  std::unordered_map<TensorImpl*, long> child_refs;
  for (const auto& node : g->nodes) {
    for (const auto& parent : node->parents) {
      if (members.count(parent.get()) != 0) ++child_refs[parent.get()];
    }
  }
  for (const auto& node : g->nodes) {
    long expected = 1;
    auto it = child_refs.find(node.get());
    if (it != child_refs.end()) expected += it->second;
    if (node.use_count() != expected) {
      DemoteCurrentGraph();
      return;
    }
  }
  g->sealed = true;
  for (const auto& node : g->nodes) node->tape_wired = true;
  current_ = nullptr;
}

void BatchTape::DemoteCurrentGraph() {
  Graph* g = current_;
  current_ = nullptr;
  replaying_ = false;
  recording_graph_ = false;
  if (g == nullptr) return;
  const uint64_t key = g->key;
  // Graph nodes are in creation order; appended to retained_ they are swept
  // like any transient node (nodes the user still references survive into
  // held_, the rest return to the pool and lose their wiring in Recycle).
  for (auto& node : g->nodes) retained_.push_back(std::move(node));
  graphs_.erase(key);
}

void BatchTape::SweepRetained() {
  std::vector<std::shared_ptr<TensorImpl>> survivors;
  // Sweep in reverse creation order: children are created after their
  // parents and hold the parent references, so releasing them first lets a
  // whole dead graph collapse into the pool in one pass. retained_ holds the
  // newest nodes (this step), held_ the older sweep survivors, so retained_
  // goes first.
  auto sweep = [&](std::vector<std::shared_ptr<TensorImpl>>& nodes) {
    for (auto it = nodes.rbegin(); it != nodes.rend(); ++it) {
      if (it->use_count() == 1) {
        Recycle(std::move(*it));
      } else {
        survivors.push_back(std::move(*it));
      }
    }
    nodes.clear();
  };
  sweep(retained_);
  sweep(held_);
  // Survivors were collected newest-first; store them back in creation order
  // so the next sweep again releases children before their parents — a
  // subgraph held one extra step (e.g. through a Detach()'d handle) still
  // collapses in a single pass once dropped.
  std::reverse(survivors.begin(), survivors.end());
  held_ = std::move(survivors);
}

void BatchTape::Recycle(std::shared_ptr<TensorImpl> node) {
  node->backward_fn = nullptr;
  node->parents.clear();
  node->scratch.clear();
  node->iscratch.clear();
  node->tape_wired = false;
  pool_.emplace(node->data.capacity(), std::move(node));
}

void BatchTape::Clear() {
  FinalizeStepFingerprint();
  replaying_ = false;
  recording_graph_ = false;
  current_ = nullptr;
  cursor_ = 0;
  graphs_.clear();
  retained_.clear();
  held_.clear();
  pool_.clear();
}

BatchTape::Stats BatchTape::stats() const {
  Stats s = stats_;
  // Fold the still-open step's fingerprint in lazily: the step is only
  // closed by the next BeginStep()/Clear(), and a read right after the run's
  // last batch must not undercount it.
  if (step_open_ &&
      sequence_hashes_.find(step_hash_) == sequence_hashes_.end()) {
    ++s.distinct_sequences;
  }
  return s;
}

void BatchTape::SetReplayEnabled(bool enabled) {
  if (replay_enabled_ == enabled) return;
  replay_enabled_ = enabled;
  // Drop every compiled graph: their nodes return to the arena and the keys
  // re-record on next use (or never, when disabling).
  replaying_ = false;
  recording_graph_ = false;
  current_ = nullptr;
  cursor_ = 0;
  for (auto& entry : graphs_) {
    for (auto& node : entry.second.nodes) retained_.push_back(std::move(node));
  }
  graphs_.clear();
}

bool BatchTape::ReplayBackward(TensorImpl* root) {
  if (!replaying_ || current_ == nullptr) return false;
  for (const BackSchedule& sched : current_->schedules) {
    if (sched.root != root || sched.cursor != cursor_) continue;
    ++stats_.replay_backwards;
    // Mirror the eager pass in tensor.cc exactly: zero every scheduled
    // node's grad (GradSink-covered leaves excepted — their contributions go
    // to the sink's private buffer), seed the root, then run the recorded
    // closures in reverse topological order.
    for (TensorImpl* node : sched.topo) {
      if (GradSink::ActiveCovers(node)) continue;
      node->grad.assign(node->data.size(), 0.0f);
    }
    root->grad[0] = 1.0f;
    for (auto it = sched.topo.rbegin(); it != sched.topo.rend(); ++it) {
      if ((*it)->backward_fn) (*it)->backward_fn();
    }
    return true;
  }
  return false;
}

void BatchTape::RecordBackward(TensorImpl* root,
                               const std::vector<TensorImpl*>& topo) {
  stats_.dfs_node_visits += static_cast<int64_t>(topo.size());
  if (recording_graph_ && current_ != nullptr) {
    // Bind the schedule to (root, node cursor): a step with two backward
    // passes (per-shard loss, then the L2 join) records two schedules that
    // replay at the same positions in the trace.
    current_->schedules.push_back(
        BackSchedule{root, current_->nodes.size(), topo});
  } else if (replaying_ && current_ != nullptr) {
    // A sealed graph ran an eager backward at a (root, cursor) it had not
    // seen before — e.g. an extra probe Backward added later. Record it so
    // the next replay of this key serves it from the schedule.
    current_->schedules.push_back(BackSchedule{root, cursor_, topo});
  }
}

bool FusionEnabled() {
  return g_fusion_enabled.load(std::memory_order_relaxed);
}

void SetFusionEnabled(bool enabled) {
  g_fusion_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace rrre::tensor
