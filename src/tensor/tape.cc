#include "tensor/tape.h"

#include <atomic>
#include <cstring>

#include "common/logging.h"

namespace rrre::tensor {

using internal::TensorImpl;

namespace {

thread_local BatchTape* g_active_tape = nullptr;

std::atomic<bool> g_fusion_enabled{false};

constexpr uint64_t kFnvOffset = 1469598103934665603ull;
constexpr uint64_t kFnvPrime = 1099511628211ull;

uint64_t Fnv1a(uint64_t h, const void* bytes, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(bytes);
  for (size_t i = 0; i < n; ++i) {
    h ^= p[i];
    h *= kFnvPrime;
  }
  return h;
}

}  // namespace

BatchTape::Scope::Scope(BatchTape* tape) : previous_(g_active_tape) {
  g_active_tape = tape;
}

BatchTape::Scope::~Scope() { g_active_tape = previous_; }

BatchTape* BatchTape::Active() { return g_active_tape; }

std::shared_ptr<TensorImpl> BatchTape::NewNode(const char* op,
                                               const Shape& shape) {
  RRRE_CHECK(IsValidShape(shape)) << ShapeToString(shape);
  BatchTape* tape = g_active_tape;
  if (tape != nullptr) return tape->Acquire(op, shape);
  auto impl = std::make_shared<TensorImpl>();
  impl->shape = shape;
  impl->data.assign(static_cast<size_t>(NumElements(shape)), 0.0f);
  return impl;
}

std::shared_ptr<TensorImpl> BatchTape::Acquire(const char* op,
                                               const Shape& shape) {
  const size_t n = static_cast<size_t>(NumElements(shape));
  ++stats_.nodes;
  if (!step_open_) {
    step_open_ = true;
    step_hash_ = kFnvOffset;
  }
  step_hash_ = Fnv1a(step_hash_, op, std::strlen(op));
  step_hash_ = Fnv1a(step_hash_, &n, sizeof(n));

  // Best fit: the smallest pooled buffer whose capacity covers n, so
  // data.assign below never reallocates.
  auto it = pool_.lower_bound(n);
  std::shared_ptr<TensorImpl> impl;
  if (it != pool_.end()) {
    impl = std::move(it->second);
    pool_.erase(it);
    ++stats_.buffer_reuses;
  } else {
    impl = std::make_shared<TensorImpl>();
    ++stats_.buffer_allocs;
  }
  impl->shape = shape;
  impl->data.assign(n, 0.0f);
  impl->requires_grad = false;
  retained_.push_back(impl);
  return impl;
}

void BatchTape::BeginStep() {
  ++stats_.steps;
  if (step_open_) {
    if (sequence_hashes_.insert(step_hash_).second) {
      ++stats_.distinct_sequences;
    }
    step_open_ = false;
  }
  // Sweep in reverse creation order: children are created after their
  // parents and hold the parent references, so releasing them first lets a
  // whole dead graph collapse into the pool in one pass.
  std::vector<std::shared_ptr<TensorImpl>> survivors;
  for (auto it = retained_.rbegin(); it != retained_.rend(); ++it) {
    std::shared_ptr<TensorImpl>& node = *it;
    if (node.use_count() == 1) {
      node->backward_fn = nullptr;
      node->parents.clear();
      node->scratch.clear();
      pool_.emplace(node->data.capacity(), std::move(node));
    } else {
      survivors.push_back(std::move(node));
    }
  }
  retained_ = std::move(survivors);
}

void BatchTape::Clear() {
  if (step_open_) {
    if (sequence_hashes_.insert(step_hash_).second) {
      ++stats_.distinct_sequences;
    }
    step_open_ = false;
  }
  retained_.clear();
  pool_.clear();
}

bool FusionEnabled() {
  return g_fusion_enabled.load(std::memory_order_relaxed);
}

void SetFusionEnabled(bool enabled) {
  g_fusion_enabled.store(enabled, std::memory_order_relaxed);
}

}  // namespace rrre::tensor
