#include "tensor/grad_sink.h"

namespace rrre::tensor {

using internal::TensorImpl;

namespace {

thread_local GradSink* tls_active_sink = nullptr;

}  // namespace

GradSink::GradSink(const std::vector<Tensor>& leaves) {
  leaves_.reserve(leaves.size());
  buffers_.reserve(leaves.size());
  for (const Tensor& leaf : leaves) {
    RRRE_CHECK(leaf.defined());
    // Only the impl pointers are stored; no buffer is allocated until a
    // backward pass touches the leaf.
    if (buffers_.emplace(leaf.impl().get(), std::vector<float>()).second) {
      leaves_.push_back(leaf);
    }
  }
}

GradSink::Scope::Scope(GradSink* sink) : previous_(tls_active_sink) {
  tls_active_sink = sink;
}

GradSink::Scope::~Scope() { tls_active_sink = previous_; }

float* GradSink::ActiveFind(TensorImpl* node) {
  GradSink* sink = tls_active_sink;
  if (sink == nullptr) return nullptr;
  auto it = sink->buffers_.find(node);
  if (it == sink->buffers_.end()) return nullptr;
  if (it->second.size() != node->data.size()) {
    it->second.assign(node->data.size(), 0.0f);
  }
  return it->second.data();
}

bool GradSink::ActiveCovers(const TensorImpl* node) {
  GradSink* sink = tls_active_sink;
  if (sink == nullptr) return false;
  return sink->buffers_.count(const_cast<TensorImpl*>(node)) > 0;
}

void GradSink::AccumulateInto() {
  for (const Tensor& leaf : leaves_) {
    TensorImpl* impl = leaf.impl().get();
    const std::vector<float>& buf = buffers_[impl];
    if (buf.empty()) continue;
    impl->EnsureGrad();
    float* dst = impl->grad.data();
    const size_t n = buf.size();
    for (size_t i = 0; i < n; ++i) dst[i] += buf[i];
  }
}

std::vector<Tensor> GradSink::Touched() const {
  std::vector<Tensor> out;
  for (const Tensor& leaf : leaves_) {
    auto it = buffers_.find(leaf.impl().get());
    if (it != buffers_.end() && !it->second.empty()) out.push_back(leaf);
  }
  return out;
}

}  // namespace rrre::tensor
