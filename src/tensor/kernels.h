#ifndef RRRE_TENSOR_KERNELS_H_
#define RRRE_TENSOR_KERNELS_H_

#include <cmath>
#include <cstdint>

namespace rrre::tensor::kernels {

// Autograd-free numeric kernels behind the ops in ops.h: register-blocked,
// cache-tiled, auto-vectorizable loops with a packed-panel GEMM inner kernel.
//
// Determinism contract (shared with ops.cc): every kernel's arithmetic is a
// pure function of the operand shapes and values — never of the thread count
// or the caller's chunking. Per output element the reduction order is fixed
// (ascending k, with cache panels accumulated in ascending panel order), so
// two calls over the same data produce bitwise identical results, and a
// caller that shards output rows across threads gets the same bits as a
// serial call: the per-row arithmetic does not depend on which row range a
// chunk covers.

/// Rows of C per register micro-tile.
inline constexpr int64_t kMr = 4;
/// Columns of C per register micro-tile (the packed-panel width).
inline constexpr int64_t kNr = 16;
/// Reduction-dimension cache panel.
inline constexpr int64_t kKc = 128;
/// Column cache panel (multiple of kNr).
inline constexpr int64_t kNc = 64;
/// Below this output width the packed micro-kernel would mostly multiply
/// zero padding; a plain row-major loop nest is used instead.
inline constexpr int64_t kSmallN = 5;

/// C[m, n] += opA(A) · opB(B) with opX = transpose when the flag is set.
/// A is stored [m, k] row-major (or [k, m] when trans_a); B is stored [k, n]
/// (or [n, k] when trans_b). lda/ldb/ldc are the row strides of the STORED
/// matrices, so callers can hand in sub-blocks of larger buffers. C is
/// accumulated into, never overwritten — callers zero it when they want a
/// plain product.
void Gemm(bool trans_a, bool trans_b, int64_t m, int64_t n, int64_t k,
          const float* a, int64_t lda, const float* b, int64_t ldb, float* c,
          int64_t ldc);

// Named wrappers for the four transpose variants (forward + both gradients
// of a matmul use all four between them).
inline void GemmNN(int64_t m, int64_t n, int64_t k, const float* a,
                   int64_t lda, const float* b, int64_t ldb, float* c,
                   int64_t ldc) {
  Gemm(false, false, m, n, k, a, lda, b, ldb, c, ldc);
}
inline void GemmNT(int64_t m, int64_t n, int64_t k, const float* a,
                   int64_t lda, const float* b, int64_t ldb, float* c,
                   int64_t ldc) {
  Gemm(false, true, m, n, k, a, lda, b, ldb, c, ldc);
}
inline void GemmTN(int64_t m, int64_t n, int64_t k, const float* a,
                   int64_t lda, const float* b, int64_t ldb, float* c,
                   int64_t ldc) {
  Gemm(true, false, m, n, k, a, lda, b, ldb, c, ldc);
}
inline void GemmTT(int64_t m, int64_t n, int64_t k, const float* a,
                   int64_t lda, const float* b, int64_t ldb, float* c,
                   int64_t ldc) {
  Gemm(true, true, m, n, k, a, lda, b, ldb, c, ldc);
}

/// TextCNN building block for one example: slides a width-w window over the
/// [seq_len, d] embedding block `values_ex` (rows contiguous, so a window is
/// w*d contiguous floats), scores every filter at every position
/// (score = bias[c] + window · kernel[:, c], kernel stored [w*d, f]
/// row-major) and max-pools over positions. out_row/argmax_row have f
/// entries; score_scratch is caller-provided workspace of f floats (reused
/// across examples to keep the hot loop allocation-free). Ties keep the
/// first (lowest) position, matching the serial reference.
void Conv1dMaxPoolExample(int64_t seq_len, int64_t w, int64_t d, int64_t f,
                          const float* values_ex, const float* kernel,
                          const float* bias, float* out_row,
                          int64_t* argmax_row, float* score_scratch);

/// Numerically stable logistic, shared by the eager Sigmoid op and the fused
/// gate kernels so both graph shapes produce identical bits.
inline float StableSigmoid(float x) {
  if (x >= 0.0f) {
    const float z = std::exp(-x);
    return 1.0f / (1.0f + z);
  }
  const float z = std::exp(x);
  return z / (1.0f + z);
}

#ifndef RRRE_RESTRICT
#define RRRE_RESTRICT __restrict__
#endif

// Elementwise helpers over freshly produced output buffers. The restrict
// qualifiers tell the vectorizer the output never aliases the inputs (ops.cc
// always writes into a node-private buffer); inputs may alias each other —
// they are only read.
inline void EwAdd(int64_t n, const float* RRRE_RESTRICT a,
                  const float* RRRE_RESTRICT b, float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + b[i];
}
inline void EwSub(int64_t n, const float* RRRE_RESTRICT a,
                  const float* RRRE_RESTRICT b, float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] - b[i];
}
inline void EwMul(int64_t n, const float* RRRE_RESTRICT a,
                  const float* RRRE_RESTRICT b, float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * b[i];
}
inline void EwDiv(int64_t n, const float* RRRE_RESTRICT a,
                  const float* RRRE_RESTRICT b, float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] / b[i];
}
/// o[j] = a[j] + s (scalar broadcast).
inline void EwAddScalar(int64_t n, const float* RRRE_RESTRICT a, float s,
                        float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] + s;
}
inline void EwMulScalar(int64_t n, const float* RRRE_RESTRICT a, float s,
                        float* RRRE_RESTRICT o) {
  for (int64_t i = 0; i < n; ++i) o[i] = a[i] * s;
}
/// y[i] += alpha * x[i]; y must not alias x.
inline void EwAxpy(int64_t n, float alpha, const float* RRRE_RESTRICT x,
                   float* RRRE_RESTRICT y) {
  for (int64_t i = 0; i < n; ++i) y[i] += alpha * x[i];
}

}  // namespace rrre::tensor::kernels

#endif  // RRRE_TENSOR_KERNELS_H_
