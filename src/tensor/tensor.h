#ifndef RRRE_TENSOR_TENSOR_H_
#define RRRE_TENSOR_TENSOR_H_

#include <functional>
#include <memory>
#include <vector>

#include "common/logging.h"
#include "common/rng.h"
#include "tensor/shape.h"

namespace rrre::tensor {

namespace internal {

/// Shared node in the dynamic computation graph. Holds the value buffer, the
/// (lazily allocated) gradient buffer, and the closure that pushes gradients
/// to the node's parents during the backward pass.
struct TensorImpl {
  Shape shape;
  std::vector<float> data;
  std::vector<float> grad;
  bool requires_grad = false;
  /// Set on non-leaf nodes; propagates this node's grad to parents' grads.
  std::function<void()> backward_fn;
  /// Kept alive so backward can run after intermediate Tensors go out of
  /// scope in user code.
  std::vector<std::shared_ptr<TensorImpl>> parents;
  /// Forward-pass stash for fused ops (e.g. gate activations a fused LSTM
  /// step needs again in backward). Recycled with the node by BatchTape.
  std::vector<float> scratch;
  /// Integer stash for backward state that must live on the node rather than
  /// in the closure (embedding ids, conv argmax positions, cross-entropy
  /// labels): a replayed BatchTape step reuses the closure recorded on the
  /// first step of its shape, so anything that changes per step is rewritten
  /// here by the forward pass and read back at closure run time. Recycled
  /// with the node by BatchTape.
  std::vector<int64_t> iscratch;
  /// True while the node belongs to a compiled BatchTape graph: parents and
  /// backward_fn are already installed from the recording step, and the ops
  /// layer must not rebuild them. Cleared whenever the tape recycles the
  /// node into its buffer pool.
  bool tape_wired = false;

  void EnsureGrad() {
    if (grad.size() != data.size()) grad.assign(data.size(), 0.0f);
  }
};

}  // namespace internal

/// A dense float tensor participating in reverse-mode automatic
/// differentiation. Tensor is a cheap shared handle: copies alias the same
/// storage and graph node, mirroring the semantics of torch.Tensor.
///
/// Leaves created with requires_grad=true act as trainable parameters; ops in
/// ops.h build a dynamic graph; Backward() on a scalar result fills `grad()`
/// buffers of every reachable node that requires grad.
class Tensor {
 public:
  /// Undefined tensor (defined() == false). Using it in ops is an error.
  Tensor() = default;

  // -- Factories -------------------------------------------------------------

  static Tensor Zeros(const Shape& shape, bool requires_grad = false);
  static Tensor Full(const Shape& shape, float value,
                     bool requires_grad = false);
  /// Takes ownership of `values`; size must equal NumElements(shape).
  static Tensor FromVector(const Shape& shape, std::vector<float> values,
                           bool requires_grad = false);
  /// Scalar (shape {1}).
  static Tensor Scalar(float value, bool requires_grad = false);
  /// I.i.d. normal entries with the given standard deviation.
  static Tensor Randn(const Shape& shape, common::Rng& rng,
                      float stddev = 1.0f, bool requires_grad = false);
  /// Glorot/Xavier uniform init for a [fan_in, fan_out]-shaped weight.
  static Tensor XavierUniform(const Shape& shape, common::Rng& rng,
                              bool requires_grad = false);

  // -- Introspection ----------------------------------------------------------

  bool defined() const { return impl_ != nullptr; }
  const Shape& shape() const;
  int64_t ndim() const { return static_cast<int64_t>(shape().size()); }
  int64_t dim(int64_t axis) const;
  int64_t numel() const { return NumElements(shape()); }
  bool requires_grad() const;

  // -- Data access ------------------------------------------------------------

  float* data();
  const float* data() const;
  /// Flat element access.
  float& at(int64_t i);
  float at(int64_t i) const;
  /// 2-D element access (row-major).
  float& at(int64_t i, int64_t j);
  float at(int64_t i, int64_t j) const;
  /// 3-D element access.
  float& at(int64_t i, int64_t j, int64_t k);
  float at(int64_t i, int64_t j, int64_t k) const;
  /// Value of a scalar (shape-{1}) tensor.
  float item() const;
  /// Copies the value buffer out.
  std::vector<float> ToVector() const;

  /// Gradient buffer; valid after Backward(). CHECK-fails if the tensor does
  /// not require grad.
  const std::vector<float>& grad() const;
  std::vector<float>& mutable_grad();
  /// Clears this node's gradient buffer.
  void ZeroGrad();

  // -- Autograd ---------------------------------------------------------------

  /// Runs reverse-mode differentiation from this scalar tensor. Seeds the
  /// output gradient with 1 and accumulates into every reachable grad buffer.
  void Backward();

  /// Returns a leaf tensor sharing no graph history (value is copied).
  Tensor Detach() const;

  // -- Internal (used by ops.h) ----------------------------------------------

  const std::shared_ptr<internal::TensorImpl>& impl() const { return impl_; }
  static Tensor WrapImpl(std::shared_ptr<internal::TensorImpl> impl);

 private:
  explicit Tensor(std::shared_ptr<internal::TensorImpl> impl)
      : impl_(std::move(impl)) {}

  std::shared_ptr<internal::TensorImpl> impl_;
};

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_TENSOR_H_
