#ifndef RRRE_TENSOR_SERIALIZE_H_
#define RRRE_TENSOR_SERIALIZE_H_

#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace rrre::tensor {

/// Saves named tensors to a binary checkpoint file. Format:
///   "RRRETNS1" magic, u32 entry count, then per entry:
///   u32 name length, name bytes, u32 rank, i64 dims..., f32 payload.
/// Little-endian, matching the only platform this library targets.
common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors);

/// Loads a checkpoint written by SaveTensors. Loaded tensors are leaves with
/// requires_grad = false; callers copy values into parameters as needed.
common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_SERIALIZE_H_
