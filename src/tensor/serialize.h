#ifndef RRRE_TENSOR_SERIALIZE_H_
#define RRRE_TENSOR_SERIALIZE_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "tensor/tensor.h"

namespace rrre::tensor {

/// Current checkpoint format version written by SaveTensors.
inline constexpr uint32_t kCheckpointVersion = 2;

/// Hard limits enforced by the checkpoint reader. A file that exceeds any of
/// them is rejected before memory is allocated, so a corrupt or hostile
/// header cannot trigger a multi-gigabyte allocation or integer overflow.
inline constexpr uint32_t kMaxCheckpointEntries = 1u << 20;
inline constexpr uint32_t kMaxTensorNameLen = 4096;
inline constexpr int64_t kMaxTensorElements = int64_t{1} << 31;  ///< 8 GiB f32.

/// CRC-32 (IEEE 802.3, reflected) of `len` bytes at `data`, seeded with
/// `seed` so checksums can be chained across buffers. Exposed for tests.
uint32_t Crc32(const void* data, size_t len, uint32_t seed = 0);

/// Saves named tensors to a binary checkpoint file (format v2):
///   "RRRETNS2" magic, u32 entry count, then per entry:
///   u32 name length, name bytes, u32 rank, i64 dims...,
///   u32 CRC-32 of the payload, f32 payload.
/// Little-endian, matching the only platform this library targets.
///
/// The write is atomic: bytes go to "<path>.tmp" which is renamed over
/// `path` only after a successful flush, so a crash mid-save can never leave
/// a half-written checkpoint at `path`.
common::Status SaveTensors(const std::string& path,
                           const std::map<std::string, Tensor>& tensors);

/// Loads a checkpoint written by SaveTensors. Reads both format v2 and the
/// legacy v1 ("RRRETNS1", no checksums). Every structural field is validated
/// before use: name/rank/dim bounds, overflow-safe element counts, duplicate
/// tensor names, payload checksums (v2) and trailing garbage after the last
/// entry are all distinct, descriptive errors — a corrupt file yields a
/// clean Status, never a crash or partial result. Loaded tensors are leaves
/// with requires_grad = false; callers copy values into parameters.
common::Result<std::map<std::string, Tensor>> LoadTensors(
    const std::string& path);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_SERIALIZE_H_
