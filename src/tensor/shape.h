#ifndef RRRE_TENSOR_SHAPE_H_
#define RRRE_TENSOR_SHAPE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace rrre::tensor {

/// Tensor dimensions, outermost first. Rank 0 is not used; scalars are
/// represented as shape {1}.
using Shape = std::vector<int64_t>;

/// Product of all dimensions. Returns 1 for an empty shape.
int64_t NumElements(const Shape& shape);

/// "[2, 3, 4]"
std::string ShapeToString(const Shape& shape);

/// True when every dimension is positive.
bool IsValidShape(const Shape& shape);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_SHAPE_H_
