#include "tensor/shape.h"

#include <sstream>

namespace rrre::tensor {

int64_t NumElements(const Shape& shape) {
  int64_t n = 1;
  for (int64_t d : shape) n *= d;
  return n;
}

std::string ShapeToString(const Shape& shape) {
  std::ostringstream ss;
  ss << "[";
  for (size_t i = 0; i < shape.size(); ++i) {
    if (i > 0) ss << ", ";
    ss << shape[i];
  }
  ss << "]";
  return ss.str();
}

bool IsValidShape(const Shape& shape) {
  if (shape.empty()) return false;
  for (int64_t d : shape) {
    if (d <= 0) return false;
  }
  return true;
}

}  // namespace rrre::tensor
