#ifndef RRRE_TENSOR_GRAD_SINK_H_
#define RRRE_TENSOR_GRAD_SINK_H_

#include <unordered_map>
#include <vector>

#include "tensor/tensor.h"

namespace rrre::tensor {

/// Redirects gradient accumulation for a fixed set of leaf tensors (model
/// parameters) into private per-sink buffers, so several backward passes
/// over graphs that share the same parameter leaves can run concurrently —
/// the data-parallel trainer's building block.
///
/// Usage (one sink per shard, activated on the thread running the shard):
///
///   GradSink sink(model.Parameters());
///   {
///     GradSink::Scope scope(&sink);   // thread-local activation
///     shard_loss.Backward();          // leaf grads land in the sink
///   }
///   ...
///   sink.AccumulateInto();            // serial, in shard order
///
/// While a scope is active on a thread, every write the backward closures
/// would make to a covered leaf's `grad` goes to the sink's buffer instead;
/// Backward() also skips zeroing covered leaves (sink buffers start zeroed).
/// Buffers are allocated lazily on first touch, so a parameter that never
/// participates in the shard's graph stays untouched — preserving the
/// optimizer's "no live grad, no update" semantics.
///
/// A sink must only be activated on one thread at a time and is not
/// self-synchronizing; the caller orders AccumulateInto calls.
///
/// Interplay with BatchTape: the two are orthogonal scopes. The tape recycles
/// the *graph node* buffers of a step; the sink redirects where leaf
/// *gradient* contributions land. Ops resolve the sink exactly once per
/// backward closure (GradBuf in ops.cc) on the thread that runs Backward(),
/// so chunks fanned out to the pool inside a closure all target the same
/// already-resolved buffer — activating a sink and a tape scope on the same
/// shard thread composes without extra locking.
class GradSink {
 public:
  explicit GradSink(const std::vector<Tensor>& leaves);

  GradSink(const GradSink&) = delete;
  GradSink& operator=(const GradSink&) = delete;
  GradSink(GradSink&&) = default;
  GradSink& operator=(GradSink&&) = default;

  /// RAII thread-local activation. Scopes nest (inner wins).
  class Scope {
   public:
    explicit Scope(GradSink* sink);
    ~Scope();
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    GradSink* previous_;
  };

  /// Buffer of the active sink covering `node` on this thread, allocated and
  /// zeroed on first touch; nullptr when no active sink covers it. Called
  /// from the backward closures in ops.cc.
  static float* ActiveFind(internal::TensorImpl* node);

  /// True when the active sink on this thread covers `node` (without
  /// touching it). Used by Tensor::Backward to skip zeroing shared leaves.
  static bool ActiveCovers(const internal::TensorImpl* node);

  /// Adds every touched buffer into its leaf's real grad (EnsureGrad'ed
  /// first), in the leaf order given at construction. Call serially.
  void AccumulateInto();

  /// Leaves whose buffers were touched by a backward pass, in construction
  /// order. Valid until the sink is destroyed.
  std::vector<Tensor> Touched() const;

 private:
  /// Construction order of the leaves, for deterministic accumulation.
  std::vector<Tensor> leaves_;
  /// Leaf impl -> lazily allocated grad buffer (empty until touched).
  std::unordered_map<internal::TensorImpl*, std::vector<float>> buffers_;
};

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_GRAD_SINK_H_
