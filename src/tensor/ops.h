#ifndef RRRE_TENSOR_OPS_H_
#define RRRE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rrre::tensor {

// Differentiable operations over Tensor. Each op validates shapes with CHECK
// (shape errors are programmer errors), computes the forward value eagerly,
// and registers a backward closure on the result node.

// -- Elementwise binary (operands must have identical shapes) ----------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise division; caller guarantees b has no zero entries.
Tensor Div(const Tensor& a, const Tensor& b);

/// a[..., n] + bias[n]: broadcasts a rank-1 bias across all leading dims.
Tensor AddBias(const Tensor& a, const Tensor& bias);

// -- Scalar ops ---------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// -- Elementwise unary --------------------------------------------------------

Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; caller guarantees positive entries.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);

// -- Linear algebra -----------------------------------------------------------

/// [m, k] x [k, n] -> [m, n].
Tensor MatMul(const Tensor& a, const Tensor& b);
/// 2-D transpose.
Tensor Transpose(const Tensor& a);

// -- Row-wise / reduction -----------------------------------------------------

/// Softmax along the last dim of a 2-D tensor (per row), numerically stable.
Tensor Softmax(const Tensor& a);
/// Log-softmax along the last dim of a 2-D tensor.
Tensor LogSoftmax(const Tensor& a);
/// Sum of all entries -> shape {1}.
Tensor Sum(const Tensor& a);
/// Mean of all entries -> shape {1}.
Tensor Mean(const Tensor& a);
/// Row sums of a 2-D tensor: [m, n] -> [m, 1].
Tensor RowSum(const Tensor& a);

// -- Shape manipulation -------------------------------------------------------

/// Returns a tensor with the same elements in a new shape (element count must
/// match). The result is a distinct graph node; gradients flow through.
Tensor Reshape(const Tensor& a, const Shape& shape);
/// Concatenates 2-D tensors along columns (all must share dim 0).
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Concatenates 2-D tensors along rows (all must share dim 1).
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Rows [start, start+len) of a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);
/// Columns [start, start+len) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

// -- Gather / pooling ---------------------------------------------------------

/// Row lookup into an embedding table: table [V, d], ids (each in [0, V)) ->
/// [ids.size(), d]. Gradients scatter-add into the table.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids);

/// Attention-weighted pooling. values is [B*s, k] laid out with the s entries
/// of each group contiguous; weights is [B, s]. Returns [B, k] where
/// out[b] = sum_j weights[b, j] * values[b*s + j].
Tensor WeightedPool(const Tensor& values, const Tensor& weights);

/// 1-D convolution over a token-embedding sequence followed by max-over-time
/// pooling (the TextCNN building block used by DeepCoNN). values is [B*T, d]
/// with each example's T steps contiguous; kernel is [w*d, f] (window width w
/// derived from kernel rows / d); bias is [f]. Output [B, f]:
///   out[b, c] = max_t ( sum over window values[b, t..t+w) . kernel[:, c] + bias[c] ).
/// Gradient routes through the argmax window per (b, c).
Tensor Conv1dMaxPool(const Tensor& values, int64_t seq_len,
                     const Tensor& kernel, const Tensor& bias);

// -- Fused losses -------------------------------------------------------------

/// Mean (or weighted mean) softmax cross-entropy with integer labels.
/// logits: [B, C]; labels: B entries in [0, C); example_weights: empty or B
/// non-negative entries. Returns a scalar:
///   sum_b w_b * (-log softmax(logits_b)[label_b]) / max(sum_b w_b, eps).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels,
                              const std::vector<float>& example_weights = {});

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_OPS_H_
