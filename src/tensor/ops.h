#ifndef RRRE_TENSOR_OPS_H_
#define RRRE_TENSOR_OPS_H_

#include <cstdint>
#include <vector>

#include "tensor/tensor.h"

namespace rrre::tensor {

// Differentiable operations over Tensor. Each op validates shapes with CHECK
// (shape errors are programmer errors), computes the forward value eagerly,
// and registers a backward closure on the result node.

// -- Elementwise binary (operands must have identical shapes) ----------------

Tensor Add(const Tensor& a, const Tensor& b);
Tensor Sub(const Tensor& a, const Tensor& b);
Tensor Mul(const Tensor& a, const Tensor& b);
/// Elementwise division; caller guarantees b has no zero entries.
Tensor Div(const Tensor& a, const Tensor& b);

/// a[..., n] + bias[n]: broadcasts a rank-1 bias across all leading dims.
Tensor AddBias(const Tensor& a, const Tensor& bias);

// -- Scalar ops ---------------------------------------------------------------

Tensor AddScalar(const Tensor& a, float s);
Tensor MulScalar(const Tensor& a, float s);
Tensor Neg(const Tensor& a);

// -- Elementwise unary --------------------------------------------------------

Tensor Tanh(const Tensor& a);
Tensor Sigmoid(const Tensor& a);
Tensor Relu(const Tensor& a);
Tensor Exp(const Tensor& a);
/// Natural log; caller guarantees positive entries.
Tensor Log(const Tensor& a);
Tensor Sqrt(const Tensor& a);
Tensor Square(const Tensor& a);

// -- Linear algebra -----------------------------------------------------------

/// opA(a) x opB(b) where opX transposes the stored operand when the flag is
/// set: a is stored [m, k] (or [k, m] with trans_a), b is stored [k, n] (or
/// [n, k] with trans_b); result is [m, n]. The transposed operand is never
/// materialized — the blocked kernel reads it in place. Backward uses the
/// other transpose variants, so all four are exercised by training.
Tensor MatMul(const Tensor& a, const Tensor& b, bool trans_a = false,
              bool trans_b = false);
/// 2-D transpose.
Tensor Transpose(const Tensor& a);

// -- Row-wise / reduction -----------------------------------------------------

/// Softmax along the last dim of a 2-D tensor (per row), numerically stable.
Tensor Softmax(const Tensor& a);
/// Log-softmax along the last dim of a 2-D tensor.
Tensor LogSoftmax(const Tensor& a);
/// Sum of all entries -> shape {1}.
Tensor Sum(const Tensor& a);
/// Mean of all entries -> shape {1}.
Tensor Mean(const Tensor& a);
/// Row sums of a 2-D tensor: [m, n] -> [m, 1].
Tensor RowSum(const Tensor& a);

// -- Shape manipulation -------------------------------------------------------

/// Returns a tensor with the same elements in a new shape (element count must
/// match). The result is a distinct graph node; gradients flow through.
Tensor Reshape(const Tensor& a, const Shape& shape);
/// Concatenates 2-D tensors along columns (all must share dim 0).
Tensor ConcatCols(const std::vector<Tensor>& parts);
/// Concatenates 2-D tensors along rows (all must share dim 1).
Tensor ConcatRows(const std::vector<Tensor>& parts);
/// Rows [start, start+len) of a 2-D tensor.
Tensor SliceRows(const Tensor& a, int64_t start, int64_t len);
/// Columns [start, start+len) of a 2-D tensor.
Tensor SliceCols(const Tensor& a, int64_t start, int64_t len);

// -- Gather / pooling ---------------------------------------------------------

/// Row lookup into an embedding table: table [V, d], ids (each in [0, V)) ->
/// [ids.size(), d]. Gradients scatter-add into the table.
Tensor EmbeddingLookup(const Tensor& table, const std::vector<int64_t>& ids);

/// Attention-weighted pooling. values is [B*s, k] laid out with the s entries
/// of each group contiguous; weights is [B, s]. Returns [B, k] where
/// out[b] = sum_j weights[b, j] * values[b*s + j].
Tensor WeightedPool(const Tensor& values, const Tensor& weights);

/// 1-D convolution over a token-embedding sequence followed by max-over-time
/// pooling (the TextCNN building block used by DeepCoNN). values is [B*T, d]
/// with each example's T steps contiguous; kernel is [w*d, f] (window width w
/// derived from kernel rows / d); bias is [f]. Output [B, f]:
///   out[b, c] = max_t ( sum over window values[b, t..t+w) . kernel[:, c] + bias[c] ).
/// Gradient routes through the argmax window per (b, c).
Tensor Conv1dMaxPool(const Tensor& values, int64_t seq_len,
                     const Tensor& kernel, const Tensor& bias);

// -- Fused losses -------------------------------------------------------------

/// Mean (or weighted mean) softmax cross-entropy with integer labels.
/// logits: [B, C]; labels: B entries in [0, C); example_weights: empty or B
/// non-negative entries. Returns a scalar:
///   sum_b w_b * (-log softmax(logits_b)[label_b]) / max(sum_b w_b, eps).
Tensor CrossEntropyWithLogits(const Tensor& logits,
                              const std::vector<int64_t>& labels,
                              const std::vector<float>& example_weights = {});

// -- Fused ops ----------------------------------------------------------------
//
// Single graph nodes replacing the eager chains the src/nn modules build.
// Each fused op is constructed to produce bitwise identical values AND
// gradients to the eager chain it replaces: the forward applies the same
// float operations in the same order, and the backward mirrors the exact
// sequence of rounded products the eager node-by-node backward performs
// (verified by the fused-vs-eager suites in tests/test_kernels.cc). The win
// is graph size: one node + one backward closure instead of five to ten.

enum class Activation { kNone, kTanh, kSigmoid, kRelu };

/// act(parts[0] + parts[1] + ... + bias), with the partial sums accumulated
/// left to right exactly like the eager Add(Add(p0, p1), p2) nesting and the
/// bias broadcast over the last dim. All parts share one shape [..., n];
/// bias is [n].
Tensor AddNBiasAct(const std::vector<Tensor>& parts, const Tensor& bias,
                   Activation act);

/// Fused LSTM gate pointwise block. pre is [B, 4H] holding the preactivation
/// (x·W_ih + h·W_hh + b) with gate order i, f, g, o; c_prev is [B, H].
/// Computes c = sigmoid(f)*c_prev + sigmoid(i)*tanh(g) and
/// h = sigmoid(o)*tanh(c) as two graph nodes (c is consumed by the next
/// step, h by the rest of the model), replacing the eager 9-node chain.
struct LstmStepOut {
  Tensor h;
  Tensor c;
};
LstmStepOut LstmPointwise(const Tensor& pre, const Tensor& c_prev);

/// Fused GRU gate pointwise block. gi = x·W_ih + b and gh = h_prev·W_hh,
/// both [B, 3H] with gate order r, z, n; h_prev is [B, H]. Computes
/// r = sigmoid(gi_r + gh_r), z = sigmoid(gi_z + gh_z),
/// n = tanh(gi_n + r*gh_n), out = (1 - z)*n + z*h_prev.
Tensor GruPointwise(const Tensor& gi, const Tensor& gh, const Tensor& h_prev);

/// Fused FM pairwise term: 0.5 * rowsum(xv^2 - x2v2) -> [B, 1], replacing
/// the eager Square/Sub/RowSum/MulScalar chain (xv = x·V, x2v2 = x²·V²).
Tensor FmPairwise(const Tensor& xv, const Tensor& x2v2);

}  // namespace rrre::tensor

#endif  // RRRE_TENSOR_OPS_H_
