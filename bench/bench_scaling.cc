// Extension bench (paper Sec. V scalability remark):
//  1. thread scaling — one training epoch serially vs on the --num_threads
//     pool (same sharded math, so only wall-clock may differ);
//  2. catalog-scale scoring with the tower-cached BatchScorer vs the
//     straight per-pair pipeline.

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "core/scorer.h"
#include "core/trainer.h"

namespace {

/// Mean epoch seconds of a short training run at the given pool size.
double EpochSeconds(const rrre::core::RrreConfig& config,
                    const rrre::data::ReviewDataset& train, int threads) {
  rrre::common::ThreadPool::SetGlobalSize(threads);
  rrre::core::RrreTrainer trainer(config);
  double total = 0.0;
  int64_t epochs = 0;
  trainer.Fit(train, [&](const rrre::core::RrreTrainer::EpochStats& s) {
    total += s.seconds;
    ++epochs;
  });
  return total / static_cast<double>(epochs);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.15);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddInt("users", 8, "users to serve full-catalog scores for");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);

  // -- Part 1: training epoch time, serial vs pool ---------------------------
  const int pool_threads = common::ThreadPool::GlobalSize();
  {
    core::RrreConfig scaling_config =
        bench::DefaultRrreConfig(opts, opts.base_seed);
    scaling_config.epochs = 2;
    std::printf("thread scaling on %ld reviews (shard_size %lld):\n",
                static_cast<long>(bundle.train.size()),
                static_cast<long long>(scaling_config.shard_size));
    const double serial_s = EpochSeconds(scaling_config, bundle.train, 1);
    std::printf("  1 thread : %7.2f s/epoch\n", serial_s);
    if (pool_threads > 1) {
      const double parallel_s =
          EpochSeconds(scaling_config, bundle.train, pool_threads);
      std::printf("  %d threads: %7.2f s/epoch  (%.2fx speedup)\n",
                  pool_threads, parallel_s,
                  serial_s / std::max(parallel_s, 1e-9));
    } else {
      std::printf(
          "  (single-core host: pass --num_threads to measure scaling)\n");
    }
    common::ThreadPool::SetGlobalSize(static_cast<int>(opts.num_threads));
    std::printf("\n");
  }

  // -- Part 2: catalog-scale scoring ----------------------------------------
  core::RrreTrainer trainer(bench::DefaultRrreConfig(opts, opts.base_seed));
  std::printf("training on %ld reviews...\n",
              static_cast<long>(bundle.train.size()));
  trainer.Fit(bundle.train);

  const int64_t num_users = flags.GetInt("users");
  const int64_t num_items = bundle.train.num_items();
  std::vector<std::pair<int64_t, int64_t>> pairs;
  for (int64_t u = 0; u < num_users; ++u) {
    for (int64_t i = 0; i < num_items; ++i) pairs.emplace_back(u, i);
  }
  std::printf("scoring %ld users x %ld items = %ld pairs\n\n",
              static_cast<long>(num_users), static_cast<long>(num_items),
              static_cast<long>(pairs.size()));

  common::Timer full_timer;
  auto full = trainer.PredictPairs(pairs);
  const double full_seconds = full_timer.ElapsedSeconds();

  common::Timer fast_timer;
  core::BatchScorer scorer(&trainer);
  auto fast = scorer.Score(pairs);
  const double fast_seconds = fast_timer.ElapsedSeconds();

  double max_dev = 0.0;
  for (size_t i = 0; i < pairs.size(); ++i) {
    max_dev = std::max(max_dev,
                       std::abs(full.reliabilities[i] - fast.reliabilities[i]));
  }

  std::printf("full per-pair pipeline : %7.2f s\n", full_seconds);
  std::printf("tower-cached scorer    : %7.2f s  (%.1fx speedup)\n",
              fast_seconds, full_seconds / std::max(fast_seconds, 1e-9));
  std::printf("max |reliability delta|: %.2e (must be ~float epsilon)\n",
              max_dev);
  std::printf(
      "\nThe cached path runs each tower once per distinct user/item; the "
      "full path re-runs both towers for every pair — the gap widens "
      "linearly with catalog size.\n");
  return 0;
}
