#ifndef RRRE_BENCH_NDCG_TABLE_H_
#define RRRE_BENCH_NDCG_TABLE_H_

#include <cstdint>
#include <map>
#include <string>

#include "bench/harness.h"

namespace rrre::bench {

/// Shared driver for Tables V and VI: scores the dataset's test reviews with
/// every reliability model and prints NDCG@k rows for k = 100..1000
/// (clamped to the test size), with the paper's values in parentheses.
int RunNdcgTable(const std::string& table_name, const std::string& dataset,
                 const std::map<int64_t, std::map<std::string, double>>&
                     paper_values,
                 int argc, char** argv);

}  // namespace rrre::bench

#endif  // RRRE_BENCH_NDCG_TABLE_H_
