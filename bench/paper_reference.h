#ifndef RRRE_BENCH_PAPER_REFERENCE_H_
#define RRRE_BENCH_PAPER_REFERENCE_H_

#include <map>
#include <string>
#include <vector>

namespace rrre::bench::paper {

/// Numbers reported by the paper, keyed by (dataset, model) or (k, model),
/// printed next to measured values so shape agreement is easy to eyeball.
/// Datasets: yelpchi, yelpnyc, yelpzip, musics, cds.

/// Table III — bRMSE of rating prediction.
inline const std::map<std::string, std::map<std::string, double>>&
Table3Brmse() {
  static const auto* t = new std::map<std::string, std::map<std::string, double>>{
      {"yelpchi", {{"rrre", 0.965}, {"pmf", 1.052}, {"deepconn", 0.994},
                   {"narre", 1.002}, {"der", 1.112}, {"rrre-", 1.041}}},
      {"yelpnyc", {{"rrre", 0.989}, {"pmf", 1.081}, {"deepconn", 0.992},
                   {"narre", 1.030}, {"der", 1.048}, {"rrre-", 1.058}}},
      {"yelpzip", {{"rrre", 0.983}, {"pmf", 1.101}, {"deepconn", 1.092},
                   {"narre", 1.073}, {"der", 1.087}, {"rrre-", 1.062}}},
      {"musics", {{"rrre", 1.054}, {"pmf", 1.194}, {"deepconn", 1.143},
                  {"narre", 1.156}, {"der", 1.170}, {"rrre-", 1.179}}},
      {"cds", {{"rrre", 0.977}, {"pmf", 1.081}, {"deepconn", 0.998},
               {"narre", 1.060}, {"der", 1.088}, {"rrre-", 1.098}}},
  };
  return *t;
}

/// Table IV — AUC of reliability scoring.
inline const std::map<std::string, std::map<std::string, double>>&
Table4Auc() {
  static const auto* t = new std::map<std::string, std::map<std::string, double>>{
      {"musics", {{"icwsm13", 0.734}, {"speagle+", 0.759}, {"rev2", 0.798},
                  {"rrre", 0.911}}},
      {"cds", {{"icwsm13", 0.722}, {"speagle+", 0.763}, {"rev2", 0.803},
               {"rrre", 0.924}}},
      {"yelpchi", {{"icwsm13", 0.713}, {"speagle+", 0.795}, {"rev2", 0.625},
                   {"rrre", 0.789}}},
      {"yelpnyc", {{"icwsm13", 0.654}, {"speagle+", 0.783}, {"rev2", 0.648},
                   {"rrre", 0.791}}},
      {"yelpzip", {{"icwsm13", 0.632}, {"speagle+", 0.804}, {"rev2", 0.634},
                   {"rrre", 0.806}}},
  };
  return *t;
}

/// Table IV — average precision of reliability scoring.
inline const std::map<std::string, std::map<std::string, double>>&
Table4Ap() {
  static const auto* t = new std::map<std::string, std::map<std::string, double>>{
      {"musics", {{"icwsm13", 0.857}, {"speagle+", 0.416}, {"rev2", 0.801},
                  {"rrre", 0.965}}},
      {"cds", {{"icwsm13", 0.869}, {"speagle+", 0.405}, {"rev2", 0.819},
               {"rrre", 0.977}}},
      {"yelpchi", {{"icwsm13", 0.856}, {"speagle+", 0.397}, {"rev2", 0.532},
                   {"rrre", 0.956}}},
      {"yelpnyc", {{"icwsm13", 0.843}, {"speagle+", 0.348}, {"rev2", 0.503},
                   {"rrre", 0.929}}},
      {"yelpzip", {{"icwsm13", 0.895}, {"speagle+", 0.425}, {"rev2", 0.612},
                   {"rrre", 0.934}}},
  };
  return *t;
}

/// Tables V-VI — NDCG@k (k -> model -> value).
inline const std::map<int64_t, std::map<std::string, double>>&
Table5NdcgYelpChi() {
  static const auto* t = new std::map<int64_t, std::map<std::string, double>>{
      {100, {{"icwsm13", 0.567}, {"speagle+", 0.975}, {"rev2", 0.432}, {"rrre", 0.989}}},
      {200, {{"icwsm13", 0.551}, {"speagle+", 0.962}, {"rev2", 0.425}, {"rrre", 0.986}}},
      {300, {{"icwsm13", 0.546}, {"speagle+", 0.951}, {"rev2", 0.419}, {"rrre", 0.986}}},
      {400, {{"icwsm13", 0.541}, {"speagle+", 0.938}, {"rev2", 0.406}, {"rrre", 0.982}}},
      {500, {{"icwsm13", 0.532}, {"speagle+", 0.924}, {"rev2", 0.395}, {"rrre", 0.979}}},
      {600, {{"icwsm13", 0.535}, {"speagle+", 0.905}, {"rev2", 0.386}, {"rrre", 0.972}}},
      {700, {{"icwsm13", 0.525}, {"speagle+", 0.889}, {"rev2", 0.389}, {"rrre", 0.967}}},
      {800, {{"icwsm13", 0.511}, {"speagle+", 0.865}, {"rev2", 0.376}, {"rrre", 0.959}}},
      {900, {{"icwsm13", 0.486}, {"speagle+", 0.849}, {"rev2", 0.374}, {"rrre", 0.951}}},
      {1000, {{"icwsm13", 0.459}, {"speagle+", 0.835}, {"rev2", 0.364}, {"rrre", 0.940}}},
  };
  return *t;
}

inline const std::map<int64_t, std::map<std::string, double>>&
Table6NdcgCds() {
  static const auto* t = new std::map<int64_t, std::map<std::string, double>>{
      {100, {{"icwsm13", 0.488}, {"speagle+", 0.921}, {"rev2", 0.554}, {"rrre", 0.998}}},
      {200, {{"icwsm13", 0.465}, {"speagle+", 0.906}, {"rev2", 0.545}, {"rrre", 0.991}}},
      {300, {{"icwsm13", 0.470}, {"speagle+", 0.885}, {"rev2", 0.542}, {"rrre", 0.985}}},
      {400, {{"icwsm13", 0.454}, {"speagle+", 0.884}, {"rev2", 0.536}, {"rrre", 0.974}}},
      {500, {{"icwsm13", 0.438}, {"speagle+", 0.875}, {"rev2", 0.532}, {"rrre", 0.971}}},
      {600, {{"icwsm13", 0.435}, {"speagle+", 0.860}, {"rev2", 0.524}, {"rrre", 0.966}}},
      {700, {{"icwsm13", 0.424}, {"speagle+", 0.858}, {"rev2", 0.515}, {"rrre", 0.956}}},
      {800, {{"icwsm13", 0.417}, {"speagle+", 0.855}, {"rev2", 0.516}, {"rrre", 0.950}}},
      {900, {{"icwsm13", 0.401}, {"speagle+", 0.824}, {"rev2", 0.494}, {"rrre", 0.936}}},
      {1000, {{"icwsm13", 0.392}, {"speagle+", 0.801}, {"rev2", 0.482}, {"rrre", 0.927}}},
  };
  return *t;
}

}  // namespace rrre::bench::paper

#endif  // RRRE_BENCH_PAPER_REFERENCE_H_
