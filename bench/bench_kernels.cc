// Kernel + batch-tape bench, results to BENCH_kernels.json:
//
//  1. blocked vs naive GEMM — the packed-panel kernel (tensor/kernels.cc)
//     against a plain triple loop compiled in this TU, single-threaded, at
//     the shapes the bench-scale model actually multiplies (LSTM gate
//     blocks, attention projections, the FM mix) plus a square reference.
//     The acceptance bar is >=3x at the model shapes.
//
//  2. eager vs tape vs replay training — mean s/epoch of an identical RRRE
//     training run with --tape off, with the tape rebuilding its backward
//     closures every step (--tape_replay=false, the PR 9 behavior), and with
//     the compiled replay cache on (steady-state steps skip the topo DFS and
//     allocate no closures). All three legs share data, seed and thread
//     pool; the run verifies every leg ends on bitwise identical parameters,
//     so the speedups are known to be free.
//
//   bench_kernels [--scale=0.15] [--epochs=3] [--num_threads=0]
//                 [--out=BENCH_kernels.json]

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "common/timer.h"
#include "core/trainer.h"
#include "tensor/kernels.h"
#include "tensor/tensor.h"

namespace {

using rrre::common::Rng;
using rrre::common::Timer;

/// The reference the blocked kernel replaced: a plain i-j-k triple loop,
/// compiled at the project default flags (no -mavx2/-mfma, -O2).
void NaiveGemm(int64_t m, int64_t n, int64_t k, const float* a, const float* b,
               float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) {
        acc += a[i * k + kk] * b[kk * n + j];
      }
      c[i * n + j] += acc;
    }
  }
}

struct GemmShape {
  const char* name;
  int64_t m, k, n;
};

struct GemmRow {
  GemmShape shape;
  double naive_gflops = 0.0;
  double blocked_gflops = 0.0;
  double speedup = 0.0;
};

GemmRow TimeGemm(const GemmShape& shape) {
  Rng rng(17);
  std::vector<float> a(static_cast<size_t>(shape.m * shape.k));
  std::vector<float> b(static_cast<size_t>(shape.k * shape.n));
  std::vector<float> c(static_cast<size_t>(shape.m * shape.n), 0.0f);
  for (auto& v : a) v = static_cast<float>(rng.Normal()) * 0.5f;
  for (auto& v : b) v = static_cast<float>(rng.Normal()) * 0.5f;

  const double flops =
      2.0 * static_cast<double>(shape.m) * static_cast<double>(shape.n) *
      static_cast<double>(shape.k);
  // Enough repetitions for ~0.2s of naive work per shape.
  const int64_t reps = std::max<int64_t>(8, static_cast<int64_t>(2e8 / flops));

  auto time_one = [&](auto&& fn) {
    fn();  // Warm the caches before the timed reps.
    Timer timer;
    for (int64_t r = 0; r < reps; ++r) fn();
    return timer.ElapsedSeconds() / static_cast<double>(reps);
  };

  const double naive_s = time_one([&] {
    NaiveGemm(shape.m, shape.n, shape.k, a.data(), b.data(), c.data());
  });
  const double blocked_s = time_one([&] {
    rrre::tensor::kernels::GemmNN(shape.m, shape.n, shape.k, a.data(), shape.k,
                                  b.data(), shape.n, c.data(), shape.n);
  });

  GemmRow row;
  row.shape = shape;
  row.naive_gflops = flops / naive_s / 1e9;
  row.blocked_gflops = flops / blocked_s / 1e9;
  row.speedup = naive_s / std::max(blocked_s, 1e-12);
  return row;
}

struct EpochRun {
  double seconds_per_epoch = 0.0;
  std::vector<float> params;
};

EpochRun RunTraining(const rrre::core::RrreConfig& config,
                     const rrre::data::ReviewDataset& train) {
  rrre::core::RrreTrainer trainer(config);
  EpochRun run;
  double total = 0.0;
  int64_t epochs = 0;
  trainer.Fit(train, [&](const rrre::core::RrreTrainer::EpochStats& s) {
    total += s.seconds;
    ++epochs;
  });
  run.seconds_per_epoch = total / static_cast<double>(std::max<int64_t>(
                                      1, epochs));
  for (const auto& p : trainer.model().Parameters()) {
    const std::vector<float> v = p.ToVector();
    run.params.insert(run.params.end(), v.begin(), v.end());
  }
  return run;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.15);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddString("out", "BENCH_kernels.json", "JSON results path");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  // -- Part 1: blocked vs naive GEMM, single thread --------------------------
  // The model shapes: the BiLSTM gate matmul over a batch of flattened
  // review slots, its hidden-hidden recurrence, the attention projection,
  // the FM factor mix, and a square point of reference. kernels::Gemm is
  // itself single-threaded (ops.cc shards rows above it), so these times are
  // pure kernel.
  const std::vector<GemmShape> shapes = {
      {"lstm_gates_384x16x64", 384, 16, 64},
      {"lstm_recur_384x16x64", 384, 16, 64},
      {"attention_384x32x16", 384, 32, 16},
      {"fm_mix_256x32x8", 256, 32, 8},
      {"square_128", 128, 128, 128},
  };
  std::printf("blocked vs naive GEMM (single thread):\n");
  std::vector<GemmRow> rows;
  double min_speedup = 1e300;
  for (const GemmShape& s : shapes) {
    rows.push_back(TimeGemm(s));
    const GemmRow& r = rows.back();
    min_speedup = std::min(min_speedup, r.speedup);
    std::printf("  %-24s naive %6.2f GF/s  blocked %6.2f GF/s  (%.2fx)\n",
                r.shape.name, r.naive_gflops, r.blocked_gflops, r.speedup);
  }

  // -- Part 2: eager vs tape vs replay training -------------------------------
  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);
  core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
  std::printf("\ntraining %lld epochs on %ld reviews (threads %d):\n",
              static_cast<long long>(config.epochs),
              static_cast<long>(bundle.train.size()),
              common::ThreadPool::GlobalSize());

  core::RrreConfig eager_config = config;
  eager_config.use_tape = false;
  const EpochRun eager = RunTraining(eager_config, bundle.train);
  std::printf("  eager: %7.3f s/epoch\n", eager.seconds_per_epoch);

  core::RrreConfig taped_config = config;
  taped_config.use_tape = true;
  taped_config.tape_replay = false;
  const EpochRun taped = RunTraining(taped_config, bundle.train);
  const double tape_speedup =
      eager.seconds_per_epoch / std::max(taped.seconds_per_epoch, 1e-12);
  std::printf("  tape  : %7.3f s/epoch  (%.2fx)\n", taped.seconds_per_epoch,
              tape_speedup);

  core::RrreConfig replay_config = config;
  replay_config.use_tape = true;
  replay_config.tape_replay = true;
  const EpochRun replay = RunTraining(replay_config, bundle.train);
  const double replay_speedup =
      eager.seconds_per_epoch / std::max(replay.seconds_per_epoch, 1e-12);
  std::printf("  replay: %7.3f s/epoch  (%.2fx)\n", replay.seconds_per_epoch,
              replay_speedup);

  // The speedup claims are only worth recording if neither tape mode changed
  // anything: all runs must end on the exact same bits.
  const bool bitwise = eager.params == taped.params;
  std::printf("  tape-vs-eager parameters bitwise identical: %s\n",
              bitwise ? "yes" : "NO — INVESTIGATE");
  const bool replay_bitwise = eager.params == replay.params;
  std::printf("  replay-vs-eager parameters bitwise identical: %s\n",
              replay_bitwise ? "yes" : "NO — INVESTIGATE");

  std::string gemm_json;
  for (const GemmRow& r : rows) {
    if (!gemm_json.empty()) gemm_json += ", ";
    gemm_json += common::StrFormat(
        "{\"shape\": \"%s\", \"m\": %lld, \"k\": %lld, \"n\": %lld, "
        "\"naive_gflops\": %.2f, \"blocked_gflops\": %.2f, "
        "\"speedup\": %.2f}",
        r.shape.name, static_cast<long long>(r.shape.m),
        static_cast<long long>(r.shape.k), static_cast<long long>(r.shape.n),
        r.naive_gflops, r.blocked_gflops, r.speedup);
  }
  const std::string json = common::StrFormat(
      "{\n"
      "  \"bench\": \"kernels\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"scale\": %.3f,\n"
      "  \"epochs\": %lld,\n"
      "  \"threads\": %d,\n"
      "  \"gemm_single_thread\": [%s],\n"
      "  \"gemm_min_speedup\": %.2f,\n"
      "  \"eager_s_per_epoch\": %.3f,\n"
      "  \"tape_s_per_epoch\": %.3f,\n"
      "  \"tape_speedup\": %.2f,\n"
      "  \"tape_bitwise_identical\": %s,\n"
      "  \"replay_s_per_epoch\": %.3f,\n"
      "  \"replay_speedup\": %.2f,\n"
      "  \"replay_bitwise_identical\": %s\n"
      "}\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long long>(config.epochs), common::ThreadPool::GlobalSize(),
      gemm_json.c_str(), min_speedup, eager.seconds_per_epoch,
      taped.seconds_per_epoch, tape_speedup, bitwise ? "true" : "false",
      replay.seconds_per_epoch, replay_speedup,
      replay_bitwise ? "true" : "false");
  RRRE_CHECK_OK(common::WriteFile(flags.GetString("out"), json));
  std::printf("\nresults written to %s\n", flags.GetString("out").c_str());
  return 0;
}
