// Regenerates Table III: bRMSE of rating prediction for RRRE, PMF,
// DeepCoNN, NARRE, DER and the RRRE^- ablation across the five datasets.
// Results are averaged over --seeds repetitions (the paper averages 5).
//
// Ablation flags: --ablate-attention swaps RRRE's fraud-attention for mean
// pooling; --random-sampling replaces time-based history sampling.

#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "bench/paper_reference.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("datasets", "", "comma-separated subset (default: all)");
  flags.AddString("models", "", "comma-separated subset (default: all)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  std::vector<std::string> datasets = bench::DatasetNames();
  if (!flags.GetString("datasets").empty()) {
    datasets = common::Split(flags.GetString("datasets"), ',');
  }
  std::vector<std::string> models = bench::RatingModelNames();
  if (!flags.GetString("models").empty()) {
    models = common::Split(flags.GetString("models"), ',');
  }

  std::printf(
      "Table III: bRMSE of rating prediction "
      "(scale=%.2f, epochs=%ld, seeds=%ld)\n",
      opts.scale, static_cast<long>(opts.epochs),
      static_cast<long>(opts.seeds));
  std::printf("Each cell: measured (paper)\n\n");
  bench::PrintRow("", models, 10, 18);

  for (const auto& dataset : datasets) {
    std::map<std::string, double> measured;
    for (int64_t rep = 0; rep < opts.seeds; ++rep) {
      const uint64_t seed = opts.base_seed + 1000 * static_cast<uint64_t>(rep);
      const auto bundle = bench::MakeDataset(dataset, opts.scale, seed);
      const auto targets = bench::TargetsOf(bundle.test);
      const auto labels = bench::LabelsOf(bundle.test);
      for (const auto& model_name : models) {
        common::Timer timer;
        auto model = bench::MakeRatingModel(model_name, opts, seed);
        model->Fit(bundle.train);
        const auto preds = model->PredictDataset(bundle.test);
        measured[model_name] += eval::BiasedRmse(preds, targets, labels);
        RRRE_LOG_DEBUG << dataset << "/" << model_name << " rep " << rep
                       << " took " << timer.ElapsedSeconds() << "s";
      }
    }
    std::vector<std::string> cells;
    const auto& paper_row = bench::paper::Table3Brmse();
    for (const auto& model_name : models) {
      const double value = measured[model_name] / static_cast<double>(opts.seeds);
      std::string cell = common::StrFormat("%.3f", value);
      auto ds_it = paper_row.find(dataset);
      if (ds_it != paper_row.end()) {
        auto m_it = ds_it->second.find(model_name);
        if (m_it != ds_it->second.end()) {
          cell += common::StrFormat(" (%.3f)", m_it->second);
        }
      }
      cells.push_back(cell);
    }
    bench::PrintRow(dataset, cells, 10, 18);
  }
  std::printf(
      "\nShape claims to check: RRRE lowest in every row; RRRE < RRRE^-"
      " (biased loss helps); PMF/DER high.\n");
  return 0;
}
