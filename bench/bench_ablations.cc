// Ablation bench for the design choices DESIGN.md calls out:
//   1. biased loss (Eq. 14) vs plain MSE (Eq. 13)          [RRRE vs RRRE^-]
//   2. fraud-attention vs mean pooling
//   3. time-based (latest) vs random history sampling
//   4. pretrained vs randomly initialized word vectors
// All variants share the dataset, seed and budget; reported on the test
// split: transductive reliability AUC and inductive bRMSE.

#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/trainer.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);
  const std::string dataset = flags.GetString("dataset");

  auto bundle = bench::MakeDataset(dataset, opts.scale, opts.base_seed);
  const auto targets = bench::TargetsOf(bundle.test);
  const auto labels = bench::LabelsOf(bundle.test);

  std::printf("Ablations on %s (scale=%.2f, epochs=%ld, seed=%ld)\n\n",
              dataset.c_str(), opts.scale, static_cast<long>(opts.epochs),
              static_cast<long>(opts.base_seed));
  bench::PrintRow("variant", {"AUC", "bRMSE"}, 26, 10);

  auto run = [&](const std::string& name, core::RrreConfig config) {
    core::RrreTrainer trainer(config);
    trainer.Fit(bundle.train);
    auto inductive = trainer.PredictDataset(bundle.test);
    auto transductive = trainer.PredictDatasetTransductive(bundle.test);
    bench::PrintRow(
        name,
        {common::StrFormat("%.3f",
                           eval::Auc(transductive.reliabilities, labels)),
         common::StrFormat("%.3f", eval::BiasedRmse(inductive.ratings,
                                                    targets, labels))},
        26, 10);
  };

  const core::RrreConfig base = bench::DefaultRrreConfig(opts, opts.base_seed);
  run("rrre (full)", base);

  core::RrreConfig unbiased = base;
  unbiased.biased_loss = false;
  run("- biased loss (RRRE^-)", unbiased);

  core::RrreConfig mean_pool = base;
  mean_pool.use_attention = false;
  run("- fraud-attention", mean_pool);

  core::RrreConfig random_hist = base;
  random_hist.sampling = data::SamplingStrategy::kRandom;
  run("- time-based sampling", random_hist);

  core::RrreConfig no_pretrain = base;
  no_pretrain.pretrain_word_vectors = false;
  run("- word-vector pretraining", no_pretrain);

  std::printf(
      "\nEach row removes one component from the full model; drops in AUC "
      "or rises in bRMSE quantify that component's contribution.\n");
  return 0;
}
