// Streaming retrain bench: runs the adversarial fraud arena through the
// warm-start retrain loop and reports, per attack wave, the detection lag —
// epochs until bRMSE and AUC recover to within a slack factor of their
// pre-attack baseline. Three legs, results to BENCH_streaming.json:
//
//  * detection: a full tier-0 -> 1 -> 2 escalation with a sliding ground-
//    truth eval after every retrain epoch — the per-wave lag table;
//
//  * live reload: generation 0 is published under the versioned layout,
//    a 2-shard rrre_served fleet plus rrre_routed router serve from the
//    `current` symlink, and the remaining generations are trained,
//    published and hot-reloaded through the router's rolling barrier while
//    a catalog client hammers it. The micro-batcher's RRRE_CHECK aborts the
//    process if any batch mixes two params_versions, so a passing leg *is*
//    the no-mixed-versions assertion; the bench additionally requires zero
//    client errors and zero quarantined backends after the final roll;
//
//  * resume identity: the stream is re-run with a kill after the
//    second-to-last generation and finished by a fresh recovered driver;
//    every artifact of the final generation must be byte-identical to the
//    uninterrupted run's (the exact-resume determinism contract).
//
//   bench_streaming [--scale=0.05] [--days_per_partition=125]
//                   [--epochs=3 --epochs_per_partition=2]
//                   [--catalog_requests=200] [--out=BENCH_streaming.json]

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/io.h"
#include "common/logging.h"
#include "common/socket.h"
#include "common/strings.h"
#include "common/threadpool.h"
#include "data/adversary.h"
#include "data/profiles.h"
#include "serve/router.h"
#include "serve/server.h"
#include "stream/driver.h"

namespace {

using namespace rrre;  // NOLINT(build/namespaces)

/// Drives bare-user catalog requests at the router until stopped; each
/// response is fully consumed (header + count pair lines) and any error or
/// torn response is counted.
struct CatalogClient {
  std::thread thread;
  std::atomic<bool> stop{false};
  std::atomic<int64_t> responses{0};
  std::atomic<int64_t> errors{0};

  void Run(uint16_t port, int64_t num_users, uint64_t seed) {
    thread = std::thread([this, port, num_users, seed] {
      common::Rng rng(seed);
      auto socket = common::Socket::Connect("127.0.0.1", port);
      if (!socket.ok()) {
        errors.fetch_add(1);
        return;
      }
      common::LineReader reader(&socket.value());
      while (!stop.load()) {
        const int64_t user = rng.UniformInt(num_users);
        if (!socket.value()
                 .SendAll(common::StrFormat("%lld\n",
                                            static_cast<long long>(user)))
                 .ok()) {
          errors.fetch_add(1);
          return;
        }
        auto header = reader.ReadLine();
        if (!header.ok() || !header.value().has_value()) {
          errors.fetch_add(1);
          return;
        }
        if (!common::StartsWith(*header.value(), "#catalog\t")) {
          errors.fetch_add(1);
          continue;
        }
        const std::vector<std::string> fields =
            common::Split(*header.value(), '\t');
        const int64_t count =
            fields.size() == 3 ? std::strtoll(fields[2].c_str(), nullptr, 10)
                               : 0;
        bool torn = false;
        for (int64_t i = 0; i < count; ++i) {
          auto line = reader.ReadLine();
          if (!line.ok() || !line.value().has_value()) {
            torn = true;
            break;
          }
        }
        if (torn) {
          errors.fetch_add(1);
          return;
        }
        responses.fetch_add(1);
      }
    });
  }
};

std::string WaveJson(const stream::WaveStat& wave) {
  return common::StrFormat(
      "{\"tier\": %d, \"start_partition\": %lld, \"start_epoch\": %lld, "
      "\"baseline_auc\": %.4f, \"baseline_brmse\": %.4f, "
      "\"target_auc\": %.4f, \"target_brmse\": %.4f, "
      "\"worst_auc\": %.4f, \"worst_brmse\": %.4f, "
      "\"lag_epochs\": %lld, \"epochs_observed\": %lld}",
      wave.tier, static_cast<long long>(wave.start_partition),
      static_cast<long long>(wave.start_epoch), wave.baseline_auc,
      wave.baseline_brmse, wave.target_auc, wave.target_brmse, wave.worst_auc,
      wave.worst_brmse, static_cast<long long>(wave.lag_epochs),
      static_cast<long long>(wave.epochs_observed));
}

/// Runs a whole stream to completion (no fleet). Returns the driver so the
/// caller can read tracker waves / final state.
std::unique_ptr<stream::StreamDriver> RunStream(
    const data::AdversaryModel& arena, const stream::StreamOptions& options,
    int64_t max_steps) {
  auto driver = std::make_unique<stream::StreamDriver>(&arena, options);
  RRRE_CHECK_OK(driver->Recover());
  int64_t steps = 0;
  while (!driver->Done() && (max_steps <= 0 || steps < max_steps)) {
    stream::GenerationResult result;
    RRRE_CHECK_OK(driver->Step(&result));
    ++steps;
  }
  return driver;
}

}  // namespace

int main(int argc, char** argv) {
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.05);
  flags.AddString("dataset", "yelpchi", "arena dataset profile");
  flags.AddInt("days_per_partition", 125, "arena partition width");
  flags.AddInt("epochs_per_partition", 2, "epochs per warm-start retrain");
  flags.AddInt("catalog_requests", 200,
               "minimum catalog responses the live leg must collect");
  flags.AddString("out", "BENCH_streaming.json", "JSON results path");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);
  common::ThreadPool::SetGlobalSize(static_cast<int>(opts.num_threads));

  auto profile =
      data::ProfileByName(flags.GetString("dataset"), opts.scale);
  RRRE_CHECK_OK(profile.status());

  // Escalation plan: the horizon split in three equal spans, tier 0 -> 1 ->
  // 2, each spanning days_per_partition-aligned waves.
  data::AdversaryConfig arena_config;
  arena_config.profile = profile.value();
  arena_config.days_per_partition = flags.GetInt("days_per_partition");
  arena_config.seed = opts.base_seed;
  const int64_t third = arena_config.profile.horizon_days / 3;
  arena_config.schedule = {{0, data::AdversaryTier::kStatic},
                           {third, data::AdversaryTier::kParaphrase},
                           {2 * third, data::AdversaryTier::kCamouflage}};
  const data::AdversaryModel arena(arena_config);

  core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
  stream::StreamOptions options;
  options.config = config;
  options.epochs_per_partition = flags.GetInt("epochs_per_partition");
  options.build_store = false;  // Detection leg never serves.
  options.publish_root = "/tmp/rrre_bench_streaming_detect";

  std::printf("leg 1/3: detection lag over %lld partitions "
              "(%lld reviews, tiers 0/1/2)...\n",
              static_cast<long long>(arena.num_partitions()),
              static_cast<long long>(arena_config.profile.num_reviews));
  std::system(("rm -rf " + options.publish_root).c_str());
  auto detect = RunStream(arena, options, /*max_steps=*/0);
  for (const stream::WaveStat& wave : detect->tracker().waves()) {
    std::printf("  wave tier=%d start_epoch=%lld lag=%lld worst_auc=%.4f "
                "baseline_auc=%.4f\n",
                wave.tier, static_cast<long long>(wave.start_epoch),
                static_cast<long long>(wave.lag_epochs), wave.worst_auc,
                wave.baseline_auc);
  }

  // ---- Leg 2: live fleet, rolling reloads under catalog load. -------------
  std::printf("leg 2/3: live 2-shard fleet behind rrre_routed, hot-reloading "
              "every generation...\n");
  const std::string live_root = "/tmp/rrre_bench_streaming_live";
  std::system(("rm -rf " + live_root).c_str());
  stream::StreamOptions live_options = options;
  live_options.publish_root = live_root;
  live_options.build_store = true;

  // Generation 0 must exist before the fleet can start.
  {
    stream::StreamDriver bootstrap(&arena, live_options);
    RRRE_CHECK_OK(bootstrap.Recover());
    RRRE_CHECK_OK(bootstrap.Step(nullptr));
  }

  serve::ServerOptions server_options;
  server_options.config = config;
  server_options.model_prefix = stream::CurrentPath(live_root, "ckpt");
  server_options.store_path =
      stream::CurrentPath(live_root, "ckpt.tower_store");
  server_options.port = 0;
  std::vector<std::unique_ptr<serve::Server>> fleet;
  for (int i = 0; i < 2; ++i) {
    auto server = serve::Server::Start(server_options);
    RRRE_CHECK_OK(server.status());
    fleet.push_back(std::move(server).ValueOrDie());
  }
  serve::RouterOptions router_options;
  for (const auto& server : fleet) {
    router_options.backends.push_back({"127.0.0.1", server->port()});
  }
  auto router = serve::Router::Start(router_options);
  RRRE_CHECK_OK(router.status());

  CatalogClient client;
  client.Run(router.value()->port(), arena.num_users(), opts.base_seed + 7);

  // A fresh driver recovers generation 0 from the manifest (exercising the
  // recovery path) and streams the rest with hot reloads through the router.
  live_options.reload_endpoints = {{"127.0.0.1", router.value()->port()}};
  int64_t generations_reloaded = 0;
  {
    stream::StreamDriver driver(&arena, live_options);
    RRRE_CHECK_OK(driver.Recover());
    RRRE_CHECK(driver.next_partition() == 1)
        << "live leg expected to recover generation 0";
    while (!driver.Done()) {
      stream::GenerationResult result;
      RRRE_CHECK_OK(driver.Step(&result));
      RRRE_CHECK(result.reloaded)
          << "fleet did not converge on generation " << result.generation;
      ++generations_reloaded;
    }
  }
  // Keep the client running until it has collected enough full catalog
  // responses *after* the last roll to make the leg meaningful.
  const int64_t min_responses = flags.GetInt("catalog_requests");
  while (client.responses.load() < min_responses &&
         client.errors.load() == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  client.stop.store(true);
  client.thread.join();

  const serve::RouterStats router_stats = router.value()->stats();
  router.value()->Shutdown();
  for (auto& server : fleet) server->Shutdown();
  const int64_t catalog_responses = client.responses.load();
  const int64_t catalog_errors = client.errors.load();
  std::printf("  %lld generations rolled, %lld catalog responses, "
              "%lld errors, %lld quarantined, %lld barriers\n",
              static_cast<long long>(generations_reloaded),
              static_cast<long long>(catalog_responses),
              static_cast<long long>(catalog_errors),
              static_cast<long long>(router_stats.quarantined),
              static_cast<long long>(router_stats.reload_barriers));
  RRRE_CHECK(catalog_errors == 0)
      << "catalog client saw errors across reloads";
  RRRE_CHECK(router_stats.quarantined == 0)
      << "reload left quarantined backends";

  // ---- Leg 3: kill-then-resume bitwise identity. --------------------------
  std::printf("leg 3/3: kill-then-resume identity...\n");
  const std::string resume_root = "/tmp/rrre_bench_streaming_resume";
  std::system(("rm -rf " + resume_root).c_str());
  stream::StreamOptions resume_options = options;
  resume_options.publish_root = resume_root;
  const int64_t last = arena.num_partitions() - 1;
  // "Kill" after publishing generation last-1 (driver destroyed), then a
  // fresh driver recovers from the manifest and finishes the stream.
  RunStream(arena, resume_options, /*max_steps=*/last);
  RunStream(arena, resume_options, /*max_steps=*/0);

  const std::string detect_dir =
      stream::GenerationDir(options.publish_root, last);
  const std::string resume_dir = stream::GenerationDir(resume_root, last);
  auto manifest = stream::ReadManifest(detect_dir);
  RRRE_CHECK_OK(manifest.status());
  bool resume_identical = true;
  for (const std::string& rel : manifest.value().files) {
    auto a = common::ReadFile(detect_dir + "/" + rel);
    auto b = common::ReadFile(resume_dir + "/" + rel);
    RRRE_CHECK_OK(a.status());
    RRRE_CHECK_OK(b.status());
    const bool same = a.value() == b.value();
    std::printf("  %s: %s\n", rel.c_str(), same ? "identical" : "DIVERGED");
    resume_identical = resume_identical && same;
  }
  RRRE_CHECK(resume_identical)
      << "kill-then-resume diverged from the uninterrupted stream";

  std::string waves_json;
  for (const stream::WaveStat& wave : detect->tracker().waves()) {
    if (!waves_json.empty()) waves_json += ",\n    ";
    waves_json += WaveJson(wave);
  }
  const std::string json = common::StrFormat(
      "{\n"
      "  \"bench\": \"streaming\",\n"
      "  \"dataset\": \"%s\",\n"
      "  \"scale\": %.3f,\n"
      "  \"partitions\": %lld,\n"
      "  \"days_per_partition\": %lld,\n"
      "  \"epochs_cold\": %lld,\n"
      "  \"epochs_per_partition\": %lld,\n"
      "  \"waves\": [\n    %s\n  ],\n"
      "  \"live\": {\"shards\": 2, \"generations_reloaded\": %lld, "
      "\"catalog_responses\": %lld, \"catalog_errors\": %lld, "
      "\"quarantined\": %lld, \"reload_barriers\": %lld},\n"
      "  \"resume_identical\": %s\n"
      "}\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long long>(arena.num_partitions()),
      static_cast<long long>(arena_config.days_per_partition),
      static_cast<long long>(options.config.epochs),
      static_cast<long long>(options.epochs_per_partition),
      waves_json.c_str(), static_cast<long long>(generations_reloaded),
      static_cast<long long>(catalog_responses),
      static_cast<long long>(catalog_errors),
      static_cast<long long>(router_stats.quarantined),
      static_cast<long long>(router_stats.reload_barriers),
      resume_identical ? "true" : "false");
  RRRE_CHECK_OK(common::WriteFile(flags.GetString("out"), json));
  std::printf("results written to %s\n", flags.GetString("out").c_str());
  return 0;
}
