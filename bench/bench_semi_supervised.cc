// Extension bench (paper Sec. V future work): semi-supervised self-training.
// Sweeps the labeled fraction of the training split and compares RRRE
// trained on the labeled subset alone against self-training that also
// consumes the unlabeled remainder via confident pseudo-labels.

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/semi_supervised.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.2);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddString("fractions", "0.2,0.4,0.6", "labeled fractions to sweep");
  flags.AddDouble("confidence", 0.9, "pseudo-label confidence threshold");
  flags.AddInt("rounds", 1, "self-training rounds");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle = bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                                   opts.base_seed);
  const auto labels = bench::LabelsOf(bundle.test);

  std::printf(
      "Semi-supervised extension on %s (scale=%.2f, epochs=%ld, "
      "confidence=%.2f, rounds=%ld)\n\n",
      flags.GetString("dataset").c_str(), opts.scale,
      static_cast<long>(opts.epochs), flags.GetDouble("confidence"),
      static_cast<long>(flags.GetInt("rounds")));
  bench::PrintRow("labeled%", {"supervised", "self-train", "pseudo+", "pseudo-"},
                  10, 12);

  for (const auto& frac_str :
       common::Split(flags.GetString("fractions"), ',')) {
    const double frac = std::atof(frac_str.c_str());
    RRRE_CHECK_GT(frac, 0.0);
    RRRE_CHECK_LT(frac, 1.0);
    common::Rng split_rng(opts.base_seed + 7);
    auto [labeled, unlabeled] = bundle.train.Split(frac, split_rng);

    // Supervised-only reference.
    core::RrreTrainer supervised(bench::DefaultRrreConfig(opts, opts.base_seed));
    supervised.Fit(labeled);
    const double sup_auc = eval::Auc(
        supervised.PredictDatasetTransductive(bundle.test).reliabilities,
        labels);

    // Self-training on labeled + unlabeled.
    core::SemiSupervisedConfig ss;
    ss.base = bench::DefaultRrreConfig(opts, opts.base_seed);
    ss.rounds = flags.GetInt("rounds");
    ss.confidence = flags.GetDouble("confidence");
    core::SemiSupervisedRrre self_training(ss);
    self_training.Fit(labeled, unlabeled);
    const double ss_auc = eval::Auc(
        self_training.trainer().PredictDatasetTransductive(bundle.test)
            .reliabilities,
        labels);
    const auto& last = self_training.round_stats().back();

    bench::PrintRow(common::StrFormat("%.0f%%", 100.0 * frac),
                    {common::StrFormat("%.3f", sup_auc),
                     common::StrFormat("%.3f", ss_auc),
                     std::to_string(last.pseudo_benign),
                     std::to_string(last.pseudo_fake)},
                    10, 12);
  }
  std::printf(
      "\nColumns: test reliability AUC of the supervised-only model vs the "
      "self-trained one,\nand the pseudo-labels adopted in the final round. "
      "Self-training should help most at low labeled fractions.\n");
  return 0;
}
