// Regenerates Fig. 3: influence of the user input size s_u (history slots
// fed to UserNet) with s_i fixed. The paper sweeps s_u in {1,3,...,13} and
// reports metric curves plus the (roughly flat) time cost.

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/trainer.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddString("sus", "1,3,5,7,9,11,13", "user input sizes to sweep");
  flags.AddInt("si", 12, "fixed item input size");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);
  const std::string dataset = flags.GetString("dataset");

  auto bundle = bench::MakeDataset(dataset, opts.scale, opts.base_seed);
  const auto targets = bench::TargetsOf(bundle.test);
  const auto labels = bench::LabelsOf(bundle.test);

  std::printf(
      "Fig. 3: influence of the user input size s_u "
      "(%s, scale=%.2f, epochs=%ld, s_i=%ld)\n\n",
      dataset.c_str(), opts.scale, static_cast<long>(opts.epochs),
      static_cast<long>(flags.GetInt("si")));
  bench::PrintRow("s_u", {"bRMSE", "AUC", "train_s"}, 6, 10);

  for (const auto& su_str : common::Split(flags.GetString("sus"), ',')) {
    const int64_t su = std::atoll(su_str.c_str());
    RRRE_CHECK_GT(su, 0);
    core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
    config.s_u = su;
    config.s_i = flags.GetInt("si");
    core::RrreTrainer trainer(config);
    common::Timer timer;
    trainer.Fit(bundle.train);
    const double train_seconds = timer.ElapsedSeconds();
    auto preds = trainer.PredictDataset(bundle.test);
    bench::PrintRow(
        std::to_string(su),
        {common::StrFormat("%.3f",
                           eval::BiasedRmse(preds.ratings, targets, labels)),
         common::StrFormat("%.3f", eval::Auc(preds.reliabilities, labels)),
         common::StrFormat("%.1f", train_seconds)},
        6, 10);
  }
  std::printf(
      "\nShape claims to check: metrics improve slowly with s_u; time cost "
      "changes little (user histories are short, extra slots are padding).\n");
  return 0;
}
