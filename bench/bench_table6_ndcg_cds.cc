// Regenerates Table VI: NDCG@k of the compared reliability methods on the
// CDs profile.

#include "bench/ndcg_table.h"
#include "bench/paper_reference.h"

int main(int argc, char** argv) {
  return rrre::bench::RunNdcgTable(
      "Table VI", "cds", rrre::bench::paper::Table6NdcgCds(), argc, argv);
}
