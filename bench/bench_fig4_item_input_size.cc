// Regenerates Fig. 4: influence of the item input size s_i with s_u fixed.
// The paper sweeps s_i in {12,32,...,132} and reports metric curves plus a
// time cost that grows linearly in s_i.

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "common/timer.h"
#include "core/trainer.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags, /*default_scale=*/0.12);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddString("sis", "12,32,52,72,92,112,132", "item input sizes");
  flags.AddInt("su", 11, "fixed user input size");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  bench::BenchOptions opts = bench::ReadBenchOptions(flags);
  const std::string dataset = flags.GetString("dataset");

  auto bundle = bench::MakeDataset(dataset, opts.scale, opts.base_seed);
  const auto targets = bench::TargetsOf(bundle.test);
  const auto labels = bench::LabelsOf(bundle.test);

  std::printf(
      "Fig. 4: influence of the item input size s_i "
      "(%s, scale=%.2f, epochs=%ld, s_u=%ld)\n\n",
      dataset.c_str(), opts.scale, static_cast<long>(opts.epochs),
      static_cast<long>(flags.GetInt("su")));
  bench::PrintRow("s_i", {"bRMSE", "AUC", "train_s"}, 6, 10);

  for (const auto& si_str : common::Split(flags.GetString("sis"), ',')) {
    const int64_t si = std::atoll(si_str.c_str());
    RRRE_CHECK_GT(si, 0);
    core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
    config.s_u = flags.GetInt("su");
    config.s_i = si;
    core::RrreTrainer trainer(config);
    common::Timer timer;
    trainer.Fit(bundle.train);
    const double train_seconds = timer.ElapsedSeconds();
    auto preds = trainer.PredictDataset(bundle.test);
    bench::PrintRow(
        std::to_string(si),
        {common::StrFormat("%.3f",
                           eval::BiasedRmse(preds.ratings, targets, labels)),
         common::StrFormat("%.3f", eval::Auc(preds.reliabilities, labels)),
         common::StrFormat("%.1f", train_seconds)},
        6, 10);
  }
  std::printf(
      "\nShape claims to check: time cost grows roughly linearly in s_i; "
      "metrics first improve then degrade (over-fitting + heavy padding).\n");
  return 0;
}
