// Regenerates the case study of Tables VII-VIII: recommendation with a
// reliable explanation. Trains RRRE, picks a test user with several
// held-out reviews, shows predicted rating/reliability against ground truth
// (Table VII), then explains the recommended item by ranking its reviews by
// rating and filtering low-reliability ones (Table VIII).

#include <algorithm>
#include <cstdio>
#include <string>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "core/recommender.h"
#include "core/trainer.h"

namespace {

std::string Snippet(const std::string& text, size_t max_chars = 56) {
  if (text.size() <= max_chars) return text;
  return text.substr(0, max_chars - 3) + "...";
}

}  // namespace

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  auto bundle =
      bench::MakeDataset(flags.GetString("dataset"), opts.scale,
                         opts.base_seed);
  core::RrreTrainer trainer(bench::DefaultRrreConfig(opts, opts.base_seed));
  trainer.Fit(bundle.train);

  // A test user with at least 3 held-out reviews makes a Table VII-like
  // candidate list with known ground truth.
  std::vector<std::vector<int64_t>> test_by_user(
      static_cast<size_t>(bundle.test.num_users()));
  for (int64_t i = 0; i < bundle.test.size(); ++i) {
    test_by_user[static_cast<size_t>(bundle.test.review(i).user)].push_back(i);
  }
  int64_t user = -1;
  for (int64_t u = 0; u < bundle.test.num_users(); ++u) {
    if (test_by_user[static_cast<size_t>(u)].size() >= 3) {
      user = u;
      break;
    }
  }
  RRRE_CHECK_GE(user, 0) << "no test user with >=3 reviews; raise --scale";

  std::printf("Case study on %s (user %ld)\n\n",
              flags.GetString("dataset").c_str(), static_cast<long>(user));
  std::printf(
      "Table VII: recommendation candidates — predicted (real) rating and "
      "reliability\n\n");
  std::printf("%-6s %-8s %-18s %-18s  %s\n", "item", "label", "pred r (real)",
              "pred l (real)", "review snippet");

  struct Candidate {
    int64_t item;
    double rating;
    double reliability;
  };
  std::vector<Candidate> candidates;
  const auto& test_reviews = test_by_user[static_cast<size_t>(user)];
  for (size_t j = 0; j < test_reviews.size() && j < 3; ++j) {
    const data::Review& r = bundle.test.review(test_reviews[j]);
    auto pred = trainer.PredictPairs({{r.user, r.item}});
    std::printf("%-6ld %-8s %6.3f (%.0f)%6s %6.3f (%d)%8s  %s\n",
                static_cast<long>(r.item), r.is_benign() ? "benign" : "fake",
                pred.ratings[0], r.rating, "", pred.reliabilities[0],
                r.is_benign() ? 1 : 0, "", Snippet(r.text).c_str());
    candidates.push_back({r.item, pred.ratings[0], pred.reliabilities[0]});
  }

  // Recommend the candidate with the highest reliability (Sec. III-B: top
  // ratings re-ranked by reliability).
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.rating > b.rating;
                   });
  std::stable_sort(candidates.begin(), candidates.end(),
                   [](const Candidate& a, const Candidate& b) {
                     return a.reliability > b.reliability;
                   });
  const int64_t recommended = candidates.front().item;
  std::printf(
      "\nRecommended item: %ld (highest reliability %.3f among top-rated "
      "candidates)\n",
      static_cast<long>(recommended), candidates.front().reliability);

  // Table VIII: reviews of the recommended item ranked by predicted rating;
  // the explanation filter drops low-reliability ones.
  core::ReliableRecommender recommender(&trainer);
  const auto pool = recommender.Explain(recommended, /*top_k=*/4,
                                        /*candidate_pool=*/4);
  std::printf(
      "\nTable VIII: explanation candidates for item %ld — ranked by rating, "
      "filtered by reliability\n\n",
      static_cast<long>(recommended));
  std::printf("%-6s %-10s %-10s %-8s  %s\n", "writer", "pred r", "pred l",
              "label", "review snippet");
  for (const auto& e : pool) {
    const data::Review& r = bundle.train.review(e.review_index);
    std::printf("%-6ld %-10.3f %-10.3f %-8s  %s\n",
                static_cast<long>(e.user), e.rating, e.reliability,
                r.is_benign() ? "benign" : "fake", Snippet(e.text).c_str());
  }
  std::printf(
      "\nShape claims to check: the selected explanations are benign; fake "
      "praise ranks high on rating but is filtered by low reliability.\n");
  return 0;
}
