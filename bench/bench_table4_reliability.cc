// Regenerates Table IV: AUC and Average Precision of reliability scoring
// for ICWSM13, SpEagle+, REV2 and RRRE across the five datasets.

#include <cstdio>
#include <map>

#include "bench/harness.h"
#include "bench/paper_reference.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("datasets", "", "comma-separated subset (default: all)");
  flags.AddString("models", "", "comma-separated subset (default: all)");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);

  std::vector<std::string> datasets = bench::DatasetNames();
  if (!flags.GetString("datasets").empty()) {
    datasets = common::Split(flags.GetString("datasets"), ',');
  }
  std::vector<std::string> models = bench::ReliabilityModelNames();
  if (!flags.GetString("models").empty()) {
    models = common::Split(flags.GetString("models"), ',');
  }

  // measured[metric][model][dataset]
  std::map<std::string, std::map<std::string, std::map<std::string, double>>>
      measured;
  for (const auto& dataset : datasets) {
    for (int64_t rep = 0; rep < opts.seeds; ++rep) {
      const uint64_t seed = opts.base_seed + 1000 * static_cast<uint64_t>(rep);
      const auto bundle = bench::MakeDataset(dataset, opts.scale, seed);
      const auto labels = bench::LabelsOf(bundle.test);
      for (const auto& model_name : models) {
        auto model = bench::MakeReliabilityModel(model_name, opts, seed);
        model->Fit(bundle.train);
        const auto scores = model->ScoreReviews(bundle.test);
        measured["auc"][model_name][dataset] +=
            eval::Auc(scores, labels) / static_cast<double>(opts.seeds);
        measured["ap"][model_name][dataset] +=
            eval::AveragePrecision(scores, labels) /
            static_cast<double>(opts.seeds);
      }
    }
  }

  auto print_block = [&](const std::string& metric, const std::string& title,
                         const std::map<std::string,
                                        std::map<std::string, double>>& paper) {
    std::printf("\nTable IV (%s) — measured (paper)\n\n", title.c_str());
    bench::PrintRow("", datasets, 10, 16);
    for (const auto& model_name : models) {
      std::vector<std::string> cells;
      for (const auto& dataset : datasets) {
        std::string cell = common::StrFormat(
            "%.3f", measured[metric][model_name][dataset]);
        auto ds_it = paper.find(dataset);
        if (ds_it != paper.end()) {
          auto m_it = ds_it->second.find(model_name);
          if (m_it != ds_it->second.end()) {
            cell += common::StrFormat(" (%.3f)", m_it->second);
          }
        }
        cells.push_back(cell);
      }
      bench::PrintRow(model_name, cells, 10, 16);
    }
  };

  std::printf("Table IV: reliability scoring (scale=%.2f, epochs=%ld, seeds=%ld)\n",
              opts.scale, static_cast<long>(opts.epochs),
              static_cast<long>(opts.seeds));
  print_block("auc", "AUC", bench::paper::Table4Auc());
  print_block("ap", "Average Precision", bench::paper::Table4Ap());
  std::printf(
      "\nShape claims to check: RRRE best or near-best AUC everywhere and "
      "best AP everywhere;\nICWSM13 strong AP (benign majority) but weaker "
      "AUC; REV2 suffers on sparse Yelp-style graphs.\n");
  return 0;
}
