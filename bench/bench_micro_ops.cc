// Google-benchmark microbenchmarks of the tensor/NN substrate: the kernels
// that dominate RRRE training time (matmul, BiLSTM steps, attention blocks,
// TextCNN) plus the non-neural detectors' inner loops (loopy BP, REV2).
//
// Run with RRRE_PROF=1 to additionally dump the span histograms the kernels
// record (span_matmul_us, span_conv1d_maxpool_us, span_attention_forward_us,
// ...) so wall time can be attributed to individual ops across a whole run.

#include <benchmark/benchmark.h>

#include <cstdio>

#include "baselines/rev2.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "data/synthetic.h"
#include "graph/mrf.h"
#include "nn/attention.h"
#include "nn/fm.h"
#include "nn/lstm.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "tensor/kernels.h"
#include "tensor/ops.h"
#include "tensor/tape.h"

namespace {

using rrre::common::Rng;
using rrre::tensor::Tensor;

void BM_MatMul(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng);
  Tensor b = Tensor::Randn({n, n}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrre::tensor::MatMul(a, b).data());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_MatMul)->Arg(32)->Arg(64)->Arg(128);

// Naive-vs-blocked reference pair at matched shapes, single-threaded so the
// times are pure kernel arithmetic (the kernels are single-threaded; ops.cc
// shards rows above them). Comparing BM_GemmNaiveST/n against
// BM_GemmBlockedST/n gives the blocked kernel's speedup; the acceptance bar
// at the model-shaped args (m=384, k=16, n=64 — an LSTM gate block) is >=3x.
void NaiveGemmRef(int64_t m, int64_t n, int64_t k, const float* a,
                  const float* b, float* c) {
  for (int64_t i = 0; i < m; ++i) {
    for (int64_t j = 0; j < n; ++j) {
      float acc = 0.0f;
      for (int64_t kk = 0; kk < k; ++kk) acc += a[i * k + kk] * b[kk * n + j];
      c[i * n + j] += acc;
    }
  }
}

struct GemmFixture {
  std::vector<float> a, b, c;
  int64_t m, n, k;
  explicit GemmFixture(benchmark::State& state) {
    m = state.range(0);
    k = state.range(1);
    n = state.range(2);
    Rng rng(1);
    a.resize(static_cast<size_t>(m * k));
    b.resize(static_cast<size_t>(k * n));
    c.assign(static_cast<size_t>(m * n), 0.0f);
    for (auto& v : a) v = static_cast<float>(rng.Normal());
    for (auto& v : b) v = static_cast<float>(rng.Normal());
  }
};

void BM_GemmNaiveST(benchmark::State& state) {
  GemmFixture f(state);
  for (auto _ : state) {
    NaiveGemmRef(f.m, f.n, f.k, f.a.data(), f.b.data(), f.c.data());
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m * f.n * f.k);
}
BENCHMARK(BM_GemmNaiveST)
    ->Args({384, 16, 64})
    ->Args({384, 32, 16})
    ->Args({128, 128, 128});

void BM_GemmBlockedST(benchmark::State& state) {
  GemmFixture f(state);
  for (auto _ : state) {
    rrre::tensor::kernels::GemmNN(f.m, f.n, f.k, f.a.data(), f.k, f.b.data(),
                                  f.n, f.c.data(), f.n);
    benchmark::DoNotOptimize(f.c.data());
  }
  state.SetItemsProcessed(state.iterations() * f.m * f.n * f.k);
}
BENCHMARK(BM_GemmBlockedST)
    ->Args({384, 16, 64})
    ->Args({384, 32, 16})
    ->Args({128, 128, 128});

void BM_MatMulBackward(benchmark::State& state) {
  const int64_t n = state.range(0);
  Rng rng(1);
  Tensor a = Tensor::Randn({n, n}, rng, 1.0f, true);
  Tensor b = Tensor::Randn({n, n}, rng, 1.0f, true);
  for (auto _ : state) {
    Tensor loss = rrre::tensor::Sum(rrre::tensor::MatMul(a, b));
    loss.Backward();
    benchmark::DoNotOptimize(a.grad().data());
  }
}
BENCHMARK(BM_MatMulBackward)->Arg(32)->Arg(64);

void BM_Softmax(benchmark::State& state) {
  Rng rng(2);
  Tensor a = Tensor::Randn({256, 64}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rrre::tensor::Softmax(a).data());
  }
}
BENCHMARK(BM_Softmax);

void BM_LstmCellStep(benchmark::State& state) {
  const int64_t batch = state.range(0);
  Rng rng(3);
  rrre::nn::LstmCell cell(16, 16, rng);
  Tensor x = Tensor::Randn({batch, 16}, rng);
  auto st = cell.InitialState(batch);
  for (auto _ : state) {
    auto next = cell.Step(x, st);
    benchmark::DoNotOptimize(next.h.data());
  }
}
BENCHMARK(BM_LstmCellStep)->Arg(32)->Arg(384);

void BM_LstmCellStepFused(benchmark::State& state) {
  // The same step on the fused AddNBiasAct + LstmPointwise graph (what
  // training runs with --tape): two pointwise nodes instead of the ~15-node
  // eager gate chain, bitwise identical output.
  const int64_t batch = state.range(0);
  Rng rng(3);
  rrre::nn::LstmCell cell(16, 16, rng);
  Tensor x = Tensor::Randn({batch, 16}, rng);
  auto st = cell.InitialState(batch);
  rrre::tensor::SetFusionEnabled(true);
  for (auto _ : state) {
    auto next = cell.Step(x, st);
    benchmark::DoNotOptimize(next.h.data());
  }
  rrre::tensor::SetFusionEnabled(false);
}
BENCHMARK(BM_LstmCellStepFused)->Arg(32)->Arg(384);

void BM_BiLstmEncodeReview(benchmark::State& state) {
  // One RRRE batch worth of reviews: 384 slots x 16 tokens x 16 dims.
  Rng rng(4);
  rrre::nn::BiLstmEncoder enc(16, 16, rng);
  std::vector<Tensor> steps;
  for (int t = 0; t < 16; ++t) steps.push_back(Tensor::Randn({384, 16}, rng));
  for (auto _ : state) {
    benchmark::DoNotOptimize(enc.Encode(steps).data());
  }
}
BENCHMARK(BM_BiLstmEncodeReview);

void BM_FraudAttention(benchmark::State& state) {
  Rng rng(5);
  rrre::nn::FraudAttention att(32, 16, 16, 16, rng);
  Tensor rev = Tensor::Randn({384, 32}, rng);
  Tensor eu = Tensor::Randn({384, 16}, rng);
  Tensor ei = Tensor::Randn({384, 16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(att.Forward(rev, eu, ei, 12).data());
  }
}
BENCHMARK(BM_FraudAttention);

void BM_Conv1dMaxPool(benchmark::State& state) {
  Rng rng(6);
  Tensor values = Tensor::Randn({384 * 16, 16}, rng);
  Tensor kernel = Tensor::Randn({3 * 16, 16}, rng);
  Tensor bias = Tensor::Randn({16}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        rrre::tensor::Conv1dMaxPool(values, 16, kernel, bias).data());
  }
}
BENCHMARK(BM_Conv1dMaxPool);

void BM_FactorizationMachine(benchmark::State& state) {
  Rng rng(7);
  rrre::nn::FactorizationMachine fm(32, 8, rng);
  Tensor x = Tensor::Randn({256, 32}, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fm.Forward(x).data());
  }
}
BENCHMARK(BM_FactorizationMachine);

void BM_LoopyBpIteration(benchmark::State& state) {
  // A SpEagle-shaped graph: 2000 reviews on 200 users x 100 items.
  Rng rng(8);
  rrre::graph::PairwiseMrf mrf;
  std::vector<int64_t> users;
  std::vector<int64_t> items;
  for (int i = 0; i < 200; ++i) users.push_back(mrf.AddNode({0.5, 0.5}));
  for (int i = 0; i < 100; ++i) items.push_back(mrf.AddNode({0.5, 0.5}));
  const rrre::graph::PairwiseMrf::Potential same = {{{0.9, 0.1}, {0.1, 0.9}}};
  for (int r = 0; r < 2000; ++r) {
    const int64_t rev = mrf.AddNode({0.6, 0.4});
    mrf.AddEdge(users[rng.UniformInt(uint64_t{200})], rev, same);
    mrf.AddEdge(rev, items[rng.UniformInt(uint64_t{100})], same);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(mrf.RunLoopyBp(5, 0.3, 0.0).beliefs.data());
  }
}
BENCHMARK(BM_LoopyBpIteration);

void BM_Rev2Solve(benchmark::State& state) {
  Rng rng(9);
  auto ds = rrre::data::GenerateSyntheticDataset(
      rrre::data::YelpChiProfile(0.2), rng);
  rrre::baselines::Rev2 rev2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(rev2.Solve(ds).reliability.data());
  }
}
BENCHMARK(BM_Rev2Solve);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  if (rrre::obs::ProfilingEnabled()) {
    std::printf("\n# RRRE_PROF kernel span attribution\n%s",
                rrre::obs::MetricsRegistry::Global().RenderText().c_str());
  }
  return 0;
}
