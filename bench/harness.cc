#include "bench/harness.h"

#include <cstdio>

#include "baselines/deepconn.h"
#include "baselines/der.h"
#include "baselines/icwsm13.h"
#include "baselines/narre.h"
#include "baselines/pmf.h"
#include "baselines/rev2.h"
#include "baselines/rrre_adapter.h"
#include "baselines/speagle.h"
#include "common/logging.h"
#include "common/rng.h"
#include "common/threadpool.h"
#include "data/profiles.h"
#include "data/synthetic.h"

namespace rrre::bench {

using common::Rng;

DatasetBundle MakeDataset(const std::string& profile, double scale,
                          uint64_t seed) {
  auto profile_or = data::ProfileByName(profile, scale);
  RRRE_CHECK_OK(profile_or.status());
  Rng rng(seed ^ 0x5eedf00dULL);
  data::ReviewDataset full =
      data::GenerateSyntheticDataset(profile_or.value(), rng);
  auto [train, test] = full.Split(0.7, rng);
  return DatasetBundle{profile, std::move(full), std::move(train),
                       std::move(test)};
}

std::vector<double> TargetsOf(const data::ReviewDataset& ds) {
  std::vector<double> out;
  out.reserve(static_cast<size_t>(ds.size()));
  for (const auto& r : ds.reviews()) out.push_back(r.rating);
  return out;
}

std::vector<int> LabelsOf(const data::ReviewDataset& ds) {
  std::vector<int> out;
  out.reserve(static_cast<size_t>(ds.size()));
  for (const auto& r : ds.reviews()) out.push_back(r.is_benign() ? 1 : 0);
  return out;
}

void RegisterBenchFlags(common::FlagParser& flags, double default_scale) {
  flags.AddDouble("scale", default_scale, "dataset size multiplier");
  flags.AddInt("epochs", 8, "neural training epochs");
  flags.AddInt("seeds", 1, "repetitions averaged (paper uses 5)");
  flags.AddInt("seed", 42, "base random seed");
  flags.AddBool("ablate-attention", false,
                "replace fraud-attention with mean pooling");
  flags.AddBool("random-sampling", false,
                "random instead of time-based history sampling");
  flags.AddDouble("lambda", 0.5, "RRRE loss mixing weight (Eq. 15)");
  flags.AddInt("num_threads", 0,
               "thread pool size (0 = hardware concurrency, 1 = serial)");
  flags.AddInt("shard_size", 8,
               "examples per data-parallel shard (0 = whole-batch serial)");
  flags.AddBool("tape", true,
                "train on the compiled batch tape (fused kernels + buffer "
                "arena); --tape=false runs the eager reference path");
  flags.AddBool("tape_replay", true,
                "replay the cached backward schedule per step fingerprint; "
                "--tape_replay=false rebuilds closures every step");
}

BenchOptions ReadBenchOptions(const common::FlagParser& flags) {
  BenchOptions opts;
  opts.scale = flags.GetDouble("scale");
  opts.epochs = flags.GetInt("epochs");
  opts.seeds = flags.GetInt("seeds");
  opts.base_seed = static_cast<uint64_t>(flags.GetInt("seed"));
  opts.ablate_attention = flags.GetBool("ablate-attention");
  opts.random_sampling = flags.GetBool("random-sampling");
  opts.lambda = flags.GetDouble("lambda");
  opts.num_threads = flags.GetInt("num_threads");
  opts.shard_size = flags.GetInt("shard_size");
  opts.use_tape = flags.GetBool("tape");
  opts.tape_replay = flags.GetBool("tape_replay");
  // Apply immediately so every subsequent kernel/trainer call uses it; the
  // pool size is reported so speedup numbers are attributable.
  common::ThreadPool::SetGlobalSize(static_cast<int>(opts.num_threads));
  std::printf("threads: %d (requested %lld), shard_size: %lld\n",
              common::ThreadPool::GlobalSize(),
              static_cast<long long>(opts.num_threads),
              static_cast<long long>(opts.shard_size));
  return opts;
}

core::RrreConfig DefaultRrreConfig(const BenchOptions& opts, uint64_t seed) {
  core::RrreConfig c;
  c.word_dim = 16;
  c.rev_dim = 32;
  c.id_dim = 16;
  c.attention_dim = 16;
  c.fm_factors = 8;
  c.max_tokens = 16;
  c.s_u = 5;
  c.s_i = 7;
  c.epochs = opts.epochs;
  c.seed = seed;
  c.lambda = opts.lambda;
  c.use_attention = !opts.ablate_attention;
  c.sampling = opts.random_sampling ? data::SamplingStrategy::kRandom
                                    : data::SamplingStrategy::kLatest;
  c.shard_size = opts.shard_size;
  c.use_tape = opts.use_tape;
  c.tape_replay = opts.tape_replay;
  return c;
}

std::unique_ptr<baselines::RatingPredictor> MakeRatingModel(
    const std::string& name, const BenchOptions& opts, uint64_t seed) {
  if (name == "rrre" || name == "rrre-") {
    core::RrreConfig c = DefaultRrreConfig(opts, seed);
    c.biased_loss = (name == "rrre");
    return std::make_unique<baselines::RrreAdapter>(c);
  }
  if (name == "pmf") {
    baselines::Pmf::Config c;
    c.seed = seed;
    return std::make_unique<baselines::Pmf>(c);
  }
  if (name == "deepconn") {
    baselines::DeepCoNN::Config c;
    c.common.epochs = opts.epochs;
    c.common.seed = seed;
    c.common.shard_size = opts.shard_size;
    c.common.use_tape = opts.use_tape;
    c.common.tape_replay = opts.tape_replay;
    return std::make_unique<baselines::DeepCoNN>(c);
  }
  if (name == "narre") {
    baselines::Narre::Config c;
    c.common.epochs = opts.epochs;
    c.common.seed = seed;
    c.common.shard_size = opts.shard_size;
    c.common.use_tape = opts.use_tape;
    c.common.tape_replay = opts.tape_replay;
    return std::make_unique<baselines::Narre>(c);
  }
  if (name == "der") {
    baselines::Der::Config c;
    c.common.epochs = opts.epochs;
    c.common.seed = seed;
    c.common.shard_size = opts.shard_size;
    c.common.use_tape = opts.use_tape;
    c.common.tape_replay = opts.tape_replay;
    return std::make_unique<baselines::Der>(c);
  }
  RRRE_LOG_FATAL << "unknown rating model: " << name;
  return nullptr;
}

std::unique_ptr<baselines::ReliabilityPredictor> MakeReliabilityModel(
    const std::string& name, const BenchOptions& opts, uint64_t seed) {
  if (name == "rrre") {
    return std::make_unique<baselines::RrreAdapter>(
        DefaultRrreConfig(opts, seed));
  }
  if (name == "icwsm13") {
    baselines::Icwsm13::Config c;
    c.logreg.seed = seed;
    return std::make_unique<baselines::Icwsm13>(c);
  }
  if (name == "speagle+") {
    baselines::SpEaglePlus::Config c;
    c.prior_model.seed = seed;
    return std::make_unique<baselines::SpEaglePlus>(c);
  }
  if (name == "rev2") {
    return std::make_unique<baselines::Rev2>();
  }
  RRRE_LOG_FATAL << "unknown reliability model: " << name;
  return nullptr;
}

const std::vector<std::string>& RatingModelNames() {
  static const auto* names = new std::vector<std::string>{
      "rrre", "pmf", "deepconn", "narre", "der", "rrre-"};
  return *names;
}

const std::vector<std::string>& ReliabilityModelNames() {
  static const auto* names =
      new std::vector<std::string>{"icwsm13", "speagle+", "rev2", "rrre"};
  return *names;
}

const std::vector<std::string>& DatasetNames() {
  static const auto* names = new std::vector<std::string>{
      "yelpchi", "yelpnyc", "yelpzip", "musics", "cds"};
  return *names;
}

void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              int label_width, int cell_width) {
  std::printf("%-*s", label_width, label.c_str());
  for (const auto& cell : cells) {
    std::printf("%*s", cell_width, cell.c_str());
  }
  std::printf("\n");
  std::fflush(stdout);
}

}  // namespace rrre::bench
