// Regenerates Fig. 2: influence of the review-embedding size k on the
// training process, k in {8, 16, 32, 64, 128}. Two series per k, evaluated
// on the test split after every epoch: bRMSE (rating subfigure) and AUC
// (reliability subfigure).
//
// --lambda-sweep additionally reports the final metrics for a sweep of the
// loss-mixing weight lambda (the ablation DESIGN.md calls out).

#include <cstdio>

#include "bench/harness.h"
#include "common/flags.h"
#include "common/logging.h"
#include "common/strings.h"
#include "core/trainer.h"
#include "eval/metrics.h"

int main(int argc, char** argv) {
  using namespace rrre;  // NOLINT(build/namespaces)
  common::FlagParser flags;
  bench::RegisterBenchFlags(flags);
  flags.AddString("dataset", "yelpchi", "dataset profile");
  flags.AddString("ks", "8,16,32,64,128", "embedding sizes to sweep");
  flags.AddBool("lambda-sweep", false, "also sweep the loss mix lambda");
  RRRE_CHECK_OK(flags.Parse(argc, argv));
  if (flags.help_requested()) {
    std::printf("%s", flags.Usage(argv[0]).c_str());
    return 0;
  }
  const bench::BenchOptions opts = bench::ReadBenchOptions(flags);
  const std::string dataset = flags.GetString("dataset");

  auto bundle = bench::MakeDataset(dataset, opts.scale, opts.base_seed);
  const auto targets = bench::TargetsOf(bundle.test);
  const auto labels = bench::LabelsOf(bundle.test);

  std::printf(
      "Fig. 2: influence of the embedding size k on the training process "
      "(%s, scale=%.2f, epochs=%ld)\n\n",
      dataset.c_str(), opts.scale, static_cast<long>(opts.epochs));

  auto run_config = [&](core::RrreConfig config, const std::string& label) {
    core::RrreTrainer trainer(config);
    std::vector<double> brmse_curve;
    std::vector<double> auc_curve;
    trainer.Fit(bundle.train, [&](const core::RrreTrainer::EpochStats&) {
      auto preds = trainer.PredictDataset(bundle.test);
      brmse_curve.push_back(
          eval::BiasedRmse(preds.ratings, targets, labels));
      auc_curve.push_back(eval::Auc(preds.reliabilities, labels));
    });
    std::string brmse_series;
    std::string auc_series;
    for (size_t e = 0; e < brmse_curve.size(); ++e) {
      brmse_series += common::StrFormat(" %.3f", brmse_curve[e]);
      auc_series += common::StrFormat(" %.3f", auc_curve[e]);
    }
    std::printf("%-10s bRMSE per epoch:%s\n", label.c_str(),
                brmse_series.c_str());
    std::printf("%-10s AUC   per epoch:%s\n", label.c_str(),
                auc_series.c_str());
    std::fflush(stdout);
  };

  for (const auto& k_str : common::Split(flags.GetString("ks"), ',')) {
    const int64_t k = std::atoll(k_str.c_str());
    RRRE_CHECK_GT(k, 0);
    RRRE_CHECK_EQ(k % 2, 0) << "k must be even (BiLSTM concat)";
    core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
    config.rev_dim = k;
    run_config(config, common::StrFormat("k=%ld", static_cast<long>(k)));
  }
  std::printf(
      "\nShape claims to check: larger k converges to better bRMSE/AUC up "
      "to k=64; k=128 tracks k=64 (diminishing returns).\n");

  if (flags.GetBool("lambda-sweep")) {
    std::printf("\nCompanion ablation: loss mixing weight lambda (Eq. 15)\n");
    for (double lambda : {0.1, 0.3, 0.5, 0.7, 0.9}) {
      core::RrreConfig config = bench::DefaultRrreConfig(opts, opts.base_seed);
      config.lambda = lambda;
      core::RrreTrainer trainer(config);
      trainer.Fit(bundle.train);
      auto preds = trainer.PredictDataset(bundle.test);
      std::printf("lambda=%.1f  bRMSE=%.3f  AUC=%.3f\n", lambda,
                  eval::BiasedRmse(preds.ratings, targets, labels),
                  eval::Auc(preds.reliabilities, labels));
    }
  }
  return 0;
}
