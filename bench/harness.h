#ifndef RRRE_BENCH_HARNESS_H_
#define RRRE_BENCH_HARNESS_H_

#include <memory>
#include <string>
#include <vector>

#include "baselines/predictor.h"
#include "common/flags.h"
#include "core/config.h"
#include "data/dataset.h"

namespace rrre::bench {

/// A generated corpus with its 70/30 split, ready for an experiment.
struct DatasetBundle {
  std::string name;
  data::ReviewDataset full;
  data::ReviewDataset train;
  data::ReviewDataset test;
};

/// Generates the named profile at `scale` and splits it (Sec. IV-C: 70%
/// train / 30% test). Deterministic in (profile, scale, seed).
DatasetBundle MakeDataset(const std::string& profile, double scale,
                          uint64_t seed);

/// Ground-truth ratings / reliability labels aligned with ds.reviews().
std::vector<double> TargetsOf(const data::ReviewDataset& ds);
std::vector<int> LabelsOf(const data::ReviewDataset& ds);

/// Shared experiment knobs every bench binary accepts.
struct BenchOptions {
  double scale = 0.25;     ///< Dataset size multiplier.
  int64_t epochs = 5;      ///< Neural training epochs.
  int64_t seeds = 1;       ///< Repetitions averaged (paper: 5).
  uint64_t base_seed = 42;
  bool ablate_attention = false;   ///< Mean pooling instead of attention.
  bool random_sampling = false;    ///< Random instead of time-based history.
  double lambda = 0.5;             ///< RRRE loss mix.
  int64_t num_threads = 0;         ///< Global pool size; 0 = hardware.
  int64_t shard_size = 8;          ///< Data-parallel shard (0 = serial path).
  bool use_tape = true;            ///< Compiled batch tape + fused kernels.
  bool tape_replay = true;         ///< Replay cached backward schedules.
};

/// Registers --scale/--epochs/--seeds/--seed/--num_threads flags on a parser.
/// `default_scale` lets expensive sweeps (Fig. 4) default smaller.
void RegisterBenchFlags(common::FlagParser& flags, double default_scale = 0.25);
/// Reads the registered flags back.
BenchOptions ReadBenchOptions(const common::FlagParser& flags);

/// The bench-scale RRRE configuration (paper reference settings shrunk for
/// a 1-core box; see EXPERIMENTS.md).
core::RrreConfig DefaultRrreConfig(const BenchOptions& opts, uint64_t seed);

/// Rating-model factory for Table III rows:
/// "rrre", "pmf", "deepconn", "narre", "der", "rrre-".
std::unique_ptr<baselines::RatingPredictor> MakeRatingModel(
    const std::string& name, const BenchOptions& opts, uint64_t seed);
/// Reliability-model factory for Table IV rows:
/// "icwsm13", "speagle+", "rev2", "rrre".
std::unique_ptr<baselines::ReliabilityPredictor> MakeReliabilityModel(
    const std::string& name, const BenchOptions& opts, uint64_t seed);

/// Names in paper order.
const std::vector<std::string>& RatingModelNames();
const std::vector<std::string>& ReliabilityModelNames();
const std::vector<std::string>& DatasetNames();

/// Prints a fixed-width row: first cell `label`, then `cells`.
void PrintRow(const std::string& label, const std::vector<std::string>& cells,
              int label_width = 10, int cell_width = 12);

}  // namespace rrre::bench

#endif  // RRRE_BENCH_HARNESS_H_
